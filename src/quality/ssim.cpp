#include "quality/ssim.h"

#include <vector>

#include "quality/widen.h"
#include "quality/window_stats.h"
#include "util/error.h"

namespace hebs::quality {

namespace {

double ssim_impl(std::span<const double> a, std::span<const double> b,
                 int width, int height, double dynamic_range,
                 const SsimOptions& opts) {
  HEBS_REQUIRE(opts.block_size >= 2, "SSIM block size must be >= 2");
  HEBS_REQUIRE(opts.stride >= 1, "SSIM stride must be >= 1");
  HEBS_REQUIRE(width >= opts.block_size && height >= opts.block_size,
               "image smaller than the SSIM window");
  const double c1 =
      (opts.k1 * dynamic_range) * (opts.k1 * dynamic_range);
  const double c2 =
      (opts.k2 * dynamic_range) * (opts.k2 * dynamic_range);
  const PairStats stats(a, b, width, height);

  double acc = 0.0;
  std::size_t windows = 0;
  for (int y = 0; y + opts.block_size <= height; y += opts.stride) {
    for (int x = 0; x + opts.block_size <= width; x += opts.stride) {
      const WindowMoments m = stats.window(x, y, opts.block_size);
      const double num = (2.0 * m.mean_a * m.mean_b + c1) *
                         (2.0 * m.cov_ab + c2);
      const double den =
          (m.mean_a * m.mean_a + m.mean_b * m.mean_b + c1) *
          (m.var_a + m.var_b + c2);
      acc += num / den;
      ++windows;
    }
  }
  return windows > 0 ? acc / static_cast<double>(windows) : 1.0;
}

}  // namespace

double ssim(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b,
            const SsimOptions& opts) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "SSIM of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "SSIM needs equal-size images");
  const std::vector<double> va = widen_u8(a.pixels());
  const std::vector<double> vb = widen_u8(b.pixels());
  return ssim_impl(va, vb, a.width(), a.height(), 255.0, opts);
}

double ssim(const hebs::image::FloatImage& a,
            const hebs::image::FloatImage& b, const SsimOptions& opts) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "SSIM of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "SSIM needs equal-size images");
  return ssim_impl(a.values(), b.values(), a.width(), a.height(), 1.0, opts);
}

}  // namespace hebs::quality
