#include "quality/uiqi.h"

#include <vector>

#include "quality/widen.h"
#include "quality/window_stats.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/pool.h"

namespace hebs::quality {

namespace {

double uiqi_impl(std::span<const double> a, std::span<const double> b,
                 int width, int height, const UiqiOptions& opts) {
  HEBS_REQUIRE(width >= 2 && height >= 2, "UIQI needs a 2-D raster");
  const PairStats stats(a, b, width, height);
  return uiqi_from_stats(stats, width, height, opts);
}

}  // namespace

double uiqi_from_stats(const PairStats& stats, int width, int height,
                       const UiqiOptions& opts, const RefWindowMoments* ref) {
  HEBS_REQUIRE(opts.block_size >= 2, "UIQI block size must be >= 2");
  HEBS_REQUIRE(opts.stride >= 1, "UIQI stride must be >= 1");
  HEBS_REQUIRE(width >= opts.block_size && height >= opts.block_size,
               "image smaller than the UIQI window");

  if (ref != nullptr && opts.stride == 1 && ref->block() == opts.block_size &&
      ref->windows_x() == width - opts.block_size + 1 &&
      ref->windows_y() == height - opts.block_size + 1) {
    const int wx = ref->windows_x();
    const int wy = ref->windows_y();
    // Window rows are independent: compute them through the q-row kernel
    // under the installed row executor, then reduce serially in row-major
    // order — the exact accumulation order of the loop below.
    hebs::util::PoolVector<double> q(static_cast<std::size_t>(wx) *
                                     static_cast<std::size_t>(wy));
    double* q_data = q.data();
    hebs::util::parallel_rows(wy, [&](int begin, int end) {
      for (int y = begin; y < end; ++y) {
        stats.q_row(y, *ref, q_data + static_cast<std::size_t>(y) * wx);
      }
    });
    double acc = 0.0;
    const std::size_t windows =
        static_cast<std::size_t>(wx) * static_cast<std::size_t>(wy);
    for (std::size_t i = 0; i < windows; ++i) acc += q_data[i];
    return acc / static_cast<double>(windows);
  }

  double acc = 0.0;
  std::size_t windows = 0;
  for (int y = 0; y + opts.block_size <= height; y += opts.stride) {
    for (int x = 0; x + opts.block_size <= width; x += opts.stride) {
      const WindowMoments m = stats.window(x, y, opts.block_size);
      const double mean_prod = m.mean_a * m.mean_b;
      const double denom1 = m.mean_a * m.mean_a + m.mean_b * m.mean_b;
      const double denom2 = m.var_a + m.var_b;
      double q = 1.0;  // both denominators zero: identical flat windows
      if (denom1 * denom2 > 0.0) {
        q = 4.0 * m.cov_ab * mean_prod / (denom1 * denom2);
      } else if (denom1 > 0.0) {
        // Zero variance in both images: quality driven by mean closeness
        // (matches the reference implementation's special case).
        q = 2.0 * mean_prod / denom1;
      }
      acc += q;
      ++windows;
    }
  }
  return windows > 0 ? acc / static_cast<double>(windows) : 1.0;
}

double uiqi(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b,
            const UiqiOptions& opts) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "UIQI of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "UIQI needs equal-size images");
  const std::vector<double> va = widen_u8(a.pixels());
  const std::vector<double> vb = widen_u8(b.pixels());
  return uiqi_impl(va, vb, a.width(), a.height(), opts);
}

double uiqi(const hebs::image::FloatImage& a,
            const hebs::image::FloatImage& b, const UiqiOptions& opts) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "UIQI of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "UIQI needs equal-size images");
  return uiqi_impl(a.values(), b.values(), a.width(), a.height(), opts);
}

}  // namespace hebs::quality
