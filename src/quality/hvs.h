// Human-visual-system model for distortion measurement.
//
// The paper argues (§2, §3) that a correct distortion measure "should
// appropriately combine the mathematical difference between pixel values
// ... and the characteristics of the human visual system", citing the
// transform-then-compare approach of ref [6] with an HVS model from
// Pratt [9].  This module implements the standard two-stage front end:
//
//  1. Luminance -> lightness nonlinearity: CIE L* (cube-root law), which
//     models Weber-Fechner brightness compression — equal luminance
//     errors in the dark are more visible than in the bright.
//  2. An optional Gaussian low-pass prefilter approximating the eye's
//     contrast sensitivity roll-off at high spatial frequencies.
//
// Quality metrics are then evaluated on the transformed rasters.
#pragma once

#include "image/image.h"
#include "transform/lut.h"

namespace hebs::quality {

/// Parameters of the HVS front end.
struct HvsOptions {
  /// Gaussian prefilter sigma in pixels; 0 disables the filter.
  double csf_sigma = 1.0;
  /// When false, the L* lightness mapping is skipped.
  bool lightness_mapping = true;
};

/// Applies the HVS front end to a normalized-luminance raster; the result
/// is a normalized "perceived lightness" raster in [0, 1].
hebs::image::FloatImage hvs_transform(const hebs::image::FloatImage& lum,
                                      const HvsOptions& opts = {});

/// Convenience overload for 8-bit images (treated as normalized
/// luminance X/255).
hebs::image::FloatImage hvs_transform(const hebs::image::GrayImage& img,
                                      const HvsOptions& opts = {});

/// HVS front end for a raster that is a per-level map of an 8-bit image
/// (displayed luminance = levels[pixel]).  The lightness nonlinearity is
/// evaluated once per level instead of once per pixel; the result is
/// bit-identical to hvs_transform applied to the expanded raster, since
/// equal luminance inputs produce equal lightness outputs.
hebs::image::FloatImage hvs_transform_mapped(
    const hebs::image::GrayImage& img,
    const hebs::transform::FloatLut& levels, const HvsOptions& opts = {});

/// Deep-pixel twin of hvs_transform_mapped (levels.size() must equal
/// img.levels()); same per-level evaluation, same bit-identity.
hebs::image::FloatImage hvs_transform_mapped(
    const hebs::image::GrayImage16& img,
    const hebs::transform::FloatLut& levels, const HvsOptions& opts = {});

/// CIE L* lightness of a normalized luminance value, scaled to [0, 1].
double lightness(double y) noexcept;

}  // namespace hebs::quality
