// Contrast fidelity — the distortion measure of Cheng & Pedram (ref [5]).
//
// CBCS judges a backlight-scaled image by how much of the original's
// *contrast* survives, deliberately forgiving uniform brightness shifts
// (the eye adapts to absolute level but notices lost detail).  We
// reconstruct the measure as windowed contrast preservation:
//
//   fidelity = Σ_w min(σ'_w, σ_w) / Σ_w σ_w   ∈ [0, 1]
//
// where σ_w / σ'_w are the per-window standard deviations of the
// original and displayed images.  Contrast that is attenuated (clipped
// band ends, compressed slope) loses fidelity; contrast that is
// amplified does not gain beyond 1, matching [5]'s "preserved pixels"
// intuition.  The paper (§2) argues this overestimates quality — it is
// blind to brightness errors — which is exactly what the metric-ablation
// benchmark demonstrates against UIQI+HVS.
#pragma once

#include "image/image.h"

namespace hebs::quality {

/// Options for the contrast-fidelity computation.
struct ContrastFidelityOptions {
  int block_size = 8;
  int stride = 4;
};

/// Contrast fidelity in [0, 1]; 1 when every window's contrast is fully
/// preserved (or amplified).
double contrast_fidelity(const hebs::image::GrayImage& original,
                         const hebs::image::GrayImage& displayed,
                         const ContrastFidelityOptions& opts = {});

/// Same over normalized-luminance rasters.
double contrast_fidelity(const hebs::image::FloatImage& original,
                         const hebs::image::FloatImage& displayed,
                         const ContrastFidelityOptions& opts = {});

/// Distortion percentage (1 - fidelity) * 100.
double contrast_distortion_percent(const hebs::image::GrayImage& original,
                                   const hebs::image::GrayImage& displayed,
                                   const ContrastFidelityOptions& opts = {});

}  // namespace hebs::quality
