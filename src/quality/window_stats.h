// Sliding-window statistics via summed-area tables.
//
// Both UIQI and SSIM need per-window means, variances and covariance over
// every BxB window of an image pair.  Integral images make each window
// O(1), which is what makes the "distortion metric in the display
// pipeline" claim of the paper computationally plausible.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "image/image.h"
#include "util/pool.h"

namespace hebs::quality {

/// Summed-area table over a double-valued raster.
class IntegralImage {
 public:
  /// Builds the integral image of `values` (row-major, w x h).
  IntegralImage(std::span<const double> values, int width, int height);

  /// Integral image of the pointwise squares of `values`, accumulated
  /// directly (no squared temporary raster).
  static IntegralImage of_squares(std::span<const double> values, int width,
                                  int height);

  /// Integral image of the pointwise products a[i]*b[i].
  static IntegralImage of_products(std::span<const double> a,
                                   std::span<const double> b, int width,
                                   int height);

  /// Sum over the inclusive rectangle [x0, x1] x [y0, y1].
  double rect_sum(int x0, int y0, int x1, int y1) const noexcept;

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

 private:
  IntegralImage(int width, int height) : width_(width), height_(height) {}

  // ImageStats/PairStats build several tables in one fused sweep
  // through the kernel layer and need to fill table_ directly.
  friend class ImageStats;
  friend class PairStats;

  int width_;
  int height_;
  // (width+1) x (height+1) with a zero top row / left column.
  // Pool-backed: the metric path builds three of these per evaluation.
  hebs::util::PoolVector<double> table_;
};

/// Precomputed integral images of a single raster (sum and sum of
/// squares).  Lets an evaluator that compares one fixed reference against
/// many candidate rasters build the reference-side tables once and reuse
/// them for every comparison (see quality::DistortionEvaluator).
class ImageStats {
 public:
  ImageStats(std::span<const double> values, int width, int height);

  const IntegralImage& sum() const noexcept { return sum_; }
  const IntegralImage& sum_sq() const noexcept { return sum_sq_; }

  int width() const noexcept { return sum_.width(); }
  int height() const noexcept { return sum_.height(); }

 private:
  IntegralImage sum_;
  IntegralImage sum_sq_;
};

/// First and second moments of an image pair over one window.
struct WindowMoments {
  double mean_a = 0.0;
  double mean_b = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  double cov_ab = 0.0;
};

/// Precomputed integral images for a pair of equally sized rasters,
/// exposing O(1) window moments.
class PairStats {
 public:
  PairStats(std::span<const double> a, std::span<const double> b, int width,
            int height);

  /// Reuses precomputed a-side tables by reference (no copy): only the
  /// b-side and the cross (a*b) integral images are built.  `a` must be
  /// the raster `a_stats` was built from, and `a_stats` must outlive
  /// this object; moments are bit-identical to the two-span
  /// constructor.
  PairStats(const ImageStats& a_stats, std::span<const double> a,
            std::span<const double> b, int width, int height);

  // Not copyable/movable: the borrowed-stats constructor stores
  // pointers into the caller's ImageStats (or into this object).
  PairStats(const PairStats&) = delete;
  PairStats& operator=(const PairStats&) = delete;

  /// Moments over the window with top-left (x, y) and side `block`.
  /// The window must lie fully inside the raster.
  WindowMoments window(int x, int y, int block) const noexcept;

  int width() const noexcept { return sum_b_.width(); }
  int height() const noexcept { return sum_b_.height(); }

 private:
  /// a-side tables owned by this object (two-span constructor only).
  std::optional<IntegralImage> own_sum_a_;
  std::optional<IntegralImage> own_sum_aa_;
  IntegralImage sum_b_;
  IntegralImage sum_bb_;
  IntegralImage sum_ab_;
  /// a-side tables in use: the owned ones above, or the caller's
  /// ImageStats (borrowed, zero-copy).
  const IntegralImage* sum_a_;
  const IntegralImage* sum_aa_;
};

}  // namespace hebs::quality
