// Sliding-window statistics via summed-area tables.
//
// Both UIQI and SSIM need per-window means, variances and covariance over
// every BxB window of an image pair.  Integral images make each window
// O(1), which is what makes the "distortion metric in the display
// pipeline" claim of the paper computationally plausible.
#pragma once

#include <cstddef>
#include <vector>

#include "image/image.h"

namespace hebs::quality {

/// Summed-area table over a double-valued raster.
class IntegralImage {
 public:
  /// Builds the integral image of `values` (row-major, w x h).
  IntegralImage(std::span<const double> values, int width, int height);

  /// Sum over the inclusive rectangle [x0, x1] x [y0, y1].
  double rect_sum(int x0, int y0, int x1, int y1) const noexcept;

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

 private:
  int width_;
  int height_;
  // (width+1) x (height+1) with a zero top row / left column.
  std::vector<double> table_;
};

/// First and second moments of an image pair over one window.
struct WindowMoments {
  double mean_a = 0.0;
  double mean_b = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  double cov_ab = 0.0;
};

/// Precomputed integral images for a pair of equally sized rasters,
/// exposing O(1) window moments.
class PairStats {
 public:
  PairStats(std::span<const double> a, std::span<const double> b, int width,
            int height);

  /// Moments over the window with top-left (x, y) and side `block`.
  /// The window must lie fully inside the raster.
  WindowMoments window(int x, int y, int block) const noexcept;

  int width() const noexcept { return sum_a_.width(); }
  int height() const noexcept { return sum_a_.height(); }

 private:
  IntegralImage sum_a_;
  IntegralImage sum_b_;
  IntegralImage sum_aa_;
  IntegralImage sum_bb_;
  IntegralImage sum_ab_;
};

}  // namespace hebs::quality
