// Sliding-window statistics via summed-area tables.
//
// Both UIQI and SSIM need per-window means, variances and covariance over
// every BxB window of an image pair.  Integral images make each window
// O(1), which is what makes the "distortion metric in the display
// pipeline" claim of the paper computationally plausible.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "image/image.h"
#include "util/pool.h"

namespace hebs::quality {

/// Summed-area table over a double-valued raster.
class IntegralImage {
 public:
  /// Builds the integral image of `values` (row-major, w x h).
  IntegralImage(std::span<const double> values, int width, int height);

  /// Integral image of the pointwise squares of `values`, accumulated
  /// directly (no squared temporary raster).
  static IntegralImage of_squares(std::span<const double> values, int width,
                                  int height);

  /// Integral image of the pointwise products a[i]*b[i].
  static IntegralImage of_products(std::span<const double> a,
                                   std::span<const double> b, int width,
                                   int height);

  /// Sum over the inclusive rectangle [x0, x1] x [y0, y1].
  double rect_sum(int x0, int y0, int x1, int y1) const noexcept;

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

 private:
  IntegralImage(int width, int height) : width_(width), height_(height) {}

  // ImageStats/PairStats build several tables in one fused sweep
  // through the kernel layer and need to fill table_ directly.
  friend class ImageStats;
  friend class PairStats;

  int width_;
  int height_;
  // (width+1) x (height+1) with a zero top row / left column.
  // Pool-backed: the metric path builds three of these per evaluation.
  hebs::util::PoolVector<double> table_;
};

/// Precomputed integral images of a single raster (sum and sum of
/// squares).  Lets an evaluator that compares one fixed reference against
/// many candidate rasters build the reference-side tables once and reuse
/// them for every comparison (see quality::DistortionEvaluator).
class ImageStats {
 public:
  ImageStats(std::span<const double> values, int width, int height);

  const IntegralImage& sum() const noexcept { return sum_; }
  const IntegralImage& sum_sq() const noexcept { return sum_sq_; }

  int width() const noexcept { return sum_.width(); }
  int height() const noexcept { return sum_.height(); }

 private:
  IntegralImage sum_;
  IntegralImage sum_sq_;
};

/// Reference-side per-window moments: the mean and (clamped) variance of
/// the `a` raster over every stride-1 BxB window, precomputed once.  An
/// evaluator comparing one fixed reference against many candidates pays
/// the two rect_sum reductions and the division per window once instead
/// of once per candidate; the arithmetic (including the negative-variance
/// clamp) is exactly PairStats::window()'s a-side, so metrics built on
/// top are bit-identical.
class RefWindowMoments {
 public:
  RefWindowMoments(const ImageStats& a_stats, int block);

  int block() const noexcept { return block_; }
  int windows_x() const noexcept { return wx_; }
  int windows_y() const noexcept { return wy_; }

  /// Row `wy` of the per-window means / variances (windows_x entries).
  const double* mean_row(int wy) const noexcept {
    return mean_.data() + static_cast<std::size_t>(wy) * wx_;
  }
  const double* var_row(int wy) const noexcept {
    return var_.data() + static_cast<std::size_t>(wy) * wx_;
  }

 private:
  int block_;
  int wx_;
  int wy_;
  hebs::util::PoolVector<double> mean_;
  hebs::util::PoolVector<double> var_;
};

/// First and second moments of an image pair over one window.
struct WindowMoments {
  double mean_a = 0.0;
  double mean_b = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  double cov_ab = 0.0;
};

/// Precomputed integral images for a pair of equally sized rasters,
/// exposing O(1) window moments.
class PairStats {
 public:
  PairStats(std::span<const double> a, std::span<const double> b, int width,
            int height);

  /// Reuses precomputed a-side tables by reference (no copy): only the
  /// b-side and the cross (a*b) integral images are built.  `a` must be
  /// the raster `a_stats` was built from, and `a_stats` must outlive
  /// this object; moments are bit-identical to the two-span
  /// constructor.
  PairStats(const ImageStats& a_stats, std::span<const double> a,
            std::span<const double> b, int width, int height);

  // Not copyable/movable: the borrowed-stats constructor stores
  // pointers into the caller's ImageStats (or into this object).
  PairStats(const PairStats&) = delete;
  PairStats& operator=(const PairStats&) = delete;

  /// Moments over the window with top-left (x, y) and side `block`.
  /// The window must lie fully inside the raster.
  WindowMoments window(int x, int y, int block) const noexcept;

  /// UIQI q values of every stride-1 window in window row `wy`, written
  /// to q_out (ref.windows_x() entries).  Bit-identical to evaluating
  /// window() plus the uiqi_from_stats formula per window, but reads the
  /// b-side tables row-wise through one kernel call and the cached
  /// reference moments instead of re-deriving the a-side per candidate.
  void q_row(int wy, const RefWindowMoments& ref, double* q_out) const noexcept;

  int width() const noexcept { return sum_b_.width(); }
  int height() const noexcept { return sum_b_.height(); }

 private:
  /// a-side tables owned by this object (two-span constructor only).
  std::optional<IntegralImage> own_sum_a_;
  std::optional<IntegralImage> own_sum_aa_;
  IntegralImage sum_b_;
  IntegralImage sum_bb_;
  IntegralImage sum_ab_;
  /// a-side tables in use: the owned ones above, or the caller's
  /// ImageStats (borrowed, zero-copy).
  const IntegralImage* sum_a_;
  const IntegralImage* sum_aa_;
};

}  // namespace hebs::quality
