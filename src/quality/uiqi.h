// Universal Image Quality Index (Wang & Bovik, IEEE SPL 2002).
//
// The paper adopts UIQI as its distortion measure (§5.1c, ref [8]).
// Q decomposes image similarity into correlation, luminance closeness and
// contrast closeness:
//     Q = [σ_ab / (σ_a σ_b)] * [2 ā b̄ / (ā² + b̄²)] * [2 σ_a σ_b / (σ_a² + σ_b²)]
// computed on a sliding window and averaged.  Q ∈ [-1, 1], Q = 1 iff the
// images are identical (affine-sensitive, unlike plain correlation).
#pragma once

#include "image/image.h"
#include "quality/window_stats.h"

namespace hebs::quality {

/// Options for the UIQI computation.
struct UiqiOptions {
  int block_size = 8;  ///< window side; the reference implementation uses 8
  int stride = 1;      ///< window step; 1 reproduces the reference exactly
};

/// Mean UIQI over all windows. Images must be non-empty and equal sized,
/// and at least block_size on each side.
double uiqi(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b,
            const UiqiOptions& opts = {});

/// UIQI over normalized-luminance rasters (used after HVS mapping and for
/// displayed-luminance comparisons).
double uiqi(const hebs::image::FloatImage& a,
            const hebs::image::FloatImage& b, const UiqiOptions& opts = {});

/// Mean UIQI from already-built window statistics.  Every other overload
/// funnels through this, so callers that cache the reference-side
/// integral images (PairStats built from an ImageStats) get bit-identical
/// values to the plain two-image entry points.
///
/// `ref` optionally supplies cached reference-side per-window moments
/// (matching block size and window grid, stride 1): the evaluation then
/// runs row-wise through the kernel layer's q-row primitive and the
/// installed row executor, with the final accumulation kept serial in
/// row-major order — the result is bit-identical with or without the
/// cache, on every backend and thread count.
double uiqi_from_stats(const PairStats& stats, int width, int height,
                       const UiqiOptions& opts = {},
                       const RefWindowMoments* ref = nullptr);

}  // namespace hebs::quality
