#include "quality/distortion.h"

#include <cmath>

#include "quality/metrics.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::quality {

const char* metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kUiqiHvs: return "UIQI+HVS";
    case Metric::kUiqi: return "UIQI";
    case Metric::kSsim: return "SSIM";
    case Metric::kSsimHvs: return "SSIM+HVS";
    case Metric::kRmse: return "RMSE";
    case Metric::kContrastFidelity: return "ContrastFidelity";
    case Metric::kMsSsim: return "MS-SSIM";
  }
  return "unknown";
}

namespace {

double index_to_percent(double q) {
  // Quality indices live in [-1, 1] with 1 = identical.
  return util::clamp((1.0 - q) / 2.0 * 100.0, 0.0, 100.0);
}

}  // namespace

DistortionEvaluator::DistortionEvaluator(hebs::image::FloatImage reference,
                                         DistortionOptions opts)
    : opts_(opts), reference_(std::move(reference)) {
  HEBS_REQUIRE(!reference_.empty(), "distortion of an empty reference");
  switch (opts_.metric) {
    case Metric::kUiqi:
      ref_stats_.emplace(reference_.values(), reference_.width(),
                         reference_.height());
      break;
    case Metric::kUiqiHvs:
      hvs_reference_ = hvs_transform(reference_, opts_.hvs);
      ref_stats_.emplace(hvs_reference_.values(), hvs_reference_.width(),
                         hvs_reference_.height());
      break;
    case Metric::kSsimHvs:
      hvs_reference_ = hvs_transform(reference_, opts_.hvs);
      break;
    case Metric::kMsSsim:
      gray_reference_ = reference_.to_gray();
      break;
    case Metric::kSsim:
    case Metric::kRmse:
    case Metric::kContrastFidelity:
      break;
  }
  if (ref_stats_ && opts_.uiqi.stride == 1 &&
      ref_stats_->width() >= opts_.uiqi.block_size &&
      ref_stats_->height() >= opts_.uiqi.block_size) {
    ref_moments_.emplace(*ref_stats_, opts_.uiqi.block_size);
  }
}

double DistortionEvaluator::percent(
    const hebs::image::FloatImage& test) const {
  HEBS_REQUIRE(test.width() == reference_.width() &&
                   test.height() == reference_.height(),
               "distortion needs equal-size images");
  switch (opts_.metric) {
    case Metric::kUiqi: {
      const PairStats stats(*ref_stats_, reference_.values(), test.values(),
                            reference_.width(), reference_.height());
      return index_to_percent(
          uiqi_from_stats(stats, reference_.width(), reference_.height(),
                          opts_.uiqi, ref_moments_ ? &*ref_moments_ : nullptr));
    }
    case Metric::kUiqiHvs: {
      const auto hvs_test = hvs_transform(test, opts_.hvs);
      const PairStats stats(*ref_stats_, hvs_reference_.values(),
                            hvs_test.values(), hvs_reference_.width(),
                            hvs_reference_.height());
      return index_to_percent(
          uiqi_from_stats(stats, hvs_reference_.width(),
                          hvs_reference_.height(), opts_.uiqi,
                          ref_moments_ ? &*ref_moments_ : nullptr));
    }
    case Metric::kSsim:
      return index_to_percent(ssim(reference_, test, opts_.ssim));
    case Metric::kSsimHvs:
      return index_to_percent(ssim(
          hvs_reference_, hvs_transform(test, opts_.hvs), opts_.ssim));
    case Metric::kRmse: {
      const double m = std::sqrt(mse(reference_, test));
      return util::clamp(m * 100.0, 0.0, 100.0);
    }
    case Metric::kContrastFidelity:
      return util::clamp(
          (1.0 - contrast_fidelity(reference_, test, opts_.contrast)) *
              100.0,
          0.0, 100.0);
    case Metric::kMsSsim:
      return index_to_percent(
          ms_ssim(gray_reference_, test.to_gray(), opts_.ms_ssim));
  }
  throw util::InvalidArgument("unknown distortion metric");
}

double DistortionEvaluator::percent_mapped(
    const hebs::image::GrayImage& original,
    const hebs::transform::FloatLut& levels) const {
  HEBS_REQUIRE(original.width() == reference_.width() &&
                   original.height() == reference_.height(),
               "distortion needs equal-size images");
  if (opts_.metric == Metric::kUiqiHvs) {
    // Per-level lightness, then the shared windowed comparison.
    const auto hvs_test = hvs_transform_mapped(original, levels, opts_.hvs);
    const PairStats stats(*ref_stats_, hvs_reference_.values(),
                          hvs_test.values(), hvs_reference_.width(),
                          hvs_reference_.height());
    return index_to_percent(
        uiqi_from_stats(stats, hvs_reference_.width(),
                        hvs_reference_.height(), opts_.uiqi,
                        ref_moments_ ? &*ref_moments_ : nullptr));
  }
  return percent(levels.apply(original));
}

double DistortionEvaluator::percent_mapped(
    const hebs::image::GrayImage16& original,
    const hebs::transform::FloatLut& levels) const {
  HEBS_REQUIRE(original.width() == reference_.width() &&
                   original.height() == reference_.height(),
               "distortion needs equal-size images");
  if (opts_.metric == Metric::kUiqiHvs) {
    const auto hvs_test = hvs_transform_mapped(original, levels, opts_.hvs);
    const PairStats stats(*ref_stats_, hvs_reference_.values(),
                          hvs_test.values(), hvs_reference_.width(),
                          hvs_reference_.height());
    return index_to_percent(
        uiqi_from_stats(stats, hvs_reference_.width(),
                        hvs_reference_.height(), opts_.uiqi,
                        ref_moments_ ? &*ref_moments_ : nullptr));
  }
  return percent(levels.apply16(original));
}

double distortion_percent(const hebs::image::FloatImage& reference,
                          const hebs::image::FloatImage& test,
                          const DistortionOptions& opts) {
  // One-shot path: the evaluator takes ownership of a copy of the
  // reference raster.  The copy is a single memcpy — noise next to the
  // metric work — and buys a single code path for cached and one-shot
  // measurements, which is what guarantees their bit-identity.
  return DistortionEvaluator(reference, opts).percent(test);
}

double distortion_percent(const hebs::image::GrayImage& reference,
                          const hebs::image::GrayImage& test,
                          const DistortionOptions& opts) {
  return distortion_percent(hebs::image::FloatImage::from_gray(reference),
                            hebs::image::FloatImage::from_gray(test), opts);
}

}  // namespace hebs::quality
