#include "quality/distortion.h"

#include <cmath>

#include "quality/metrics.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::quality {

const char* metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kUiqiHvs: return "UIQI+HVS";
    case Metric::kUiqi: return "UIQI";
    case Metric::kSsim: return "SSIM";
    case Metric::kSsimHvs: return "SSIM+HVS";
    case Metric::kRmse: return "RMSE";
    case Metric::kContrastFidelity: return "ContrastFidelity";
    case Metric::kMsSsim: return "MS-SSIM";
  }
  return "unknown";
}

namespace {

double index_to_percent(double q) {
  // Quality indices live in [-1, 1] with 1 = identical.
  return util::clamp((1.0 - q) / 2.0 * 100.0, 0.0, 100.0);
}

}  // namespace

double distortion_percent(const hebs::image::FloatImage& reference,
                          const hebs::image::FloatImage& test,
                          const DistortionOptions& opts) {
  switch (opts.metric) {
    case Metric::kUiqi:
      return index_to_percent(uiqi(reference, test, opts.uiqi));
    case Metric::kUiqiHvs:
      return index_to_percent(uiqi(hvs_transform(reference, opts.hvs),
                                   hvs_transform(test, opts.hvs),
                                   opts.uiqi));
    case Metric::kSsim:
      return index_to_percent(ssim(reference, test, opts.ssim));
    case Metric::kSsimHvs:
      return index_to_percent(ssim(hvs_transform(reference, opts.hvs),
                                   hvs_transform(test, opts.hvs),
                                   opts.ssim));
    case Metric::kRmse: {
      const double m = std::sqrt(mse(reference, test));
      return util::clamp(m * 100.0, 0.0, 100.0);
    }
    case Metric::kContrastFidelity:
      return util::clamp(
          (1.0 - contrast_fidelity(reference, test, opts.contrast)) * 100.0,
          0.0, 100.0);
    case Metric::kMsSsim:
      return index_to_percent(
          ms_ssim(reference.to_gray(), test.to_gray(), opts.ms_ssim));
  }
  throw util::InvalidArgument("unknown distortion metric");
}

double distortion_percent(const hebs::image::GrayImage& reference,
                          const hebs::image::GrayImage& test,
                          const DistortionOptions& opts) {
  return distortion_percent(hebs::image::FloatImage::from_gray(reference),
                            hebs::image::FloatImage::from_gray(test), opts);
}

}  // namespace hebs::quality
