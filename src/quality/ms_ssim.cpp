#include "quality/ms_ssim.h"

#include <cmath>
#include <vector>

#include "image/ops.h"
#include "quality/window_stats.h"
#include "util/error.h"

namespace hebs::quality {

namespace {

// Standard MS-SSIM per-scale exponents (Wang et al. 2003), renormalized
// over however many scales the image size allows.
constexpr double kExponents[5] = {0.0448, 0.2856, 0.3001, 0.2363, 0.1333};

/// Mean contrast-structure term (SSIM without the luminance factor) and
/// mean full SSIM for one scale.
struct ScaleScores {
  double contrast_structure = 0.0;
  double full = 0.0;
};

ScaleScores scale_scores(const hebs::image::GrayImage& a,
                         const hebs::image::GrayImage& b,
                         const SsimOptions& opts) {
  const double c1 = (opts.k1 * 255.0) * (opts.k1 * 255.0);
  const double c2 = (opts.k2 * 255.0) * (opts.k2 * 255.0);
  std::vector<double> va(a.size());
  std::vector<double> vb(b.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    va[i] = static_cast<double>(a.pixels()[i]);
    vb[i] = static_cast<double>(b.pixels()[i]);
  }
  const PairStats stats(va, vb, a.width(), a.height());
  ScaleScores scores;
  std::size_t windows = 0;
  for (int y = 0; y + opts.block_size <= a.height(); y += opts.stride) {
    for (int x = 0; x + opts.block_size <= a.width(); x += opts.stride) {
      const WindowMoments m = stats.window(x, y, opts.block_size);
      const double cs = (2.0 * m.cov_ab + c2) / (m.var_a + m.var_b + c2);
      const double lum = (2.0 * m.mean_a * m.mean_b + c1) /
                         (m.mean_a * m.mean_a + m.mean_b * m.mean_b + c1);
      scores.contrast_structure += cs;
      scores.full += lum * cs;
      ++windows;
    }
  }
  if (windows > 0) {
    scores.contrast_structure /= static_cast<double>(windows);
    scores.full /= static_cast<double>(windows);
  }
  return scores;
}

hebs::image::GrayImage downsample2(const hebs::image::GrayImage& img) {
  return hebs::image::resize_bilinear(img, std::max(1, img.width() / 2),
                                      std::max(1, img.height() / 2));
}

}  // namespace

double ms_ssim(const hebs::image::GrayImage& a,
               const hebs::image::GrayImage& b, const MsSsimOptions& opts) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "MS-SSIM of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "MS-SSIM needs equal-size images");
  HEBS_REQUIRE(opts.scales >= 1 && opts.scales <= 5,
               "scales must be in 1..5");

  // Clamp the scale count so the smallest level still fits one window.
  int usable = 1;
  {
    int w = a.width();
    int h = a.height();
    for (int s = 1; s < opts.scales; ++s) {
      w /= 2;
      h /= 2;
      if (w < opts.ssim.block_size || h < opts.ssim.block_size) break;
      usable = s + 1;
    }
  }
  HEBS_REQUIRE(a.width() >= opts.ssim.block_size &&
                   a.height() >= opts.ssim.block_size,
               "image smaller than the SSIM window");

  double exponent_sum = 0.0;
  for (int s = 0; s < usable; ++s) exponent_sum += kExponents[s];

  hebs::image::GrayImage cur_a = a;
  hebs::image::GrayImage cur_b = b;
  double product = 1.0;
  for (int s = 0; s < usable; ++s) {
    const ScaleScores scores = scale_scores(cur_a, cur_b, opts.ssim);
    const double weight = kExponents[s] / exponent_sum;
    // Coarsest scale contributes the full SSIM (with luminance); finer
    // scales contribute contrast-structure only, per the standard form.
    const double term =
        s + 1 == usable ? scores.full : scores.contrast_structure;
    // Signed power keeps the score defined for (rare) negative terms.
    product *= std::copysign(std::pow(std::abs(term), weight), term);
    if (s + 1 < usable) {
      cur_a = downsample2(cur_a);
      cur_b = downsample2(cur_b);
    }
  }
  return product;
}

}  // namespace hebs::quality
