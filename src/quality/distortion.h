// Unified distortion front end.
//
// Everything downstream (the distortion characteristic curve, the HEBS
// policy, the baselines, Table 1 and Figures 7/8) quantifies image
// distortion as a percentage in [0, 100].  This header defines the
// conversion from each underlying quality metric to that percentage and
// gives all modules a single switchable entry point, which also powers
// the metric-ablation benchmark (the paper's stated future work).
#pragma once

#include "image/image.h"
#include "quality/contrast_fidelity.h"
#include "quality/hvs.h"
#include "quality/ms_ssim.h"
#include "quality/ssim.h"
#include "quality/uiqi.h"

namespace hebs::quality {

/// Selectable distortion measures.
enum class Metric {
  kUiqiHvs,           ///< paper default: UIQI on HVS-transformed rasters
  kUiqi,              ///< plain UIQI on pixel values
  kSsim,              ///< SSIM (ref [6]; the paper's future-work metric)
  kSsimHvs,           ///< SSIM on HVS-transformed rasters
  kRmse,              ///< root mean squared pixel error, scaled to percent
  kContrastFidelity,  ///< (1 - contrast fidelity), the CBCS measure [5]
  kMsSsim,            ///< multi-scale SSIM (viewing-distance robust)
};

/// Human-readable metric name (for tables and CSV headers).
const char* metric_name(Metric m) noexcept;

/// Options for distortion evaluation.
struct DistortionOptions {
  Metric metric = Metric::kUiqiHvs;
  UiqiOptions uiqi;
  SsimOptions ssim;
  HvsOptions hvs;
  ContrastFidelityOptions contrast;
  MsSsimOptions ms_ssim;
};

/// Distortion percentage in [0, 100] between a reference image and a
/// test image; 0 iff identical (up to metric degeneracies).
/// Index-based metrics (UIQI/SSIM, range [-1, 1]) map as (1 - q)/2 * 100;
/// RMSE maps as rmse/255 * 100.
double distortion_percent(const hebs::image::GrayImage& reference,
                          const hebs::image::GrayImage& test,
                          const DistortionOptions& opts = {});

/// Distortion between displayed-luminance rasters (used when comparing
/// what the panel actually emits under backlight scaling).
double distortion_percent(const hebs::image::FloatImage& reference,
                          const hebs::image::FloatImage& test,
                          const DistortionOptions& opts = {});

}  // namespace hebs::quality
