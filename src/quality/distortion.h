// Unified distortion front end.
//
// Everything downstream (the distortion characteristic curve, the HEBS
// policy, the baselines, Table 1 and Figures 7/8) quantifies image
// distortion as a percentage in [0, 100].  This header defines the
// conversion from each underlying quality metric to that percentage and
// gives all modules a single switchable entry point, which also powers
// the metric-ablation benchmark (the paper's stated future work).
#pragma once

#include <optional>

#include "image/image.h"
#include "quality/contrast_fidelity.h"
#include "quality/hvs.h"
#include "quality/ms_ssim.h"
#include "quality/ssim.h"
#include "quality/uiqi.h"

namespace hebs::quality {

/// Selectable distortion measures.
enum class Metric {
  kUiqiHvs,           ///< paper default: UIQI on HVS-transformed rasters
  kUiqi,              ///< plain UIQI on pixel values
  kSsim,              ///< SSIM (ref [6]; the paper's future-work metric)
  kSsimHvs,           ///< SSIM on HVS-transformed rasters
  kRmse,              ///< root mean squared pixel error, scaled to percent
  kContrastFidelity,  ///< (1 - contrast fidelity), the CBCS measure [5]
  kMsSsim,            ///< multi-scale SSIM (viewing-distance robust)
};

/// Human-readable metric name (for tables and CSV headers).
const char* metric_name(Metric m) noexcept;

/// Options for distortion evaluation.
struct DistortionOptions {
  Metric metric = Metric::kUiqiHvs;
  UiqiOptions uiqi;
  SsimOptions ssim;
  HvsOptions hvs;
  ContrastFidelityOptions contrast;
  MsSsimOptions ms_ssim;
};

/// Distortion percentage in [0, 100] between a reference image and a
/// test image; 0 iff identical (up to metric degeneracies).
/// Index-based metrics (UIQI/SSIM, range [-1, 1]) map as (1 - q)/2 * 100;
/// RMSE maps as rmse/255 * 100.
double distortion_percent(const hebs::image::GrayImage& reference,
                          const hebs::image::GrayImage& test,
                          const DistortionOptions& opts = {});

/// Distortion between displayed-luminance rasters (used when comparing
/// what the panel actually emits under backlight scaling).
double distortion_percent(const hebs::image::FloatImage& reference,
                          const hebs::image::FloatImage& test,
                          const DistortionOptions& opts = {});

/// Measures many candidate rasters against one fixed reference.
///
/// The reference-side half of every metric is computed once at
/// construction — the HVS transform of the reference, its integral
/// images (sum / sum of squares) for the windowed metrics, and the 8-bit
/// quantization MS-SSIM needs — and reused by each percent() call.  The
/// free distortion_percent() functions are implemented on top of this
/// class, so cached and one-shot measurements are bit-identical.  This is
/// what makes repeated evaluation (the hebs_exact bisection, the β
/// refinement, the baselines' searches) cheap: only the test-side work
/// is paid per call.
class DistortionEvaluator {
 public:
  explicit DistortionEvaluator(hebs::image::FloatImage reference,
                               DistortionOptions opts = {});

  /// Distortion percentage of `test` against the cached reference.
  /// `test` must match the reference's dimensions.
  double percent(const hebs::image::FloatImage& test) const;

  /// Same measurement for a test raster that is a per-level map of an
  /// 8-bit image (displayed[i] = levels[original[i]]) — the shape every
  /// backlight-scaled frame has.  The HVS lightness stage runs per level
  /// instead of per pixel; the value is bit-identical to
  /// percent(levels.apply(original)).
  double percent_mapped(const hebs::image::GrayImage& original,
                        const hebs::transform::FloatLut& levels) const;

  /// Deep-pixel twin (levels.size() must equal original.levels()); same
  /// per-level shortcut, same bit-identity to
  /// percent(levels.apply16(original)).
  double percent_mapped(const hebs::image::GrayImage16& original,
                        const hebs::transform::FloatLut& levels) const;

  const hebs::image::FloatImage& reference() const noexcept {
    return reference_;
  }
  const DistortionOptions& options() const noexcept { return opts_; }

 private:
  DistortionOptions opts_;
  hebs::image::FloatImage reference_;
  /// HVS-transformed reference (only built for the *+HVS metrics).
  hebs::image::FloatImage hvs_reference_;
  /// Reference-side integral images for the UIQI metrics.
  std::optional<ImageStats> ref_stats_;
  /// Cached per-window reference moments for stride-1 UIQI (the common
  /// configuration): hoists the reference half of every window out of
  /// the per-candidate loop.  Bit-identical either way.
  std::optional<RefWindowMoments> ref_moments_;
  /// 8-bit reference for MS-SSIM (which is defined on gray images).
  hebs::image::GrayImage gray_reference_;
};

}  // namespace hebs::quality
