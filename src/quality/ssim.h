// Structural Similarity Index (Wang, Bovik, Sheikh, Simoncelli 2004).
//
// The paper cites SSIM (ref [6]) as the direction for "future work
// [where] alternative distortion measures ... will be evaluated"; the
// metric-ablation benchmark exercises exactly that.  SSIM generalizes
// UIQI by adding the stabilizing constants C1, C2:
//   SSIM = (2 ā b̄ + C1)(2 σ_ab + C2) / ((ā²+b̄²+C1)(σ_a²+σ_b²+C2))
// We compute it over a uniform sliding window (the original uses a
// Gaussian window; the uniform variant is the common fast approximation
// and preserves all orderings we rely on).
#pragma once

#include "image/image.h"

namespace hebs::quality {

/// Options for the SSIM computation.
struct SsimOptions {
  int block_size = 8;
  int stride = 1;
  double k1 = 0.01;  ///< luminance stabilization constant factor
  double k2 = 0.03;  ///< contrast stabilization constant factor
};

/// Mean SSIM over all windows; images must be equal sized and at least
/// block_size on each side. Result in [-1, 1], 1 iff identical.
double ssim(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b,
            const SsimOptions& opts = {});

/// SSIM over normalized-luminance rasters (dynamic range L = 1).
double ssim(const hebs::image::FloatImage& a,
            const hebs::image::FloatImage& b, const SsimOptions& opts = {});

}  // namespace hebs::quality
