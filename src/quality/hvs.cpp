#include "quality/hvs.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/kernels.h"
#include "util/mathutil.h"
#include "util/parallel.h"
#include "util/pool.h"

namespace hebs::quality {

double lightness(double y) noexcept {
  y = util::clamp01(y);
  // CIE 1976 L*: linear below the (6/29)^3 knee, cube root above.
  constexpr double kKnee = 216.0 / 24389.0;   // (6/29)^3
  constexpr double kSlope = 24389.0 / 27.0;   // (29/3)^3
  const double l =
      y > kKnee ? 116.0 * std::cbrt(y) - 16.0 : kSlope * y;
  return l / 100.0;
}

namespace {

// Separable Gaussian blur on a double raster with clamped borders.
// Row and column passes run through the dispatched blur kernels; the
// kernel contract (taps accumulated in k order, interior/border split
// with identical arithmetic) keeps the raster bit-identical to the
// original nested loops on every backend.
hebs::image::FloatImage gaussian_blur(const hebs::image::FloatImage& in,
                                      double sigma) {
  const int w = in.width();
  const int h = in.height();
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  hebs::util::PoolVector<double> kernel(static_cast<std::size_t>(2 * radius) +
                                        1);
  double norm = 0.0;
  for (int k = -radius; k <= radius; ++k) {
    const double v = std::exp(-(k * k) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(k + radius)] = v;
    norm += v;
  }
  for (auto& v : kernel) v /= norm;

  // Each output row of either pass depends only on the pass's input
  // raster, so both row loops fan across the installed row executor
  // (bit-identical per row regardless of chunking — see parallel.h).
  const auto& kernels = hebs::kernels::active();
  hebs::image::FloatImage tmp(w, h);
  const double* src = in.values().data();
  double* mid = tmp.values().data();
  hebs::util::parallel_rows(h, [&](int begin, int end) {
    for (int y = begin; y < end; ++y) {
      kernels.blur_row_f64(src + static_cast<std::size_t>(y) * w,
                           mid + static_cast<std::size_t>(y) * w, w,
                           kernel.data(), radius);
    }
  });
  hebs::image::FloatImage out(w, h);
  double* dst = out.values().data();
  hebs::util::parallel_rows(h, [&](int begin, int end) {
    for (int y = begin; y < end; ++y) {
      kernels.blur_col_f64(mid, w, h, y, kernel.data(), radius,
                           dst + static_cast<std::size_t>(y) * w);
    }
  });
  return out;
}

}  // namespace

hebs::image::FloatImage hvs_transform(const hebs::image::FloatImage& lum,
                                      const HvsOptions& opts) {
  hebs::image::FloatImage out(lum.width(), lum.height());
  const auto src = lum.values();
  auto dst = out.values();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = opts.lightness_mapping ? lightness(src[i])
                                    : util::clamp01(src[i]);
  }
  if (opts.csf_sigma > 0.0) {
    out = gaussian_blur(out, opts.csf_sigma);
  }
  return out;
}

hebs::image::FloatImage hvs_transform(const hebs::image::GrayImage& img,
                                      const HvsOptions& opts) {
  return hvs_transform(hebs::image::FloatImage::from_gray(img), opts);
}

hebs::image::FloatImage hvs_transform_mapped(
    const hebs::image::GrayImage& img,
    const hebs::transform::FloatLut& levels, const HvsOptions& opts) {
  // Lightness is a pure function of the level's luminance: evaluate it
  // per level, then expand — identical values, 256 evaluations instead
  // of one per pixel.
  const hebs::transform::FloatLut mapped =
      levels.map([&opts](double y) {
        return opts.lightness_mapping ? lightness(y) : util::clamp01(y);
      });
  hebs::image::FloatImage out = mapped.apply(img);
  if (opts.csf_sigma > 0.0) {
    out = gaussian_blur(out, opts.csf_sigma);
  }
  return out;
}

hebs::image::FloatImage hvs_transform_mapped(
    const hebs::image::GrayImage16& img,
    const hebs::transform::FloatLut& levels, const HvsOptions& opts) {
  const hebs::transform::FloatLut mapped =
      levels.map([&opts](double y) {
        return opts.lightness_mapping ? lightness(y) : util::clamp01(y);
      });
  hebs::image::FloatImage out = mapped.apply16(img);
  if (opts.csf_sigma > 0.0) {
    out = gaussian_blur(out, opts.csf_sigma);
  }
  return out;
}

}  // namespace hebs::quality
