// Shared u8 -> f64 widening for the windowed metrics.
//
// A plain cast loop on purpose: the compiler vectorizes the straight
// u8 -> double conversion even at the baseline ISA, which beats any
// table-lookup routing (f64 LUT gathers measured slower than two-load
// scalar in the kernel bench).  Kept next to the kernel layer so the
// decision is recorded where a future gather-capable backend would
// revisit it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hebs::quality {

inline std::vector<double> widen_u8(std::span<const std::uint8_t> pixels) {
  std::vector<double> out(pixels.size());
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    out[i] = static_cast<double>(pixels[i]);
  }
  return out;
}

}  // namespace hebs::quality
