// Pixelwise error metrics (MSE/RMSE/PSNR/MAE) and the saturated-pixel
// count used by the DLS baseline's distortion definition (ref [4]:
// "image distortion ... is evaluated by the percentage of saturated
// pixels").
#pragma once

#include "image/image.h"
#include "transform/transform_fwd.h"

namespace hebs::quality {

/// Mean squared error of pixel values (0..255 scale).
double mse(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b);

/// Root mean squared error of pixel values (0..255 scale).
double rmse(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b);

/// Mean absolute error of pixel values (0..255 scale).
double mae(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b);

/// Peak signal-to-noise ratio in dB (peak = 255). Returns +inf when the
/// images are identical.
double psnr(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b);

/// MSE over normalized-luminance rasters.
double mse(const hebs::image::FloatImage& a, const hebs::image::FloatImage& b);

/// Fraction (0..1) of pixels of `img` that a pixel transformation drives
/// to full saturation (255) or full black (0) even though the source
/// pixel was not already there.  This is the distortion proxy used by the
/// DLS dimming policies of reference [4].
double saturated_fraction(const hebs::image::GrayImage& img,
                          const hebs::transform::Lut& lut);

}  // namespace hebs::quality
