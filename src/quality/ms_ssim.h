// Multi-scale SSIM — the stronger variant of the paper's future-work
// metric family (Wang, Simoncelli & Bovik, 2003).
//
// Single-scale SSIM is viewing-distance dependent; MS-SSIM evaluates
// contrast/structure terms on a dyadic pyramid and combines them with
// the standard per-scale exponents, approximating quality judgments
// across viewing conditions — relevant for handhelds, whose viewing
// distance varies far more than a desktop monitor's.
#pragma once

#include "image/image.h"
#include "quality/ssim.h"

namespace hebs::quality {

/// Options for MS-SSIM.
struct MsSsimOptions {
  /// Number of dyadic scales (the standard uses 5; small images clamp).
  int scales = 5;
  /// Per-scale SSIM window options.
  SsimOptions ssim;
};

/// MS-SSIM score in [-1, 1]; 1 iff the images are identical.  Images
/// must allow at least one scale (>= block_size after the downsampling
/// chain — scales are clamped automatically for small inputs).
double ms_ssim(const hebs::image::GrayImage& a,
               const hebs::image::GrayImage& b,
               const MsSsimOptions& opts = {});

}  // namespace hebs::quality
