#include "quality/contrast_fidelity.h"

#include <cmath>
#include <vector>

#include "quality/window_stats.h"
#include "util/error.h"

namespace hebs::quality {

namespace {

double fidelity_impl(std::span<const double> a, std::span<const double> b,
                     int width, int height,
                     const ContrastFidelityOptions& opts) {
  HEBS_REQUIRE(opts.block_size >= 2, "block size must be >= 2");
  HEBS_REQUIRE(opts.stride >= 1, "stride must be >= 1");
  HEBS_REQUIRE(width >= opts.block_size && height >= opts.block_size,
               "image smaller than the fidelity window");
  const PairStats stats(a, b, width, height);
  double kept = 0.0;
  double total = 0.0;
  for (int y = 0; y + opts.block_size <= height; y += opts.stride) {
    for (int x = 0; x + opts.block_size <= width; x += opts.stride) {
      const WindowMoments m = stats.window(x, y, opts.block_size);
      const double sigma_a = std::sqrt(m.var_a);
      const double sigma_b = std::sqrt(m.var_b);
      kept += std::min(sigma_a, sigma_b);
      total += sigma_a;
    }
  }
  // A perfectly flat original has no contrast to lose.
  return total > 0.0 ? kept / total : 1.0;
}

}  // namespace

double contrast_fidelity(const hebs::image::GrayImage& original,
                         const hebs::image::GrayImage& displayed,
                         const ContrastFidelityOptions& opts) {
  HEBS_REQUIRE(!original.empty() && !displayed.empty(),
               "fidelity of empty image");
  HEBS_REQUIRE(original.width() == displayed.width() &&
                   original.height() == displayed.height(),
               "fidelity needs equal-size images");
  std::vector<double> va(original.size());
  std::vector<double> vb(displayed.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    va[i] = static_cast<double>(original.pixels()[i]);
    vb[i] = static_cast<double>(displayed.pixels()[i]);
  }
  return fidelity_impl(va, vb, original.width(), original.height(), opts);
}

double contrast_fidelity(const hebs::image::FloatImage& original,
                         const hebs::image::FloatImage& displayed,
                         const ContrastFidelityOptions& opts) {
  HEBS_REQUIRE(!original.empty() && !displayed.empty(),
               "fidelity of empty image");
  HEBS_REQUIRE(original.width() == displayed.width() &&
                   original.height() == displayed.height(),
               "fidelity needs equal-size images");
  return fidelity_impl(original.values(), displayed.values(),
                       original.width(), original.height(), opts);
}

double contrast_distortion_percent(const hebs::image::GrayImage& original,
                                   const hebs::image::GrayImage& displayed,
                                   const ContrastFidelityOptions& opts) {
  return (1.0 - contrast_fidelity(original, displayed, opts)) * 100.0;
}

}  // namespace hebs::quality
