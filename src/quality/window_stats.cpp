#include "quality/window_stats.h"

#include "kernels/kernels.h"
#include "util/error.h"

namespace hebs::quality {

// All tables here follow the integral-image recurrence
//   table[y+1][x+1] = table[y][x+1] + (v[y][0] + ... + v[y][x])
// with the running row sum accumulated left to right.  The row step is
// the kernel layer's prefix_row_f64 / window_sums_* primitives, whose
// contract pins exactly that scalar accumulation order, so every table
// is bit-identical to the pre-kernel implementation on every backend.

namespace {

std::size_t table_stride(int width) {
  return static_cast<std::size_t>(width) + 1;
}

std::size_t table_cells(int width, int height) {
  return table_stride(width) * (static_cast<std::size_t>(height) + 1);
}

}  // namespace

IntegralImage::IntegralImage(std::span<const double> values, int width,
                             int height)
    : width_(width), height_(height) {
  HEBS_REQUIRE(width > 0 && height > 0, "integral image needs a raster");
  HEBS_REQUIRE(values.size() ==
                   static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               "raster size mismatch");
  const std::size_t stride = table_stride(width);
  table_.assign(table_cells(width, height), 0.0);
  const auto& kernels = hebs::kernels::active();
  for (int y = 0; y < height; ++y) {
    kernels.prefix_row_f64(
        values.data() + static_cast<std::size_t>(y) * width,
        table_.data() + static_cast<std::size_t>(y) * stride + 1,
        table_.data() + (static_cast<std::size_t>(y) + 1) * stride + 1,
        static_cast<std::size_t>(width));
  }
}

IntegralImage IntegralImage::of_squares(std::span<const double> values,
                                        int width, int height) {
  HEBS_REQUIRE(values.size() == static_cast<std::size_t>(width) *
                                    static_cast<std::size_t>(height),
               "raster size mismatch");
  IntegralImage out(width, height);
  const std::size_t stride = table_stride(width);
  out.table_.assign(table_cells(width, height), 0.0);
  hebs::util::PoolVector<double> scratch(static_cast<std::size_t>(width));
  const auto& kernels = hebs::kernels::active();
  for (int y = 0; y < height; ++y) {
    const double* row = values.data() + static_cast<std::size_t>(y) * width;
    kernels.mul_f64(row, row, scratch.data(), scratch.size());
    kernels.prefix_row_f64(
        scratch.data(),
        out.table_.data() + static_cast<std::size_t>(y) * stride + 1,
        out.table_.data() + (static_cast<std::size_t>(y) + 1) * stride + 1,
        static_cast<std::size_t>(width));
  }
  return out;
}

IntegralImage IntegralImage::of_products(std::span<const double> a,
                                         std::span<const double> b, int width,
                                         int height) {
  HEBS_REQUIRE(a.size() == b.size(), "paired rasters must match");
  HEBS_REQUIRE(a.size() == static_cast<std::size_t>(width) *
                               static_cast<std::size_t>(height),
               "raster size mismatch");
  IntegralImage out(width, height);
  const std::size_t stride = table_stride(width);
  out.table_.assign(table_cells(width, height), 0.0);
  hebs::util::PoolVector<double> scratch(static_cast<std::size_t>(width));
  const auto& kernels = hebs::kernels::active();
  for (int y = 0; y < height; ++y) {
    kernels.mul_f64(a.data() + static_cast<std::size_t>(y) * width,
                    b.data() + static_cast<std::size_t>(y) * width,
                    scratch.data(), scratch.size());
    kernels.prefix_row_f64(
        scratch.data(),
        out.table_.data() + static_cast<std::size_t>(y) * stride + 1,
        out.table_.data() + (static_cast<std::size_t>(y) + 1) * stride + 1,
        static_cast<std::size_t>(width));
  }
  return out;
}

double IntegralImage::rect_sum(int x0, int y0, int x1, int y1) const noexcept {
  const std::size_t stride = static_cast<std::size_t>(width_) + 1;
  const auto at = [this, stride](int x, int y) {
    return table_[static_cast<std::size_t>(y) * stride + x];
  };
  return at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0) + at(x0, y0);
}

ImageStats::ImageStats(std::span<const double> values, int width, int height)
    : sum_(width, height), sum_sq_(width, height) {
  HEBS_REQUIRE(width > 0 && height > 0, "integral image needs a raster");
  HEBS_REQUIRE(values.size() == static_cast<std::size_t>(width) *
                                    static_cast<std::size_t>(height),
               "raster size mismatch");
  const std::size_t stride = table_stride(width);
  sum_.table_.assign(table_cells(width, height), 0.0);
  sum_sq_.table_.assign(table_cells(width, height), 0.0);
  const auto& kernels = hebs::kernels::active();
  for (int y = 0; y < height; ++y) {
    const std::size_t above = static_cast<std::size_t>(y) * stride + 1;
    const std::size_t out = (static_cast<std::size_t>(y) + 1) * stride + 1;
    kernels.window_sums_single_f64(
        values.data() + static_cast<std::size_t>(y) * width,
        static_cast<std::size_t>(width), sum_.table_.data() + above,
        sum_sq_.table_.data() + above, sum_.table_.data() + out,
        sum_sq_.table_.data() + out);
  }
}

namespace {

/// Shared b-side builder for both PairStats constructors: the b, b*b
/// and a*b tables in one fused sweep per row.
void build_pair_tables(std::span<const double> a, std::span<const double> b,
                       int width, int height,
                       hebs::util::PoolVector<double>& table_b,
                       hebs::util::PoolVector<double>& table_bb,
                       hebs::util::PoolVector<double>& table_ab) {
  const std::size_t stride = table_stride(width);
  table_b.assign(table_cells(width, height), 0.0);
  table_bb.assign(table_cells(width, height), 0.0);
  table_ab.assign(table_cells(width, height), 0.0);
  const auto& kernels = hebs::kernels::active();
  for (int y = 0; y < height; ++y) {
    const std::size_t above = static_cast<std::size_t>(y) * stride + 1;
    const std::size_t out = (static_cast<std::size_t>(y) + 1) * stride + 1;
    kernels.window_sums_pair_f64(
        a.data() + static_cast<std::size_t>(y) * width,
        b.data() + static_cast<std::size_t>(y) * width,
        static_cast<std::size_t>(width), table_b.data() + above,
        table_bb.data() + above, table_ab.data() + above,
        table_b.data() + out, table_bb.data() + out, table_ab.data() + out);
  }
}

}  // namespace

PairStats::PairStats(const ImageStats& a_stats, std::span<const double> a,
                     std::span<const double> b, int width, int height)
    : sum_b_(width, height),
      sum_bb_(width, height),
      sum_ab_(width, height),
      sum_a_(&a_stats.sum()),
      sum_aa_(&a_stats.sum_sq()) {
  HEBS_REQUIRE(width > 0 && height > 0, "integral image needs a raster");
  HEBS_REQUIRE(a.size() == b.size(), "paired rasters must match");
  HEBS_REQUIRE(a.size() == static_cast<std::size_t>(width) *
                               static_cast<std::size_t>(height),
               "raster size mismatch");
  HEBS_REQUIRE(a_stats.width() == width && a_stats.height() == height,
               "cached stats size mismatch");
  build_pair_tables(a, b, width, height, sum_b_.table_, sum_bb_.table_,
                    sum_ab_.table_);
}

PairStats::PairStats(std::span<const double> a, std::span<const double> b,
                     int width, int height)
    : own_sum_a_(IntegralImage(a, width, height)),
      own_sum_aa_(IntegralImage::of_squares(a, width, height)),
      sum_b_(width, height),
      sum_bb_(width, height),
      sum_ab_(width, height),
      sum_a_(&*own_sum_a_),
      sum_aa_(&*own_sum_aa_) {
  HEBS_REQUIRE(a.size() == b.size(), "paired rasters must match");
  build_pair_tables(a, b, width, height, sum_b_.table_, sum_bb_.table_,
                    sum_ab_.table_);
}

RefWindowMoments::RefWindowMoments(const ImageStats& a_stats, int block)
    : block_(block),
      wx_(a_stats.width() - block + 1),
      wy_(a_stats.height() - block + 1),
      mean_(static_cast<std::size_t>(wx_) * static_cast<std::size_t>(wy_)),
      var_(static_cast<std::size_t>(wx_) * static_cast<std::size_t>(wy_)) {
  HEBS_REQUIRE(block >= 2 && wx_ > 0 && wy_ > 0,
               "image smaller than the moment window");
  const double n = static_cast<double>(block) * block;
  for (int y = 0; y < wy_; ++y) {
    double* mrow = mean_.data() + static_cast<std::size_t>(y) * wx_;
    double* vrow = var_.data() + static_cast<std::size_t>(y) * wx_;
    for (int x = 0; x < wx_; ++x) {
      // Exactly PairStats::window()'s a-side arithmetic, clamp included.
      const double mean_a =
          a_stats.sum().rect_sum(x, y, x + block - 1, y + block - 1) / n;
      double var_a =
          a_stats.sum_sq().rect_sum(x, y, x + block - 1, y + block - 1) / n -
          mean_a * mean_a;
      if (var_a < 0.0) var_a = 0.0;
      mrow[x] = mean_a;
      vrow[x] = var_a;
    }
  }
}

void PairStats::q_row(int wy, const RefWindowMoments& ref,
                      double* q_out) const noexcept {
  const int block = ref.block();
  const std::size_t stride = table_stride(width());
  const std::size_t top = static_cast<std::size_t>(wy) * stride;
  const std::size_t bot = (static_cast<std::size_t>(wy) + block) * stride;
  hebs::kernels::active().uiqi_q_row_f64(
      ref.mean_row(wy), ref.var_row(wy), sum_b_.table_.data() + top,
      sum_b_.table_.data() + bot, sum_bb_.table_.data() + top,
      sum_bb_.table_.data() + bot, sum_ab_.table_.data() + top,
      sum_ab_.table_.data() + bot, static_cast<std::size_t>(ref.windows_x()),
      block, static_cast<double>(block) * block, q_out);
}

WindowMoments PairStats::window(int x, int y, int block) const noexcept {
  const int x1 = x + block - 1;
  const int y1 = y + block - 1;
  const double n = static_cast<double>(block) * block;
  WindowMoments m;
  m.mean_a = sum_a_->rect_sum(x, y, x1, y1) / n;
  m.mean_b = sum_b_.rect_sum(x, y, x1, y1) / n;
  m.var_a = sum_aa_->rect_sum(x, y, x1, y1) / n - m.mean_a * m.mean_a;
  m.var_b = sum_bb_.rect_sum(x, y, x1, y1) / n - m.mean_b * m.mean_b;
  m.cov_ab = sum_ab_.rect_sum(x, y, x1, y1) / n - m.mean_a * m.mean_b;
  // Clamp tiny negative variances caused by floating-point cancellation.
  if (m.var_a < 0.0) m.var_a = 0.0;
  if (m.var_b < 0.0) m.var_b = 0.0;
  return m;
}

}  // namespace hebs::quality
