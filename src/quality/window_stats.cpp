#include "quality/window_stats.h"

#include "util/error.h"

namespace hebs::quality {

IntegralImage::IntegralImage(std::span<const double> values, int width,
                             int height)
    : width_(width), height_(height) {
  HEBS_REQUIRE(width > 0 && height > 0, "integral image needs a raster");
  HEBS_REQUIRE(values.size() ==
                   static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               "raster size mismatch");
  const std::size_t stride = static_cast<std::size_t>(width) + 1;
  table_.assign(stride * (static_cast<std::size_t>(height) + 1), 0.0);
  for (int y = 0; y < height; ++y) {
    double row = 0.0;
    for (int x = 0; x < width; ++x) {
      row += values[static_cast<std::size_t>(y) * width + x];
      table_[(static_cast<std::size_t>(y) + 1) * stride + x + 1] =
          table_[static_cast<std::size_t>(y) * stride + x + 1] + row;
    }
  }
}

namespace {

/// Shared accumulation skeleton: table cell = above + running row sum of
/// `value(i)` — the same recurrence the span constructor uses, so the
/// derived tables are bit-identical to building from a temporary raster.
template <typename ValueAt>
std::vector<double> accumulate_table(int width, int height, ValueAt&& value) {
  const std::size_t stride = static_cast<std::size_t>(width) + 1;
  std::vector<double> table(stride * (static_cast<std::size_t>(height) + 1),
                            0.0);
  for (int y = 0; y < height; ++y) {
    double row = 0.0;
    for (int x = 0; x < width; ++x) {
      row += value(static_cast<std::size_t>(y) * width + x);
      table[(static_cast<std::size_t>(y) + 1) * stride + x + 1] =
          table[static_cast<std::size_t>(y) * stride + x + 1] + row;
    }
  }
  return table;
}

}  // namespace

IntegralImage IntegralImage::of_squares(std::span<const double> values,
                                        int width, int height) {
  HEBS_REQUIRE(values.size() == static_cast<std::size_t>(width) *
                                    static_cast<std::size_t>(height),
               "raster size mismatch");
  IntegralImage out(width, height);
  out.table_ = accumulate_table(
      width, height, [values](std::size_t i) { return values[i] * values[i]; });
  return out;
}

IntegralImage IntegralImage::of_products(std::span<const double> a,
                                         std::span<const double> b, int width,
                                         int height) {
  HEBS_REQUIRE(a.size() == b.size(), "paired rasters must match");
  HEBS_REQUIRE(a.size() == static_cast<std::size_t>(width) *
                               static_cast<std::size_t>(height),
               "raster size mismatch");
  IntegralImage out(width, height);
  out.table_ = accumulate_table(
      width, height, [a, b](std::size_t i) { return a[i] * b[i]; });
  return out;
}

double IntegralImage::rect_sum(int x0, int y0, int x1, int y1) const noexcept {
  const std::size_t stride = static_cast<std::size_t>(width_) + 1;
  const auto at = [this, stride](int x, int y) {
    return table_[static_cast<std::size_t>(y) * stride + x];
  };
  return at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0) + at(x0, y0);
}

ImageStats::ImageStats(std::span<const double> values, int width, int height)
    : sum_(values, width, height),
      sum_sq_(IntegralImage::of_squares(values, width, height)) {}

PairStats::PairStats(const ImageStats& a_stats, std::span<const double> a,
                     std::span<const double> b, int width, int height)
    : sum_b_(b, width, height),
      sum_bb_(IntegralImage::of_squares(b, width, height)),
      sum_ab_(IntegralImage::of_products(a, b, width, height)),
      sum_a_(&a_stats.sum()),
      sum_aa_(&a_stats.sum_sq()) {
  HEBS_REQUIRE(a_stats.width() == width && a_stats.height() == height,
               "cached stats size mismatch");
}

PairStats::PairStats(std::span<const double> a, std::span<const double> b,
                     int width, int height)
    : own_sum_a_(IntegralImage(a, width, height)),
      own_sum_aa_(IntegralImage::of_squares(a, width, height)),
      sum_b_(b, width, height),
      sum_bb_(IntegralImage::of_squares(b, width, height)),
      sum_ab_(IntegralImage::of_products(a, b, width, height)),
      sum_a_(&*own_sum_a_),
      sum_aa_(&*own_sum_aa_) {}

WindowMoments PairStats::window(int x, int y, int block) const noexcept {
  const int x1 = x + block - 1;
  const int y1 = y + block - 1;
  const double n = static_cast<double>(block) * block;
  WindowMoments m;
  m.mean_a = sum_a_->rect_sum(x, y, x1, y1) / n;
  m.mean_b = sum_b_.rect_sum(x, y, x1, y1) / n;
  m.var_a = sum_aa_->rect_sum(x, y, x1, y1) / n - m.mean_a * m.mean_a;
  m.var_b = sum_bb_.rect_sum(x, y, x1, y1) / n - m.mean_b * m.mean_b;
  m.cov_ab = sum_ab_.rect_sum(x, y, x1, y1) / n - m.mean_a * m.mean_b;
  // Clamp tiny negative variances caused by floating-point cancellation.
  if (m.var_a < 0.0) m.var_a = 0.0;
  if (m.var_b < 0.0) m.var_b = 0.0;
  return m;
}

}  // namespace hebs::quality
