#include "quality/window_stats.h"

#include "util/error.h"

namespace hebs::quality {

IntegralImage::IntegralImage(std::span<const double> values, int width,
                             int height)
    : width_(width), height_(height) {
  HEBS_REQUIRE(width > 0 && height > 0, "integral image needs a raster");
  HEBS_REQUIRE(values.size() ==
                   static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               "raster size mismatch");
  const std::size_t stride = static_cast<std::size_t>(width) + 1;
  table_.assign(stride * (static_cast<std::size_t>(height) + 1), 0.0);
  for (int y = 0; y < height; ++y) {
    double row = 0.0;
    for (int x = 0; x < width; ++x) {
      row += values[static_cast<std::size_t>(y) * width + x];
      table_[(static_cast<std::size_t>(y) + 1) * stride + x + 1] =
          table_[static_cast<std::size_t>(y) * stride + x + 1] + row;
    }
  }
}

double IntegralImage::rect_sum(int x0, int y0, int x1, int y1) const noexcept {
  const std::size_t stride = static_cast<std::size_t>(width_) + 1;
  const auto at = [this, stride](int x, int y) {
    return table_[static_cast<std::size_t>(y) * stride + x];
  };
  return at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0) + at(x0, y0);
}

PairStats::PairStats(std::span<const double> a, std::span<const double> b,
                     int width, int height)
    : sum_a_(a, width, height),
      sum_b_(b, width, height),
      sum_aa_([&a] {
        std::vector<double> sq(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) sq[i] = a[i] * a[i];
        return sq;
      }(), width, height),
      sum_bb_([&b] {
        std::vector<double> sq(b.size());
        for (std::size_t i = 0; i < b.size(); ++i) sq[i] = b[i] * b[i];
        return sq;
      }(), width, height),
      sum_ab_([&a, &b] {
        HEBS_REQUIRE(a.size() == b.size(), "paired rasters must match");
        std::vector<double> prod(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) prod[i] = a[i] * b[i];
        return prod;
      }(), width, height) {}

WindowMoments PairStats::window(int x, int y, int block) const noexcept {
  const int x1 = x + block - 1;
  const int y1 = y + block - 1;
  const double n = static_cast<double>(block) * block;
  WindowMoments m;
  m.mean_a = sum_a_.rect_sum(x, y, x1, y1) / n;
  m.mean_b = sum_b_.rect_sum(x, y, x1, y1) / n;
  m.var_a = sum_aa_.rect_sum(x, y, x1, y1) / n - m.mean_a * m.mean_a;
  m.var_b = sum_bb_.rect_sum(x, y, x1, y1) / n - m.mean_b * m.mean_b;
  m.cov_ab = sum_ab_.rect_sum(x, y, x1, y1) / n - m.mean_a * m.mean_b;
  // Clamp tiny negative variances caused by floating-point cancellation.
  if (m.var_a < 0.0) m.var_a = 0.0;
  if (m.var_b < 0.0) m.var_b = 0.0;
  return m;
}

}  // namespace hebs::quality
