#include "quality/metrics.h"

#include <cmath>
#include <limits>

#include "transform/lut.h"
#include "util/error.h"

namespace hebs::quality {

namespace {
void require_compatible(const hebs::image::GrayImage& a,
                        const hebs::image::GrayImage& b) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "metric of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "metric needs equal-size images");
}
}  // namespace

double mse(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b) {
  require_compatible(a, b);
  double acc = 0.0;
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(pa.size());
}

double rmse(const hebs::image::GrayImage& a,
            const hebs::image::GrayImage& b) {
  return std::sqrt(mse(a, b));
}

double mae(const hebs::image::GrayImage& a, const hebs::image::GrayImage& b) {
  require_compatible(a, b);
  double acc = 0.0;
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    acc += std::abs(static_cast<double>(pa[i]) - static_cast<double>(pb[i]));
  }
  return acc / static_cast<double>(pa.size());
}

double psnr(const hebs::image::GrayImage& a,
            const hebs::image::GrayImage& b) {
  const double m = mse(a, b);
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

double mse(const hebs::image::FloatImage& a,
           const hebs::image::FloatImage& b) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "metric of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "metric needs equal-size images");
  double acc = 0.0;
  const auto va = a.values();
  const auto vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    const double d = va[i] - vb[i];
    acc += d * d;
  }
  return acc / static_cast<double>(va.size());
}

double saturated_fraction(const hebs::image::GrayImage& img,
                          const hebs::transform::Lut& lut) {
  HEBS_REQUIRE(!img.empty(), "saturated_fraction of empty image");
  std::size_t saturated = 0;
  for (std::uint8_t p : img.pixels()) {
    const std::uint8_t mapped = lut[p];
    const bool clipped_high = mapped == 255 && p != 255;
    const bool clipped_low = mapped == 0 && p != 0;
    if (clipped_high || clipped_low) ++saturated;
  }
  return static_cast<double>(saturated) /
         static_cast<double>(img.size());
}

}  // namespace hebs::quality
