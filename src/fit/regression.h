// Regression and curve-fitting utilities.
//
// The paper leans on MATLAB's curve-fitting toolbox in three places:
// the two-piece linear CCFL power model (Fig. 6a), the quadratic TFT
// panel model (Fig. 6b), and the "entire dataset" / "worst-case" fits of
// the distortion characteristic curve (Fig. 7).  This module provides
// the equivalent numerics: ordinary least squares through a dense normal-
// equation solve, a breakpoint-searching two-piece linear fit, and upper-
// envelope fitting.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace hebs::fit {

/// A polynomial c0 + c1 x + c2 x^2 + ...
struct Poly {
  std::vector<double> coeffs;

  /// Evaluates the polynomial with Horner's scheme.
  double operator()(double x) const noexcept;

  /// Degree (coeffs.size() - 1); -1 for an empty polynomial.
  int degree() const noexcept { return static_cast<int>(coeffs.size()) - 1; }

  /// First derivative polynomial.
  Poly derivative() const;
};

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting.  `a` is row-major n x n.  Throws InvalidArgument on a
/// (numerically) singular matrix.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b);

/// Least-squares polynomial fit of the given degree (normal equations).
/// Requires xs.size() == ys.size() > degree.
Poly polyfit(std::span<const double> xs, std::span<const double> ys,
             int degree);

/// Result of a straight-line fit y = slope x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const noexcept {
    return slope * x + intercept;
  }
};

/// Ordinary least squares line fit. Requires at least two points.
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// A continuous two-piece linear model with a free breakpoint:
///   y = lo(x)  for x <= breakpoint
///   y = hi(x)  for x >  breakpoint
/// This is the form of the paper's CCFL power model (Eq. 11), where the
/// breakpoint is the saturation threshold C_s.
struct TwoPieceLinear {
  double breakpoint = 0.0;
  LineFit lo;
  LineFit hi;
  double sse = 0.0;  ///< total squared error of the fit

  double operator()(double x) const noexcept {
    return x <= breakpoint ? lo(x) : hi(x);
  }
};

/// Fits a two-piece linear model by exhaustively trying every admissible
/// breakpoint between samples (each piece keeps >= `min_points` samples)
/// and keeping the split with the smallest total squared error.
/// The xs must be sorted ascending.
TwoPieceLinear fit_two_piece(std::span<const double> xs,
                             std::span<const double> ys, int min_points = 3);

/// Coefficient of determination of `model` against the samples.
double r_squared(std::span<const double> xs, std::span<const double> ys,
                 const std::function<double(double)>& model);

/// Fits a polynomial to the *upper envelope* of a scatter: samples are
/// bucketed by x into `buckets` equal-width bins, the max y of each
/// non-empty bin is taken, and a polynomial is fitted through those
/// maxima.  This reproduces the paper's "worst-case fit" of Fig. 7.
Poly fit_upper_envelope(std::span<const double> xs,
                        std::span<const double> ys, int degree, int buckets);

/// Finds x in [lo, hi] with f(x) = target by bisection, assuming f is
/// monotone on the interval (either direction).  Returns the clamped
/// endpoint when the target lies outside f's range on [lo, hi].
double invert_monotone(const std::function<double(double)>& f, double target,
                       double lo, double hi, int iterations = 80);

}  // namespace hebs::fit
