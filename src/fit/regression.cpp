#include "fit/regression.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::fit {

double Poly::operator()(double x) const noexcept {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

Poly Poly::derivative() const {
  if (coeffs.size() <= 1) return Poly{{0.0}};
  Poly d;
  d.coeffs.resize(coeffs.size() - 1);
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    d.coeffs[i - 1] = coeffs[i] * static_cast<double>(i);
  }
  return d;
}

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  HEBS_REQUIRE(a.size() == n * n, "matrix must be n x n");
  auto at = [&a, n](std::size_t r, std::size_t c) -> double& {
    return a[r * n + c];
  };
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    }
    if (std::abs(at(pivot, col)) < 1e-12) {
      throw util::InvalidArgument("singular matrix in linear solve");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = at(r, col) / at(col, col);
      for (std::size_t c = col; c < n; ++c) at(r, c) -= factor * at(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= at(r, c) * x[c];
    x[r] = acc / at(r, r);
  }
  return x;
}

Poly polyfit(std::span<const double> xs, std::span<const double> ys,
             int degree) {
  HEBS_REQUIRE(degree >= 0, "degree must be non-negative");
  HEBS_REQUIRE(xs.size() == ys.size(), "polyfit needs equal-size spans");
  HEBS_REQUIRE(xs.size() > static_cast<std::size_t>(degree),
               "polyfit needs more samples than the degree");
  const std::size_t m = static_cast<std::size_t>(degree) + 1;
  // Normal equations: (X^T X) c = X^T y with X the Vandermonde matrix.
  std::vector<double> xtx(m * m, 0.0);
  std::vector<double> xty(m, 0.0);
  // Power sums S_k = sum x^k for k = 0 .. 2*degree.
  std::vector<double> power_sums(2 * m - 1, 0.0);
  for (double x : xs) {
    double p = 1.0;
    for (auto& s : power_sums) {
      s += p;
      p *= x;
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) xtx[r * m + c] = power_sums[r + c];
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double p = 1.0;
    for (std::size_t r = 0; r < m; ++r) {
      xty[r] += p * ys[i];
      p *= xs[i];
    }
  }
  Poly out;
  out.coeffs = solve_linear_system(std::move(xtx), std::move(xty));
  return out;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  HEBS_REQUIRE(xs.size() == ys.size(), "fit_line needs equal-size spans");
  HEBS_REQUIRE(xs.size() >= 2, "fit_line needs at least two points");
  const double mx = util::mean(xs);
  const double my = util::mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  LineFit f;
  if (sxx < 1e-15) {
    // Vertical stack of points: fall back to a flat line at the mean.
    f.slope = 0.0;
    f.intercept = my;
  } else {
    f.slope = sxy / sxx;
    f.intercept = my - f.slope * mx;
  }
  f.r_squared = r_squared(xs, ys, [&f](double x) { return f(x); });
  return f;
}

TwoPieceLinear fit_two_piece(std::span<const double> xs,
                             std::span<const double> ys, int min_points) {
  HEBS_REQUIRE(xs.size() == ys.size(), "fit_two_piece needs equal sizes");
  HEBS_REQUIRE(min_points >= 2, "each piece needs at least two points");
  HEBS_REQUIRE(xs.size() >= 2 * static_cast<std::size_t>(min_points),
               "not enough samples for two pieces");
  for (std::size_t i = 1; i < xs.size(); ++i) {
    HEBS_REQUIRE(xs[i] >= xs[i - 1], "xs must be sorted ascending");
  }

  auto piece_sse = [](std::span<const double> px, std::span<const double> py,
                      const LineFit& f) {
    double acc = 0.0;
    for (std::size_t i = 0; i < px.size(); ++i) {
      const double d = py[i] - f(px[i]);
      acc += d * d;
    }
    return acc;
  };

  TwoPieceLinear best;
  best.sse = std::numeric_limits<double>::infinity();
  const auto n = xs.size();
  for (std::size_t split = static_cast<std::size_t>(min_points);
       split + static_cast<std::size_t>(min_points) <= n; ++split) {
    const auto lx = xs.subspan(0, split);
    const auto ly = ys.subspan(0, split);
    const auto hx = xs.subspan(split);
    const auto hy = ys.subspan(split);
    const LineFit lo = fit_line(lx, ly);
    const LineFit hi = fit_line(hx, hy);
    const double sse = piece_sse(lx, ly, lo) + piece_sse(hx, hy, hi);
    if (sse < best.sse) {
      best.lo = lo;
      best.hi = hi;
      best.sse = sse;
      // Continuity point of the two lines if they intersect inside the
      // gap, otherwise the midpoint between the bordering samples.
      const double denom = lo.slope - hi.slope;
      const double gap_lo = xs[split - 1];
      const double gap_hi = xs[split];
      double bp = (gap_lo + gap_hi) / 2.0;
      if (std::abs(denom) > 1e-12) {
        const double ix = (hi.intercept - lo.intercept) / denom;
        if (ix >= gap_lo && ix <= gap_hi) bp = ix;
      }
      best.breakpoint = bp;
    }
  }
  return best;
}

double r_squared(std::span<const double> xs, std::span<const double> ys,
                 const std::function<double(double)>& model) {
  HEBS_REQUIRE(xs.size() == ys.size(), "r_squared needs equal sizes");
  HEBS_REQUIRE(!xs.empty(), "r_squared needs samples");
  const double my = util::mean(ys);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - model(xs[i]);
    ss_res += e * e;
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  if (ss_tot < 1e-15) return ss_res < 1e-15 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Poly fit_upper_envelope(std::span<const double> xs,
                        std::span<const double> ys, int degree, int buckets) {
  HEBS_REQUIRE(xs.size() == ys.size(), "envelope fit needs equal sizes");
  HEBS_REQUIRE(buckets >= degree + 1, "need more buckets than coefficients");
  HEBS_REQUIRE(!xs.empty(), "envelope fit needs samples");
  const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double width = std::max(hi - lo, 1e-12);

  std::vector<double> bucket_x(static_cast<std::size_t>(buckets), 0.0);
  std::vector<double> bucket_max(static_cast<std::size_t>(buckets),
                                 -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    auto b = static_cast<std::size_t>((xs[i] - lo) / width *
                                      static_cast<double>(buckets));
    if (b >= static_cast<std::size_t>(buckets)) {
      b = static_cast<std::size_t>(buckets) - 1;
    }
    if (ys[i] > bucket_max[b]) {
      bucket_max[b] = ys[i];
      bucket_x[b] = xs[i];
    }
  }
  std::vector<double> ex;
  std::vector<double> ey;
  for (std::size_t b = 0; b < static_cast<std::size_t>(buckets); ++b) {
    if (bucket_max[b] > -std::numeric_limits<double>::infinity()) {
      ex.push_back(bucket_x[b]);
      ey.push_back(bucket_max[b]);
    }
  }
  HEBS_REQUIRE(ex.size() > static_cast<std::size_t>(degree),
               "too few populated buckets for the envelope degree");
  return polyfit(ex, ey, degree);
}

double invert_monotone(const std::function<double(double)>& f, double target,
                       double lo, double hi, int iterations) {
  HEBS_REQUIRE(lo <= hi, "invalid bracket");
  double flo = f(lo);
  double fhi = f(hi);
  const bool increasing = fhi >= flo;
  // Clamp when the target is outside the attainable range.
  if (increasing) {
    if (target <= flo) return lo;
    if (target >= fhi) return hi;
  } else {
    if (target >= flo) return lo;
    if (target <= fhi) return hi;
  }
  double a = lo;
  double b = hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (a + b) / 2.0;
    const double fm = f(mid);
    const bool go_right = increasing ? (fm < target) : (fm > target);
    if (go_right) {
      a = mid;
    } else {
      b = mid;
    }
  }
  return (a + b) / 2.0;
}

}  // namespace hebs::fit
