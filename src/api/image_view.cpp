#include "hebs/image_view.h"

#include <cstdint>
#include <cstring>
#include <string>

#include "api/view_convert.h"
#include "kernels/kernels.h"
#include "util/error.h"

namespace hebs {

Status ImageView::validate() const {
  if (width_ < 0 || height_ < 0) {
    return Status(StatusCode::kInvalidImage,
                  "image dimensions must be non-negative (got " +
                      std::to_string(width_) + "x" + std::to_string(height_) +
                      ")");
  }
  if (empty()) {
    return Status(StatusCode::kInvalidImage, "image view is empty");
  }
  if (data_ == nullptr) {
    return Status(StatusCode::kInvalidImage,
                  "image view has null data for non-zero dimensions");
  }
  // Overflow guards: everything downstream addresses pixels as
  // y * stride_bytes + x * bpp in ptrdiff_t, so a view whose packed row
  // or total extent cannot be represented must be rejected here rather
  // than proceed into signed-overflow UB.
  const int bpp = bytes_per_pixel(format_);
  if (width_ > static_cast<std::ptrdiff_t>(PTRDIFF_MAX) / bpp) {
    return Status(StatusCode::kInvalidImage,
                  "width " + std::to_string(width_) + " x " +
                      std::to_string(bpp) +
                      " bytes/pixel overflows the addressable row size");
  }
  const std::ptrdiff_t packed = static_cast<std::ptrdiff_t>(width_) * bpp;
  if (stride_bytes_ < packed) {
    return Status(StatusCode::kInvalidStride,
                  "stride " + std::to_string(stride_bytes_) +
                      " is smaller than one packed row of " +
                      std::to_string(packed) + " bytes");
  }
  if (stride_bytes_ > PTRDIFF_MAX / static_cast<std::ptrdiff_t>(height_)) {
    return Status(StatusCode::kInvalidStride,
                  "stride " + std::to_string(stride_bytes_) + " x height " +
                      std::to_string(height_) +
                      " overflows the addressable image size");
  }
  return Status();
}

}  // namespace hebs

namespace hebs::api {

hebs::image::GrayImage materialize_gray(const ImageView& view) {
  hebs::image::GrayImage out(view.width(), view.height());
  const int w = view.width();
  if (view.format() == PixelFormat::kGray8) {
    for (int y = 0; y < view.height(); ++y) {
      std::memcpy(&out(0, y), view.row(y), static_cast<std::size_t>(w));
    }
    return out;
  }
  // BT.601 luma through the dispatched kernel — the same kernel
  // image::RgbImage::to_luma runs, so the two ingestion paths are
  // bit-identical.  Rows are packed RGB8 internally whatever the view
  // stride, so each row is one kernel call.
  const auto& kernels = hebs::kernels::active();
  for (int y = 0; y < view.height(); ++y) {
    kernels.luma_bt601_rgb8(view.row(y), static_cast<std::size_t>(w),
                            &out(0, y));
  }
  return out;
}

hebs::image::GrayImage16 materialize_gray16(const ImageView& view,
                                            int levels) {
  hebs::image::GrayImage16 out(view.width(), view.height(), levels);
  const std::size_t row_bytes = static_cast<std::size_t>(view.width()) * 2;
  auto dst = out.pixels();
  for (int y = 0; y < view.height(); ++y) {
    // memcpy per row: the view's rows may be strided or unaligned; the
    // owned raster is packed native-order uint16.
    std::memcpy(dst.data() + static_cast<std::size_t>(y) * view.width(),
                view.row(y), row_bytes);
  }
  const std::uint16_t max_sample =
      static_cast<std::uint16_t>(out.max_pixel());
  for (std::uint16_t v : out.pixels()) {
    HEBS_REQUIRE(v <= max_sample,
                 "gray16 sample exceeds the session's bit depth");
  }
  return out;
}

hebs::image::RgbImage materialize_rgb(const ImageView& view) {
  hebs::image::RgbImage out(view.width(), view.height());
  const std::size_t row_bytes = static_cast<std::size_t>(view.width()) * 3;
  auto dst = out.data();
  for (int y = 0; y < view.height(); ++y) {
    std::memcpy(dst.data() + static_cast<std::size_t>(y) * row_bytes,
                view.row(y), row_bytes);
  }
  return out;
}

}  // namespace hebs::api
