#include "hebs/image_view.h"

#include <cmath>
#include <cstring>
#include <string>

#include "api/view_convert.h"
#include "util/mathutil.h"

namespace hebs {

Status ImageView::validate() const {
  if (width_ < 0 || height_ < 0) {
    return Status(StatusCode::kInvalidImage,
                  "image dimensions must be non-negative (got " +
                      std::to_string(width_) + "x" + std::to_string(height_) +
                      ")");
  }
  if (empty()) {
    return Status(StatusCode::kInvalidImage, "image view is empty");
  }
  if (data_ == nullptr) {
    return Status(StatusCode::kInvalidImage,
                  "image view has null data for non-zero dimensions");
  }
  const std::ptrdiff_t packed =
      static_cast<std::ptrdiff_t>(width_) * bytes_per_pixel(format_);
  if (stride_bytes_ < packed) {
    return Status(StatusCode::kInvalidStride,
                  "stride " + std::to_string(stride_bytes_) +
                      " is smaller than one packed row of " +
                      std::to_string(packed) + " bytes");
  }
  return Status();
}

}  // namespace hebs

namespace hebs::api {

hebs::image::GrayImage materialize_gray(const ImageView& view) {
  hebs::image::GrayImage out(view.width(), view.height());
  const int w = view.width();
  if (view.format() == PixelFormat::kGray8) {
    for (int y = 0; y < view.height(); ++y) {
      std::memcpy(&out(0, y), view.row(y), static_cast<std::size_t>(w));
    }
    return out;
  }
  // BT.601 luma, same arithmetic as image::RgbImage::to_luma so the
  // two ingestion paths are bit-identical.
  for (int y = 0; y < view.height(); ++y) {
    const std::uint8_t* row = view.row(y);
    for (int x = 0; x < w; ++x) {
      const std::uint8_t r = row[3 * x + 0];
      const std::uint8_t g = row[3 * x + 1];
      const std::uint8_t b = row[3 * x + 2];
      const double luma = 0.299 * r + 0.587 * g + 0.114 * b;
      out(x, y) = static_cast<std::uint8_t>(
          util::clamp(std::round(luma), 0.0, 255.0));
    }
  }
  return out;
}

}  // namespace hebs::api
