#include "hebs/config.h"

#include <string>

#include "image/image.h"
#include "image/pixel_traits.h"

namespace hebs {

namespace {

Status invalid(const std::string& field, const std::string& domain,
               const std::string& got) {
  return Status(StatusCode::kInvalidOption,
                field + " must be " + domain + " (got " + got + ")");
}

}  // namespace

Status SessionConfig::validate() const {
  // Each check mirrors the domain the internal pipeline enforces with
  // HEBS_REQUIRE, surfaced as a typed Status before any work starts.
  if (policy_.empty()) {
    return invalid("policy", "a registered policy name", "\"\"");
  }
  if (metric_.empty()) {
    return invalid("metric", "a registered metric name", "\"\"");
  }
  if (color_mode_ != "shared-curve" && color_mode_ != "luma-ratio") {
    return invalid("color_mode", "\"shared-curve\" or \"luma-ratio\"",
                   "\"" + color_mode_ + "\"");
  }
  if (!hebs::image::supported_bit_depth(bit_depth())) {
    // Unsupported depths get their own code so callers can distinguish
    // "this build cannot decide that lattice" from an ordinary typo.
    return Status(StatusCode::kUnknownDepth,
                  "bit_depth must be 8, 10 or 16 (got " +
                      std::to_string(bit_depth()) + ")");
  }
  if (segments_ < 1) {
    return invalid("segments", ">= 1", std::to_string(segments_));
  }
  if (g_min_floor_ < 0 || g_min_floor_ >= hebs::image::kMaxPixel) {
    return invalid("g_min_floor", "in [0, 254]", std::to_string(g_min_floor_));
  }
  if (min_range_ < 2 || min_range_ > hebs::image::kMaxPixel) {
    return invalid("min_range", "in [2, 255]", std::to_string(min_range_));
  }
  if (!(min_beta_ > 0.0) || min_beta_ > 1.0) {
    return invalid("min_beta", "in (0, 1]", std::to_string(min_beta_));
  }
  if (equalization_strength_ > 1.0) {
    return invalid("equalization_strength", "<= 1 (or negative for adaptive)",
                   std::to_string(equalization_strength_));
  }
  if (threads_ < 0) {
    return invalid("threads", ">= 0 (0 = hardware concurrency)",
                   std::to_string(threads_));
  }
  if (pool_max_mb_ < 0) {
    return invalid("pool_max_mb", ">= 0 (0 = unlimited)",
                   std::to_string(pool_max_mb_));
  }
  if (frame_deadline_us_ < 0) {
    return invalid("frame_deadline_us", ">= 0 (0 = no deadline)",
                   std::to_string(frame_deadline_us_));
  }
  // The fault-spec grammar is validated at Session::create (where a
  // violation can name the offending clause without this header pulling
  // in the parser); the field itself has no domain to check here.
  if (characterization_size_ < 16) {
    return invalid("characterization_size", ">= 16",
                   std::to_string(characterization_size_));
  }
  if (!(max_beta_step_ > 0.0) || max_beta_step_ > 1.0) {
    return invalid("max_beta_step", "in (0, 1]",
                   std::to_string(max_beta_step_));
  }
  if (!(ema_alpha_ > 0.0) || ema_alpha_ > 1.0) {
    return invalid("ema_alpha", "in (0, 1]", std::to_string(ema_alpha_));
  }
  if (scene_cut_threshold_ < 0.0 || scene_cut_threshold_ > 2.0) {
    return invalid("scene_cut_threshold", "in [0, 2]",
                   std::to_string(scene_cut_threshold_));
  }
  return Status();
}

}  // namespace hebs
