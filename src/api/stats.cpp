#include "hebs/stats.h"

#include <cstdio>

#include "obs/counters.h"

namespace hebs {

namespace {

void append_line(std::string& out, const char* name, std::uint64_t value) {
  char line[96];
  std::snprintf(line, sizeof(line), "%s %llu\n", name,
                static_cast<unsigned long long>(value));
  out += line;
}

}  // namespace

std::string SessionStats::to_text() const {
  using obs::Counter;
  using obs::counter_name;
  std::string out;
  out.reserve(1024);
  // Same series names as the process-global registry dump, so a scraper
  // needs one name catalog whether it reads Session::stats() or the
  // whole-process counters.
  append_line(out, counter_name(Counter::kFramesDecided), frames_decided);
  append_line(out, counter_name(Counter::kTemporalFrames), temporal_frames);
  append_line(out, counter_name(Counter::kTemporalByteIdentical),
              reuse_byte_identical);
  append_line(out, counter_name(Counter::kTemporalDeltaRefresh),
              reuse_delta_refresh);
  append_line(out, counter_name(Counter::kTemporalCold), reuse_cold);
  append_line(out, counter_name(Counter::kTemporalWarmVerified),
              warm_verified);
  append_line(out, counter_name(Counter::kRangeProbes), range_probes);
  append_line(out, counter_name(Counter::kBetaProbes), beta_probes);
  append_line(out, counter_name(Counter::kEvalMemoHit), eval_memo_hits);
  append_line(out, counter_name(Counter::kEvalMemoMiss), eval_memo_misses);
  append_line(out, counter_name(Counter::kAtRangeHit), range_memo_hits);
  append_line(out, counter_name(Counter::kAtRangeMiss), range_memo_misses);
  append_line(out, counter_name(Counter::kPoolRecycled), pool_recycled);
  append_line(out, counter_name(Counter::kPoolFresh), pool_fresh);
  append_line(out, counter_name(Counter::kPoolBytesOutstanding),
              pool_bytes_outstanding);
  append_line(out, counter_name(Counter::kParallelForCalls),
              parallel_for_calls);
  append_line(out, counter_name(Counter::kParallelForItems),
              parallel_for_items);
  append_line(out, counter_name(Counter::kParallelForQueued),
              parallel_for_queued);
  append_line(out, counter_name(Counter::kDispatchScalar), dispatch_scalar);
  append_line(out, counter_name(Counter::kDispatchSse42), dispatch_sse42);
  append_line(out, counter_name(Counter::kDispatchAvx2), dispatch_avx2);
  append_line(out, counter_name(Counter::kDispatchNeon), dispatch_neon);
  append_line(out, counter_name(Counter::kFramesDegraded), frames_degraded);
  append_line(out, counter_name(Counter::kDeadlineMiss), deadline_misses);
  append_line(out, counter_name(Counter::kPoolHeapFallback),
              pool_heap_fallbacks);
  append_line(out, counter_name(Counter::kFaultPoolAlloc), fault_pool_alloc);
  append_line(out, counter_name(Counter::kFaultWorkerTask), fault_worker_task);
  append_line(out, counter_name(Counter::kFaultFrameCorrupt),
              fault_frame_corrupt);
  append_line(out, counter_name(Counter::kFaultCurveIo), fault_curve_io);
  append_line(out, counter_name(Counter::kFaultTraceIo), fault_trace_io);
  append_line(out, counter_name(Counter::kFaultStageLatency),
              fault_stage_latency);
  return out;
}

}  // namespace hebs
