#include "hebs/session.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/registry_internal.h"
#include "api/view_convert.h"
#include "baseline/cbcs.h"
#include "baseline/dls.h"
#include "core/color.h"
#include "core/distortion_curve.h"
#include "core/hebs.h"
#include "core/video.h"
#include "image/synthetic.h"
#include "kernels/kernels.h"
#include "image/pixel_traits.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "pipeline/bbhe.h"
#include "pipeline/engine.h"
#include "pipeline/stages.h"
#include "power/lcd_power.h"
#include "util/error.h"
#include "util/faultpoint.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hebs {

namespace {

using hebs::api::MetricInfo;
using hebs::api::PolicyInfo;
using hebs::api::PolicyKind;

std::vector<CurvePoint> to_api_points(const hebs::transform::PwlCurve& curve) {
  std::vector<CurvePoint> out;
  out.reserve(curve.points().size());
  for (const auto& p : curve.points()) out.push_back({p.x, p.y});
  return out;
}

OwnedImage to_owned(const hebs::image::GrayImage& img) {
  const auto span = img.pixels();
  return OwnedImage(img.width(), img.height(),
                    std::vector<std::uint8_t>(span.begin(), span.end()));
}

OwnedRgbImage to_owned(const hebs::image::RgbImage& img) {
  const auto span = img.data();
  return OwnedRgbImage(img.width(), img.height(),
                       std::vector<std::uint8_t>(span.begin(), span.end()));
}

OwnedImage16 to_owned(const hebs::image::GrayImage16& img) {
  const auto span = img.pixels();
  return OwnedImage16(img.width(), img.height(), img.levels(),
                      std::vector<std::uint16_t>(span.begin(), span.end()));
}

/// The operating point a FrameResult describes: its deployed curve Λ
/// and β.  Reconstructing from the result's own points keeps the color
/// stage a pure post-decision consumer of the stable result type.
core::OperatingPoint point_of(const FrameResult& r) {
  std::vector<hebs::transform::CurvePoint> pts;
  pts.reserve(r.lambda.size());
  for (const CurvePoint& p : r.lambda) pts.push_back({p.x, p.y});
  return {hebs::transform::PwlCurve(std::move(pts)), r.beta};
}

void fill_color(const hebs::image::RgbImage& displayed, double hue_error,
                FrameResult& out) {
  out.displayed_rgb = to_owned(displayed);
  out.hue_error = hue_error;
}

Status require_rgb8(const ImageView& view, const char* what) {
  if (Status s = view.validate(); !s.ok()) return s;
  if (view.format() != PixelFormat::kRgb8) {
    return Status(StatusCode::kInvalidOption,
                  std::string(what) + " requires an interleaved rgb8 view "
                                      "(got " +
                      (view.format() == PixelFormat::kGray16 ? "gray16"
                                                             : "gray8") +
                      ")");
  }
  return Status();
}

PowerReport to_report(const hebs::power::PowerBreakdown& p) {
  return {p.ccfl_watts, p.panel_watts};
}

void fill_evaluation(const core::EvaluatedPoint& eval, FrameResult& out) {
  out.beta = eval.point.beta;
  out.distortion_percent = eval.distortion_percent;
  out.saving_percent = eval.saving_percent;
  out.power = to_report(eval.power);
  out.reference_power = to_report(eval.reference_power);
  // Exactly one of the displayed rasters is populated, matching the
  // evaluation's depth (transformed16 is set iff the frame was deep).
  if (!eval.transformed16.empty()) {
    out.displayed16 = to_owned(eval.transformed16);
  } else {
    out.displayed = to_owned(eval.transformed);
  }
}

FrameResult to_frame_result(const core::HebsResult& r) {
  FrameResult out;
  fill_evaluation(r.evaluation, out);
  out.g_min = r.target.g_min;
  out.g_max = r.target.g_max;
  out.lambda = to_api_points(r.lambda);
  out.phi = to_api_points(r.phi);
  out.plc_mse = r.plc_mse;
  return out;
}

/// Baseline policies have no GHE/PLC stages: the result is the chosen
/// operating point's transform over the full grayscale.
FrameResult to_frame_result(const core::EvaluatedPoint& eval) {
  FrameResult out;
  fill_evaluation(eval, out);
  out.lambda = to_api_points(eval.point.luminance_transform);
  return out;
}

FrameResult to_frame_result(const core::FrameDecision& d) {
  FrameResult out;
  fill_evaluation(d.evaluation, out);
  out.lambda = to_api_points(d.point.luminance_transform);
  return out;
}

Status check_budget(double d_max_percent) {
  if (!(d_max_percent >= 0.0) || d_max_percent > 100.0) {
    return Status(StatusCode::kInvalidBudget,
                  "d_max_percent must be in [0, 100] (got " +
                      std::to_string(d_max_percent) + ")");
  }
  return Status();
}

/// Anything the internal layers still throw after facade-side
/// validation is a library bug, surfaced as kInternal rather than a
/// crash; I/O failures keep their own code.  `where` names the entry
/// point (and, where known, the frame) so no kInternal ever reads as a
/// bare "unexpected failure" — the message always says which call and
/// which stage produced it.
Status from_exception(const std::exception& e, const std::string& where) {
  const StatusCode code =
      dynamic_cast<const hebs::util::IoError*>(&e) != nullptr
          ? StatusCode::kIoError
          : StatusCode::kInternal;
  return Status(code, where + ": " + e.what());
}

/// The typed per-frame status of a containment record (engine
/// batch/stream paths): kOk for a computed frame, else the cause —
/// deadline, I/O, or internal — with the engine's stage-and-frame
/// message.
Status fault_status(const pipeline::FrameFault& f) {
  if (!f.degraded) return Status();
  if (f.deadline) return Status(StatusCode::kDeadlineExceeded, f.message);
  if (f.io) return Status(StatusCode::kIoError, f.message);
  return Status(StatusCode::kInternal, f.message);
}

/// Copies one containment record onto the stable result type.
void fill_fault(const pipeline::FrameFault& f, FrameResult& out) {
  out.degraded = f.degraded;
  out.status = fault_status(f);
}

/// The trace destination this config asks for: the explicit option, or
/// the HEBS_TRACE environment variable as the fallback.
std::string resolve_trace_path(const SessionConfig& cfg) {
  if (!cfg.trace_path().empty()) return cfg.trace_path();
  const char* env = std::getenv("HEBS_TRACE");
  return env != nullptr ? std::string(env) : std::string();
}

/// The fault-injection spec this config asks for: the explicit option,
/// or the HEBS_FAULT environment variable as the fallback.  Empty =
/// keep the current process-global arming.
std::string resolve_fault_spec(const SessionConfig& cfg) {
  if (!cfg.fault_spec().empty()) return cfg.fault_spec();
  const char* env = std::getenv("HEBS_FAULT");
  return env != nullptr ? std::string(env) : std::string();
}

/// Per-frame counter deltas + wall time onto the result (the
/// single-frame path's breakdown; see hebs/frame.h).
void fill_breakdown(const obs::CounterSnapshot& before, double decide_ms,
                    FrameResult& out) {
  const auto d = obs::snapshot_counters().delta_since(before);
  out.breakdown.collected = true;
  out.breakdown.decide_ms = decide_ms;
  out.breakdown.range_probes = d[obs::Counter::kRangeProbes];
  out.breakdown.beta_probes = d[obs::Counter::kBetaProbes];
  out.breakdown.eval_memo_hits = d[obs::Counter::kEvalMemoHit];
  out.breakdown.eval_memo_misses = d[obs::Counter::kEvalMemoMiss];
  out.breakdown.range_memo_hits = d[obs::Counter::kAtRangeHit];
  out.breakdown.range_memo_misses = d[obs::Counter::kAtRangeMiss];
}

}  // namespace

struct Session::Impl {
  SessionConfig cfg;
  const PolicyInfo* policy = nullptr;
  const MetricInfo* metric = nullptr;
  core::ColorMode color_mode = core::ColorMode::kSharedCurve;
  core::HebsOptions hebs_opts;
  hebs::power::LcdSubsystemPower model =
      hebs::power::LcdSubsystemPower::lp064v1();
  pipeline::PipelineEngine engine;
  /// Guards the lazy curve characterization (the one mutable Session
  /// field a concurrent caller could race on).  Once set the curve is
  /// immutable for the session lifetime, so the reference ensure_curve
  /// returns stays valid to read outside the lock.
  util::Mutex curve_mu;
  std::optional<core::DistortionCurve> curve HEBS_GUARDED_BY(curve_mu);
  /// Counter registry state at create time: Session::stats() reports
  /// the delta against this baseline.
  obs::CounterSnapshot stats_baseline = obs::snapshot_counters();
  /// Where to write the span trace at destruction; empty = no tracing
  /// requested.  Writability was checked at create (kIoError there).
  std::string trace_path;

  ~Impl() {
    if (trace_path.empty()) return;
    obs::stop_tracing();
    try {
      obs::write_chrome_trace(trace_path);
    } catch (const std::exception& e) {
      // The path was writable at create; a failure here (disk full,
      // directory removed meanwhile) has no status channel left.
      std::fprintf(stderr, "hebs: writing trace failed: %s\n", e.what());
    }
  }

  Impl(SessionConfig config, const PolicyInfo* p, const MetricInfo* m)
      : cfg(std::move(config)),
        policy(p),
        metric(m),
        hebs_opts(make_hebs_options(cfg, m)),
        engine(make_engine_options(cfg, hebs_opts), model) {
    // cfg.validate() vouched for the name; parse cannot fail here.
    (void)core::parse_color_mode(cfg.color_mode(), &color_mode);
  }

  static core::HebsOptions make_hebs_options(const SessionConfig& cfg,
                                             const MetricInfo* m) {
    core::HebsOptions opts;
    opts.segments = cfg.segments();
    opts.g_min = cfg.g_min_floor();
    opts.min_range = cfg.min_range();
    opts.min_beta = cfg.min_beta();
    opts.equalization_strength = cfg.equalization_strength();
    opts.concurrent_scaling = cfg.concurrent_scaling();
    // Session::create admits only decision metrics; the optional is set.
    opts.distortion.metric = *m->metric;
    return opts;
  }

  static pipeline::EngineOptions make_engine_options(
      const SessionConfig& cfg, const core::HebsOptions& hebs_opts) {
    pipeline::EngineOptions opts;
    opts.num_threads = cfg.threads();
    opts.hebs = hebs_opts;
    opts.use_buffer_pool = cfg.buffer_pool();
    // One MiB knob bounds both pool budgets: retention (free lists) and
    // outstanding checkout (exhaustion degrades to counted heap blocks
    // rather than failing a frame — see EngineOptions::pool_max_bytes).
    opts.pool_max_retained_bytes =
        static_cast<std::size_t>(cfg.pool_max_mb()) * 1024 * 1024;
    opts.pool_max_bytes = opts.pool_max_retained_bytes;
    opts.temporal_reuse = cfg.temporal_reuse();
    opts.frame_deadline_us = cfg.frame_deadline_us();
    return opts;
  }

  core::VideoOptions make_video_options(double d_max_percent) const {
    core::VideoOptions opts;
    opts.d_max_percent = d_max_percent;
    opts.hebs = hebs_opts;
    opts.max_beta_step = cfg.max_beta_step();
    opts.ema_alpha = cfg.ema_alpha();
    opts.scene_cut_threshold = cfg.scene_cut_threshold();
    opts.num_threads = cfg.threads();
    opts.temporal_reuse = cfg.temporal_reuse();
    opts.use_buffer_pool = cfg.buffer_pool();
    opts.frame_deadline_us = cfg.frame_deadline_us();
    return opts;
  }

  /// The session's curve cache: loaded from cfg.curve_path at create
  /// time, or characterized once on first hebs-curve use (the offline
  /// step of Fig. 4, amortized over the session lifetime).
  const core::DistortionCurve& ensure_curve() HEBS_EXCLUDES(curve_mu) {
    util::MutexLock lock(curve_mu);
    if (!curve.has_value()) {
      const auto album = hebs::image::usid_album(cfg.characterization_size());
      curve = core::DistortionCurve::characterize(
          album, core::DistortionCurve::default_ranges(), hebs_opts, model);
    }
    return *curve;
  }

  bool is_hebs_policy() const noexcept {
    return policy->kind == PolicyKind::kHebsExact ||
           policy->kind == PolicyKind::kHebsCurve;
  }

  /// Deep-pixel session: frames arrive as gray16 views and decisions
  /// run on the configured level lattice instead of the 8-bit one.
  bool deep() const noexcept { return cfg.bit_depth() != 8; }
  int levels() const noexcept {
    return hebs::image::levels_for_bit_depth(cfg.bit_depth());
  }
  int max_pixel() const noexcept { return levels() - 1; }

  /// Policies a deep session can dispatch (the depth-generic ones).
  bool deep_capable_policy() const noexcept {
    return policy->kind == PolicyKind::kHebsExact ||
           policy->kind == PolicyKind::kBbhe;
  }

  Status unsupported_deep_policy() const {
    return Status(StatusCode::kInvalidOption,
                  "policy \"" + policy->entry.name +
                      "\" does not support deep-pixel sessions; bit_depth " +
                      std::to_string(cfg.bit_depth()) +
                      " requires \"hebs-exact\" or \"bbhe\"");
  }

  /// The typed view/depth contract: a deep session takes exactly gray16
  /// views, an 8-bit session never does.  `what` names the entry point.
  Status check_view_depth(const ImageView& view, const char* what) const {
    if (deep() && view.format() != PixelFormat::kGray16) {
      return Status(StatusCode::kUnknownDepth,
                    std::string(what) + ": session bit_depth is " +
                        std::to_string(cfg.bit_depth()) +
                        " and requires gray16 views");
    }
    if (!deep() && view.format() == PixelFormat::kGray16) {
      return Status(StatusCode::kUnknownDepth,
                    std::string(what) +
                        ": gray16 views require a session configured with "
                        "bit_depth 10 or 16 (session bit_depth is 8)");
    }
    return Status();
  }

  Expected<FrameResult> run_baseline(const hebs::image::GrayImage& img,
                                     double d_max_percent) {
    core::OperatingPoint point;
    switch (policy->kind) {
      case PolicyKind::kDls:
        point = hebs::baseline::DlsPolicy(
                    hebs::baseline::DlsMode::kBrightnessCompensation,
                    hebs_opts.distortion, model)
                    .choose(img, d_max_percent);
        break;
      case PolicyKind::kDlsContrast:
        point = hebs::baseline::DlsPolicy(
                    hebs::baseline::DlsMode::kContrastEnhancement,
                    hebs_opts.distortion, model)
                    .choose(img, d_max_percent);
        break;
      case PolicyKind::kCbcs:
        point = hebs::baseline::CbcsPolicy({}, hebs_opts.distortion, model)
                    .choose(img, d_max_percent);
        break;
      default:
        return Status(StatusCode::kInternal,
                      "run_baseline: policy \"" + policy->entry.name +
                          "\" (kind " +
                          std::to_string(static_cast<int>(policy->kind)) +
                          ") reached the baseline dispatcher unhandled");
    }
    return to_frame_result(
        core::evaluate_operating_point(img, point, model,
                                       hebs_opts.distortion));
  }

  Expected<FrameResult> run_one(const FrameRequest& request,
                                const hebs::image::GrayImage& img) {
    if (request.fixed_range > 0) {
      if (!is_hebs_policy()) {
        return Status(StatusCode::kInvalidOption,
                      "fixed_range is only supported by the hebs-* policies "
                      "(policy is \"" +
                          policy->entry.name + "\")");
      }
      return to_frame_result(
          core::hebs_at_range(img, request.fixed_range, hebs_opts, model));
    }
    switch (policy->kind) {
      case PolicyKind::kHebsExact:
        return to_frame_result(
            core::hebs_exact(img, request.d_max_percent, hebs_opts, model));
      case PolicyKind::kHebsCurve:
        return to_frame_result(core::hebs_with_curve(
            img, request.d_max_percent, ensure_curve(), hebs_opts, model));
      case PolicyKind::kBbhe: {
        pipeline::FrameContext ctx(img, hebs_opts, model);
        return to_frame_result(
            pipeline::run_bbhe(ctx, request.d_max_percent));
      }
      default:
        return run_baseline(img, request.d_max_percent);
    }
  }

  /// Deep-pixel twin of run_one: the same staged pipeline through a
  /// FrameContext bound on the frame's own level lattice.
  Expected<FrameResult> run_one16(const FrameRequest& request,
                                  const hebs::image::GrayImage16& img) {
    if (request.fixed_range > 0 && policy->kind != PolicyKind::kHebsExact) {
      return Status(StatusCode::kInvalidOption,
                    "fixed_range on a deep session is only supported by "
                    "\"hebs-exact\" (policy is \"" +
                        policy->entry.name + "\")");
    }
    pipeline::FrameContext ctx(img, hebs_opts, model);
    if (request.fixed_range > 0) {
      return to_frame_result(ctx.at_range(request.fixed_range));
    }
    switch (policy->kind) {
      case PolicyKind::kHebsExact:
        return to_frame_result(
            pipeline::run_exact(ctx, request.d_max_percent));
      case PolicyKind::kBbhe:
        return to_frame_result(
            pipeline::run_bbhe(ctx, request.d_max_percent));
      default:
        return unsupported_deep_policy();
    }
  }

  /// Deep-pixel arm of process_batch (views already validated and
  /// depth-checked; policy already known deep-capable).  hebs-exact
  /// fans out over the engine's pool exactly like the 8-bit batch;
  /// bbhe loops serially over one reused context.
  Expected<std::vector<FrameResult>> batch16(
      const std::vector<ImageView>& frames, double d_max_percent) {
    std::vector<hebs::image::GrayImage16> images;
    images.reserve(frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      try {
        images.push_back(api::materialize_gray16(frames[i], levels()));
      } catch (const util::InvalidArgument& e) {
        return Status(StatusCode::kInvalidImage,
                      "frame " + std::to_string(i) + ": " + e.what());
      }
    }
    std::vector<FrameResult> out;
    out.reserve(images.size());
    if (policy->kind == PolicyKind::kHebsExact) {
      std::vector<pipeline::FrameFault> faults;
      for (auto& r : engine.process_batch16(images, d_max_percent, &faults)) {
        out.push_back(to_frame_result(r));
        fill_fault(faults[out.size() - 1], out.back());
      }
      return out;
    }
    pipeline::FrameContext ctx(hebs_opts, model);
    for (const auto& img : images) {
      ctx.rebind(img);
      out.push_back(to_frame_result(pipeline::run_bbhe(ctx, d_max_percent)));
    }
    return out;
  }

  /// Post-decision color stage for the serial facade paths: runs the
  /// shared core::render_color on `result`'s operating point and
  /// attaches the rendering + hue error to the result.  `luma` is the
  /// decision-side raster (rgb.to_luma()), reused by the luma-ratio
  /// rendering.
  void render_color(const hebs::image::RgbImage& rgb,
                    const hebs::image::GrayImage& luma, FrameResult& result) {
    const core::ColorRendering rendering =
        core::render_color(rgb, luma, point_of(result), color_mode);
    fill_color(rendering.displayed, rendering.hue_error, result);
  }
};

Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

Expected<Session> Session::create(SessionConfig config) {
  if (Status s = config.validate(); !s.ok()) return s;
  const PolicyInfo* policy = api::find_policy(config.policy());
  if (policy == nullptr) {
    return Status(StatusCode::kUnknownPolicy,
                  "no policy named \"" + config.policy() +
                      "\" is registered; see hebs::PolicyRegistry");
  }
  const MetricInfo* metric = api::find_metric(config.metric());
  if (metric == nullptr) {
    return Status(StatusCode::kUnknownMetric,
                  "no metric named \"" + config.metric() +
                      "\" is registered; see hebs::MetricRegistry");
  }
  if (!metric->decision()) {
    return Status(StatusCode::kInvalidOption,
                  "metric \"" + config.metric() +
                      "\" is report-only (attached to color results as "
                      "hue_error) and cannot drive the decision loop");
  }
  // Validate the requested fault-injection spec up front, but only
  // install it once nothing else can fail — like the kernel backend,
  // arming is process-global state a failed create must not disturb.
  const std::string fault_spec = resolve_fault_spec(config);
  if (!fault_spec.empty() && fault_spec != "off" && fault_spec != "none") {
    std::vector<util::fault::Spec> parsed;
    std::string parse_error;
    if (!util::fault::parse_spec_list(fault_spec, &parsed, &parse_error)) {
      return Status(StatusCode::kInvalidOption,
                    "fault_spec \"" + fault_spec + "\": " + parse_error);
    }
  }
  // Validate the requested kernel backend up front, but only switch the
  // process-global selection once nothing else can fail — a failed
  // create must leave the process state untouched.
  const kernels::KernelSet* requested_backend = nullptr;
  if (!config.kernel_backend().empty()) {
    requested_backend = kernels::find_backend(config.kernel_backend());
    if (requested_backend == nullptr) {
      return Status(StatusCode::kUnknownBackend,
                    "no kernel backend named \"" + config.kernel_backend() +
                        "\" is compiled into this build; see "
                        "hebs::KernelRegistry");
    }
    bool supported = false;
    for (const kernels::BackendInfo& info : kernels::backends()) {
      if (info.set == requested_backend) supported = info.supported;
    }
    if (!supported) {
      return Status(StatusCode::kUnknownBackend,
                    "kernel backend \"" + config.kernel_backend() +
                        "\" is compiled in but not supported by this CPU; "
                        "see hebs::KernelRegistry");
    }
  }
  auto impl = std::make_unique<Impl>(std::move(config), policy, metric);
  if (!impl->cfg.curve_path().empty()) {
    try {
      // The impl is not shared yet, but the annotation contract on
      // `curve` is unconditional — take the (uncontended) lock.
      util::MutexLock lock(impl->curve_mu);
      impl->curve = core::DistortionCurve::load(impl->cfg.curve_path());
    } catch (const std::exception& e) {
      return Status(StatusCode::kIoError,
                    "loading curve \"" + impl->cfg.curve_path() +
                        "\" failed: " + e.what());
    }
  }
  const std::string trace_path = resolve_trace_path(impl->cfg);
  if (!trace_path.empty()) {
    // Fail the create, not the eventual trace write: an unknown or
    // unwritable destination is a typed kIoError here, never a
    // silently dropped trace.  The open also truncates, so the session
    // always leaves a fresh file behind.
    std::FILE* probe = std::fopen(trace_path.c_str(), "wb");
    if (probe == nullptr) {
      return Status(StatusCode::kIoError,
                    "trace path \"" + trace_path +
                        "\" cannot be opened for writing");
    }
    std::fclose(probe);
  }
  if (requested_backend != nullptr) {
    // Backend selection is process-global (see SessionConfig docs);
    // outputs are bit-identical across backends, so switching here only
    // changes throughput, never results.  Validated above: cannot fail.
    kernels::set_backend(requested_backend->name);
  }
  if (!fault_spec.empty()) {
    // Parsed above: cannot fail here.  Installed while the process is
    // quiescent for this session (nothing has run yet), per the
    // faultpoint install contract; "off"/"none" disarms every point.
    std::string install_error;
    (void)util::fault::install_from_string(fault_spec, &install_error);
  }
  if (!trace_path.empty()) {
    // Ring buffers are allocated here, at session setup — the record
    // path never allocates (the zero-alloc steady-state contract).
    obs::start_tracing();
    impl->trace_path = trace_path;
  }
  return Session(std::move(impl));
}

const SessionConfig& Session::config() const noexcept { return impl_->cfg; }

int Session::thread_count() const noexcept {
  return impl_->engine.thread_count();
}

SessionStats Session::stats() const noexcept {
  const auto d =
      obs::snapshot_counters().delta_since(impl_->stats_baseline);
  SessionStats s;
  s.frames_decided = d[obs::Counter::kFramesDecided];
  s.temporal_frames = d[obs::Counter::kTemporalFrames];
  s.reuse_byte_identical = d[obs::Counter::kTemporalByteIdentical];
  s.reuse_delta_refresh = d[obs::Counter::kTemporalDeltaRefresh];
  s.reuse_cold = d[obs::Counter::kTemporalCold];
  s.warm_verified = d[obs::Counter::kTemporalWarmVerified];
  s.range_probes = d[obs::Counter::kRangeProbes];
  s.beta_probes = d[obs::Counter::kBetaProbes];
  s.eval_memo_hits = d[obs::Counter::kEvalMemoHit];
  s.eval_memo_misses = d[obs::Counter::kEvalMemoMiss];
  s.range_memo_hits = d[obs::Counter::kAtRangeHit];
  s.range_memo_misses = d[obs::Counter::kAtRangeMiss];
  s.pool_recycled = d[obs::Counter::kPoolRecycled];
  s.pool_fresh = d[obs::Counter::kPoolFresh];
  s.pool_bytes_outstanding = d[obs::Counter::kPoolBytesOutstanding];
  s.parallel_for_calls = d[obs::Counter::kParallelForCalls];
  s.parallel_for_items = d[obs::Counter::kParallelForItems];
  s.parallel_for_queued = d[obs::Counter::kParallelForQueued];
  s.dispatch_scalar = d[obs::Counter::kDispatchScalar];
  s.dispatch_sse42 = d[obs::Counter::kDispatchSse42];
  s.dispatch_avx2 = d[obs::Counter::kDispatchAvx2];
  s.dispatch_neon = d[obs::Counter::kDispatchNeon];
  s.frames_degraded = d[obs::Counter::kFramesDegraded];
  s.deadline_misses = d[obs::Counter::kDeadlineMiss];
  s.pool_heap_fallbacks = d[obs::Counter::kPoolHeapFallback];
  s.fault_pool_alloc = d[obs::Counter::kFaultPoolAlloc];
  s.fault_worker_task = d[obs::Counter::kFaultWorkerTask];
  s.fault_frame_corrupt = d[obs::Counter::kFaultFrameCorrupt];
  s.fault_curve_io = d[obs::Counter::kFaultCurveIo];
  s.fault_trace_io = d[obs::Counter::kFaultTraceIo];
  s.fault_stage_latency = d[obs::Counter::kFaultStageLatency];
  return s;
}

Expected<FrameResult> Session::process(const FrameRequest& request) {
  if (impl_->deep() && request.color_output) {
    return Status(StatusCode::kInvalidOption,
                  "color_output is not supported on deep-pixel sessions "
                  "(bit_depth " +
                      std::to_string(impl_->cfg.bit_depth()) + ")");
  }
  if (request.color_output) {
    if (Status s = require_rgb8(request.image, "color_output"); !s.ok()) {
      return s;
    }
  } else if (Status s = request.image.validate(); !s.ok()) {
    return s;
  }
  if (Status s = impl_->check_view_depth(request.image, "process"); !s.ok()) {
    return s;
  }
  if (request.fixed_range == 0) {
    if (Status s = check_budget(request.d_max_percent); !s.ok()) return s;
  } else if (request.fixed_range < 2 ||
             request.fixed_range >
                 impl_->max_pixel() - impl_->cfg.g_min_floor()) {
    // Same floor as SessionConfig::min_range: a one-level range
    // degenerates the PLC coarsening.  The ceiling is the session
    // depth's own pixel domain (255 for the default 8-bit session).
    return Status(StatusCode::kInvalidOption,
                  "fixed_range must be >= 2 and leave [g_min_floor, "
                  "g_min_floor + range] inside the " +
                      std::to_string(impl_->cfg.bit_depth()) +
                      "-bit domain (got " +
                      std::to_string(request.fixed_range) + ")");
  }
  try {
    // Single-frame runs attribute exactly, so each result carries its
    // own counter-delta breakdown (hebs/frame.h).
    const auto counters_before = obs::snapshot_counters();
    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed_ms = [&t0] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    if (request.color_output) {
      // The decision runs on BT.601 luma (same kernel as the gray
      // ingestion path, so it is bit-identical to processing the
      // pre-converted luma view); the color stage then renders the
      // decided operating point onto the RGB raster.
      const hebs::image::RgbImage rgb = api::materialize_rgb(request.image);
      const hebs::image::GrayImage luma = rgb.to_luma();
      auto result = impl_->run_one(request, luma);
      if (!result) return result.status();
      impl_->render_color(rgb, luma, *result);
      fill_breakdown(counters_before, elapsed_ms(), *result);
      return result;
    }
    if (impl_->deep()) {
      hebs::image::GrayImage16 img;
      try {
        img = api::materialize_gray16(request.image, impl_->levels());
      } catch (const util::InvalidArgument& e) {
        // A sample above the declared depth is the caller's frame, not
        // a library failure.
        return Status(StatusCode::kInvalidImage, e.what());
      }
      auto result = impl_->run_one16(request, img);
      if (!result) return result.status();
      fill_breakdown(counters_before, elapsed_ms(), *result);
      return result;
    }
    const hebs::image::GrayImage img = api::materialize_gray(request.image);
    auto result = impl_->run_one(request, img);
    if (!result) return result.status();
    fill_breakdown(counters_before, elapsed_ms(), *result);
    return result;
  } catch (const std::exception& e) {
    return from_exception(e, "process: frame 0");
  }
}

Expected<std::vector<FrameResult>> Session::process_batch(
    const std::vector<ImageView>& frames, double d_max_percent) {
  if (Status s = check_budget(d_max_percent); !s.ok()) return s;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (Status s = frames[i].validate(); !s.ok()) {
      return Status(s.code(),
                    "frame " + std::to_string(i) + ": " + s.message());
    }
    if (Status s = impl_->check_view_depth(frames[i], "process_batch");
        !s.ok()) {
      return Status(s.code(),
                    "frame " + std::to_string(i) + ": " + s.message());
    }
  }
  if (impl_->deep() && !impl_->deep_capable_policy()) {
    return impl_->unsupported_deep_policy();
  }
  try {
    if (impl_->deep()) return impl_->batch16(frames, d_max_percent);
    std::vector<hebs::image::GrayImage> images;
    images.reserve(frames.size());
    for (const ImageView& view : frames) {
      images.push_back(api::materialize_gray(view));
    }
    std::vector<FrameResult> out;
    out.reserve(images.size());
    std::vector<pipeline::FrameFault> faults;
    switch (impl_->policy->kind) {
      case PolicyKind::kHebsExact:
        for (auto& r :
             impl_->engine.process_batch(images, d_max_percent, &faults)) {
          out.push_back(to_frame_result(r));
          fill_fault(faults[out.size() - 1], out.back());
        }
        break;
      case PolicyKind::kHebsCurve:
        for (auto& r : impl_->engine.process_batch_with_curve(
                 images, d_max_percent, impl_->ensure_curve(), &faults)) {
          out.push_back(to_frame_result(r));
          fill_fault(faults[out.size() - 1], out.back());
        }
        break;
      case PolicyKind::kBbhe: {
        // BBHE's decision is cheap (no range search); a serial loop
        // over one reused context keeps it allocation-friendly without
        // engine fan-out.
        pipeline::FrameContext ctx(impl_->hebs_opts, impl_->model);
        for (const auto& img : images) {
          ctx.rebind(img);
          out.push_back(
              to_frame_result(pipeline::run_bbhe(ctx, d_max_percent)));
        }
        break;
      }
      default:
        // The engine's fan-out is HEBS-specific; the baselines' own grid
        // and bisection searches run per image on the calling thread.
        for (const auto& img : images) {
          auto result = impl_->run_baseline(img, d_max_percent);
          if (!result) return result.status();
          out.push_back(std::move(*result));
        }
        break;
    }
    return out;
  } catch (const std::exception& e) {
    return from_exception(e, "process_batch");
  }
}


Expected<std::vector<FrameResult>> Session::process_batch_color(
    const std::vector<ImageView>& frames, double d_max_percent) {
  if (Status s = check_budget(d_max_percent); !s.ok()) return s;
  if (impl_->deep()) {
    return Status(StatusCode::kInvalidOption,
                  "color processing is not supported on deep-pixel sessions "
                  "(bit_depth " +
                      std::to_string(impl_->cfg.bit_depth()) + ")");
  }
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (Status s = require_rgb8(frames[i], "process_batch_color"); !s.ok()) {
      return Status(s.code(),
                    "frame " + std::to_string(i) + ": " + s.message());
    }
  }
  try {
    std::vector<hebs::image::RgbImage> rgbs;
    rgbs.reserve(frames.size());
    for (const ImageView& view : frames) {
      rgbs.push_back(api::materialize_rgb(view));
    }
    std::vector<FrameResult> out;
    out.reserve(rgbs.size());
    std::vector<pipeline::FrameFault> faults;
    switch (impl_->policy->kind) {
      case PolicyKind::kHebsExact:
        // The engine runs the color stage on the worker that decided
        // the frame, so batch color scales with the pool like gray
        // batches.
        for (auto& r : impl_->engine.process_batch_color(
                 rgbs, d_max_percent, impl_->color_mode, &faults)) {
          FrameResult fr = to_frame_result(r.luma);
          fill_color(r.color.displayed, r.color.hue_error, fr);
          fill_fault(faults[out.size()], fr);
          out.push_back(std::move(fr));
        }
        break;
      case PolicyKind::kHebsCurve: {
        // Curve lookups fan out over the pool exactly like the gray
        // batch path; the color rendering then runs serially on the
        // calling thread (it does not yet scale with the pool the way
        // the hebs-exact color batch does).
        std::vector<hebs::image::GrayImage> lumas;
        lumas.reserve(rgbs.size());
        for (const auto& rgb : rgbs) lumas.push_back(rgb.to_luma());
        auto results = impl_->engine.process_batch_with_curve(
            lumas, d_max_percent, impl_->ensure_curve(), &faults);
        for (std::size_t i = 0; i < results.size(); ++i) {
          FrameResult fr = to_frame_result(results[i]);
          impl_->render_color(rgbs[i], lumas[i], fr);
          fill_fault(faults[i], fr);
          out.push_back(std::move(fr));
        }
        break;
      }
      case PolicyKind::kBbhe: {
        // Serial like the gray bbhe batch; the color stage renders each
        // decided operating point on the calling thread.
        pipeline::FrameContext ctx(impl_->hebs_opts, impl_->model);
        std::vector<hebs::image::GrayImage> lumas;
        lumas.reserve(rgbs.size());
        for (const auto& rgb : rgbs) lumas.push_back(rgb.to_luma());
        for (std::size_t i = 0; i < rgbs.size(); ++i) {
          ctx.rebind(lumas[i]);
          FrameResult fr =
              to_frame_result(pipeline::run_bbhe(ctx, d_max_percent));
          impl_->render_color(rgbs[i], lumas[i], fr);
          out.push_back(std::move(fr));
        }
        break;
      }
      default:
        // The baselines' own grid and bisection searches run per image
        // on the calling thread (as in process_batch); the color stage
        // follows each decision.
        for (const auto& rgb : rgbs) {
          const hebs::image::GrayImage luma = rgb.to_luma();
          auto result = impl_->run_baseline(luma, d_max_percent);
          if (!result) return result.status();
          impl_->render_color(rgb, luma, *result);
          out.push_back(std::move(*result));
        }
        break;
    }
    return out;
  } catch (const std::exception& e) {
    return from_exception(e, "process_batch_color");
  }
}

Expected<std::vector<VideoFrameResult>> Session::process_video(
    const std::vector<ImageView>& frames, double d_max_percent) {
  if (Status s = check_budget(d_max_percent); !s.ok()) return s;
  if (impl_->deep()) {
    return Status(StatusCode::kInvalidOption,
                  "video processing is not supported on deep-pixel sessions "
                  "(bit_depth " +
                      std::to_string(impl_->cfg.bit_depth()) + ")");
  }
  if (impl_->policy->kind != PolicyKind::kHebsExact) {
    return Status(StatusCode::kInvalidOption,
                  "video processing runs the per-frame exact search and "
                  "requires policy \"hebs-exact\" (policy is \"" +
                      impl_->cfg.policy() + "\")");
  }
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (Status s = frames[i].validate(); !s.ok()) {
      return Status(s.code(),
                    "frame " + std::to_string(i) + ": " + s.message());
    }
    if (Status s = impl_->check_view_depth(frames[i], "process_video");
        !s.ok()) {
      return Status(s.code(),
                    "frame " + std::to_string(i) + ": " + s.message());
    }
  }
  try {
    std::vector<hebs::image::GrayImage> images;
    images.reserve(frames.size());
    for (const ImageView& view : frames) {
      images.push_back(api::materialize_gray(view));
    }
    std::vector<pipeline::FrameFault> faults;
    const auto decisions = impl_->engine.process_stream(
        images, impl_->make_video_options(d_max_percent), &faults);
    std::vector<VideoFrameResult> out;
    out.reserve(decisions.size());
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      const auto& d = decisions[i];
      out.push_back({d.raw_beta, d.beta, d.scene_cut, to_frame_result(d)});
      fill_fault(faults[i], out.back().frame);
    }
    return out;
  } catch (const std::exception& e) {
    return from_exception(e, "process_video");
  }
}

Expected<std::vector<VideoFrameResult>> Session::process_video_color(
    const std::vector<ImageView>& frames, double d_max_percent) {
  if (Status s = check_budget(d_max_percent); !s.ok()) return s;
  if (impl_->deep()) {
    return Status(StatusCode::kInvalidOption,
                  "video processing is not supported on deep-pixel sessions "
                  "(bit_depth " +
                      std::to_string(impl_->cfg.bit_depth()) + ")");
  }
  if (impl_->policy->kind != PolicyKind::kHebsExact) {
    return Status(StatusCode::kInvalidOption,
                  "video processing runs the per-frame exact search and "
                  "requires policy \"hebs-exact\" (policy is \"" +
                      impl_->cfg.policy() + "\")");
  }
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (Status s = require_rgb8(frames[i], "process_video_color"); !s.ok()) {
      return Status(s.code(),
                    "frame " + std::to_string(i) + ": " + s.message());
    }
  }
  try {
    std::vector<hebs::image::RgbImage> rgbs;
    rgbs.reserve(frames.size());
    for (const ImageView& view : frames) {
      rgbs.push_back(api::materialize_rgb(view));
    }
    std::vector<pipeline::FrameFault> faults;
    const auto results = impl_->engine.process_stream_color(
        rgbs, impl_->make_video_options(d_max_percent), impl_->color_mode,
        &faults);
    std::vector<VideoFrameResult> out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      VideoFrameResult v{r.decision.raw_beta, r.decision.beta,
                         r.decision.scene_cut, to_frame_result(r.decision)};
      fill_color(r.color.displayed, r.color.hue_error, v.frame);
      fill_fault(faults[i], v.frame);
      out.push_back(std::move(v));
    }
    return out;
  } catch (const std::exception& e) {
    return from_exception(e, "process_video_color");
  }
}

}  // namespace hebs
