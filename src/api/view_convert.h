// Internal ingestion helper: materializes the 8-bit luminance raster
// the pipeline consumes from a validated ImageView.  Gray8 views copy
// rows (one memcpy for tightly packed input); RGB8 views go through
// BT.601 luma extraction with exactly the arithmetic of
// image::RgbImage::to_luma, so a view over interleaved RGB yields a
// raster bit-identical to a pre-converted grayscale image.
#pragma once

#include "hebs/image_view.h"
#include "image/image.h"

namespace hebs::api {

/// Precondition: view.validate().ok().
hebs::image::GrayImage materialize_gray(const ImageView& view);

/// Packs a (possibly strided) rgb8 view into an owned interleaved
/// raster.  Precondition: view.validate().ok() and format == kRgb8.
hebs::image::RgbImage materialize_rgb(const ImageView& view);

/// Copies a gray16 view into an owned deep-pixel raster of `levels`
/// representable levels.  Throws util::InvalidArgument when any sample
/// is >= levels (the facade maps this to kInvalidImage — a deep view
/// must fit the session's declared bit depth, never be clamped).
/// Precondition: view.validate().ok() and format == kGray16.
hebs::image::GrayImage16 materialize_gray16(const ImageView& view,
                                            int levels);

}  // namespace hebs::api
