// Internal ingestion helper: materializes the 8-bit luminance raster
// the pipeline consumes from a validated ImageView.  Gray8 views copy
// rows (one memcpy for tightly packed input); RGB8 views go through
// BT.601 luma extraction with exactly the arithmetic of
// image::RgbImage::to_luma, so a view over interleaved RGB yields a
// raster bit-identical to a pre-converted grayscale image.
#pragma once

#include "hebs/image_view.h"
#include "image/image.h"

namespace hebs::api {

/// Precondition: view.validate().ok().
hebs::image::GrayImage materialize_gray(const ImageView& view);

/// Packs a (possibly strided) rgb8 view into an owned interleaved
/// raster.  Precondition: view.validate().ok() and format == kRgb8.
hebs::image::RgbImage materialize_rgb(const ImageView& view);

}  // namespace hebs::api
