#include "hebs/registry.h"

#include "api/registry_internal.h"
#include "kernels/kernels.h"

namespace hebs::api {

const std::vector<PolicyInfo>& policy_table() {
  static const std::vector<PolicyInfo> table = {
      {{"hebs-exact",
        "HEBS oracle mode: bisects the dynamic range until the measured "
        "distortion lands on the budget (the Table 1 protocol)"},
       PolicyKind::kHebsExact},
      {{"hebs-curve",
        "HEBS deployed mode: range looked up from the distortion "
        "characteristic curve, no metric in the decision loop (Fig. 4)"},
       PolicyKind::kHebsCurve},
      {{"dls",
        "DLS baseline [4]: global brightness compensation, backlight "
        "bisected against the shared metric"},
       PolicyKind::kDls},
      {{"dls-contrast",
        "DLS baseline [4]: global contrast enhancement, backlight "
        "bisected against the shared metric"},
       PolicyKind::kDlsContrast},
      {{"cbcs",
        "CBCS baseline [5]: histogram band truncation + concurrent "
        "brightness/contrast scaling, grid-searched"},
       PolicyKind::kCbcs},
      {{"bbhe",
        "brightness-preserving bi-histogram equalization (Kim 1997): "
        "mean-split per-half equalization, backlight bisected against "
        "the measured distortion budget; depth-generic (8/10/16-bit)"},
       PolicyKind::kBbhe},
  };
  return table;
}

const std::vector<MetricInfo>& metric_table() {
  using hebs::quality::Metric;
  static const std::vector<MetricInfo> table = {
      {{"uiqi-hvs",
        "UIQI on HVS-transformed rasters (the paper's default measure)"},
       Metric::kUiqiHvs},
      {{"percent-mapped",
        "uiqi-hvs evaluated through the per-level mapped fast path the "
        "deployed pipeline uses (bit-identical to uiqi-hvs)"},
       Metric::kUiqiHvs},
      {{"uiqi", "plain UIQI on pixel values"}, Metric::kUiqi},
      {{"ssim", "SSIM (the paper's stated future-work metric)"},
       Metric::kSsim},
      {{"ssim-hvs", "SSIM on HVS-transformed rasters"}, Metric::kSsimHvs},
      {{"rmse", "root mean squared pixel error, scaled to percent"},
       Metric::kRmse},
      {{"contrast-fidelity", "1 - contrast fidelity (the CBCS measure [5])"},
       Metric::kContrastFidelity},
      {{"ms-ssim", "multi-scale SSIM (viewing-distance robust)"},
       Metric::kMsSsim},
      // Report-only: attached to every color FrameResult (hue_error) so
      // the two color modes are comparable; not a decision metric (the
      // decision loop measures luma, which has no chroma to drift).
      {{"hue-error",
        "mean absolute chromaticity drift of the displayed RGB raster "
        "against the input (color results; report-only)"},
       std::nullopt},
  };
  return table;
}

const PolicyInfo* find_policy(std::string_view name) {
  for (const PolicyInfo& info : policy_table()) {
    if (info.entry.name == name) return &info;
  }
  return nullptr;
}

const MetricInfo* find_metric(std::string_view name) {
  for (const MetricInfo& info : metric_table()) {
    if (info.entry.name == name) return &info;
  }
  return nullptr;
}

}  // namespace hebs::api

namespace hebs {

namespace {

template <typename Table>
std::vector<RegistryEntry> entries_of(const Table& table) {
  std::vector<RegistryEntry> out;
  out.reserve(table.size());
  for (const auto& info : table) out.push_back(info.entry);
  return out;
}

template <typename Table>
std::vector<std::string> names_of(const Table& table) {
  std::vector<std::string> out;
  out.reserve(table.size());
  for (const auto& info : table) out.push_back(info.entry.name);
  return out;
}

}  // namespace

const std::vector<RegistryEntry>& PolicyRegistry::entries() {
  static const std::vector<RegistryEntry> cached =
      entries_of(api::policy_table());
  return cached;
}

std::vector<std::string> PolicyRegistry::names() {
  return names_of(api::policy_table());
}

bool PolicyRegistry::contains(std::string_view name) {
  return api::find_policy(name) != nullptr;
}

const std::vector<RegistryEntry>& MetricRegistry::entries() {
  static const std::vector<RegistryEntry> cached =
      entries_of(api::metric_table());
  return cached;
}

std::vector<std::string> MetricRegistry::names() {
  return names_of(api::metric_table());
}

bool MetricRegistry::contains(std::string_view name) {
  return api::find_metric(name) != nullptr;
}

const std::vector<RegistryEntry>& KernelRegistry::entries() {
  static const std::vector<RegistryEntry> cached = [] {
    std::vector<RegistryEntry> out;
    for (const kernels::BackendInfo& info : kernels::backends()) {
      std::string description = info.set->description;
      if (!info.supported) description += " [not supported by this CPU]";
      out.push_back({info.set->name, std::move(description)});
    }
    return out;
  }();
  return cached;
}

std::vector<std::string> KernelRegistry::names() {
  std::vector<std::string> out;
  for (const kernels::BackendInfo& info : kernels::backends()) {
    out.push_back(info.set->name);
  }
  return out;
}

bool KernelRegistry::contains(std::string_view name) {
  return kernels::find_backend(name) != nullptr;
}

std::string KernelRegistry::active() { return kernels::active().name; }

}  // namespace hebs
