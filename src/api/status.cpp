#include "hebs/status.h"

namespace hebs {

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidOption: return "invalid-option";
    case StatusCode::kInvalidImage: return "invalid-image";
    case StatusCode::kInvalidStride: return "invalid-stride";
    case StatusCode::kInvalidBudget: return "invalid-budget";
    case StatusCode::kUnknownPolicy: return "unknown-policy";
    case StatusCode::kUnknownMetric: return "unknown-metric";
    case StatusCode::kUnknownBackend: return "unknown-backend";
    case StatusCode::kUnknownDepth: return "unknown-depth";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

}  // namespace hebs
