// Internal side of the public registries: each entry carries the
// dispatch information Session needs (a policy kind, a metric enum)
// next to the public name/description.  Only src/api/ includes this.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "hebs/registry.h"
#include "quality/distortion.h"

namespace hebs::api {

/// Built-in policy implementations Session can dispatch to.
enum class PolicyKind {
  kHebsExact,    ///< oracle mode: bisect range against measured distortion
  kHebsCurve,    ///< deployed mode: range from the characteristic curve
  kDls,          ///< DLS brightness compensation [4]
  kDlsContrast,  ///< DLS contrast enhancement [4]
  kCbcs,         ///< CBCS band grid search [5]
  kBbhe,         ///< brightness-preserving bi-histogram equalization
};

struct PolicyInfo {
  RegistryEntry entry;
  PolicyKind kind;
};

struct MetricInfo {
  RegistryEntry entry;
  /// The decision-loop metric this name selects; nullopt for
  /// report-only metrics (hue-error), which are listed and attached to
  /// color results but cannot drive the decision loop —
  /// Session::create rejects them as SessionConfig::metric.
  std::optional<hebs::quality::Metric> metric;
  bool decision() const noexcept { return metric.has_value(); }
};

/// Registration-ordered tables of the built-ins.
const std::vector<PolicyInfo>& policy_table();
const std::vector<MetricInfo>& metric_table();

/// nullptr when the name is not registered.
const PolicyInfo* find_policy(std::string_view name);
const MetricInfo* find_metric(std::string_view name);

}  // namespace hebs::api
