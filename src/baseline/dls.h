// DLS — Dynamic backlight Luminance Scaling (Chang, Choi, Shim — ref [4]).
//
// The first backlight-scaling technique: dim to β and compensate with a
// global pixel shift (Eq. 2a, "brightness compensation") or a global
// stretch from the origin (Eq. 2b, "contrast enhancement").  Both clip at
// the bright end, so their effective displayed-luminance transforms are
//
//   brightness:  ψ(x) = β · min(1, x + 1 - β)
//   contrast:    ψ(x) = β · min(1, x / β)  =  min(β, x)
//
// Reference [4] measures distortion as the fraction of pixels driven to
// saturation; we provide that policy (`choose_by_saturation`) plus a
// metric-fair policy that bisects β against the same perceptual metric
// HEBS uses — the comparison protocol behind the paper's "15% additional
// saving" claim.
#pragma once

#include "core/dbs.h"

namespace hebs::baseline {

/// Which of the two DLS compensation mechanisms to use.
enum class DlsMode {
  kBrightnessCompensation,  ///< Eq. 2a / Fig. 2b
  kContrastEnhancement,     ///< Eq. 2b / Fig. 2c
};

/// The DLS operating point at a given β.
hebs::core::OperatingPoint dls_operating_point(DlsMode mode, double beta);

/// DLS as a DBS policy: bisects β until the measured distortion meets
/// the budget.
class DlsPolicy : public hebs::core::DbsPolicy {
 public:
  explicit DlsPolicy(DlsMode mode,
                     hebs::quality::DistortionOptions distortion = {},
                     hebs::power::LcdSubsystemPower power_model =
                         hebs::power::LcdSubsystemPower::lp064v1());

  std::string name() const override;
  hebs::core::OperatingPoint choose(const hebs::image::GrayImage& image,
                                    double d_max_percent) const override;

  /// The policy of the original paper [4]: deepest β whose transformation
  /// saturates at most `max_saturated_fraction` of the image's pixels.
  hebs::core::OperatingPoint choose_by_saturation(
      const hebs::image::GrayImage& image,
      double max_saturated_fraction) const;

  DlsMode mode() const noexcept { return mode_; }

 private:
  DlsMode mode_;
  hebs::quality::DistortionOptions distortion_;
  hebs::power::LcdSubsystemPower power_model_;
};

}  // namespace hebs::baseline
