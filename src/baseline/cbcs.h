// CBCS — Concurrent Brightness and Contrast Scaling (Cheng & Pedram,
// ref [5]).
//
// The strongest prior baseline: truncate the histogram at both ends to a
// band [g_l, g_u], spread the band affinely over the full grayscale
// (Eq. 3 / Fig. 2d), and dim the backlight.  The effective displayed
// luminance is ψ(x) = β · Φ_band(x).  The realization needs only clamp
// switches on the conventional reference ladder, but is limited to a
// single band with a single slope (paper §4.1) — the limitation HEBS's
// k-band ladder removes.
//
// The policy searches candidate bands from the image's histogram
// percentiles and candidate βs per band, keeping the feasible point
// (distortion within budget under the shared perceptual metric) with the
// highest power saving.
#pragma once

#include "core/dbs.h"

namespace hebs::baseline {

/// Search-grid configuration for the CBCS policy.
struct CbcsOptions {
  /// Histogram mass allowed to be clipped at the dark end (candidates).
  std::vector<double> low_clip_quantiles = {0.0, 0.02, 0.05, 0.10, 0.20};
  /// Histogram mass kept below the bright clip point (candidates).
  std::vector<double> high_keep_quantiles = {0.80, 0.88, 0.95, 1.0};
  /// β candidates per band, as an interpolation between contrast-exact
  /// (β = g_u - g_l) and luminance-exact (β = g_u); 0 = contrast-exact.
  std::vector<double> beta_blend = {0.0, 0.5, 1.0};
};

/// The CBCS operating point for a band and backlight factor.
hebs::core::OperatingPoint cbcs_operating_point(double g_l, double g_u,
                                                double beta);

/// CBCS as a DBS policy (grid search).
class CbcsPolicy : public hebs::core::DbsPolicy {
 public:
  explicit CbcsPolicy(CbcsOptions opts = {},
                      hebs::quality::DistortionOptions distortion = {},
                      hebs::power::LcdSubsystemPower power_model =
                          hebs::power::LcdSubsystemPower::lp064v1());

  std::string name() const override;
  hebs::core::OperatingPoint choose(const hebs::image::GrayImage& image,
                                    double d_max_percent) const override;

 private:
  CbcsOptions opts_;
  hebs::quality::DistortionOptions distortion_;
  hebs::power::LcdSubsystemPower power_model_;
};

}  // namespace hebs::baseline
