#include "baseline/cbcs.h"

#include <algorithm>

#include "histogram/histogram.h"
#include "pipeline/frame_context.h"
#include "transform/classic.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::baseline {

hebs::core::OperatingPoint cbcs_operating_point(double g_l, double g_u,
                                                double beta) {
  HEBS_REQUIRE(g_l >= 0.0 && g_u <= 1.0 && g_l < g_u, "invalid band");
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  const hebs::transform::PwlCurve band =
      hebs::transform::single_band_curve(g_l, g_u);
  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(band.points().size());
  for (const auto& p : band.points()) {
    pts.push_back({p.x, beta * p.y});
  }
  return {hebs::transform::PwlCurve(std::move(pts)), beta};
}

CbcsPolicy::CbcsPolicy(CbcsOptions opts,
                       hebs::quality::DistortionOptions distortion,
                       hebs::power::LcdSubsystemPower power_model)
    : opts_(std::move(opts)),
      distortion_(distortion),
      power_model_(std::move(power_model)) {
  HEBS_REQUIRE(!opts_.low_clip_quantiles.empty() &&
                   !opts_.high_keep_quantiles.empty() &&
                   !opts_.beta_blend.empty(),
               "CBCS search grid must be non-empty");
}

std::string CbcsPolicy::name() const { return "CBCS"; }

hebs::core::OperatingPoint CbcsPolicy::choose(
    const hebs::image::GrayImage& image, double d_max_percent) const {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  // One context for the whole grid search: histogram percentiles and the
  // reference-side metric caches are computed once.
  hebs::core::HebsOptions eval_opts;
  eval_opts.distortion = distortion_;
  hebs::pipeline::FrameContext ctx(image, eval_opts, power_model_);
  const auto& hist = ctx.exact_histogram();

  hebs::core::OperatingPoint best = hebs::core::identity_operating_point();
  double best_saving = 0.0;
  bool found = false;

  for (double lo_q : opts_.low_clip_quantiles) {
    for (double hi_q : opts_.high_keep_quantiles) {
      // Band endpoints from histogram percentiles (the truncation of [5]).
      const double g_l =
          static_cast<double>(hist.percentile_level(
              util::clamp(lo_q, 0.0, 1.0))) /
          hebs::image::kMaxPixel;
      const double g_u =
          static_cast<double>(hist.percentile_level(
              util::clamp(hi_q, 0.0, 1.0))) /
          hebs::image::kMaxPixel;
      if (g_u - g_l < 0.05) continue;  // degenerate band

      for (double blend : opts_.beta_blend) {
        const double beta = util::clamp(
            util::lerp(g_u - g_l, g_u, util::clamp01(blend)), 0.05, 1.0);
        const auto point = cbcs_operating_point(
            std::min(g_l, g_u - 0.05), g_u, beta);
        // Lean: the grid only reads distortion/saving per probe.
        const auto eval = ctx.evaluate_lean(point);
        if (eval.distortion_percent <= d_max_percent &&
            (!found || eval.saving_percent > best_saving)) {
          best = point;
          best_saving = eval.saving_percent;
          found = true;
        }
      }
    }
  }
  return best;
}

}  // namespace hebs::baseline
