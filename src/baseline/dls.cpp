#include "baseline/dls.h"

#include <cmath>

#include "pipeline/frame_context.h"
#include "quality/metrics.h"
#include "transform/classic.h"
#include "util/error.h"

namespace hebs::baseline {

namespace {
constexpr double kBetaFloor = 0.05;  // CCFL cannot strike below this
}

hebs::core::OperatingPoint dls_operating_point(DlsMode mode, double beta) {
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  const hebs::transform::PwlCurve phi =
      mode == DlsMode::kBrightnessCompensation
          ? hebs::transform::brightness_shift_curve(beta)
          : hebs::transform::contrast_stretch_curve(beta);
  // ψ(x) = β · Φ(x): scale the compensated transform by the backlight.
  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(phi.points().size());
  for (const auto& p : phi.points()) {
    pts.push_back({p.x, beta * p.y});
  }
  return {hebs::transform::PwlCurve(std::move(pts)), beta};
}

DlsPolicy::DlsPolicy(DlsMode mode,
                     hebs::quality::DistortionOptions distortion,
                     hebs::power::LcdSubsystemPower power_model)
    : mode_(mode),
      distortion_(distortion),
      power_model_(std::move(power_model)) {}

std::string DlsPolicy::name() const {
  return mode_ == DlsMode::kBrightnessCompensation ? "DLS-brightness"
                                                   : "DLS-contrast";
}

hebs::core::OperatingPoint DlsPolicy::choose(
    const hebs::image::GrayImage& image, double d_max_percent) const {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  // One context for the whole bisection: the reference-side metric
  // caches are built once and shared by every probe.
  hebs::core::HebsOptions eval_opts;
  eval_opts.distortion = distortion_;
  hebs::pipeline::FrameContext ctx(image, eval_opts, power_model_);
  auto distortion_at = [&](double beta) {
    // Lean: probes only read the distortion; no raster is materialized.
    return ctx.evaluate_lean(dls_operating_point(mode_, beta))
        .distortion_percent;
  };
  // Distortion decreases as beta rises toward 1; find the deepest
  // feasible dimming by bisection.
  if (distortion_at(kBetaFloor) <= d_max_percent) {
    return dls_operating_point(mode_, kBetaFloor);
  }
  if (distortion_at(1.0) > d_max_percent) {
    return dls_operating_point(mode_, 1.0);
  }
  double infeasible = kBetaFloor;
  double feasible = 1.0;
  for (int i = 0; i < 20; ++i) {
    const double mid = (infeasible + feasible) / 2.0;
    if (distortion_at(mid) <= d_max_percent) {
      feasible = mid;
    } else {
      infeasible = mid;
    }
  }
  return dls_operating_point(mode_, feasible);
}

hebs::core::OperatingPoint DlsPolicy::choose_by_saturation(
    const hebs::image::GrayImage& image,
    double max_saturated_fraction) const {
  HEBS_REQUIRE(max_saturated_fraction >= 0.0 &&
                   max_saturated_fraction <= 1.0,
               "saturation budget must be in [0, 1]");
  auto saturation_at = [&](double beta) {
    const hebs::transform::PwlCurve phi =
        mode_ == DlsMode::kBrightnessCompensation
            ? hebs::transform::brightness_shift_curve(beta)
            : hebs::transform::contrast_stretch_curve(beta);
    return hebs::quality::saturated_fraction(image, phi.to_lut());
  };
  if (saturation_at(kBetaFloor) <= max_saturated_fraction) {
    return dls_operating_point(mode_, kBetaFloor);
  }
  if (saturation_at(1.0) > max_saturated_fraction) {
    return dls_operating_point(mode_, 1.0);
  }
  double infeasible = kBetaFloor;
  double feasible = 1.0;
  for (int i = 0; i < 20; ++i) {
    const double mid = (infeasible + feasible) / 2.0;
    if (saturation_at(mid) <= max_saturated_fraction) {
      feasible = mid;
    } else {
      infeasible = mid;
    }
  }
  return dls_operating_point(mode_, feasible);
}

}  // namespace hebs::baseline
