// The HEBS algorithm — Histogram Equalization for Backlight Scaling.
//
// The four-step flow of the paper (§1, Fig. 4):
//   1. From the tolerable distortion D_max, determine the minimum
//      admissible dynamic range R (via the distortion characteristic
//      curve) and the backlight factor β.
//   2. Solve GHE: Φ maps the image histogram to a uniform histogram on
//      [g_min, g_max] with g_max - g_min = R.
//   3. Coarsen Φ to a piecewise-linear Λ with m segments (PLC) so the
//      hierarchical reference driver can realize it.
//   4. Display through Λ while dimming the backlight to β.
//
// Two front ends are provided: `hebs_with_curve` is the deployed flow
// (curve lookup, no metric evaluation at runtime), and `hebs_exact`
// bisects the range until the *measured* distortion matches the budget —
// the protocol behind Table 1's per-image rows.
#pragma once

#include "core/dbs.h"
#include "core/ghe.h"
#include "core/plc.h"
#include "histogram/histogram.h"

namespace hebs::core {

class DistortionCurve;  // defined in core/distortion_curve.h

/// Tunables of the HEBS pipeline.
struct HebsOptions {
  /// PLC segment budget m — one per controllable ladder source.
  int segments = 8;
  /// Floor for the bottom of the target range (g_min = 0 maximizes
  /// dimming; see DESIGN.md §5).  The pipeline may raise g_min above
  /// this to preserve the image's native width (adaptive placement).
  int g_min = 0;
  /// Smallest admissible dynamic range; guards against degenerate
  /// operating points for near-constant images.
  int min_range = 16;
  /// Lowest backlight factor the CCFL can strike reliably.
  double min_beta = 0.05;
  /// Equalization strength w in [0, 1]: Λ blends w·GHE + (1-w)·affine
  /// placement of the native range into the target.  The default -1
  /// selects w adaptively as 1 - target_width/native_width, so the
  /// transform approaches identity when little compression is needed
  /// (zero distortion at wide ranges, matching the Fig. 7 shape) and
  /// full histogram equalization under deep compression (the paper's
  /// regime).  Set 1.0 for the paper-pure GHE at every range — the
  /// ablation benchmark compares both.
  double equalization_strength = -1.0;
  /// When true, the exact-search mode finishes with a concurrent
  /// brightness-scaling pass: β is bisected below g_max/255 (holding Λ
  /// fixed) as long as the measured distortion stays within budget —
  /// the same brightness/contrast trade CBCS [5] exploits, which the
  /// DBS formulation (min power s.t. D <= D_max) permits.  Hardware
  /// realization is unchanged: the same ladder program at a dimmer
  /// backlight.  Disable for the paper-pure pipeline.
  bool concurrent_scaling = true;
  /// When true (default), the exact search narrows the range bracket and
  /// predicts the β bisection path on a decimated proxy of the frame
  /// before touching the full-resolution evaluator, and every exact
  /// probe it does make is verified the same way the temporal warm path
  /// is (DESIGN.md §11).  The result is bit-identical to the frozen
  /// cold bisection under the §9 monotonicity contract; set false for
  /// that frozen reference search (the fuzz baseline).
  bool coarse_search = true;
  /// Distortion metric configuration (paper default: UIQI over HVS).
  hebs::quality::DistortionOptions distortion;
};

/// Everything HEBS produced for one image.
struct HebsResult {
  /// The operating point: ψ = Λ (the displayed luminance equals the
  /// coarsened transform) and β = g_max/255.
  OperatingPoint point;
  /// Exact GHE transformation Φ (one breakpoint per level).
  hebs::transform::PwlCurve phi;
  /// PLC approximation Λ actually deployed.
  hebs::transform::PwlCurve lambda;
  /// Mean squared error of Λ against Φ (the PLC objective).
  double plc_mse = 0.0;
  /// Target range used ([g_min, g_max]).
  GheTarget target;
  /// Measured distortion/power of the operating point.
  EvaluatedPoint evaluation;
};

/// Steps 2-4 at a fixed dynamic range R (g_max = g_min + R).
HebsResult hebs_at_range(const hebs::image::GrayImage& image, int range,
                         const HebsOptions& opts,
                         const hebs::power::LcdSubsystemPower& power_model);

/// The deployed flow of Fig. 4: R looked up from the distortion
/// characteristic curve (worst-case fit, so the budget is honored
/// conservatively), then steps 2-4.
HebsResult hebs_with_curve(const hebs::image::GrayImage& image,
                           double d_max_percent, const DistortionCurve& curve,
                           const HebsOptions& opts,
                           const hebs::power::LcdSubsystemPower& power_model);

/// Oracle mode: bisects R so the measured distortion lands on (just
/// under) the budget — maximizing savings at exactly the reported
/// distortion, as in the per-image rows of Table 1.
HebsResult hebs_exact(const hebs::image::GrayImage& image,
                      double d_max_percent, const HebsOptions& opts,
                      const hebs::power::LcdSubsystemPower& power_model);

/// HEBS as a DBS policy (exact mode), for head-to-head comparison with
/// the DLS/CBCS baselines.
class HebsPolicy : public DbsPolicy {
 public:
  explicit HebsPolicy(HebsOptions opts = {},
                      hebs::power::LcdSubsystemPower power_model =
                          hebs::power::LcdSubsystemPower::lp064v1());

  std::string name() const override;
  OperatingPoint choose(const hebs::image::GrayImage& image,
                        double d_max_percent) const override;

 private:
  HebsOptions opts_;
  hebs::power::LcdSubsystemPower power_model_;
};

}  // namespace hebs::core
