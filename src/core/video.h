// Frame-adaptive backlight scaling for video — the paper's future-work
// direction, implemented as an extension.
//
// Running HEBS independently per frame makes β track scene statistics,
// but abrupt β changes between visually similar frames read as backlight
// flicker.  The controller therefore rate-limits β transitions (with an
// exponential-moving-average target) while letting β jump freely across
// detected scene cuts, where the viewer expects a brightness change.
// Scene cuts are detected from the histogram L1 distance between
// consecutive frames.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dbs.h"
#include "core/hebs.h"

namespace hebs::pipeline {
class FrameContext;  // defined in pipeline/frame_context.h
class PipelineEngine;  // defined in pipeline/engine.h
}

namespace hebs::core {

/// Tunables of the video backlight controller.
struct VideoOptions {
  /// Per-frame distortion budget.
  double d_max_percent = 10.0;
  /// HEBS pipeline options.
  HebsOptions hebs;
  /// Maximum |Δβ| between consecutive frames outside scene cuts.
  double max_beta_step = 0.04;
  /// EMA coefficient pulling β toward the per-frame optimum (0..1].
  double ema_alpha = 0.5;
  /// Histogram L1 distance (0..2) above which a scene cut is declared.
  double scene_cut_threshold = 0.5;
  /// Worker threads for process_clip's engine-backed per-frame search;
  /// <= 0 selects the hardware concurrency.  Decisions are identical for
  /// every thread count.
  int num_threads = 0;
  /// Temporal-coherence fast path in process_clip (duplicate-frame
  /// reuse, incremental histograms, warm-started searches).  Decisions
  /// are bit-identical to the cold path under the monotone-distortion
  /// contract of DESIGN.md §9 (always within the distortion budget);
  /// disable for unconditional equality.
  bool temporal_reuse = true;
  /// Per-slot recycling buffer pools in process_clip (zero-allocation
  /// steady state).  Decisions are identical either way.
  bool use_buffer_pool = true;
  /// Soft per-frame deadline for process_clip's engine-backed search,
  /// microseconds; 0 = none.  See EngineOptions::frame_deadline_us.
  std::int64_t frame_deadline_us = 0;
};

/// What the controller decided for one frame.
struct FrameDecision {
  /// β the per-frame HEBS optimization asked for.
  double raw_beta = 1.0;
  /// β actually applied after flicker control.
  double beta = 1.0;
  /// Whether this frame was treated as a scene cut.
  bool scene_cut = false;
  /// The applied operating point (Λ re-derived for the applied β).
  OperatingPoint point;
  /// Measured distortion/power at the applied point.
  EvaluatedPoint evaluation;
};

/// Stateful per-frame controller.
class VideoBacklightController {
 public:
  VideoBacklightController(VideoOptions opts,
                           hebs::power::LcdSubsystemPower power_model =
                               hebs::power::LcdSubsystemPower::lp064v1());

  /// Processes the next frame of the stream.
  FrameDecision process(const hebs::image::GrayImage& frame);

  /// Processes a whole clip and returns one decision per frame.  Backed
  /// by the PipelineEngine: the per-frame HEBS searches run on the pool
  /// (opts.num_threads wide) while flicker control is applied strictly
  /// in frame order, so the decisions match serial process() calls
  /// bit-for-bit.
  std::vector<FrameDecision> process_clip(
      const std::vector<hebs::image::GrayImage>& frames);

  /// Resets stream state (β history and previous histogram).
  void reset();

  const VideoOptions& options() const noexcept { return opts_; }
  const hebs::power::LcdSubsystemPower& power_model() const noexcept {
    return power_model_;
  }

  /// Flicker metric over a processed clip: the largest |Δβ| between
  /// consecutive non-scene-cut frames.
  static double max_flicker_step(const std::vector<FrameDecision>& clip);

 private:
  // The ordered post-stage: given the raw per-frame HEBS result (from
  // `ctx`'s frame), applies scene-cut detection and the β rate limit,
  // re-derives the transform for the applied β, and advances the
  // controller's stream state.  Private because calling it out of frame
  // order corrupts the flicker filter's history; process() and the
  // engine's stream mode (the befriended PipelineEngine) are the only
  // ordered consumers.
  friend class hebs::pipeline::PipelineEngine;
  FrameDecision apply_flicker_control(hebs::pipeline::FrameContext& ctx,
                                      const HebsResult& raw);

  /// The ordered post-stage for a frame whose search was contained as a
  /// fault (engine stream mode): emits the identity decision carried by
  /// `fallback` (β = 1 — the provably-safe point; dimming through a
  /// rate-limited β would need the quarantined frame state to re-derive
  /// Λ) and resets the flicker history, treating the degraded frame as
  /// a stream discontinuity.  This is what makes every frame after a
  /// fault bit-identical to a cold run started there: the controller
  /// restarts exactly as it would at a clip boundary.
  FrameDecision apply_degraded(const HebsResult& fallback);

  VideoOptions opts_;
  hebs::power::LcdSubsystemPower power_model_;
  std::optional<double> prev_beta_;
  std::optional<hebs::histogram::Histogram> prev_hist_;
};

}  // namespace hebs::core
