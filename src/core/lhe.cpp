#include "core/lhe.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::core {

hebs::histogram::Histogram clip_histogram(
    const hebs::histogram::Histogram& hist, double clip_limit) {
  if (clip_limit <= 0.0 || hist.empty()) return hist;
  const double uniform_mass =
      static_cast<double>(hist.total()) /
      hebs::histogram::Histogram::kBins;
  const auto cap =
      static_cast<std::uint64_t>(std::ceil(clip_limit * uniform_mass));
  std::vector<std::uint64_t> counts(hebs::histogram::Histogram::kBins);
  std::uint64_t excess = 0;
  for (int i = 0; i < hebs::histogram::Histogram::kBins; ++i) {
    const std::uint64_t c = hist.count(i);
    counts[static_cast<std::size_t>(i)] = std::min(c, cap);
    excess += c - counts[static_cast<std::size_t>(i)];
  }
  // Redistribute the clipped mass uniformly; the remainder goes to the
  // first bins so the total is exactly preserved.
  const std::uint64_t share = excess / hebs::histogram::Histogram::kBins;
  std::uint64_t remainder = excess % hebs::histogram::Histogram::kBins;
  for (auto& c : counts) {
    c += share;
    if (remainder > 0) {
      ++c;
      --remainder;
    }
  }
  return hebs::histogram::Histogram::from_counts(counts);
}

hebs::image::GrayImage lhe_apply(const hebs::image::GrayImage& image,
                                 const GheTarget& target,
                                 const LheOptions& opts) {
  HEBS_REQUIRE(!image.empty(), "LHE of an empty image");
  HEBS_REQUIRE(opts.tiles >= 1, "need at least one tile");
  HEBS_REQUIRE(image.width() >= opts.tiles && image.height() >= opts.tiles,
               "more tiles than pixels");

  const int tiles = opts.tiles;
  // Per-tile equalization LUT (as a float curve evaluated per level).
  std::vector<hebs::transform::PwlCurve> tile_curve;
  tile_curve.reserve(static_cast<std::size_t>(tiles) * tiles);
  const double tile_w =
      static_cast<double>(image.width()) / tiles;
  const double tile_h =
      static_cast<double>(image.height()) / tiles;
  for (int ty = 0; ty < tiles; ++ty) {
    for (int tx = 0; tx < tiles; ++tx) {
      const int x0 = static_cast<int>(tx * tile_w);
      const int y0 = static_cast<int>(ty * tile_h);
      const int x1 = tx + 1 == tiles ? image.width()
                                     : static_cast<int>((tx + 1) * tile_w);
      const int y1 = ty + 1 == tiles
                         ? image.height()
                         : static_cast<int>((ty + 1) * tile_h);
      hebs::histogram::Histogram hist;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          hist.add(image(x, y));
        }
      }
      tile_curve.push_back(
          ghe_transform(clip_histogram(hist, opts.clip_limit), target));
    }
  }

  // Bilinear interpolation between the four surrounding tile centers.
  auto curve_at = [&](int tx, int ty) -> const hebs::transform::PwlCurve& {
    tx = std::clamp(tx, 0, tiles - 1);
    ty = std::clamp(ty, 0, tiles - 1);
    return tile_curve[static_cast<std::size_t>(ty) * tiles + tx];
  };

  hebs::image::GrayImage out(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    // Position in tile-center coordinates.
    const double fy = (y + 0.5) / tile_h - 0.5;
    const int ty0 = static_cast<int>(std::floor(fy));
    const double wy = fy - std::floor(fy);
    for (int x = 0; x < image.width(); ++x) {
      const double fx = (x + 0.5) / tile_w - 0.5;
      const int tx0 = static_cast<int>(std::floor(fx));
      const double wx = fx - std::floor(fx);
      const double xn =
          static_cast<double>(image(x, y)) / hebs::image::kMaxPixel;
      const double v00 = curve_at(tx0, ty0)(xn);
      const double v10 = curve_at(tx0 + 1, ty0)(xn);
      const double v01 = curve_at(tx0, ty0 + 1)(xn);
      const double v11 = curve_at(tx0 + 1, ty0 + 1)(xn);
      const double v = util::lerp(util::lerp(v00, v10, wx),
                                  util::lerp(v01, v11, wx), wy);
      out(x, y) = static_cast<std::uint8_t>(
          std::lround(util::clamp01(v) * hebs::image::kMaxPixel));
    }
  }
  return out;
}

}  // namespace hebs::core
