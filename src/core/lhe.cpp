#include "core/lhe.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::core {

hebs::histogram::Histogram clip_histogram(
    const hebs::histogram::Histogram& hist, double clip_limit) {
  if (clip_limit <= 0.0 || hist.empty()) return hist;
  const double uniform_mass =
      static_cast<double>(hist.total()) /
      hebs::histogram::Histogram::kBins;
  const auto cap =
      static_cast<std::uint64_t>(std::ceil(clip_limit * uniform_mass));
  constexpr int kBins = hebs::histogram::Histogram::kBins;
  std::vector<std::uint64_t> counts(kBins);
  std::uint64_t excess = 0;
  for (int i = 0; i < kBins; ++i) {
    const std::uint64_t c = hist.count(i);
    counts[static_cast<std::size_t>(i)] = std::min(c, cap);
    excess += c - counts[static_cast<std::size_t>(i)];
  }
  // Redistribute the clipped mass uniformly over the bins still below
  // the cap, never lifting any bin above it (the documented invariant:
  // max(count) <= cap).  A round's equal share can overfill a nearly
  // full bin, so the overflow re-enters the excess and the loop runs
  // again over the remaining sub-cap bins; each round places at least
  // one unit, and a sub-cap bin always exists while excess > 0
  // (cap >= ceil(total/kBins), so all-bins-at-cap already holds the
  // whole mass), so the loop terminates with the total exactly
  // preserved.
  while (excess > 0) {
    std::uint64_t open = 0;
    for (const auto c : counts) {
      if (c < cap) ++open;
    }
    if (open == 0) {
      // Only reachable for clip_limit < 1, where kBins * cap can be
      // smaller than the total and the cap is unsatisfiable; the
      // closest achievable shape is uniform, so the leftover spills
      // evenly (first bins take the remainder).
      const std::uint64_t share = excess / kBins;
      std::uint64_t remainder = excess % kBins;
      for (auto& c : counts) {
        c += share;
        if (remainder > 0) {
          ++c;
          --remainder;
        }
      }
      break;
    }
    const std::uint64_t share = excess / open;
    std::uint64_t remainder = excess % open;
    excess = 0;
    for (auto& c : counts) {
      if (c >= cap) continue;
      std::uint64_t give = share;
      if (remainder > 0) {
        ++give;
        --remainder;
      }
      const std::uint64_t take = std::min(give, cap - c);
      c += take;
      excess += give - take;
    }
  }
  return hebs::histogram::Histogram::from_counts(counts);
}

hebs::image::GrayImage lhe_apply(const hebs::image::GrayImage& image,
                                 const GheTarget& target,
                                 const LheOptions& opts) {
  HEBS_REQUIRE(!image.empty(), "LHE of an empty image");
  HEBS_REQUIRE(opts.tiles >= 1, "need at least one tile");
  HEBS_REQUIRE(image.width() >= opts.tiles && image.height() >= opts.tiles,
               "more tiles than pixels");

  const int tiles = opts.tiles;
  // Per-tile equalization table.  The inner loop only ever samples a
  // tile's transform at the 256 quantized levels, so each PWL curve is
  // evaluated once per level into a 256-entry LUT here and the per-pixel
  // work becomes four table reads — bit-identical to evaluating the
  // curve per pixel (same inputs, same arithmetic, done once).
  using TileLut = std::array<double, hebs::image::kLevels>;
  std::vector<TileLut> tile_lut;
  tile_lut.reserve(static_cast<std::size_t>(tiles) * tiles);
  const double tile_w =
      static_cast<double>(image.width()) / tiles;
  const double tile_h =
      static_cast<double>(image.height()) / tiles;
  for (int ty = 0; ty < tiles; ++ty) {
    for (int tx = 0; tx < tiles; ++tx) {
      const int x0 = static_cast<int>(tx * tile_w);
      const int y0 = static_cast<int>(ty * tile_h);
      const int x1 = tx + 1 == tiles ? image.width()
                                     : static_cast<int>((tx + 1) * tile_w);
      const int y1 = ty + 1 == tiles
                         ? image.height()
                         : static_cast<int>((ty + 1) * tile_h);
      hebs::histogram::Histogram hist;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          hist.add(image(x, y));
        }
      }
      const hebs::transform::PwlCurve curve =
          ghe_transform(clip_histogram(hist, opts.clip_limit), target);
      TileLut lut;
      for (int level = 0; level < hebs::image::kLevels; ++level) {
        lut[static_cast<std::size_t>(level)] =
            curve(static_cast<double>(level) / hebs::image::kMaxPixel);
      }
      tile_lut.push_back(lut);
    }
  }

  // Bilinear interpolation between the four surrounding tile centers.
  auto lut_at = [&](int tx, int ty) -> const TileLut& {
    tx = std::clamp(tx, 0, tiles - 1);
    ty = std::clamp(ty, 0, tiles - 1);
    return tile_lut[static_cast<std::size_t>(ty) * tiles + tx];
  };

  hebs::image::GrayImage out(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    // Position in tile-center coordinates.
    const double fy = (y + 0.5) / tile_h - 0.5;
    const int ty0 = static_cast<int>(std::floor(fy));
    const double wy = fy - std::floor(fy);
    for (int x = 0; x < image.width(); ++x) {
      const double fx = (x + 0.5) / tile_w - 0.5;
      const int tx0 = static_cast<int>(std::floor(fx));
      const double wx = fx - std::floor(fx);
      const std::size_t level = image(x, y);
      const double v00 = lut_at(tx0, ty0)[level];
      const double v10 = lut_at(tx0 + 1, ty0)[level];
      const double v01 = lut_at(tx0, ty0 + 1)[level];
      const double v11 = lut_at(tx0 + 1, ty0 + 1)[level];
      const double v = util::lerp(util::lerp(v00, v10, wx),
                                  util::lerp(v01, v11, wx), wy);
      out(x, y) = static_cast<std::uint8_t>(
          std::lround(util::clamp01(v) * hebs::image::kMaxPixel));
    }
  }
  return out;
}

}  // namespace hebs::core
