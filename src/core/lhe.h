// Local (tiled) histogram equalization — the paper's §6 future work:
// "alternative ... histogram equalization methods will be evaluated".
//
// Global HE spends one transformation on the whole frame; local HE
// computes a GHE transform per tile and bilinearly interpolates between
// neighbouring tiles' transforms (the CLAHE construction), so each
// region's contrast budget is allocated from its own statistics.  An
// optional clip limit caps any single level's histogram mass before
// equalization, bounding noise amplification in flat tiles.
//
// Hardware note: the resulting transform varies across the screen, which
// a single reference-voltage ladder cannot realize — this variant is a
// software-path-only extension (per-region ladders or per-scanline
// reprogramming would be needed).  The LHE ablation benchmark quantifies
// what that extra hardware would buy.
#pragma once

#include "core/ghe.h"
#include "image/image.h"

namespace hebs::core {

/// Tunables of the local equalization.
struct LheOptions {
  /// Tiles per axis (1 degenerates to global GHE).
  int tiles = 4;
  /// Histogram clip limit as a multiple of the uniform bin mass; mass
  /// above the cap is redistributed equally (<= 0 disables clipping).
  double clip_limit = 4.0;
};

/// Applies local histogram equalization toward the target range and
/// returns the displayed image (pixel values in [g_min, g_max]).
hebs::image::GrayImage lhe_apply(const hebs::image::GrayImage& image,
                                 const GheTarget& target,
                                 const LheOptions& opts = {});

/// Clips a histogram at cap = ceil(clip_limit * uniform bin mass) and
/// redistributes the excess uniformly over the bins still below the
/// cap (total exactly preserved).  For clip_limit >= 1 the result
/// satisfies max(count) <= cap; a sub-1 limit can make the cap hold
/// less than the total mass, in which case the closest achievable
/// shape — uniform — is returned.
hebs::histogram::Histogram clip_histogram(
    const hebs::histogram::Histogram& hist, double clip_limit);

}  // namespace hebs::core
