#include "core/plc.h"

#include <algorithm>
#include <limits>

#include "util/error.h"
#include "util/pool.h"

namespace hebs::core {

namespace {

/// O(1) chord-error oracle over a point list, built on prefix sums.
///
/// For the chord from p_j to p_i, the error at an interior point p_k is
/// d_k = (y_k - y_j) - s (x_k - x_j) with s the chord slope; the summed
/// squared error expands into prefix sums of y, y², x, x², xy and cross
/// terms, all precomputable.
class ChordError {
 public:
  explicit ChordError(const hebs::transform::PwlCurve::PointList& pts)
      : px_(pts.size()),
        py_(pts.size()),
        sx_(pts.size() + 1, 0.0),
        sy_(pts.size() + 1, 0.0),
        sxx_(pts.size() + 1, 0.0),
        syy_(pts.size() + 1, 0.0),
        sxy_(pts.size() + 1, 0.0) {
    for (std::size_t k = 0; k < pts.size(); ++k) {
      px_[k] = pts[k].x;
      py_[k] = pts[k].y;
      sx_[k + 1] = sx_[k] + pts[k].x;
      sy_[k + 1] = sy_[k] + pts[k].y;
      sxx_[k + 1] = sxx_[k] + pts[k].x * pts[k].x;
      syy_[k + 1] = syy_[k] + pts[k].y * pts[k].y;
      sxy_[k + 1] = sxy_[k] + pts[k].x * pts[k].y;
    }
  }

  /// All chord-endpoint terms that depend only on i, hoisted out of the
  /// DP's inner j loop: the loop body then touches six j-indexed loads
  /// instead of re-reading the i-side prefix sums per candidate.  The
  /// arithmetic (operations and their order) is exactly operator()'s,
  /// so the error values are bit-identical.
  class Tail {
   public:
    Tail(const ChordError& ce, std::size_t i)
        : ce_(ce),
          pix_(ce.px_[i]),
          piy_(ce.py_[i]),
          sxi_(ce.sx_[i + 1]),
          syi_(ce.sy_[i + 1]),
          sxxi_(ce.sxx_[i + 1]),
          syyi_(ce.syy_[i + 1]),
          sxyi_(ce.sxy_[i + 1]),
          i_(i) {}

    /// Squared error of the chord p_j -> p_i over points j..i.
    double operator()(std::size_t j) const {
      const double pjx = ce_.px_[j];
      const double pjy = ce_.py_[j];
      const double s = (piy_ - pjy) / (pix_ - pjx);
      // Range sums over k in [j, i].
      const double n = static_cast<double>(i_ - j + 1);
      const double sum_x = sxi_ - ce_.sx_[j];
      const double sum_y = syi_ - ce_.sy_[j];
      const double sum_xx = sxxi_ - ce_.sxx_[j];
      const double sum_yy = syyi_ - ce_.syy_[j];
      const double sum_xy = sxyi_ - ce_.sxy_[j];
      // Sum over k of ((y_k - y_j) - s (x_k - x_j))^2
      //  = Σ dy²  - 2 s Σ dx dy + s² Σ dx²
      const double sum_dyy =
          sum_yy - 2.0 * pjy * sum_y + n * pjy * pjy;
      const double sum_dxx =
          sum_xx - 2.0 * pjx * sum_x + n * pjx * pjx;
      const double sum_dxy = sum_xy - pjx * sum_y - pjy * sum_x +
                             n * pjx * pjy;
      const double err = sum_dyy - 2.0 * s * sum_dxy + s * s * sum_dxx;
      return err > 0.0 ? err : 0.0;  // guard fp cancellation
    }

   private:
    const ChordError& ce_;
    const double pix_, piy_;
    const double sxi_, syi_, sxxi_, syyi_, sxyi_;
    const std::size_t i_;
  };

  Tail tail(std::size_t i) const { return Tail(*this, i); }

  /// One-off evaluation (the seeded scan start).
  double operator()(std::size_t j, std::size_t i) const {
    return tail(i)(j);
  }

 private:
  hebs::util::PoolVector<double> px_, py_;
  hebs::util::PoolVector<double> sx_, sy_, sxx_, syy_, sxy_;
};

}  // namespace

PlcResult plc_coarsen(const hebs::transform::PwlCurve& exact, int segments) {
  HEBS_REQUIRE(segments >= 1, "need at least one segment");
  const auto& pts = exact.points();
  const std::size_t n = pts.size();
  HEBS_REQUIRE(n >= 2, "cannot coarsen a degenerate curve");

  PlcResult result;
  if (static_cast<std::size_t>(segments) >= n - 1) {
    result.curve = exact;
    result.mse = 0.0;
    result.breakpoint_indices.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.breakpoint_indices[i] = i;
    return result;
  }

  const ChordError chord(pts);
  const auto m = static_cast<std::size_t>(segments);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // best[s][i]: minimal squared error of approximating points 0..i with s
  // segments ending exactly at point i.  parent[s][i] reconstructs the
  // chosen breakpoints.  Flat row-per-segment storage keeps the inner
  // loop on two contiguous rows; iterating s outermost consumes row s-1
  // sequentially.
  hebs::util::PoolVector<double> best((m + 1) * n, kInf);
  hebs::util::PoolVector<std::size_t> parent((m + 1) * n, 0);
  best[0] = 0.0;  // best[0][0]
  for (std::size_t s = 1; s <= m; ++s) {
    const double* prev = best.data() + (s - 1) * n;
    double* cur = best.data() + s * n;
    std::size_t* par = parent.data() + s * n;
    for (std::size_t i = s; i < n; ++i) {
      const ChordError::Tail chord_i = chord.tail(i);
      // Seed the scan with the previous column's parent — usually near
      // the optimum, so the bound below is tight from the start.  The
      // selection rule (strictly smaller value, or equal value at a
      // smaller j) makes the result independent of the seed: it is
      // always the lowest-j argmin, exactly what a plain ascending scan
      // with strict `<` produces.
      std::size_t row_parent = i > s ? par[i - 1] : s - 1;
      double row_best = prev[row_parent] + chord_i(row_parent);
      for (std::size_t j = s - 1; j < i; ++j) {
        // candidate = prev[j] + chord(j, i) >= prev[j]: when prev[j]
        // already loses, skip the chord evaluation (and its division).
        // Equality can win only through a zero-error chord at j <
        // row_parent (the tie rule), so j >= row_parent is prunable at
        // equality too.
        if (prev[j] > row_best ||
            (prev[j] == row_best && j >= row_parent)) {
          continue;
        }
        const double candidate = prev[j] + chord_i(j);
        if (candidate < row_best ||
            (candidate == row_best && j < row_parent)) {
          row_best = candidate;
          row_parent = j;
        }
      }
      cur[i] = row_best;
      par[i] = row_parent;
    }
  }

  // The approximation may use fewer than m segments if that is already
  // optimal (extra segments can only help, so take the best s <= m).
  std::size_t best_s = m;
  for (std::size_t s = 1; s <= m; ++s) {
    if (best[s * n + n - 1] < best[best_s * n + n - 1]) best_s = s;
  }
  HEBS_REQUIRE(best[best_s * n + n - 1] < kInf,
               "PLC DP failed to reach the end");

  hebs::util::PoolVector<std::size_t> chosen;
  std::size_t i = n - 1;
  std::size_t s = best_s;
  while (true) {
    chosen.push_back(i);
    if (s == 0) break;
    i = parent[s * n + i];
    --s;
  }
  std::reverse(chosen.begin(), chosen.end());

  hebs::transform::PwlCurve::PointList qpts;
  qpts.reserve(chosen.size());
  for (std::size_t idx : chosen) qpts.push_back(pts[idx]);

  result.curve = hebs::transform::PwlCurve(std::move(qpts));
  result.mse = best[best_s * n + n - 1] / static_cast<double>(n);
  result.breakpoint_indices = std::move(chosen);
  return result;
}

}  // namespace hebs::core
