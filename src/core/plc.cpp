#include "core/plc.h"

#include <algorithm>
#include <limits>

#include "kernels/kernels.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/pool.h"

namespace hebs::core {

namespace {

/// O(1) chord-error oracle over a point list, built on prefix sums.
///
/// For the chord from p_j to p_i, the error at an interior point p_k is
/// d_k = (y_k - y_j) - s (x_k - x_j) with s the chord slope; the summed
/// squared error expands into prefix sums of y, y², x, x², xy and cross
/// terms, all precomputable.  The per-candidate arithmetic lives in the
/// kernel layer (plc_scan_f64 / ref::plc_chord_err); this class owns the
/// tables and hoists the i-side terms out of the DP's inner j loop.
class ChordError {
 public:
  explicit ChordError(const hebs::transform::PwlCurve::PointList& pts)
      : px_(pts.size()),
        py_(pts.size()),
        sx_(pts.size() + 1, 0.0),
        sy_(pts.size() + 1, 0.0),
        sxx_(pts.size() + 1, 0.0),
        syy_(pts.size() + 1, 0.0),
        sxy_(pts.size() + 1, 0.0) {
    for (std::size_t k = 0; k < pts.size(); ++k) {
      px_[k] = pts[k].x;
      py_[k] = pts[k].y;
      sx_[k + 1] = sx_[k] + pts[k].x;
      sy_[k + 1] = sy_[k] + pts[k].y;
      sxx_[k + 1] = sxx_[k] + pts[k].x * pts[k].x;
      syy_[k + 1] = syy_[k] + pts[k].y * pts[k].y;
      sxy_[k + 1] = sxy_[k] + pts[k].x * pts[k].y;
    }
  }

  /// Fills the table pointers and the hoisted i-side terms of one scan.
  void fill(hebs::kernels::PlcScanArgs& a, std::size_t i) const {
    a.px = px_.data();
    a.py = py_.data();
    a.sx = sx_.data();
    a.sy = sy_.data();
    a.sxx = sxx_.data();
    a.syy = syy_.data();
    a.sxy = sxy_.data();
    a.pix = px_[i];
    a.piy = py_[i];
    a.sxi = sx_[i + 1];
    a.syi = sy_[i + 1];
    a.sxxi = sxx_[i + 1];
    a.syyi = syy_[i + 1];
    a.sxyi = sxy_[i + 1];
    a.i = i;
  }

 private:
  hebs::util::PoolVector<double> px_, py_;
  hebs::util::PoolVector<double> sx_, sy_, sxx_, syy_, sxy_;
};

/// Candidate-count ceiling for the DP.  The program is O(m n²) (with
/// pruning) in the breakpoint candidates, which is fine on the 8-bit
/// (257-point) and 10-bit (1025-point) lattices but takes tens of
/// seconds on a dense 16-bit curve (65536 points per ghe_transform).
/// Above the cap the candidate set is uniformly decimated — endpoints
/// always kept — before the DP runs.  Lattices at or below the cap are
/// untouched, so u8/u10 results stay byte-for-byte identical.
constexpr std::size_t kMaxDpPoints = 4096;

}  // namespace

PlcResult plc_coarsen(const hebs::transform::PwlCurve& exact, int segments) {
  HEBS_REQUIRE(segments >= 1, "need at least one segment");
  const auto& pts = exact.points();
  const std::size_t n = pts.size();
  HEBS_REQUIRE(n >= 2, "cannot coarsen a degenerate curve");

  if (n > kMaxDpPoints) {
    const std::size_t stride = (n - 2) / (kMaxDpPoints - 1) + 1;
    hebs::util::PoolVector<std::size_t> sel;
    sel.reserve(kMaxDpPoints + 1);
    for (std::size_t i = 0; i + 1 < n; i += stride) sel.push_back(i);
    sel.push_back(n - 1);
    hebs::transform::PwlCurve::PointList sub;
    sub.reserve(sel.size());
    for (std::size_t idx : sel) sub.push_back(pts[idx]);
    PlcResult result =
        plc_coarsen(hebs::transform::PwlCurve(std::move(sub)), segments);
    for (std::size_t& idx : result.breakpoint_indices) idx = sel[idx];
    return result;
  }

  PlcResult result;
  if (static_cast<std::size_t>(segments) >= n - 1) {
    result.curve = exact;
    result.mse = 0.0;
    result.breakpoint_indices.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.breakpoint_indices[i] = i;
    return result;
  }

  const ChordError chord(pts);
  const auto m = static_cast<std::size_t>(segments);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // best[s][i]: minimal squared error of approximating points 0..i with s
  // segments ending exactly at point i.  parent[s][i] reconstructs the
  // chosen breakpoints.  Flat row-per-segment storage keeps the inner
  // loop on two contiguous rows; iterating s outermost consumes row s-1
  // sequentially.
  hebs::util::PoolVector<double> best((m + 1) * n, kInf);
  hebs::util::PoolVector<std::size_t> parent((m + 1) * n, 0);
  best[0] = 0.0;  // best[0][0]
  const auto& kn = hebs::kernels::active();
  for (std::size_t s = 1; s <= m; ++s) {
    const double* prev = best.data() + (s - 1) * n;
    double* cur = best.data() + s * n;
    std::size_t* par = parent.data() + s * n;
    // Each column i depends only on row s-1, so the i-loop fans across
    // the installed row executor.  The scan seed is only a performance
    // hint (the kernel's result is always the lowest-j argmin, exactly
    // a plain ascending scan with strict `<`), so chunk-first columns
    // seeding with s-1 instead of par[i-1] cannot change any output.
    hebs::util::parallel_rows(
        static_cast<int>(n - s), [&](int begin, int end) {
          hebs::kernels::PlcScanArgs args;
          args.prev = prev;
          args.j_begin = s - 1;
          for (int t = begin; t < end; ++t) {
            const std::size_t i = s + static_cast<std::size_t>(t);
            chord.fill(args, i);
            // Seed with the previous column's parent — usually near the
            // optimum, so the kernel's prune bound is tight from the
            // start.
            args.j_seed = t > begin ? par[i - 1] : s - 1;
            std::size_t pj = 0;
            cur[i] = kn.plc_scan_f64(&args, &pj);
            par[i] = pj;
          }
        });
  }

  // The approximation may use fewer than m segments if that is already
  // optimal (extra segments can only help, so take the best s <= m).
  std::size_t best_s = m;
  for (std::size_t s = 1; s <= m; ++s) {
    if (best[s * n + n - 1] < best[best_s * n + n - 1]) best_s = s;
  }
  HEBS_REQUIRE(best[best_s * n + n - 1] < kInf,
               "PLC DP failed to reach the end");

  hebs::util::PoolVector<std::size_t> chosen;
  std::size_t i = n - 1;
  std::size_t s = best_s;
  while (true) {
    chosen.push_back(i);
    if (s == 0) break;
    i = parent[s * n + i];
    --s;
  }
  std::reverse(chosen.begin(), chosen.end());

  hebs::transform::PwlCurve::PointList qpts;
  qpts.reserve(chosen.size());
  for (std::size_t idx : chosen) qpts.push_back(pts[idx]);

  result.curve = hebs::transform::PwlCurve(std::move(qpts));
  result.mse = best[best_s * n + n - 1] / static_cast<double>(n);
  result.breakpoint_indices = std::move(chosen);
  return result;
}

}  // namespace hebs::core
