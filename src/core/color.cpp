#include "core/color.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "kernels/kernels.h"
#include "util/error.h"
#include "util/mathutil.h"
#include "util/pool.h"

namespace hebs::core {

const char* color_mode_name(ColorMode mode) noexcept {
  switch (mode) {
    case ColorMode::kSharedCurve: return "shared-curve";
    case ColorMode::kLumaRatio: return "luma-ratio";
  }
  return "unknown";
}

bool parse_color_mode(std::string_view name, ColorMode* out) noexcept {
  if (name == "shared-curve") {
    *out = ColorMode::kSharedCurve;
    return true;
  }
  if (name == "luma-ratio") {
    *out = ColorMode::kLumaRatio;
    return true;
  }
  return false;
}

namespace {

/// The paper's §2 application: the shared 8-bit quantized curve drives
/// every sub-pixel byte, one dispatched kernel call per image.
hebs::image::RgbImage apply_shared_curve(const hebs::image::RgbImage& image,
                                         const hebs::transform::Lut& lut) {
  hebs::image::RgbImage out(image.width(), image.height());
  const std::size_t pixels =
      static_cast<std::size_t>(image.width()) * image.height();
  std::array<std::uint8_t, hebs::transform::Lut::kSize> table;
  for (int i = 0; i < hebs::transform::Lut::kSize; ++i) {
    table[static_cast<std::size_t>(i)] = lut[i];
  }
  hebs::kernels::active().lut_apply_rgb8(image.data().data(), pixels,
                                         table.data(), out.data().data());
  return out;
}

/// Chroma-preserving application: per pixel, luma y maps to ψ(y) and
/// all channels scale by the shared factor 255·ψ(y)/y.  The division
/// is hoisted per level (256 entries), so the inner loop is one table
/// read and three mul/round/clamp per pixel.  `luma` (nullable) is the
/// caller's already-extracted image.to_luma() raster; without it the
/// extraction kernel runs here row by row.
hebs::image::RgbImage apply_luma_ratio(const hebs::image::RgbImage& image,
                                       const hebs::transform::FloatLut& levels,
                                       const hebs::transform::Lut& qlut,
                                       double beta,
                                       const hebs::image::GrayImage* luma) {
  hebs::image::RgbImage out(image.width(), image.height());
  // scale[y] = 255·ψ(y)/y; y == 0 has no ratio (flagged negative).
  std::array<double, hebs::transform::FloatLut::kSize> scale;
  scale[0] = -1.0;
  for (int y = 1; y < hebs::transform::FloatLut::kSize; ++y) {
    scale[static_cast<std::size_t>(y)] =
        levels[y] * static_cast<double>(hebs::image::kMaxPixel) /
        static_cast<double>(y);
  }
  // A scaled channel clamps at the backlight's physical ceiling β —
  // transmittance cannot exceed one, so no sub-pixel can be displayed
  // brighter than β·255 (the same ceiling displayed_levels imposes on
  // the shared-curve mode).
  const double ceiling = beta * static_cast<double>(hebs::image::kMaxPixel);
  const int w = image.width();
  const auto& kernels = hebs::kernels::active();
  hebs::util::PoolVector<std::uint8_t> luma_row;
  if (luma == nullptr) luma_row.resize(static_cast<std::size_t>(w));
  const auto src = image.data();
  auto dst = out.data();
  for (int row = 0; row < image.height(); ++row) {
    const std::size_t base = static_cast<std::size_t>(row) * w * 3;
    const std::uint8_t* y_row;
    if (luma != nullptr) {
      y_row = luma->pixels().data() + static_cast<std::size_t>(row) * w;
    } else {
      kernels.luma_bt601_rgb8(src.data() + base, static_cast<std::size_t>(w),
                              luma_row.data());
      y_row = luma_row.data();
    }
    for (int x = 0; x < w; ++x) {
      const std::size_t p = base + static_cast<std::size_t>(x) * 3;
      const double s = scale[y_row[x]];
      if (s < 0.0) {
        // Zero luma: all channels are (near) black and carry no
        // ratio; the shared curve is the deterministic fallback.
        dst[p + 0] = qlut[src[p + 0]];
        dst[p + 1] = qlut[src[p + 1]];
        dst[p + 2] = qlut[src[p + 2]];
        continue;
      }
      for (int c = 0; c < 3; ++c) {
        dst[p + static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>(std::lround(std::min(
                s * src[p + static_cast<std::size_t>(c)], ceiling)));
      }
    }
  }
  return out;
}

}  // namespace

hebs::image::RgbImage apply_to_color(const hebs::image::RgbImage& image,
                                     const OperatingPoint& point,
                                     ColorMode mode,
                                     const hebs::image::GrayImage* luma) {
  HEBS_REQUIRE(!image.empty(), "cannot transform an empty image");
  HEBS_REQUIRE(point.beta > 0.0 && point.beta <= 1.0,
               "beta must be in (0, 1]");
  HEBS_REQUIRE(luma == nullptr || (luma->width() == image.width() &&
                                   luma->height() == image.height()),
               "luma raster does not match the image dimensions");
  // Per-level displayed luminance, shared by all channels: one sweep
  // over the curve, then the shared 8-bit quantization rule.
  const hebs::transform::FloatLut levels = displayed_levels(point);
  const hebs::transform::Lut lut = levels.quantize();
  if (mode == ColorMode::kLumaRatio) {
    return apply_luma_ratio(image, levels, lut, point.beta, luma);
  }
  return apply_shared_curve(image, lut);
}

ColorRendering render_color(const hebs::image::RgbImage& image,
                            const hebs::image::GrayImage& luma,
                            const OperatingPoint& point, ColorMode mode) {
  ColorRendering out;
  out.displayed = apply_to_color(image, point, mode, &luma);
  out.hue_error = chromaticity_error(image, out.displayed);
  return out;
}

double chromaticity_error(const hebs::image::RgbImage& a,
                          const hebs::image::RgbImage& b) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "chromaticity of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "chromaticity needs equal-size images");
  double acc = 0.0;
  std::size_t counted = 0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      const auto pa = a.get(x, y);
      const auto pb = b.get(x, y);
      const double sum_a = pa.r + pa.g + pa.b;
      const double sum_b = pb.r + pb.g + pb.b;
      if (sum_a < 1.0 || sum_b < 1.0) continue;  // black: no chroma
      acc += std::abs(pa.r / sum_a - pb.r / sum_b) +
             std::abs(pa.g / sum_a - pb.g / sum_b) +
             std::abs(pa.b / sum_a - pb.b / sum_b);
      ++counted;
    }
  }
  return counted > 0 ? acc / static_cast<double>(counted) : 0.0;
}

ColorHebsResult color_hebs_exact(
    const hebs::image::RgbImage& image, double d_max_percent,
    const HebsOptions& opts,
    const hebs::power::LcdSubsystemPower& power_model, ColorMode mode) {
  HEBS_REQUIRE(!image.empty(), "HEBS of an empty image");
  ColorHebsResult result;
  const hebs::image::GrayImage luma = image.to_luma();
  result.luma = hebs_exact(luma, d_max_percent, opts, power_model);
  // Hue error: clipping against β compresses bright channels more than
  // dim ones within a pixel, rotating its chromaticity (kSharedCurve);
  // kLumaRatio only drifts where a scaled channel saturates or rounds.
  ColorRendering rendering =
      render_color(image, luma, result.luma.point, mode);
  result.transformed = std::move(rendering.displayed);
  result.hue_error = rendering.hue_error;
  result.distortion_percent = result.luma.evaluation.distortion_percent;
  result.saving_percent = result.luma.evaluation.saving_percent;
  return result;
}

}  // namespace hebs::core
