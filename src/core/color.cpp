#include "core/color.h"

#include <array>
#include <cmath>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::core {

hebs::image::RgbImage apply_to_color(const hebs::image::RgbImage& image,
                                     const OperatingPoint& point) {
  HEBS_REQUIRE(!image.empty(), "cannot transform an empty image");
  HEBS_REQUIRE(point.beta > 0.0 && point.beta <= 1.0,
               "beta must be in (0, 1]");
  // Per-level displayed luminance, shared by all channels: one sweep
  // over the curve, then the shared 8-bit quantization rule.
  const hebs::transform::Lut lut = displayed_levels(point).quantize();
  hebs::image::RgbImage out(image.width(), image.height());
  const auto src = image.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = lut[src[i]];
  }
  return out;
}

double chromaticity_error(const hebs::image::RgbImage& a,
                          const hebs::image::RgbImage& b) {
  HEBS_REQUIRE(!a.empty() && !b.empty(), "chromaticity of empty image");
  HEBS_REQUIRE(a.width() == b.width() && a.height() == b.height(),
               "chromaticity needs equal-size images");
  double acc = 0.0;
  std::size_t counted = 0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      const auto pa = a.get(x, y);
      const auto pb = b.get(x, y);
      const double sum_a = pa.r + pa.g + pa.b;
      const double sum_b = pb.r + pb.g + pb.b;
      if (sum_a < 1.0 || sum_b < 1.0) continue;  // black: no chroma
      acc += std::abs(pa.r / sum_a - pb.r / sum_b) +
             std::abs(pa.g / sum_a - pb.g / sum_b) +
             std::abs(pa.b / sum_a - pb.b / sum_b);
      ++counted;
    }
  }
  return counted > 0 ? acc / static_cast<double>(counted) : 0.0;
}

ColorHebsResult color_hebs_exact(
    const hebs::image::RgbImage& image, double d_max_percent,
    const HebsOptions& opts,
    const hebs::power::LcdSubsystemPower& power_model) {
  HEBS_REQUIRE(!image.empty(), "HEBS of an empty image");
  ColorHebsResult result;
  const hebs::image::GrayImage luma = image.to_luma();
  result.luma = hebs_exact(luma, d_max_percent, opts, power_model);
  result.transformed = apply_to_color(image, result.luma.point);
  result.distortion_percent = result.luma.evaluation.distortion_percent;
  result.saving_percent = result.luma.evaluation.saving_percent;

  // Hue error: clipping against β compresses bright channels more than
  // dim ones within a pixel, rotating its chromaticity.
  result.hue_error = chromaticity_error(image, result.transformed);
  return result;
}

}  // namespace hebs::core
