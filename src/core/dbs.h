// The Dynamic Backlight Scaling (DBS) problem framing (§3 of the paper).
//
//   Given an original image F and a maximum tolerable distortion D_max,
//   find the backlight factor β and pixel transformation Φ minimizing
//   the LCD-subsystem power P(F', β) subject to D(F, F') <= D_max.
//
// Every dimming technique in the paper — HEBS, DLS [4] and CBCS [5] — is
// a policy for this problem.  To compare them on equal footing we
// normalize each to an *operating point*: the backlight factor β plus the
// effective displayed-luminance transform ψ, where ψ(x) is the normalized
// luminance the viewer perceives for original pixel x (ψ combines the
// pixel transformation with the backlight scaling and any hardware
// clipping: I' = β·t(Φ(x)) = ψ(x)).  Distortion is then D(F, ψ(F)) and
// power follows from β and the driven transmittances ψ(x)/β.
#pragma once

#include <memory>
#include <string>

#include "image/image.h"
#include "power/lcd_power.h"
#include "quality/distortion.h"
#include "transform/pwl.h"

namespace hebs::core {

/// A complete backlight-scaling decision for one image.
struct OperatingPoint {
  /// Effective displayed-luminance transform ψ (normalized domain).
  hebs::transform::PwlCurve luminance_transform;
  /// Backlight scaling factor β in (0, 1].
  double beta = 1.0;
};

/// The do-nothing operating point: identity transform at full backlight.
OperatingPoint identity_operating_point();

/// Per-level displayed luminance ψ(x) of an operating point: the
/// transform sampled at the 256 level centers, clipped by the physical
/// ceiling β (transmittance cannot exceed one).  One sweep over the
/// curve — the single definition the gray, color and pipeline paths all
/// share.
hebs::transform::FloatLut displayed_levels(const OperatingPoint& point);

/// Depth-generalized sampling: ψ at the `levels` level centers.
/// displayed_levels(point) is exactly displayed_levels(point, 256).
hebs::transform::FloatLut displayed_levels(const OperatingPoint& point,
                                           int levels);

/// Everything measured about an operating point on a concrete image.
struct EvaluatedPoint {
  OperatingPoint point;
  /// ψ(F) quantized to 8 bits — the paper's transformed image F'.
  /// Empty when the evaluation ran on a deep-pixel frame.
  hebs::image::GrayImage transformed;
  /// ψ(F) quantized on the frame's own level lattice for deep-pixel
  /// evaluations; empty on the 8-bit path.
  hebs::image::GrayImage16 transformed16;
  double distortion_percent = 0.0;
  double saving_percent = 0.0;
  hebs::power::PowerBreakdown power;   ///< power at the operating point
  hebs::power::PowerBreakdown reference_power;  ///< original at β = 1
};

/// Measures distortion and power of `point` on `original`.
EvaluatedPoint evaluate_operating_point(
    const hebs::image::GrayImage& original, const OperatingPoint& point,
    const hebs::power::LcdSubsystemPower& power_model,
    const hebs::quality::DistortionOptions& distortion = {});

/// Abstract DBS policy: picks an operating point given a distortion
/// budget.  Implementations: HebsPolicy (core), DLS and CBCS baselines.
class DbsPolicy {
 public:
  virtual ~DbsPolicy() = default;

  /// Human-readable policy name for tables.
  virtual std::string name() const = 0;

  /// Chooses an operating point with distortion <= `d_max_percent`
  /// (as measured by the policy's configured metric), minimizing power.
  virtual OperatingPoint choose(const hebs::image::GrayImage& image,
                                double d_max_percent) const = 0;
};

}  // namespace hebs::core
