#include "core/dbs.h"

#include <algorithm>

#include "core/hebs.h"
#include "pipeline/frame_context.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::core {

OperatingPoint identity_operating_point() {
  return {hebs::transform::PwlCurve::identity(), 1.0};
}

hebs::transform::FloatLut displayed_levels(const OperatingPoint& point) {
  return point.luminance_transform.sample_levels().map([&point](double y) {
    return std::min(point.beta, util::clamp01(y));
  });
}

hebs::transform::FloatLut displayed_levels(const OperatingPoint& point,
                                           int levels) {
  return point.luminance_transform.sample_levels(levels).map(
      [&point](double y) {
        return std::min(point.beta, util::clamp01(y));
      });
}

EvaluatedPoint evaluate_operating_point(
    const hebs::image::GrayImage& original, const OperatingPoint& point,
    const hebs::power::LcdSubsystemPower& power_model,
    const hebs::quality::DistortionOptions& distortion) {
  // One-shot wrapper over the pipeline's cached evaluator: a transient
  // FrameContext measures the point.  Callers probing many points on the
  // same image (policy searches, bisections) should hold their own
  // context and call FrameContext::evaluate directly — same numbers,
  // reference-side work paid once.
  HebsOptions opts;
  opts.distortion = distortion;
  pipeline::FrameContext ctx(original, opts, power_model);
  return ctx.evaluate(point);
}

}  // namespace hebs::core
