#include "core/dbs.h"

#include <cmath>

#include "histogram/histogram.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::core {

OperatingPoint identity_operating_point() {
  return {hebs::transform::PwlCurve::identity(), 1.0};
}

EvaluatedPoint evaluate_operating_point(
    const hebs::image::GrayImage& original, const OperatingPoint& point,
    const hebs::power::LcdSubsystemPower& power_model,
    const hebs::quality::DistortionOptions& distortion) {
  HEBS_REQUIRE(!original.empty(), "cannot evaluate on an empty image");
  HEBS_REQUIRE(point.beta > 0.0 && point.beta <= 1.0,
               "beta must be in (0, 1]");

  EvaluatedPoint out;
  out.point = point;

  // Per-level displayed luminance ψ(x), clipped by the physical ceiling β
  // (transmittance cannot exceed one).
  std::array<double, hebs::image::kLevels> lum{};
  for (int level = 0; level < hebs::image::kLevels; ++level) {
    const double x = static_cast<double>(level) / hebs::image::kMaxPixel;
    lum[static_cast<std::size_t>(level)] =
        std::min(point.beta, util::clamp01(point.luminance_transform(x)));
  }

  // Displayed-luminance rasters for the distortion metric.
  hebs::image::FloatImage displayed(original.width(), original.height());
  {
    auto dst = displayed.values();
    const auto src = original.pixels();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = lum[src[i]];
  }
  const auto reference = hebs::image::FloatImage::from_gray(original);
  out.distortion_percent =
      hebs::quality::distortion_percent(reference, displayed, distortion);
  out.transformed = displayed.to_gray();

  // Power: CCFL at β plus panel power at the driven transmittances
  // t(x) = ψ(x)/β, weighted by the original histogram.
  const auto hist = hebs::histogram::Histogram::from_image(original);
  double panel_watts = 0.0;
  for (int level = 0; level < hebs::histogram::Histogram::kBins; ++level) {
    const double t =
        util::clamp01(lum[static_cast<std::size_t>(level)] / point.beta);
    panel_watts += power_model.panel().pixel_power(t) *
                   static_cast<double>(hist.count(level));
  }
  panel_watts /= static_cast<double>(hist.total());
  out.power.ccfl_watts = power_model.ccfl().power(point.beta);
  out.power.panel_watts = panel_watts;

  out.reference_power = power_model.frame_power(hist, 1.0);
  const double before = out.reference_power.total();
  HEBS_REQUIRE(before > 0.0, "reference frame consumes no power");
  out.saving_percent = 100.0 * (1.0 - out.power.total() / before);
  return out;
}

}  // namespace hebs::core
