#include "core/ghe.h"

#include <algorithm>

#include "util/error.h"

namespace hebs::core {

hebs::transform::PwlCurve ghe_transform(
    const hebs::histogram::Histogram& hist, const GheTarget& target) {
  HEBS_REQUIRE(!hist.empty(), "GHE of an empty histogram");
  // Depth-generic: the level lattice is the histogram's own bin count
  // (256 for the 8-bit path, where maxv is exactly the old kMaxPixel).
  const int bins = hist.bins();
  const int maxv = bins - 1;
  HEBS_REQUIRE(target.g_min >= 0 && target.g_max <= maxv &&
                   target.g_min < target.g_max,
               "invalid GHE target range");

  const auto cum = hist.cumulative_counts();
  const double lo = static_cast<double>(target.g_min) / maxv;
  const double hi = static_cast<double>(target.g_max) / maxv;

  // Eq. 7 uses the *exclusive* cumulative sum Σ_{k<i} h(x_k): the darkest
  // populated level maps exactly to g_min and the slope after level i is
  // proportional to h(x_i).  We normalize by N - h(max_level) (instead of
  // N) so the brightest populated level lands exactly on g_max — the
  // range-tight variant that makes β = g_max/255 achievable without
  // slack.
  const int min_level = hist.min_level();
  const int max_level = hist.max_level();
  const auto total = static_cast<double>(hist.total());
  const double denom =
      total - static_cast<double>(hist.count(max_level));

  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(static_cast<std::size_t>(bins));
  for (int level = 0; level < bins; ++level) {
    const double x = static_cast<double>(level) / maxv;
    double rank;
    if (denom <= 0.0) {
      // Degenerate single-level histogram: send the populated level (and
      // everything above) to the top of the target range.
      rank = level >= min_level ? 1.0 : 0.0;
    } else {
      // Exclusive cumulative sum: counts strictly below this level.
      const double excl =
          level == 0
              ? 0.0
              : static_cast<double>(cum[static_cast<std::size_t>(level - 1)]);
      rank = std::min(1.0, excl / denom);
    }
    // Levels with no pixels inherit the previous rank, yielding the flat
    // bands the hierarchical ladder exploits.
    pts.push_back({x, lo + (hi - lo) * rank});
  }
  return hebs::transform::PwlCurve(std::move(pts));
}

hebs::transform::Lut ghe_lut(const hebs::histogram::Histogram& hist,
                             const GheTarget& target) {
  return ghe_transform(hist, target).to_lut();
}

hebs::transform::Lut ghe_lut_fixed_point(
    const hebs::histogram::Histogram& hist, const GheTarget& target) {
  HEBS_REQUIRE(!hist.empty(), "GHE of an empty histogram");
  HEBS_REQUIRE(target.g_min >= 0 && target.g_max <= hebs::image::kMaxPixel &&
                   target.g_min < target.g_max,
               "invalid GHE target range");

  const auto cum = hist.cumulative_counts();
  const int min_level = hist.min_level();
  const int max_level = hist.max_level();
  const std::uint64_t denom = hist.total() - hist.count(max_level);
  const auto span = static_cast<std::uint64_t>(target.range());

  hebs::transform::Lut lut;
  for (int level = 0; level < hebs::image::kLevels; ++level) {
    std::uint64_t offset;  // scaled rank in [0, span]
    if (denom == 0) {
      offset = level >= min_level ? span : 0;
    } else {
      const std::uint64_t excl =
          level == 0 ? 0 : cum[static_cast<std::size_t>(level - 1)];
      const std::uint64_t clipped = std::min(excl, denom);
      // Round-to-nearest integer division; products stay < 2^63 for any
      // 8-bit image up to ~2^54 pixels.
      offset = (clipped * span + denom / 2) / denom;
    }
    lut[level] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(target.g_min) +
                                  offset);
  }
  return lut;
}

}  // namespace hebs::core
