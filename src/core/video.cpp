#include "core/video.h"

#include <algorithm>
#include <cmath>

#include "core/backlight.h"
#include "histogram/histogram_ops.h"
#include "pipeline/engine.h"
#include "pipeline/frame_context.h"
#include "pipeline/stages.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::core {

VideoBacklightController::VideoBacklightController(
    VideoOptions opts, hebs::power::LcdSubsystemPower power_model)
    : opts_(std::move(opts)), power_model_(std::move(power_model)) {
  HEBS_REQUIRE(opts_.d_max_percent >= 0.0, "distortion budget must be >= 0");
  HEBS_REQUIRE(opts_.max_beta_step > 0.0, "beta step must be positive");
  HEBS_REQUIRE(opts_.ema_alpha > 0.0 && opts_.ema_alpha <= 1.0,
               "ema_alpha must be in (0, 1]");
}

void VideoBacklightController::reset() {
  prev_beta_.reset();
  prev_hist_.reset();
}

FrameDecision VideoBacklightController::process(
    const hebs::image::GrayImage& frame) {
  hebs::pipeline::FrameContext ctx(frame, opts_.hebs, power_model_);
  const HebsResult raw =
      hebs::pipeline::run_exact(ctx, opts_.d_max_percent);
  return apply_flicker_control(ctx, raw);
}

FrameDecision VideoBacklightController::apply_flicker_control(
    hebs::pipeline::FrameContext& ctx, const HebsResult& raw) {
  FrameDecision decision;
  decision.raw_beta = raw.point.beta;

  // Scene-cut detection from histogram change.  Always the exact
  // histogram — a decimated estimate may drive the pipeline's statistics
  // stages, but the cut detector compares what is actually on screen.
  const auto& hist = ctx.exact_histogram();
  decision.scene_cut =
      prev_hist_.has_value() &&
      hebs::histogram::l1_distance(*prev_hist_, hist) >
          opts_.scene_cut_threshold;

  double applied_beta = decision.raw_beta;
  if (prev_beta_.has_value() && !decision.scene_cut) {
    // Pull toward the raw optimum, capped by the flicker rate limit.
    const double target = util::lerp(*prev_beta_, decision.raw_beta,
                                     opts_.ema_alpha);
    applied_beta = util::clamp(target, *prev_beta_ - opts_.max_beta_step,
                               *prev_beta_ + opts_.max_beta_step);
    applied_beta = util::clamp(applied_beta, 0.0, 1.0);
  }
  decision.beta = applied_beta;

  // Re-derive the transform for the applied β.  Two candidates: (a)
  // compress the frame into the range the applied backlight displays
  // without clipping, and (b) keep the per-frame optimal Λ and accept
  // top clipping at the applied β (the concurrent-scaling trade).  Keep
  // whichever distorts less.
  const int applied_range =
      std::max(opts_.hebs.min_range, gmax_for_beta(applied_beta));
  const HebsResult& compressed = ctx.at_range_lean(applied_range);
  const OperatingPoint compress_point{compressed.lambda, applied_beta};
  // Lean candidate evaluations: only the winner's transformed raster is
  // materialized below.
  const auto compress_eval = ctx.evaluate_lean(compress_point);
  const OperatingPoint keep_point{raw.point.luminance_transform,
                                  applied_beta};
  const auto keep_eval = ctx.evaluate_lean(keep_point);
  if (keep_eval.distortion_percent < compress_eval.distortion_percent) {
    decision.point = keep_point;
    decision.evaluation = keep_eval;
  } else {
    decision.point = compress_point;
    decision.evaluation = compress_eval;
  }
  ctx.materialize_transformed(decision.evaluation);

  prev_beta_ = applied_beta;
  prev_hist_ = hist;
  return decision;
}

FrameDecision VideoBacklightController::apply_degraded(
    const HebsResult& fallback) {
  FrameDecision decision;
  decision.raw_beta = fallback.point.beta;  // 1.0: the identity fallback
  decision.beta = fallback.point.beta;
  decision.scene_cut = false;
  decision.point = fallback.point;
  decision.evaluation = fallback.evaluation;
  // Stream discontinuity: forget the β/histogram history so the next
  // frame starts the stream cold (bit-identical to a fresh controller).
  prev_beta_.reset();
  prev_hist_.reset();
  return decision;
}

std::vector<FrameDecision> VideoBacklightController::process_clip(
    const std::vector<hebs::image::GrayImage>& frames) {
  // Stream mode takes its HebsOptions from this controller's
  // VideoOptions, not from EngineOptions (which configures batch mode).
  hebs::pipeline::EngineOptions engine_opts;
  engine_opts.num_threads = opts_.num_threads;
  engine_opts.temporal_reuse = opts_.temporal_reuse;
  engine_opts.use_buffer_pool = opts_.use_buffer_pool;
  engine_opts.frame_deadline_us = opts_.frame_deadline_us;
  hebs::pipeline::PipelineEngine engine(engine_opts, power_model_);
  return engine.process_stream(frames, *this);
}

double VideoBacklightController::max_flicker_step(
    const std::vector<FrameDecision>& clip) {
  double worst = 0.0;
  for (std::size_t i = 1; i < clip.size(); ++i) {
    if (clip[i].scene_cut) continue;
    worst = std::max(worst, std::abs(clip[i].beta - clip[i - 1].beta));
  }
  return worst;
}

}  // namespace hebs::core
