#include "core/distortion_curve.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/hebs.h"
#include "pipeline/frame_context.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/faultpoint.h"
#include "util/mathutil.h"

namespace hebs::core {

DistortionCurve::DistortionCurve(fit::Poly average, fit::Poly worst_case,
                                 int range_lo, int range_hi)
    : average_(std::move(average)),
      worst_case_(std::move(worst_case)),
      range_lo_(range_lo),
      range_hi_(range_hi) {
  HEBS_REQUIRE(range_lo >= 1 && range_hi <= hebs::image::kMaxPixel &&
                   range_lo < range_hi,
               "invalid characterized range interval");
}

std::vector<int> DistortionCurve::default_ranges() {
  // Ten target ranges spanning the useful dimming region, as in §5.1c.
  return {40, 60, 80, 100, 120, 140, 160, 180, 220, 250};
}

DistortionCurve DistortionCurve::characterize(
    const std::vector<hebs::image::NamedImage>& album,
    std::span<const int> ranges, const HebsOptions& opts,
    const hebs::power::LcdSubsystemPower& power_model,
    std::vector<CharacterizationPoint>* points_out) {
  HEBS_REQUIRE(!album.empty(), "characterization needs images");
  HEBS_REQUIRE(ranges.size() >= 4, "characterization needs >= 4 ranges");

  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<CharacterizationPoint> points;
  xs.reserve(album.size() * ranges.size());
  ys.reserve(album.size() * ranges.size());
  for (const auto& named : album) {
    // One context per image: the range sweep shares the histogram and
    // the reference-side metric caches across all probes.
    pipeline::FrameContext ctx(named.image, opts, power_model);
    for (int range : ranges) {
      const double distortion = ctx.distortion_at_range(range);
      xs.push_back(static_cast<double>(range));
      ys.push_back(distortion);
      points.push_back({named.name, range, distortion});
    }
  }
  if (points_out != nullptr) *points_out = std::move(points);

  const auto [lo_it, hi_it] = std::minmax_element(ranges.begin(), ranges.end());
  // Quadratic fits, like the smooth decaying curves of Fig. 7.
  fit::Poly average = fit::polyfit(xs, ys, 2);
  fit::Poly worst =
      fit::fit_upper_envelope(xs, ys, 2, static_cast<int>(ranges.size()));
  return DistortionCurve(std::move(average), std::move(worst), *lo_it,
                         *hi_it);
}

double DistortionCurve::average_distortion(int range) const {
  const double r = util::clamp(static_cast<double>(range),
                               static_cast<double>(range_lo_),
                               static_cast<double>(range_hi_));
  return std::max(0.0, average_(r));
}

double DistortionCurve::worst_distortion(int range) const {
  const double r = util::clamp(static_cast<double>(range),
                               static_cast<double>(range_lo_),
                               static_cast<double>(range_hi_));
  return std::max(0.0, worst_case_(r));
}

void DistortionCurve::save(const std::string& path) const {
  // Curve persistence fault point (an injected IoError behaves exactly
  // like an unwritable destination).
  util::fault::maybe_fail(util::fault::Point::kCurveIo);
  util::CsvWriter csv(path);
  csv.write_row({"curve", "range_lo", "range_hi", "c0", "c1", "c2"});
  auto row = [&csv, this](const char* name, const fit::Poly& poly) {
    HEBS_REQUIRE(poly.coeffs.size() == 3,
                 "only quadratic curves are persisted");
    csv.write_row({name, std::to_string(range_lo_),
                   std::to_string(range_hi_),
                   util::CsvWriter::num(poly.coeffs[0]),
                   util::CsvWriter::num(poly.coeffs[1]),
                   util::CsvWriter::num(poly.coeffs[2])});
  };
  row("average", average_);
  row("worst_case", worst_case_);
}

DistortionCurve DistortionCurve::load(const std::string& path) {
  // Curve-load fault point (an injected IoError behaves exactly like an
  // unreadable/corrupt CSV).
  util::fault::maybe_fail(util::fault::Point::kCurveIo);
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open distortion curve: " + path);
  std::string line;
  std::getline(in, line);  // header
  fit::Poly average;
  fit::Poly worst;
  int lo = 0;
  int hi = 0;
  bool have_average = false;
  bool have_worst = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string name;
    std::string cell;
    std::getline(row, name, ',');
    fit::Poly poly;
    poly.coeffs.resize(3);
    try {
      std::getline(row, cell, ',');
      lo = std::stoi(cell);
      std::getline(row, cell, ',');
      hi = std::stoi(cell);
      for (double& c : poly.coeffs) {
        if (!std::getline(row, cell, ',')) {
          throw util::IoError("truncated curve row in " + path);
        }
        c = std::stod(cell);
      }
    } catch (const std::logic_error&) {
      throw util::IoError("malformed distortion curve row in " + path);
    }
    if (name == "average") {
      average = std::move(poly);
      have_average = true;
    } else if (name == "worst_case") {
      worst = std::move(poly);
      have_worst = true;
    } else {
      throw util::IoError("unknown curve name '" + name + "' in " + path);
    }
  }
  if (!have_average || !have_worst) {
    throw util::IoError("distortion curve file missing rows: " + path);
  }
  return DistortionCurve(std::move(average), std::move(worst), lo, hi);
}

int DistortionCurve::min_range_for(double d_max_percent,
                                   bool worst_case) const {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  // Scan from the widest range downward; stop at the first prediction
  // that exceeds the budget.  This is robust to mild non-monotonicity of
  // the fitted polynomial at the interval edges.
  int smallest_feasible = range_hi_;
  for (int r = range_hi_; r >= range_lo_; --r) {
    const double predicted =
        worst_case ? worst_distortion(r) : average_distortion(r);
    if (predicted <= d_max_percent) {
      smallest_feasible = r;
    } else {
      break;
    }
  }
  return smallest_feasible;
}

}  // namespace hebs::core
