// Backlight scaling factor computation.
//
// After GHE compresses the image into [0, g_max], full brightness
// compensation spreads transmittances by 1/β (Eq. 10), so the displayed
// luminance of level y is β·(y/β) = y as long as y <= β.  The deepest
// dimming that avoids clipping is therefore β = g_max/255 — the
// transmissivity-limited optimum the HEBS flow (Fig. 4) derives from the
// minimum admissible dynamic range.
#pragma once

#include "image/image.h"
#include "util/error.h"

namespace hebs::core {

/// β for a transformed image whose brightest level is `g_max_level`.
/// `min_beta` guards the CCFL's lower operating limit.  `max_pixel` is
/// the frame's level ceiling (255 for the paper's 8-bit path; the
/// depth-generalized pipeline passes levels-1).
inline double beta_for_gmax(int g_max_level, double min_beta = 0.0,
                            int max_pixel = hebs::image::kMaxPixel) {
  HEBS_REQUIRE(g_max_level >= 1 && g_max_level <= max_pixel,
               "g_max must be in [1, max_pixel]");
  HEBS_REQUIRE(min_beta >= 0.0 && min_beta <= 1.0,
               "min_beta must be in [0, 1]");
  const double beta = static_cast<double>(g_max_level) / max_pixel;
  return beta < min_beta ? min_beta : beta;
}

/// Largest brightest-level a backlight factor can display without
/// clipping: the inverse of beta_for_gmax.
inline int gmax_for_beta(double beta,
                         int max_pixel = hebs::image::kMaxPixel) {
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  const int level = static_cast<int>(beta * max_pixel);
  return level < 1 ? 1 : level;
}

}  // namespace hebs::core
