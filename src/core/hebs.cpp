#include "core/hebs.h"

#include <algorithm>

#include "core/backlight.h"
#include "core/distortion_curve.h"
#include "util/error.h"

namespace hebs::core {

namespace {

/// The distortion-minimal monotone placement of the image's native range
/// [lo, hi] into the target [g_min, g_max]: an affine map of the
/// populated levels (contrast-preserving when the widths match, identity
/// when the intervals coincide), clamped outside.
hebs::transform::PwlCurve affine_placement(int lo, int hi, int g_min,
                                           int g_max) {
  const double xn_lo = static_cast<double>(lo) / hebs::image::kMaxPixel;
  const double xn_hi = static_cast<double>(hi) / hebs::image::kMaxPixel;
  const double yn_lo = static_cast<double>(g_min) / hebs::image::kMaxPixel;
  const double yn_hi = static_cast<double>(g_max) / hebs::image::kMaxPixel;
  std::vector<hebs::transform::CurvePoint> pts;
  if (lo > 0) pts.push_back({0.0, yn_lo});
  pts.push_back({xn_lo, yn_lo});
  pts.push_back({xn_hi, yn_hi});
  if (hi < hebs::image::kMaxPixel) pts.push_back({1.0, yn_hi});
  return hebs::transform::PwlCurve(std::move(pts));
}

/// Pointwise blend w·a + (1-w)·b, sampled at every pixel level so the
/// result has the same per-level resolution as the exact GHE curve.
hebs::transform::PwlCurve blend_curves(const hebs::transform::PwlCurve& a,
                                       const hebs::transform::PwlCurve& b,
                                       double w) {
  std::vector<hebs::transform::CurvePoint> pts;
  pts.reserve(static_cast<std::size_t>(hebs::image::kLevels));
  for (int level = 0; level < hebs::image::kLevels; ++level) {
    const double x = static_cast<double>(level) / hebs::image::kMaxPixel;
    pts.push_back({x, w * a(x) + (1.0 - w) * b(x)});
  }
  return hebs::transform::PwlCurve(std::move(pts));
}

}  // namespace

HebsResult hebs_at_range(const hebs::image::GrayImage& image, int range,
                         const HebsOptions& opts,
                         const hebs::power::LcdSubsystemPower& power_model) {
  HEBS_REQUIRE(!image.empty(), "HEBS of an empty image");
  HEBS_REQUIRE(range >= 1, "dynamic range must be positive");
  HEBS_REQUIRE(opts.g_min >= 0 &&
                   opts.g_min + range <= hebs::image::kMaxPixel,
               "target range exceeds the 8-bit domain");
  HEBS_REQUIRE(opts.segments >= 1, "segment budget must be positive");
  HEBS_REQUIRE(opts.equalization_strength <= 1.0,
               "equalization strength must be <= 1 (or negative for "
               "adaptive)");
  HEBS_REQUIRE(opts.min_beta >= 0.0 && opts.min_beta <= 1.0,
               "min_beta must be in [0, 1]");

  const auto hist = hebs::histogram::Histogram::from_image(image);
  const int lo = hist.min_level();
  const int hi = hist.max_level();
  const int native = hi - lo;

  // Never map the brightest populated level above itself: brightening
  // costs backlight power and adds distortion, so the admissible range
  // is capped by the image's own maximum.
  const int g_max = std::min(opts.g_min + range, std::max(hi, 1));
  // Preserve the native width when the target allows it (the adaptive
  // placement); otherwise compress down to the floor opts.g_min.
  const int g_min_eff =
      native > 0 ? std::max(opts.g_min, g_max - native) : opts.g_min;
  const int width = g_max - g_min_eff;

  HebsResult result;
  result.target = GheTarget{g_min_eff, g_max};

  // Step 2: GHE — exact equalizing transformation into the target, and
  // the equalization-strength blend (see HebsOptions).
  const auto ghe = ghe_transform(hist, result.target);
  double w = opts.equalization_strength;
  if (w < 0.0) {
    w = native > 0
            ? 1.0 - static_cast<double>(width) / static_cast<double>(native)
            : 1.0;
  }
  if (native <= 0) w = 1.0;  // constant image: GHE handles it
  result.phi = w >= 1.0 ? ghe
                        : blend_curves(
                              ghe, affine_placement(lo, hi, g_min_eff, g_max),
                              w);

  // Step 3: PLC — coarsen to the ladder's segment budget.
  PlcResult plc = plc_coarsen(result.phi, opts.segments);
  result.lambda = std::move(plc.curve);
  result.plc_mse = plc.mse;

  // Step 4: backlight factor from the brightest transformed level.
  const double beta = beta_for_gmax(g_max, opts.min_beta);
  result.point = OperatingPoint{result.lambda, beta};
  result.evaluation = evaluate_operating_point(image, result.point,
                                               power_model, opts.distortion);
  return result;
}

HebsResult hebs_with_curve(const hebs::image::GrayImage& image,
                           double d_max_percent, const DistortionCurve& curve,
                           const HebsOptions& opts,
                           const hebs::power::LcdSubsystemPower& power_model) {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  int range = curve.min_range_for(d_max_percent, /*worst_case=*/true);
  range = std::max(range, opts.min_range);
  range = std::min(range, hebs::image::kMaxPixel - opts.g_min);
  return hebs_at_range(image, range, opts, power_model);
}

namespace {

/// Concurrent brightness-scaling refinement: with Λ fixed, bisect β
/// below its luminance-exact value while the measured distortion stays
/// within budget, and keep the result when it saves more power.
void refine_beta(const hebs::image::GrayImage& image, double d_max_percent,
                 const HebsOptions& opts,
                 const hebs::power::LcdSubsystemPower& power_model,
                 HebsResult& result) {
  const OperatingPoint base = result.point;
  auto eval_at = [&](double beta) {
    const OperatingPoint p{base.luminance_transform,
                           std::max(opts.min_beta, beta)};
    return evaluate_operating_point(image, p, power_model, opts.distortion);
  };

  const double floor_beta = std::max(opts.min_beta, 0.25 * base.beta);
  EvaluatedPoint best = result.evaluation;
  auto at_floor = eval_at(floor_beta);
  if (at_floor.distortion_percent <= d_max_percent) {
    best = at_floor;
  } else {
    double feasible = base.beta;
    double infeasible = floor_beta;
    for (int i = 0; i < 12; ++i) {
      const double mid = (feasible + infeasible) / 2.0;
      const auto eval = eval_at(mid);
      if (eval.distortion_percent <= d_max_percent) {
        feasible = mid;
        best = eval;
      } else {
        infeasible = mid;
      }
    }
  }
  if (best.saving_percent > result.evaluation.saving_percent) {
    result.point = best.point;
    result.evaluation = best;
  }
}

}  // namespace

HebsResult hebs_exact(const hebs::image::GrayImage& image,
                      double d_max_percent, const HebsOptions& opts,
                      const hebs::power::LcdSubsystemPower& power_model) {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  const int hi = hebs::image::kMaxPixel - opts.g_min;
  const int lo = std::min(opts.min_range, hi);

  // Distortion decreases (weakly) as the admissible range grows, so the
  // smallest feasible range can be found by bisection on integers.
  auto distortion_at = [&](int range) {
    return hebs_at_range(image, range, opts, power_model)
        .evaluation.distortion_percent;
  };

  HebsResult result;
  if (distortion_at(hi) > d_max_percent) {
    // Even the widest range misses the budget (tiny budgets on busy
    // images): return the least-distorted point.
    return hebs_at_range(image, hi, opts, power_model);
  }
  if (distortion_at(lo) <= d_max_percent) {
    result = hebs_at_range(image, lo, opts, power_model);
  } else {
    int infeasible = lo;  // distortion > budget here
    int feasible = hi;    // distortion <= budget here
    while (feasible - infeasible > 1) {
      const int mid = (feasible + infeasible) / 2;
      if (distortion_at(mid) <= d_max_percent) {
        feasible = mid;
      } else {
        infeasible = mid;
      }
    }
    result = hebs_at_range(image, feasible, opts, power_model);
  }
  if (opts.concurrent_scaling) {
    refine_beta(image, d_max_percent, opts, power_model, result);
  }
  return result;
}

HebsPolicy::HebsPolicy(HebsOptions opts,
                       hebs::power::LcdSubsystemPower power_model)
    : opts_(std::move(opts)), power_model_(std::move(power_model)) {}

std::string HebsPolicy::name() const { return "HEBS"; }

OperatingPoint HebsPolicy::choose(const hebs::image::GrayImage& image,
                                  double d_max_percent) const {
  return hebs_exact(image, d_max_percent, opts_, power_model_).point;
}

}  // namespace hebs::core
