#include "core/hebs.h"

#include "core/distortion_curve.h"
#include "pipeline/frame_context.h"
#include "pipeline/stages.h"

// The front ends below are thin wrappers over the staged pipeline in
// src/pipeline/: each builds a FrameContext (the per-frame memo of
// histogram, reference-side metric caches, GHE curves and per-range
// results) and drives the HistogramStage -> RangeSelectStage -> GheStage
// -> PlcStage -> EvaluateStage sequence.  Batch and video callers should
// prefer pipeline::PipelineEngine, which runs the same stages with
// worker-context reuse and a thread pool; outputs are bit-identical
// either way.

namespace hebs::core {

HebsResult hebs_at_range(const hebs::image::GrayImage& image, int range,
                         const HebsOptions& opts,
                         const hebs::power::LcdSubsystemPower& power_model) {
  pipeline::FrameContext ctx(image, opts, power_model);
  return ctx.at_range(range);
}

HebsResult hebs_with_curve(const hebs::image::GrayImage& image,
                           double d_max_percent, const DistortionCurve& curve,
                           const HebsOptions& opts,
                           const hebs::power::LcdSubsystemPower& power_model) {
  pipeline::FrameContext ctx(image, opts, power_model);
  return pipeline::run_with_curve(ctx, d_max_percent, curve);
}

HebsResult hebs_exact(const hebs::image::GrayImage& image,
                      double d_max_percent, const HebsOptions& opts,
                      const hebs::power::LcdSubsystemPower& power_model) {
  pipeline::FrameContext ctx(image, opts, power_model);
  return pipeline::run_exact(ctx, d_max_percent);
}

HebsPolicy::HebsPolicy(HebsOptions opts,
                       hebs::power::LcdSubsystemPower power_model)
    : opts_(std::move(opts)), power_model_(std::move(power_model)) {}

std::string HebsPolicy::name() const { return "HEBS"; }

OperatingPoint HebsPolicy::choose(const hebs::image::GrayImage& image,
                                  double d_max_percent) const {
  return hebs_exact(image, d_max_percent, opts_, power_model_).point;
}

}  // namespace hebs::core
