// Global Histogram Equalization (GHE) — §4 of the paper.
//
//   GHE problem: given the original image's cumulative histogram H, find
//   a monotonic transformation Φ: G -> G minimizing
//   ∫ |U(Φ(x)) - H(x)| dx, where U is the cumulative uniform
//   distribution on [g_min, g_max]  (Eq. 4).
//
// The minimizer is the classic CDF remapping (Eq. 5), whose discrete form
// (Eq. 7) is
//
//   Φ(x_i) = g_min + (g_max - g_min) · H(x_i)/N,
//
// i.e. each level moves to its cumulative rank scaled into the target
// range.  The result equalizes the histogram toward uniform over
// [g_min, g_max] — compressing the dynamic range to R = g_max - g_min
// while spending the error budget on the sparsest grayscale levels.
#pragma once

#include "histogram/histogram.h"
#include "transform/pwl.h"

namespace hebs::core {

/// Target range of the equalized image, in 8-bit levels.
struct GheTarget {
  int g_min = 0;
  int g_max = 255;

  /// Dynamic range g_max - g_min.
  int range() const noexcept { return g_max - g_min; }
};

/// Solves the GHE problem (Eq. 7): the exact monotonic transformation Φ
/// as a normalized PWL curve with one breakpoint per pixel level.
/// Requires a non-empty histogram and 0 <= g_min < g_max <= 255.
hebs::transform::PwlCurve ghe_transform(
    const hebs::histogram::Histogram& hist, const GheTarget& target);

/// Convenience: Φ as a 256-entry lookup table.
hebs::transform::Lut ghe_lut(const hebs::histogram::Histogram& hist,
                             const GheTarget& target);

/// Integer-only GHE (the "efficient hardware realization" arithmetic):
/// computes the same Eq. 7 lookup table using only 64-bit integer
/// multiply/divide — the operations a small LCD-controller datapath
/// has.  Agrees with `ghe_lut` within one gray level on every entry.
hebs::transform::Lut ghe_lut_fixed_point(
    const hebs::histogram::Histogram& hist, const GheTarget& target);

}  // namespace hebs::core
