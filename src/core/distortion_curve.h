// The distortion characteristic curve — §3 and §5.1c of the paper.
//
// HEBS avoids evaluating the (expensive, perception-aware) distortion
// function at runtime: offline, each benchmark image is compressed to a
// sweep of target dynamic ranges, the distortion of each transformed
// image is recorded, and regression yields an empirical curve mapping
// target dynamic range -> expected distortion.  The paper fits two
// curves (Fig. 7): the "entire dataset" (average) fit and a "worst-case"
// fit (upper envelope).  At runtime, a distortion budget is turned into
// the minimum admissible dynamic range by inverting the curve.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fit/regression.h"
#include "image/synthetic.h"
#include "power/lcd_power.h"

namespace hebs::core {

struct HebsOptions;  // defined in core/hebs.h

/// One characterization sample: image x target range -> distortion.
struct CharacterizationPoint {
  std::string image_name;
  int range = 0;
  double distortion_percent = 0.0;
};

/// The fitted range -> distortion curves and their inversion.
class DistortionCurve {
 public:
  /// Builds from already-fitted polynomials valid on [range_lo, range_hi].
  DistortionCurve(fit::Poly average, fit::Poly worst_case, int range_lo,
                  int range_hi);

  /// Runs the full offline characterization: every image in `album` is
  /// pushed through the HEBS pipeline at every range in `ranges`; the
  /// per-point distortions are fitted (quadratic average fit, quadratic
  /// upper-envelope worst-case fit).  `points_out`, when non-null,
  /// receives the raw scatter (the dots of Fig. 7).
  static DistortionCurve characterize(
      const std::vector<hebs::image::NamedImage>& album,
      std::span<const int> ranges, const HebsOptions& opts,
      const hebs::power::LcdSubsystemPower& power_model,
      std::vector<CharacterizationPoint>* points_out = nullptr);

  /// The default range sweep used for characterization (ten target
  /// ranges, as in the paper: "set to ten different values").
  static std::vector<int> default_ranges();

  /// Predicted average-case distortion at a target range (clamped >= 0).
  double average_distortion(int range) const;

  /// Predicted worst-case distortion at a target range (clamped >= 0).
  double worst_distortion(int range) const;

  /// Smallest range whose predicted distortion (worst-case by default)
  /// stays within the budget for this and all larger ranges.  Returns
  /// range_hi when even the widest characterized range misses the budget.
  int min_range_for(double d_max_percent, bool worst_case = true) const;

  int range_lo() const noexcept { return range_lo_; }
  int range_hi() const noexcept { return range_hi_; }
  const fit::Poly& average_fit() const noexcept { return average_; }
  const fit::Poly& worst_case_fit() const noexcept { return worst_case_; }

  /// Persists the fitted curves (CSV: one row per polynomial) so the
  /// expensive offline characterization can ship with a device image.
  void save(const std::string& path) const;

  /// Loads a curve previously written by `save`.  Throws IoError on
  /// malformed files.
  static DistortionCurve load(const std::string& path);

 private:
  fit::Poly average_;
  fit::Poly worst_case_;
  int range_lo_;
  int range_hi_;
};

}  // namespace hebs::core
