// Piecewise Linear Coarsening (PLC) — §4.1 of the paper.
//
//   PLC problem: given a piecewise-linear curve P = {p_1..p_n} (the exact
//   GHE transformation, one point per grayscale level), approximate it by
//   a curve Q = {q_1..q_m} with m << n segments, where Q's breakpoints
//   are a subset of P's including both endpoints (Eq. 8), minimizing the
//   mean squared error between the curves.
//
// Solved by dynamic programming (Eq. 9):
//   E(i, s) = min_j ( E(j, s-1) + e(j, i) )
// where e(j, i) is the squared error of replacing points j..i by the
// single chord p_j -> p_i.  With prefix sums, each e(j, i) is O(1), so
// the whole program is O(m n²) — the complexity the paper quotes.
// Few segments matter because each linear piece costs one controllable
// voltage source in the hierarchical reference driver.
#pragma once

#include <vector>

#include "transform/pwl.h"
#include "util/pool.h"

namespace hebs::core {

/// Output of the PLC coarsening.
struct PlcResult {
  /// The m-segment approximation Λ.
  hebs::transform::PwlCurve curve;
  /// Mean squared error between Λ and the exact curve at its breakpoints.
  double mse = 0.0;
  /// Indices into the exact curve's point list chosen as breakpoints
  /// (pool-backed: one PLC run per probed range per frame).
  hebs::util::PoolVector<std::size_t> breakpoint_indices;
};

/// Coarsens `exact` to at most `segments` linear segments (>= 1).
/// When the exact curve already has <= segments segments it is returned
/// unchanged with zero error.
PlcResult plc_coarsen(const hebs::transform::PwlCurve& exact, int segments);

}  // namespace hebs::core
