#include "bus/encoding.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "util/error.h"

namespace hebs::bus {

std::vector<std::uint16_t> RawEncoder::encode(
    std::span<const std::uint8_t> pixels) const {
  return {pixels.begin(), pixels.end()};
}

std::vector<std::uint8_t> RawEncoder::decode(
    std::span<const std::uint16_t> words) const {
  std::vector<std::uint8_t> out;
  out.reserve(words.size());
  for (std::uint16_t w : words) {
    out.push_back(static_cast<std::uint8_t>(w & 0xFF));
  }
  return out;
}

std::vector<std::uint16_t> GrayCodeEncoder::encode(
    std::span<const std::uint8_t> pixels) const {
  std::vector<std::uint16_t> out;
  out.reserve(pixels.size());
  for (std::uint8_t p : pixels) {
    out.push_back(static_cast<std::uint16_t>(p ^ (p >> 1)));
  }
  return out;
}

std::vector<std::uint8_t> GrayCodeEncoder::decode(
    std::span<const std::uint16_t> words) const {
  std::vector<std::uint8_t> out;
  out.reserve(words.size());
  for (std::uint16_t w : words) {
    std::uint8_t value = static_cast<std::uint8_t>(w & 0xFF);
    for (int shift = 1; shift < 8; shift <<= 1) {
      value ^= static_cast<std::uint8_t>(value >> shift);
    }
    out.push_back(value);
  }
  return out;
}

std::vector<std::uint16_t> DifferentialEncoder::encode(
    std::span<const std::uint8_t> pixels) const {
  std::vector<std::uint16_t> out;
  out.reserve(pixels.size());
  std::uint8_t prev = 0;
  for (std::uint8_t p : pixels) {
    out.push_back(static_cast<std::uint16_t>(p ^ prev));
    prev = p;
  }
  return out;
}

std::vector<std::uint8_t> DifferentialEncoder::decode(
    std::span<const std::uint16_t> words) const {
  std::vector<std::uint8_t> out;
  out.reserve(words.size());
  std::uint8_t prev = 0;
  for (std::uint16_t w : words) {
    prev = static_cast<std::uint8_t>(prev ^ (w & 0xFF));
    out.push_back(prev);
  }
  return out;
}

std::vector<std::uint16_t> BusInvertEncoder::encode(
    std::span<const std::uint8_t> pixels) const {
  std::vector<std::uint16_t> out;
  out.reserve(pixels.size());
  std::uint16_t prev_wires = 0;
  for (std::uint8_t p : pixels) {
    const auto plain = static_cast<std::uint16_t>(p);
    const auto inverted =
        static_cast<std::uint16_t>((~p & 0xFF) | 0x100);  // wire 8 = flag
    const int cost_plain =
        std::popcount(static_cast<unsigned>(plain ^ prev_wires));
    const int cost_inv =
        std::popcount(static_cast<unsigned>(inverted ^ prev_wires));
    const std::uint16_t chosen = cost_inv < cost_plain ? inverted : plain;
    out.push_back(chosen);
    prev_wires = chosen;
  }
  return out;
}

std::vector<std::uint8_t> BusInvertEncoder::decode(
    std::span<const std::uint16_t> words) const {
  std::vector<std::uint8_t> out;
  out.reserve(words.size());
  for (std::uint16_t w : words) {
    const bool inverted = (w & 0x100) != 0;
    const auto payload = static_cast<std::uint8_t>(w & 0xFF);
    out.push_back(inverted ? static_cast<std::uint8_t>(~payload) : payload);
  }
  return out;
}

int LiwtEncoder::intra_transitions(std::uint16_t word, int width) {
  int transitions = 0;
  for (int b = 1; b < width; ++b) {
    const int cur = (word >> b) & 1;
    const int prev = (word >> (b - 1)) & 1;
    if (cur != prev) ++transitions;
  }
  return transitions;
}

LiwtEncoder::LiwtEncoder(const std::vector<std::uint64_t>& value_frequency) {
  HEBS_REQUIRE(value_frequency.empty() || value_frequency.size() == 256,
               "frequency table must have 256 entries");
  // Order the 1024 codewords by intra-word transition count (the cost
  // ref [3] minimizes), then numerically for determinism.
  std::vector<std::uint16_t> codes(1024);
  std::iota(codes.begin(), codes.end(), 0);
  std::stable_sort(codes.begin(), codes.end(),
                   [](std::uint16_t a, std::uint16_t b) {
                     return intra_transitions(a, 10) <
                            intra_transitions(b, 10);
                   });
  // Order values by descending frequency (uniform -> identity order).
  std::vector<int> values(256);
  std::iota(values.begin(), values.end(), 0);
  if (!value_frequency.empty()) {
    std::stable_sort(values.begin(), values.end(),
                     [&value_frequency](int a, int b) {
                       return value_frequency[static_cast<std::size_t>(a)] >
                              value_frequency[static_cast<std::size_t>(b)];
                     });
  }
  from_code_.assign(1024, -1);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint16_t code = codes[i];
    to_code_[static_cast<std::size_t>(values[i])] = code;
    from_code_[code] = values[i];
  }
}

std::vector<std::uint16_t> LiwtEncoder::encode(
    std::span<const std::uint8_t> pixels) const {
  std::vector<std::uint16_t> out;
  out.reserve(pixels.size());
  for (std::uint8_t p : pixels) {
    out.push_back(to_code_[p]);
  }
  return out;
}

std::vector<std::uint8_t> LiwtEncoder::decode(
    std::span<const std::uint16_t> words) const {
  std::vector<std::uint8_t> out;
  out.reserve(words.size());
  for (std::uint16_t w : words) {
    HEBS_REQUIRE(w < 1024, "codeword outside the 10-bit bus");
    const int value = from_code_[w];
    if (value < 0) {
      throw util::IoError("unused LIWT codeword on the bus");
    }
    out.push_back(static_cast<std::uint8_t>(value));
  }
  return out;
}

BusStats measure(std::span<const std::uint16_t> words, int width) {
  HEBS_REQUIRE(width >= 1 && width <= 16, "bus width must be 1..16");
  BusStats stats;
  stats.bus_width = width;
  stats.words = words.size();
  std::uint16_t prev = 0;
  for (std::uint16_t w : words) {
    stats.inter_word_transitions +=
        static_cast<std::uint64_t>(
            std::popcount(static_cast<unsigned>((w ^ prev) &
                                                ((1u << width) - 1))));
    stats.intra_word_transitions += static_cast<std::uint64_t>(
        LiwtEncoder::intra_transitions(w, width));
    prev = w;
  }
  return stats;
}

BusStats transmit(const hebs::image::GrayImage& frame,
                  const BusEncoder& encoder) {
  HEBS_REQUIRE(!frame.empty(), "cannot transmit an empty frame");
  BusStats total;
  total.bus_width = encoder.bus_width();
  for (int y = 0; y < frame.height(); ++y) {
    const auto row = frame.pixels().subspan(
        static_cast<std::size_t>(y) * frame.width(),
        static_cast<std::size_t>(frame.width()));
    const auto words = encoder.encode(row);
    const BusStats line = measure(words, encoder.bus_width());
    total.inter_word_transitions += line.inter_word_transitions;
    total.intra_word_transitions += line.intra_word_transitions;
    total.words += line.words;
  }
  return total;
}

}  // namespace hebs::bus
