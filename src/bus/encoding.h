// Display-interface bus power: the paper's "first class of techniques".
//
// §1 surveys two families of LCD power optimization.  HEBS belongs to
// the backlight family; the other attacks the digital interface between
// the graphics controller and the LCD controller, where energy is
// proportional to the number of signal transitions on the bus wires:
//
//  * ref [2] (Cheng & Pedram, "Chromatic Encoding") exploits the spatial
//    locality of video data to cut DVI transitions by ~75%;
//  * ref [3] (Salerno et al., "Limited Intra-Word Transition Codes")
//    additionally bounds the transitions *within* each transmitted word,
//    reporting >60% energy saving on LCD interfaces.
//
// This module provides a transition-accurate bus model and three
// encoders so the complementary technique class can be reproduced and
// composed with HEBS (the two families are orthogonal: one saves lamp
// power, the other interface power):
//
//  * raw transmission,
//  * differential encoding (spatial-locality exploitation in the spirit
//    of [2]: transmit the value delta, small for neighbouring pixels),
//  * bus-invert coding (Stan & Burleson) as the classic low-power
//    reference point,
//  * a limited-intra-word-transition (LIWT) code in the spirit of [3]:
//    8-bit values map to 10-bit codewords with at most `max_intra`
//    internal transitions, assigned to values by frequency.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "image/image.h"

namespace hebs::bus {

/// Transition statistics of one transmission.
struct BusStats {
  /// Word-to-word wire flips (classic dynamic switching).
  std::uint64_t inter_word_transitions = 0;
  /// Adjacent-wire opposite-value pairs within transmitted words
  /// (coupling component emphasized by ref [3]).
  std::uint64_t intra_word_transitions = 0;
  /// Wires driven per word (raw payload is 8; coded schemes may use
  /// more).
  int bus_width = 8;
  /// Words transmitted.
  std::uint64_t words = 0;

  /// Energy in units of C·V² with coupling weight `lambda`.
  double energy(double lambda = 0.5) const {
    return static_cast<double>(inter_word_transitions) +
           lambda * static_cast<double>(intra_word_transitions);
  }
};

/// A bus encoder: maps a pixel stream to wire words.
class BusEncoder {
 public:
  virtual ~BusEncoder() = default;
  virtual std::string name() const = 0;
  /// Encodes one scanline-ordered pixel stream into wire words (LSB =
  /// wire 0).  The decoder contract is tested for each scheme.
  virtual std::vector<std::uint16_t> encode(
      std::span<const std::uint8_t> pixels) const = 0;
  /// Decodes wire words back to pixels (must invert `encode`).
  virtual std::vector<std::uint8_t> decode(
      std::span<const std::uint16_t> words) const = 0;
  /// Wires used by this scheme.
  virtual int bus_width() const = 0;
};

/// Raw 8-bit transmission.
class RawEncoder : public BusEncoder {
 public:
  std::string name() const override { return "raw"; }
  std::vector<std::uint16_t> encode(
      std::span<const std::uint8_t> pixels) const override;
  std::vector<std::uint8_t> decode(
      std::span<const std::uint16_t> words) const override;
  int bus_width() const override { return 8; }
};

/// Gray-code encoding — the spatial-locality exploitation of ref [2]'s
/// chromatic encoding distilled to grayscale: values are transmitted as
/// reflected-binary codewords, so pixels that differ by one level flip
/// exactly one wire (raw binary flips up to eight at carry boundaries).
/// Smooth scanlines therefore toggle very few wires.
class GrayCodeEncoder : public BusEncoder {
 public:
  std::string name() const override { return "gray-code"; }
  std::vector<std::uint16_t> encode(
      std::span<const std::uint8_t> pixels) const override;
  std::vector<std::uint8_t> decode(
      std::span<const std::uint16_t> words) const override;
  int bus_width() const override { return 8; }
};

/// XOR-differential encoding (classic reference point): word_i =
/// pixel_i XOR pixel_{i-1}.  Concentrates ones near zero for smooth
/// content; useful mainly for the intra-word (coupling) component.
class DifferentialEncoder : public BusEncoder {
 public:
  std::string name() const override { return "differential"; }
  std::vector<std::uint16_t> encode(
      std::span<const std::uint8_t> pixels) const override;
  std::vector<std::uint8_t> decode(
      std::span<const std::uint16_t> words) const override;
  int bus_width() const override { return 8; }
};

/// Bus-invert coding: a ninth wire signals when the word is transmitted
/// complemented to keep the Hamming distance to the previous word <= 4.
class BusInvertEncoder : public BusEncoder {
 public:
  std::string name() const override { return "bus-invert"; }
  std::vector<std::uint16_t> encode(
      std::span<const std::uint8_t> pixels) const override;
  std::vector<std::uint8_t> decode(
      std::span<const std::uint16_t> words) const override;
  int bus_width() const override { return 9; }
};

/// Limited intra-word transition code in the spirit of ref [3]: 8-bit
/// values map to the 10-bit codewords with the fewest internal
/// transitions, most frequent value first (the frequency table comes
/// from a training image or defaults to uniform).
class LiwtEncoder : public BusEncoder {
 public:
  /// Builds the value->codeword table; codewords are ordered by
  /// ascending intra-word transition count, then numerically.
  explicit LiwtEncoder(
      const std::vector<std::uint64_t>& value_frequency = {});

  std::string name() const override { return "liwt"; }
  std::vector<std::uint16_t> encode(
      std::span<const std::uint8_t> pixels) const override;
  std::vector<std::uint8_t> decode(
      std::span<const std::uint16_t> words) const override;
  int bus_width() const override { return 10; }

  /// Intra-word transitions of a codeword on `width` wires.
  static int intra_transitions(std::uint16_t word, int width);

 private:
  std::array<std::uint16_t, 256> to_code_{};
  std::vector<int> from_code_;  // 1024 entries, -1 = unused code
};

/// Counts transitions for a word stream on `width` wires.
BusStats measure(std::span<const std::uint16_t> words, int width);

/// Transmits an image scanline by scanline through an encoder and
/// returns the bus statistics.
BusStats transmit(const hebs::image::GrayImage& frame,
                  const BusEncoder& encoder);

}  // namespace hebs::bus
