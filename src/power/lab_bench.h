// Synthetic measurement campaign ("lab bench") for the power models.
//
// The paper characterizes the LP064V1 by physical current/power
// measurement (Figures 6a and 6b) and then fits Eq. 11 / Eq. 12.  We do
// not have the hardware, so this module simulates the bench: it samples
// a ground-truth device (the published models plus lamp physics
// perturbations and instrument noise) and the Fig. 6 benchmarks re-fit
// the models from those samples, reproducing the characterization flow
// end to end.  See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <vector>

#include "util/rng.h"

namespace hebs::power {

/// One measured sample of a device transfer curve.
struct Sample {
  double x = 0.0;  ///< independent variable (β or transmittance)
  double y = 0.0;  ///< measured power in watts
};

/// Options for the simulated measurement campaigns.
struct BenchOptions {
  int points = 25;            ///< number of samples across the sweep
  double noise_watts = 0.01;  ///< 1-sigma instrument noise
  std::uint64_t seed = 65;    ///< RNG seed (65 = the app-note number
                              ///< of ref [13], for flavor)
};

/// Sweeps the backlight factor over [beta_min, 1] and "measures" CCFL
/// power with instrument noise.  Ground truth is the LP064V1 model with
/// a mild soft-knee blending (real lamps do not have a perfectly sharp
/// saturation corner).
std::vector<Sample> measure_ccfl(const BenchOptions& opts = {},
                                 double beta_min = 0.05);

/// Sweeps panel global transmittance over [0.1, 1] and "measures" panel
/// power with instrument noise around the LP064V1 quadratic.
std::vector<Sample> measure_panel(const BenchOptions& opts = {});

/// Splits samples into x and y vectors (sorted by x) for the fitters.
void split_samples(const std::vector<Sample>& samples,
                   std::vector<double>& xs, std::vector<double>& ys);

}  // namespace hebs::power
