// a-Si:H TFT-LCD panel power model.
//
// §5.1b of the paper: panel power is a quadratic function of the
// (normalized) pixel value x ∈ [0, 1] (Eq. 12):
//
//     P_panel(x) = a x² + b x + c
//
// with LP064V1 regression coefficients a=0.02449, b=0.04984, c=0.993
// (watts).  The per-image panel power is the mean of P over all pixels,
// which — because P depends only on the pixel value — can be computed
// exactly from the image histogram.  The paper notes the panel's power
// variation with transmittance is small compared to the CCFL's variation
// with β, which our power-saving results confirm.
#pragma once

#include <span>

#include "histogram/histogram.h"
#include "image/image.h"

namespace hebs::power {

/// Quadratic panel power model (paper Eq. 12).
class TftPanelModel {
 public:
  /// Coefficients of P(x) = a x^2 + b x + c (watts, x normalized).
  struct Coefficients {
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
  };

  explicit TftPanelModel(const Coefficients& coeffs);

  /// The LG Philips LP064V1 panel as characterized in the paper.
  static TftPanelModel lp064v1();

  /// Least-squares quadratic fit from measured (transmittance, power)
  /// samples.
  static TftPanelModel fit(std::span<const double> transmittance,
                           std::span<const double> watts);

  /// Power at a single normalized pixel value x in [0, 1].
  double pixel_power(double x) const;

  /// Mean panel power over an image (exact, histogram-weighted).
  double image_power(const hebs::image::GrayImage& img) const;

  /// Mean panel power from a precomputed histogram.
  double image_power(const hebs::histogram::Histogram& hist) const;

  const Coefficients& coefficients() const noexcept { return coeffs_; }

 private:
  Coefficients coeffs_;
};

}  // namespace hebs::power
