// System-level power accounting and battery runtime.
//
// §1 of the paper motivates backlight scaling with the SmartBadge
// measurements of ref [1]: the display consumes 28.6% of total system
// power in active mode, 28.6% in idle and 50% in standby, and claims
// that HEBS's extra 15% display saving "constitutes a total additional
// system power saving of 3% in active mode".  This module turns display
// savings into system savings and battery-runtime extensions so the
// claims benchmark can check that arithmetic and the examples can
// report user-visible numbers.
#pragma once

namespace hebs::power {

/// Operating mode of the mobile device.
enum class SystemMode {
  kActive,
  kIdle,
  kStandby,
};

/// Fraction of total system power drawn by the display subsystem per
/// mode.
struct SystemPowerProfile {
  double display_fraction_active = 0.286;
  double display_fraction_idle = 0.286;
  double display_fraction_standby = 0.50;

  /// The SmartBadge profile from ref [1] (the defaults above).
  static SystemPowerProfile smartbadge();

  /// Display fraction for a mode.
  double display_fraction(SystemMode mode) const;
};

/// System-level saving (percent of total system power) produced by a
/// display-subsystem saving of `display_saving_percent` in `mode`.
double system_saving_percent(const SystemPowerProfile& profile,
                             SystemMode mode,
                             double display_saving_percent);

/// A simple battery model: nominal capacity with a Peukert-style
/// sensitivity of deliverable capacity to discharge rate.
class BatteryModel {
 public:
  /// `capacity_wh`: nominal energy at the 1C reference load.
  /// `peukert`: exponent k >= 1; deliverable energy scales as
  /// (P_ref/P)^(k-1) — higher draw extracts less total energy.
  BatteryModel(double capacity_wh, double reference_watts,
               double peukert = 1.1);

  /// Runtime in hours at a constant system draw of `watts`.
  double runtime_hours(double watts) const;

  /// Percentage runtime extension when the draw drops from
  /// `watts_before` to `watts_after`.
  double runtime_extension_percent(double watts_before,
                                   double watts_after) const;

 private:
  double capacity_wh_;
  double reference_watts_;
  double peukert_;
};

}  // namespace hebs::power
