#include "power/ccfl.h"

#include <algorithm>

#include "fit/regression.h"
#include "util/error.h"

namespace hebs::power {

CcflModel::CcflModel(const Coefficients& coeffs) : coeffs_(coeffs) {
  HEBS_REQUIRE(coeffs.c_s > 0.0 && coeffs.c_s < 1.0,
               "saturation knee must lie inside (0, 1)");
  HEBS_REQUIRE(coeffs.a_lin > 0.0 && coeffs.a_sat > 0.0,
               "power must increase with backlight factor");
}

CcflModel CcflModel::lp064v1() {
  return CcflModel({.c_s = 0.8234,
                    .a_lin = 1.9600,
                    .c_lin = -0.2372,
                    .a_sat = 6.9440,
                    .c_sat = -4.3240});
}

CcflModel CcflModel::fit(std::span<const double> betas,
                         std::span<const double> watts) {
  const fit::TwoPieceLinear two_piece = fit::fit_two_piece(betas, watts);
  return CcflModel({.c_s = two_piece.breakpoint,
                    .a_lin = two_piece.lo.slope,
                    .c_lin = two_piece.lo.intercept,
                    .a_sat = two_piece.hi.slope,
                    .c_sat = two_piece.hi.intercept});
}

double CcflModel::power(double beta) const {
  HEBS_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0, 1]");
  const double p = beta <= coeffs_.c_s
                       ? coeffs_.a_lin * beta + coeffs_.c_lin
                       : coeffs_.a_sat * beta + coeffs_.c_sat;
  return std::max(p, 0.0);
}

double CcflModel::beta_at_power(double watts) const {
  HEBS_REQUIRE(watts >= 0.0, "power must be non-negative");
  if (watts >= full_power()) return 1.0;
  // Invert the saturation piece first (it covers the highest powers).
  const double knee_power = power(coeffs_.c_s);
  if (watts > knee_power) {
    return std::clamp((watts - coeffs_.c_sat) / coeffs_.a_sat, 0.0, 1.0);
  }
  return std::clamp((watts - coeffs_.c_lin) / coeffs_.a_lin, 0.0, 1.0);
}

}  // namespace hebs::power
