#include "power/tft_panel.h"

#include "fit/regression.h"
#include "util/error.h"

namespace hebs::power {

TftPanelModel::TftPanelModel(const Coefficients& coeffs) : coeffs_(coeffs) {
  HEBS_REQUIRE(coeffs.c > 0.0, "panel must consume power at x = 0");
}

TftPanelModel TftPanelModel::lp064v1() {
  return TftPanelModel({.a = 0.02449, .b = 0.04984, .c = 0.993});
}

TftPanelModel TftPanelModel::fit(std::span<const double> transmittance,
                                 std::span<const double> watts) {
  const fit::Poly poly = fit::polyfit(transmittance, watts, 2);
  return TftPanelModel(
      {.a = poly.coeffs[2], .b = poly.coeffs[1], .c = poly.coeffs[0]});
}

double TftPanelModel::pixel_power(double x) const {
  HEBS_REQUIRE(x >= 0.0 && x <= 1.0, "pixel value must be normalized");
  return coeffs_.a * x * x + coeffs_.b * x + coeffs_.c;
}

double TftPanelModel::image_power(const hebs::image::GrayImage& img) const {
  return image_power(hebs::histogram::Histogram::from_image(img));
}

double TftPanelModel::image_power(
    const hebs::histogram::Histogram& hist) const {
  HEBS_REQUIRE(!hist.empty(), "panel power of an empty histogram");
  // Depth-generic: normalize levels on the histogram's own lattice
  // (at 256 bins the divisor is exactly the old kMaxPixel).
  const int maxv = hist.bins() - 1;
  double acc = 0.0;
  for (int level = 0; level < hist.bins(); ++level) {
    const double x = static_cast<double>(level) / maxv;
    acc += pixel_power(x) * static_cast<double>(hist.count(level));
  }
  return acc / static_cast<double>(hist.total());
}

}  // namespace hebs::power
