// Cold Cathode Fluorescent Lamp (CCFL) backlight power model.
//
// §5.1a of the paper: in a transmissive TFT-LCD only the driving current
// of the CCFL is controllable, and accounting for the saturation of
// emitted light at high drive the power-vs-backlight-factor relation is a
// two-piece linear function (Eq. 11):
//
//     P(β) = A_lin β + C_lin   for 0 ≤ β ≤ C_s
//     P(β) = A_sat β + C_sat   for C_s < β ≤ 1
//
// with LP064V1 coefficients C_s=0.8234, A_lin=1.9600, C_lin=−0.2372,
// A_sat=6.9440, C_sat=−4.3240 (power in watts).  Above the saturation
// knee the lamp gets dramatically less efficient, which is exactly why
// even modest dimming saves a lot of power.
#pragma once

#include <span>

namespace hebs::power {

/// Two-piece linear CCFL power model (paper Eq. 11).
class CcflModel {
 public:
  /// Model coefficients; see class comment for semantics.
  struct Coefficients {
    double c_s = 0.0;    ///< saturation knee in backlight factor
    double a_lin = 0.0;  ///< linear-region slope  (W per unit β)
    double c_lin = 0.0;  ///< linear-region intercept (W)
    double a_sat = 0.0;  ///< saturation-region slope (W per unit β)
    double c_sat = 0.0;  ///< saturation-region intercept (W)
  };

  explicit CcflModel(const Coefficients& coeffs);

  /// The LG Philips LP064V1 lamp as characterized in the paper.
  static CcflModel lp064v1();

  /// Fits a model from measured (β, power) samples via a breakpoint-
  /// searching two-piece least-squares fit.  βs must be sorted ascending.
  static CcflModel fit(std::span<const double> betas,
                       std::span<const double> watts);

  /// Lamp power in watts at backlight factor β in [0, 1].  The fitted
  /// affine pieces can go negative for very small β, outside the region
  /// the paper measured; power is clamped at zero there.
  double power(double beta) const;

  /// Inverse: the backlight factor achievable at `watts`, clamped to
  /// [0, 1].  Monotone in `watts`.
  double beta_at_power(double watts) const;

  /// Power at full backlight, P(1).
  double full_power() const { return power(1.0); }

  const Coefficients& coefficients() const noexcept { return coeffs_; }

 private:
  Coefficients coeffs_;
};

}  // namespace hebs::power
