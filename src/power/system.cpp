#include "power/system.h"

#include <cmath>

#include "util/error.h"

namespace hebs::power {

SystemPowerProfile SystemPowerProfile::smartbadge() { return {}; }

double SystemPowerProfile::display_fraction(SystemMode mode) const {
  switch (mode) {
    case SystemMode::kActive: return display_fraction_active;
    case SystemMode::kIdle: return display_fraction_idle;
    case SystemMode::kStandby: return display_fraction_standby;
  }
  throw util::InvalidArgument("unknown system mode");
}

double system_saving_percent(const SystemPowerProfile& profile,
                             SystemMode mode,
                             double display_saving_percent) {
  HEBS_REQUIRE(display_saving_percent >= 0.0 &&
                   display_saving_percent <= 100.0,
               "display saving must be a percentage");
  return profile.display_fraction(mode) * display_saving_percent;
}

BatteryModel::BatteryModel(double capacity_wh, double reference_watts,
                           double peukert)
    : capacity_wh_(capacity_wh),
      reference_watts_(reference_watts),
      peukert_(peukert) {
  HEBS_REQUIRE(capacity_wh > 0.0, "capacity must be positive");
  HEBS_REQUIRE(reference_watts > 0.0, "reference load must be positive");
  HEBS_REQUIRE(peukert >= 1.0 && peukert < 2.0,
               "Peukert exponent must be in [1, 2)");
}

double BatteryModel::runtime_hours(double watts) const {
  HEBS_REQUIRE(watts > 0.0, "load must be positive");
  // Deliverable energy shrinks at loads above the reference rate.
  const double deliverable =
      capacity_wh_ * std::pow(reference_watts_ / watts, peukert_ - 1.0);
  return deliverable / watts;
}

double BatteryModel::runtime_extension_percent(double watts_before,
                                               double watts_after) const {
  const double before = runtime_hours(watts_before);
  const double after = runtime_hours(watts_after);
  return 100.0 * (after - before) / before;
}

}  // namespace hebs::power
