#include "power/lcd_power.h"

#include "util/error.h"

namespace hebs::power {

LcdSubsystemPower::LcdSubsystemPower(CcflModel ccfl, TftPanelModel panel)
    : ccfl_(std::move(ccfl)), panel_(std::move(panel)) {}

LcdSubsystemPower LcdSubsystemPower::lp064v1() {
  return {CcflModel::lp064v1(), TftPanelModel::lp064v1()};
}

PowerBreakdown LcdSubsystemPower::frame_power(
    const hebs::image::GrayImage& frame, double beta) const {
  return frame_power(hebs::histogram::Histogram::from_image(frame), beta);
}

PowerBreakdown LcdSubsystemPower::frame_power(
    const hebs::histogram::Histogram& hist, double beta) const {
  PowerBreakdown p;
  p.ccfl_watts = ccfl_.power(beta);
  p.panel_watts = panel_.image_power(hist);
  return p;
}

double LcdSubsystemPower::saving_percent(
    const hebs::image::GrayImage& original,
    const hebs::image::GrayImage& transformed, double beta) const {
  return saving_percent(hebs::histogram::Histogram::from_image(original),
                        hebs::histogram::Histogram::from_image(transformed),
                        beta);
}

double LcdSubsystemPower::saving_percent(
    const hebs::histogram::Histogram& original,
    const hebs::histogram::Histogram& transformed, double beta) const {
  return 100.0 * (1.0 - normalized_power(original, transformed, beta));
}

double LcdSubsystemPower::normalized_power(
    const hebs::histogram::Histogram& original,
    const hebs::histogram::Histogram& transformed, double beta) const {
  const double before = frame_power(original, 1.0).total();
  const double after = frame_power(transformed, beta).total();
  HEBS_REQUIRE(before > 0.0, "reference frame consumes no power");
  return after / before;
}

double LcdSubsystemPower::clip_energy_joules(
    const std::vector<hebs::image::GrayImage>& frames,
    const std::vector<double>& betas, double frame_seconds) const {
  HEBS_REQUIRE(frames.size() == betas.size(),
               "one backlight factor per frame required");
  HEBS_REQUIRE(frame_seconds > 0.0, "frame duration must be positive");
  double joules = 0.0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    joules += frame_power(frames[i], betas[i]).total() * frame_seconds;
  }
  return joules;
}

}  // namespace hebs::power
