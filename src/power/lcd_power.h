// Whole-LCD-subsystem power accounting.
//
// Combines the CCFL backlight model with the TFT panel model to compute
// the quantities the paper reports: normalized power and power-saving
// percentages (Table 1, Figure 8), and per-clip energy for video
// workloads.
#pragma once

#include <vector>

#include "histogram/histogram.h"
#include "image/image.h"
#include "power/ccfl.h"
#include "power/tft_panel.h"

namespace hebs::power {

/// Per-component power of one displayed frame.
struct PowerBreakdown {
  double ccfl_watts = 0.0;
  double panel_watts = 0.0;
  double total() const noexcept { return ccfl_watts + panel_watts; }
};

/// Power model of the complete display subsystem.
class LcdSubsystemPower {
 public:
  LcdSubsystemPower(CcflModel ccfl, TftPanelModel panel);

  /// The paper's measurement platform (LG Philips LP064V1).
  static LcdSubsystemPower lp064v1();

  /// Power drawn when displaying an image with the given backlight
  /// factor.
  PowerBreakdown frame_power(const hebs::image::GrayImage& frame,
                             double beta) const;

  /// Same, from a precomputed histogram of the displayed frame.
  PowerBreakdown frame_power(const hebs::histogram::Histogram& hist,
                             double beta) const;

  /// Power saving (percent) of displaying `transformed` at backlight β
  /// instead of `original` at full backlight — the quantity in Table 1
  /// and Figure 8.
  double saving_percent(const hebs::image::GrayImage& original,
                        const hebs::image::GrayImage& transformed,
                        double beta) const;

  /// Histogram-based overload (exact and much faster).
  double saving_percent(const hebs::histogram::Histogram& original,
                        const hebs::histogram::Histogram& transformed,
                        double beta) const;

  /// Normalized power: total(F', β) / total(F, 1).
  double normalized_power(const hebs::histogram::Histogram& original,
                          const hebs::histogram::Histogram& transformed,
                          double beta) const;

  /// Energy (joules) of displaying a sequence of frames, each for
  /// `frame_seconds`, at the given per-frame backlight factors.
  double clip_energy_joules(const std::vector<hebs::image::GrayImage>& frames,
                            const std::vector<double>& betas,
                            double frame_seconds) const;

  const CcflModel& ccfl() const noexcept { return ccfl_; }
  const TftPanelModel& panel() const noexcept { return panel_; }

 private:
  CcflModel ccfl_;
  TftPanelModel panel_;
};

}  // namespace hebs::power
