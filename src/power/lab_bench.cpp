#include "power/lab_bench.h"

#include <algorithm>
#include <cmath>

#include "power/ccfl.h"
#include "power/tft_panel.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::power {

namespace {

// Softplus-style blend of the two affine CCFL pieces; `sharpness`
// controls how crisp the saturation knee is (higher = crisper).
double soft_knee_ccfl(double beta, const CcflModel::Coefficients& c,
                      double sharpness) {
  const double lin = c.a_lin * beta + c.c_lin;
  const double sat = c.a_sat * beta + c.c_sat;
  // log-sum-exp max approximation keeps the curve smooth and monotone.
  const double m = std::max(lin, sat);
  const double blended =
      m + std::log(std::exp((lin - m) * sharpness) +
                   std::exp((sat - m) * sharpness)) /
              sharpness;
  return std::max(blended, 0.0);
}

}  // namespace

std::vector<Sample> measure_ccfl(const BenchOptions& opts, double beta_min) {
  HEBS_REQUIRE(opts.points >= 8, "need at least 8 sweep points");
  HEBS_REQUIRE(beta_min > 0.0 && beta_min < 1.0, "invalid sweep start");
  util::Rng rng(opts.seed);
  const auto coeffs = CcflModel::lp064v1().coefficients();
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(opts.points));
  for (double beta :
       util::linspace(beta_min, 1.0, static_cast<std::size_t>(opts.points))) {
    const double truth = soft_knee_ccfl(beta, coeffs, 60.0);
    const double measured =
        std::max(0.0, truth + rng.gaussian(0.0, opts.noise_watts));
    samples.push_back({beta, measured});
  }
  return samples;
}

std::vector<Sample> measure_panel(const BenchOptions& opts) {
  HEBS_REQUIRE(opts.points >= 4, "need at least 4 sweep points");
  util::Rng rng(opts.seed + 1);
  const TftPanelModel panel = TftPanelModel::lp064v1();
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(opts.points));
  for (double t :
       util::linspace(0.1, 1.0, static_cast<std::size_t>(opts.points))) {
    const double truth = panel.pixel_power(t);
    const double measured =
        std::max(0.0, truth + rng.gaussian(0.0, opts.noise_watts));
    samples.push_back({t, measured});
  }
  return samples;
}

void split_samples(const std::vector<Sample>& samples,
                   std::vector<double>& xs, std::vector<double>& ys) {
  std::vector<Sample> sorted = samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const Sample& a, const Sample& b) { return a.x < b.x; });
  xs.clear();
  ys.clear();
  xs.reserve(sorted.size());
  ys.reserve(sorted.size());
  for (const Sample& s : sorted) {
    xs.push_back(s.x);
    ys.push_back(s.y);
  }
}

}  // namespace hebs::power
