// Core image types.
//
// `GrayImage` is the 8-bit grayscale frame the HEBS pipeline operates on
// (the paper assumes 8-bit color depth; color images are handled per
// channel or via luma).  `FloatImage` stores normalized luminance in
// [0, 1] and is produced by the display simulator, where displayed
// luminance I = b * t(X) is a real number.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "image/pixel_traits.h"
#include "util/pool.h"

namespace hebs::image {

/// Number of representable grayscale levels for 8-bit pixels.
inline constexpr int kLevels = PixelTraits<std::uint8_t>::kLevels;

/// Maximum 8-bit pixel value.
inline constexpr int kMaxPixel = PixelTraits<std::uint8_t>::kMaxValue;

/// An 8-bit single-channel raster image, row-major.
class GrayImage {
 public:
  /// Empty 0x0 image.
  GrayImage() = default;

  /// Creates a width x height image with every pixel set to `fill`.
  GrayImage(int width, int height, std::uint8_t fill = 0);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Total number of pixels.
  std::size_t size() const noexcept { return pixels_.size(); }
  bool empty() const noexcept { return pixels_.empty(); }

  /// Unchecked pixel access (x = column, y = row).
  std::uint8_t operator()(int x, int y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  std::uint8_t& operator()(int x, int y) noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Bounds-checked pixel access; throws InvalidArgument when outside.
  std::uint8_t at(int x, int y) const;
  void set(int x, int y, std::uint8_t v);

  /// True when (x, y) lies inside the raster.
  bool contains(int x, int y) const noexcept {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  /// Raw pixel storage, row-major.
  std::span<const std::uint8_t> pixels() const noexcept { return pixels_; }
  std::span<std::uint8_t> pixels() noexcept { return pixels_; }

  /// Builds an image by copying a row-major pixel buffer; `pixels`
  /// must hold exactly width * height bytes.
  static GrayImage from_pixels(int width, int height,
                               std::span<const std::uint8_t> pixels);

  /// Sets every pixel to `v`.
  void fill(std::uint8_t v) noexcept;

  /// Mean pixel value in [0, 255]; 0 for an empty image.
  double mean() const noexcept;

  /// Minimum and maximum pixel values; {0, 0} for an empty image.
  struct MinMax {
    std::uint8_t min = 0;
    std::uint8_t max = 0;
  };
  MinMax min_max() const noexcept;

  /// Dynamic range max - min; 0 for an empty image.
  int dynamic_range() const noexcept;

  bool operator==(const GrayImage& other) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  // Pool-backed: per-frame rasters recycle through the worker's
  // BufferPool instead of the heap (see util/pool.h).
  hebs::util::PoolVector<std::uint8_t> pixels_;
};

/// A deep-pixel (> 8-bit) single-channel raster, row-major, stored as
/// 16-bit samples.  Unlike GrayImage, the level count is a runtime
/// property carried by the image: 10-bit video holds 1024 levels and
/// 16-bit stills 65536, both in the same storage type (every sample is
/// < levels()).  The HEBS pipeline reads levels() wherever the 8-bit
/// path reads kLevels.
class GrayImage16 {
 public:
  /// Empty 0x0 image (levels defaults to the full 16-bit ceiling).
  GrayImage16() = default;

  /// Creates a width x height image of `levels` representable levels
  /// (every pixel set to `fill`, which must be < levels).
  GrayImage16(int width, int height, int levels,
              std::uint16_t fill = 0);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Representable level count (1024 for 10-bit, 65536 for 16-bit).
  int levels() const noexcept { return levels_; }

  /// Largest representable sample value, levels() - 1.
  int max_pixel() const noexcept { return levels_ - 1; }

  /// Total number of pixels.
  std::size_t size() const noexcept { return pixels_.size(); }
  bool empty() const noexcept { return pixels_.empty(); }

  /// Unchecked pixel access (x = column, y = row).
  std::uint16_t operator()(int x, int y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  std::uint16_t& operator()(int x, int y) noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Bounds-checked pixel access; throws InvalidArgument when outside.
  std::uint16_t at(int x, int y) const;
  void set(int x, int y, std::uint16_t v);

  /// True when (x, y) lies inside the raster.
  bool contains(int x, int y) const noexcept {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  /// Raw pixel storage, row-major.
  std::span<const std::uint16_t> pixels() const noexcept { return pixels_; }
  std::span<std::uint16_t> pixels() noexcept { return pixels_; }

  /// Builds an image by copying a row-major sample buffer; `pixels`
  /// must hold exactly width * height samples, all < levels.
  static GrayImage16 from_pixels(int width, int height, int levels,
                                 std::span<const std::uint16_t> pixels);

  /// Widens an 8-bit image into `levels` levels by exact ratio scaling
  /// (v * (levels-1) / 255 — 255 always divides for the supported
  /// level counts' companions, but the rounding division is exact
  /// regardless).  An 8-bit frame widened to 16 bits maps v -> 257 v.
  static GrayImage16 widen(const GrayImage& g, int levels);

  /// Sets every pixel to `v`.
  void fill(std::uint16_t v) noexcept;

  /// Mean pixel value in [0, max_pixel()]; 0 for an empty image.
  double mean() const noexcept;

  /// Minimum and maximum pixel values; {0, 0} for an empty image.
  struct MinMax {
    std::uint16_t min = 0;
    std::uint16_t max = 0;
  };
  MinMax min_max() const noexcept;

  /// Dynamic range max - min; 0 for an empty image.
  int dynamic_range() const noexcept;

  bool operator==(const GrayImage16& other) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  int levels_ = PixelTraits<std::uint16_t>::kLevels;
  hebs::util::PoolVector<std::uint16_t> pixels_;
};

/// A normalized-luminance raster (values nominally in [0, 1]), row-major.
class FloatImage {
 public:
  FloatImage() = default;
  FloatImage(int width, int height, double fill = 0.0);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  double operator()(int x, int y) const noexcept {
    return values_[static_cast<std::size_t>(y) * width_ + x];
  }
  double& operator()(int x, int y) noexcept {
    return values_[static_cast<std::size_t>(y) * width_ + x];
  }

  std::span<const double> values() const noexcept { return values_; }
  std::span<double> values() noexcept { return values_; }

  /// Mean luminance; 0 for an empty image.
  double mean() const noexcept;

  /// Converts normalized pixel values X/255 into a FloatImage.
  static FloatImage from_gray(const GrayImage& g);

  /// Converts normalized deep-pixel values X/(levels-1) into a
  /// FloatImage — the depth-generalized twin of from_gray (at 256
  /// levels the per-level normalization table holds the same doubles).
  static FloatImage from_gray16(const GrayImage16& g);

  /// Quantizes back to 8 bits with rounding and clamping.
  GrayImage to_gray() const;

  /// Quantizes to a deep-pixel raster of `levels` levels:
  /// lround(clamp01(v) * (levels-1)).
  GrayImage16 to_gray16(int levels) const;

 private:
  int width_ = 0;
  int height_ = 0;
  hebs::util::PoolVector<double> values_;
};

/// An 8-bit RGB image, row-major interleaved.
class RgbImage {
 public:
  RgbImage() = default;
  RgbImage(int width, int height);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  bool empty() const noexcept { return data_.empty(); }

  struct Pixel {
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;
    bool operator==(const Pixel&) const = default;
  };

  Pixel get(int x, int y) const noexcept;
  void set(int x, int y, Pixel p) noexcept;

  std::span<const std::uint8_t> data() const noexcept { return data_; }
  std::span<std::uint8_t> data() noexcept { return data_; }

  /// ITU-R BT.601 luma extraction (the standard for SDTV-era content,
  /// matching the paper's 2005 context).
  GrayImage to_luma() const;

  /// Replicates a grayscale image into all three channels.
  static RgbImage from_gray(const GrayImage& g);

  /// Builds an image by copying an interleaved R,G,B buffer; `pixels`
  /// must hold exactly 3 * width * height bytes.
  static RgbImage from_pixels(int width, int height,
                              std::span<const std::uint8_t> pixels);

 private:
  int width_ = 0;
  int height_ = 0;
  hebs::util::PoolVector<std::uint8_t> data_;
};

}  // namespace hebs::image
