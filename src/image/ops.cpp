#include "image/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/kernels.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::image {

GrayImage crop(const GrayImage& img, int x0, int y0, int w, int h) {
  HEBS_REQUIRE(w > 0 && h > 0, "crop size must be positive");
  HEBS_REQUIRE(x0 >= 0 && y0 >= 0 && x0 + w <= img.width() &&
                   y0 + h <= img.height(),
               "crop rectangle outside the image");
  GrayImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out(x, y) = img(x0 + x, y0 + y);
    }
  }
  return out;
}

GrayImage flip_horizontal(const GrayImage& img) {
  HEBS_REQUIRE(!img.empty(), "flip of empty image");
  GrayImage out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out(x, y) = img(img.width() - 1 - x, y);
    }
  }
  return out;
}

GrayImage flip_vertical(const GrayImage& img) {
  HEBS_REQUIRE(!img.empty(), "flip of empty image");
  GrayImage out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out(x, y) = img(x, img.height() - 1 - y);
    }
  }
  return out;
}

GrayImage rotate90(const GrayImage& img) {
  HEBS_REQUIRE(!img.empty(), "rotation of empty image");
  GrayImage out(img.height(), img.width());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out(img.height() - 1 - y, x) = img(x, y);
    }
  }
  return out;
}

GrayImage resize_bilinear(const GrayImage& img, int new_w, int new_h) {
  HEBS_REQUIRE(!img.empty(), "resize of empty image");
  HEBS_REQUIRE(new_w > 0 && new_h > 0, "target size must be positive");
  GrayImage out(new_w, new_h);
  const double sx =
      new_w > 1 ? static_cast<double>(img.width() - 1) / (new_w - 1) : 0.0;
  const double sy =
      new_h > 1 ? static_cast<double>(img.height() - 1) / (new_h - 1) : 0.0;

  // Horizontal sample positions are the same for every output row;
  // compute them once.
  std::vector<int> xs0(static_cast<std::size_t>(new_w));
  std::vector<int> xs1(static_cast<std::size_t>(new_w));
  std::vector<double> wxs(static_cast<std::size_t>(new_w));
  for (int x = 0; x < new_w; ++x) {
    const double fx = x * sx;
    const int x0 = static_cast<int>(std::floor(fx));
    xs0[static_cast<std::size_t>(x)] = x0;
    xs1[static_cast<std::size_t>(x)] = std::min(x0 + 1, img.width() - 1);
    wxs[static_cast<std::size_t>(x)] = fx - x0;
  }

  // Per output row: gather-lerp the two source rows horizontally, then
  // blend them vertically as one elementwise pass through the kernel
  // layer.  lerp(top, bottom, wy) = top + wy*(bottom - top), built from
  // a (-1)-saxpy (exact negation) and a wy-saxpy, so every pixel sees
  // exactly the arithmetic of the old scalar triple-lerp.
  const auto& kernels = hebs::kernels::active();
  std::vector<double> top(static_cast<std::size_t>(new_w));
  std::vector<double> bottom(static_cast<std::size_t>(new_w));
  std::vector<double> diff(static_cast<std::size_t>(new_w));
  for (int y = 0; y < new_h; ++y) {
    const double fy = y * sy;
    const int y0 = static_cast<int>(std::floor(fy));
    const int y1 = std::min(y0 + 1, img.height() - 1);
    const double wy = fy - y0;
    for (int x = 0; x < new_w; ++x) {
      const std::size_t i = static_cast<std::size_t>(x);
      top[i] = util::lerp(img(xs0[i], y0), img(xs1[i], y0), wxs[i]);
      bottom[i] = util::lerp(img(xs0[i], y1), img(xs1[i], y1), wxs[i]);
    }
    diff = bottom;
    kernels.saxpy_f64(-1.0, top.data(), diff.data(), diff.size());
    kernels.saxpy_f64(wy, diff.data(), top.data(), top.size());
    for (int x = 0; x < new_w; ++x) {
      out(x, y) = static_cast<std::uint8_t>(std::lround(
          util::clamp(top[static_cast<std::size_t>(x)], 0.0, 255.0)));
    }
  }
  return out;
}

}  // namespace hebs::image
