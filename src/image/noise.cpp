#include "image/noise.h"

#include <cmath>

#include "image/draw.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::image {

namespace {
// Quintic smoothstep keeps the noise C1-continuous across lattice cells.
double smooth(double t) noexcept {
  return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}
}  // namespace

double ValueNoise::lattice(std::int64_t xi, std::int64_t yi) const noexcept {
  std::uint64_t h = seed_;
  h ^= static_cast<std::uint64_t>(xi) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(yi) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double ValueNoise::sample(double x, double y) const noexcept {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto xi = static_cast<std::int64_t>(fx);
  const auto yi = static_cast<std::int64_t>(fy);
  const double tx = smooth(x - fx);
  const double ty = smooth(y - fy);
  const double v00 = lattice(xi, yi);
  const double v10 = lattice(xi + 1, yi);
  const double v01 = lattice(xi, yi + 1);
  const double v11 = lattice(xi + 1, yi + 1);
  const double a = util::lerp(v00, v10, tx);
  const double b = util::lerp(v01, v11, tx);
  return util::lerp(a, b, ty);
}

double ValueNoise::fbm(double x, double y, int octaves,
                       double gain) const noexcept {
  double amp = 1.0;
  double freq = 1.0;
  double acc = 0.0;
  double norm = 0.0;
  for (int o = 0; o < octaves; ++o) {
    acc += amp * sample(x * freq, y * freq);
    norm += amp;
    amp *= gain;
    freq *= 2.0;
  }
  return norm > 0 ? acc / norm : 0.0;
}

void fill_fbm(GrayImage& img, std::uint64_t seed, double scale, int octaves,
              double lo, double hi) {
  HEBS_REQUIRE(scale > 0, "noise scale must be positive");
  HEBS_REQUIRE(octaves >= 1, "need at least one octave");
  const ValueNoise noise(seed);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double v = noise.fbm(x / scale, y / scale, octaves);
      img(x, y) = to_pixel(util::lerp(lo, hi, v));
    }
  }
}

}  // namespace hebs::image
