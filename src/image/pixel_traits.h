// Pixel-depth traits: the one place the level count of a sample type is
// defined.
//
// The paper's machinery (GHE, PLC, backlight scaling) is depth-agnostic:
// every formula works on normalized levels x/(L-1) and N-bin histograms.
// Only the storage type and the level count L differ between the 8-bit
// path the paper assumes and the 10/16-bit content modern panels carry.
// `PixelTraits` names that pair per sample type; the runtime `levels`
// values threaded through Histogram/FloatLut/FrameContext all originate
// here (or from a PNM maxval / SessionConfig::bit_depth, clamped to
// these bounds).
#pragma once

#include <cstdint>

namespace hebs::image {

template <typename T>
struct PixelTraits;

/// 8-bit samples: the paper's depth.  256 levels, frozen semantics —
/// every 256-leveled constant in the codebase (kLevels/kMaxPixel) is
/// this specialization's value by definition.
template <>
struct PixelTraits<std::uint8_t> {
  using value_type = std::uint8_t;
  static constexpr int kBitDepth = 8;
  static constexpr int kLevels = 256;
  static constexpr int kMaxValue = 255;
};

/// 16-bit samples: the storage type for everything above 8 bits.
/// 10-bit video and 16-bit stills both live here; the *effective* level
/// count is a runtime property of the image (GrayImage16::levels()),
/// bounded by this trait's ceiling.
template <>
struct PixelTraits<std::uint16_t> {
  using value_type = std::uint16_t;
  static constexpr int kBitDepth = 16;
  static constexpr int kLevels = 65536;
  static constexpr int kMaxValue = 65535;
};

/// Level count of a bit depth (8 -> 256, 10 -> 1024, 16 -> 65536).
constexpr int levels_for_bit_depth(int bit_depth) noexcept {
  return 1 << bit_depth;
}

/// True when `bit_depth` is one of the supported session depths.
constexpr bool supported_bit_depth(int bit_depth) noexcept {
  return bit_depth == 8 || bit_depth == 10 || bit_depth == 16;
}

}  // namespace hebs::image
