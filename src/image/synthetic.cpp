#include "image/synthetic.h"

#include <cmath>

#include "image/draw.h"
#include "image/noise.h"
#include "util/error.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace hebs::image {

namespace {

// Per-image master seeds; fixed so the album is bit-reproducible.
constexpr std::uint64_t kSeedBase = 0x48454253'2005ULL;  // "HEBS" 2005

std::uint64_t seed_for(UsidId id) {
  return kSeedBase + 0x1000ULL * static_cast<std::uint64_t>(id);
}

double frac(int v, int size) { return static_cast<double>(v) / size; }

// --- Individual scene generators -----------------------------------------
//
// Each generator documents the histogram character it is engineered to
// reproduce.  `s` is the image side length in pixels.

// Lena: portrait — smooth mid-tone skin areas, diagonal hat band, soft
// background.  Histogram: broad, mid-heavy, few true blacks/whites.
GrayImage gen_lena(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kLena));
  gradient_radial(img, s * 0.3, s * 0.25, s * 1.2, 0.75, 0.35);
  // Hat: diagonal band across the upper-left.
  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      const double d = frac(x, s) + frac(y, s);
      if (d < 0.55 && d > 0.25) {
        img(x, y) = to_pixel(0.55 + 0.18 * std::sin(12.0 * d));
      }
    }
  }
  // Face and shoulder as soft elliptical mid-tones.
  fill_ellipse(img, s * 0.55, s * 0.5, s * 0.18, s * 0.24, 0.72);
  add_gaussian_blob(img, s * 0.5, s * 0.45, s * 0.06, -0.15);  // eye shadow
  add_gaussian_blob(img, s * 0.62, s * 0.47, s * 0.05, -0.12);
  fill_ellipse(img, s * 0.52, s * 0.85, s * 0.3, s * 0.18, 0.6);
  box_blur(img, std::max(1, s / 128), 2);
  add_gaussian_noise(img, 0.015, rng);
  stretch_to_range(img, 0.1, 0.93);
  return img;
}

// Autumn: landscape — bright sky band above warm textured foliage.
// Histogram: bimodal (sky highs, foliage mids).
GrayImage gen_autumn(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kAutumn));
  gradient_v(img, 0.9, 0.75);  // sky
  GrayImage foliage(s, s);
  fill_fbm(foliage, seed_for(UsidId::kAutumn) + 1, s / 10.0, 5, 0.25, 0.65);
  const int horizon = static_cast<int>(s * 0.35);
  for (int y = horizon; y < s; ++y) {
    for (int x = 0; x < s; ++x) img(x, y) = foliage(x, y);
  }
  // Tree trunks.
  for (int i = 0; i < 5; ++i) {
    const int x0 = static_cast<int>(s * (0.12 + 0.18 * i));
    fill_rect(img, x0, horizon - s / 8, x0 + std::max(2, s / 64), s, 0.15);
  }
  add_gaussian_noise(img, 0.01, rng);
  return img;
}

// Football: night game — dark field, bright ball and floodlit spots.
// Histogram: dark-dominated with a bright tail.
GrayImage gen_football(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kFootball));
  fill_fbm(img, seed_for(UsidId::kFootball) + 1, s / 6.0, 4, 0.1, 0.3);
  fill_ellipse(img, s * 0.55, s * 0.55, s * 0.22, s * 0.13, 0.78);
  // Lacing highlights.
  for (int i = 0; i < 6; ++i) {
    fill_rect(img, static_cast<int>(s * (0.45 + 0.035 * i)),
              static_cast<int>(s * 0.53), static_cast<int>(s * (0.455 + 0.035 * i)),
              static_cast<int>(s * 0.58), 0.95);
  }
  add_gaussian_blob(img, s * 0.2, s * 0.2, s * 0.08, 0.5);  // floodlight
  add_gaussian_noise(img, 0.02, rng);
  return img;
}

// Peppers: large smooth vegetables with specular highlights.
// Histogram: multimodal (one mode per pepper shade).
GrayImage gen_peppers(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kPeppers));
  img.fill(to_pixel(0.25));
  const double shades[] = {0.35, 0.55, 0.75, 0.45, 0.65};
  for (int i = 0; i < 5; ++i) {
    const double cx = s * rng.uniform(0.2, 0.8);
    const double cy = s * rng.uniform(0.2, 0.8);
    const double rx = s * rng.uniform(0.14, 0.26);
    const double ry = s * rng.uniform(0.14, 0.26);
    fill_ellipse(img, cx, cy, rx, ry, shades[i]);
    add_gaussian_blob(img, cx - rx * 0.3, cy - ry * 0.3, s * 0.03, 0.3);
  }
  box_blur(img, std::max(1, s / 170), 1);
  add_gaussian_noise(img, 0.012, rng);
  return img;
}

// Greens: close-up foliage — narrow mid-range texture.
// Histogram: compact single mode (low native dynamic range).
GrayImage gen_greens(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kGreens));
  fill_fbm(img, seed_for(UsidId::kGreens) + 1, s / 16.0, 5, 0.3, 0.7);
  vignette(img, 0.8);
  add_gaussian_noise(img, 0.01, rng);
  return img;
}

// Pears: smooth bright fruit on a soft gradient table.
// Histogram: bright-leaning smooth modes.
GrayImage gen_pears(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kPears));
  gradient_v(img, 0.55, 0.3);
  for (int i = 0; i < 3; ++i) {
    const double cx = s * (0.25 + 0.25 * i);
    const double cy = s * 0.55;
    fill_ellipse(img, cx, cy, s * 0.11, s * 0.15, 0.68 + 0.08 * i);
    add_gaussian_blob(img, cx - s * 0.03, cy - s * 0.05, s * 0.03, 0.22);
  }
  box_blur(img, std::max(1, s / 128), 1);
  add_gaussian_noise(img, 0.012, rng);
  return img;
}

// Onion: concentric ring structure plus companion vegetables.
// Histogram: oscillatory mid-range coverage.
GrayImage gen_onion(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kOnion));
  img.fill(to_pixel(0.3));
  const double cx = s * 0.5;
  const double cy = s * 0.55;
  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      const double r = std::hypot(x - cx, y - cy);
      if (r < s * 0.32) {
        img(x, y) =
            to_pixel(0.5 + 0.25 * std::sin(r / (s * 0.02)) *
                               std::exp(-r / (s * 0.4)));
      }
    }
  }
  fill_ellipse(img, s * 0.15, s * 0.8, s * 0.1, s * 0.07, 0.62);
  fill_ellipse(img, s * 0.85, s * 0.78, s * 0.09, s * 0.06, 0.45);
  add_gaussian_noise(img, 0.012, rng);
  return img;
}

// Trees: winter trees — textured sky with dark branch structure.
// Histogram: broad with a dark mode.
GrayImage gen_trees(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kTrees));
  fill_fbm(img, seed_for(UsidId::kTrees) + 1, s / 4.0, 3, 0.6, 0.85);
  for (int t = 0; t < 7; ++t) {
    const int x0 = static_cast<int>(s * (0.08 + 0.13 * t));
    fill_rect(img, x0, s / 4, x0 + std::max(2, s / 80), s, 0.12);
    // Branches as thin diagonals.
    for (int b = 0; b < 8; ++b) {
      const int by = s / 4 + b * s / 12;
      for (int k = 0; k < s / 10; ++k) {
        const int bx = x0 + ((b % 2 == 0) ? k : -k);
        if (img.contains(bx, by - k / 3)) {
          img(bx, by - k / 3) = to_pixel(0.18);
        }
      }
    }
  }
  add_gaussian_noise(img, 0.015, rng);
  return img;
}

// West (Westconcord aerial): bright roads over mid-tone blocks.
// Histogram: mids plus a strong bright line component.
GrayImage gen_west(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kWest));
  fill_fbm(img, seed_for(UsidId::kWest) + 1, s / 8.0, 4, 0.3, 0.6);
  // Blocks (fields / roofs).
  for (int i = 0; i < 12; ++i) {
    const int x0 = rng.uniform_int(0, s - s / 6);
    const int y0 = rng.uniform_int(0, s - s / 6);
    fill_rect(img, x0, y0, x0 + rng.uniform_int(s / 16, s / 6),
              y0 + rng.uniform_int(s / 16, s / 6),
              rng.uniform(0.35, 0.7));
  }
  // Roads: one horizontal, one vertical, one diagonal, all bright.
  fill_rect(img, 0, static_cast<int>(s * 0.42), s,
            static_cast<int>(s * 0.42) + std::max(2, s / 48), 0.9);
  fill_rect(img, static_cast<int>(s * 0.68), 0,
            static_cast<int>(s * 0.68) + std::max(2, s / 48), s, 0.88);
  for (int k = 0; k < s; ++k) {
    for (int wline = 0; wline < std::max(2, s / 64); ++wline) {
      const int x = k;
      const int y = s - 1 - k + wline;
      if (img.contains(x, y)) img(x, y) = to_pixel(0.85);
    }
  }
  add_gaussian_noise(img, 0.012, rng);
  return img;
}

// Pout: the classic low-contrast portrait — everything squeezed into a
// narrow mid-dark band.  Histogram: very narrow (the canonical histogram-
// equalization demo).
GrayImage gen_pout(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kPout));
  gradient_v(img, 0.5, 0.42);
  fill_ellipse(img, s * 0.5, s * 0.4, s * 0.2, s * 0.26, 0.55);
  fill_ellipse(img, s * 0.5, s * 0.9, s * 0.32, s * 0.3, 0.47);
  add_gaussian_blob(img, s * 0.44, s * 0.36, s * 0.04, -0.06);
  add_gaussian_blob(img, s * 0.56, s * 0.36, s * 0.04, -0.06);
  box_blur(img, std::max(1, s / 128), 2);
  add_gaussian_noise(img, 0.01, rng);
  stretch_to_range(img, 0.29, 0.62);  // enforce the narrow-histogram look
  return img;
}

// Sail: bright sky and water with white sails — bright-dominated.
GrayImage gen_sail(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kSail));
  gradient_v(img, 0.95, 0.7);
  const int horizon = static_cast<int>(s * 0.55);
  GrayImage water(s, s);
  fill_fbm(water, seed_for(UsidId::kSail) + 1, s / 20.0, 4, 0.55, 0.8);
  for (int y = horizon; y < s; ++y) {
    for (int x = 0; x < s; ++x) img(x, y) = water(x, y);
  }
  // Sails: bright triangles.
  for (int t = 0; t < 3; ++t) {
    const int bx = static_cast<int>(s * (0.25 + 0.25 * t));
    const int h = s / 5;
    for (int k = 0; k < h; ++k) {
      fill_rect(img, bx - k / 3, horizon - h + k, bx + k / 2,
                horizon - h + k + 1, 0.97);
    }
    fill_rect(img, bx, horizon - h, bx + std::max(1, s / 128), horizon, 0.2);
  }
  add_gaussian_noise(img, 0.008, rng);
  return img;
}

// Splash: dark background, bright crown splash — extreme dark dominance.
GrayImage gen_splash(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kSplash));
  gradient_radial(img, s * 0.5, s * 0.6, s * 0.9, 0.18, 0.04);
  // Crown droplets.
  for (int i = 0; i < 14; ++i) {
    const double ang = 2.0 * 3.14159265 * i / 14.0;
    const double cx = s * 0.5 + s * 0.22 * std::cos(ang);
    const double cy = s * 0.55 + s * 0.1 * std::sin(ang);
    fill_circle(img, cx, cy, s * 0.02, 0.85);
  }
  fill_ellipse(img, s * 0.5, s * 0.62, s * 0.2, s * 0.05, 0.75);
  add_gaussian_blob(img, s * 0.5, s * 0.45, s * 0.05, 0.6);
  box_blur(img, std::max(1, s / 170), 1);
  add_gaussian_noise(img, 0.015, rng);
  return img;
}

// Girl: mid-key portrait with soft background.
GrayImage gen_girl(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kGirl));
  gradient_h(img, 0.45, 0.6);
  fill_ellipse(img, s * 0.5, s * 0.42, s * 0.17, s * 0.22, 0.7);
  fill_ellipse(img, s * 0.5, s * 0.95, s * 0.3, s * 0.35, 0.52);
  fill_ellipse(img, s * 0.5, s * 0.24, s * 0.2, s * 0.12, 0.25);  // hair
  add_gaussian_blob(img, s * 0.44, s * 0.4, s * 0.035, -0.1);
  add_gaussian_blob(img, s * 0.56, s * 0.4, s * 0.035, -0.1);
  box_blur(img, std::max(1, s / 128), 2);
  add_gaussian_noise(img, 0.012, rng);
  return img;
}

// Baboon: the canonical broadband texture — full-range, high local
// variance everywhere, nearly flat histogram.
GrayImage gen_baboon(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kBaboon));
  fill_fbm(img, seed_for(UsidId::kBaboon) + 1, s / 48.0, 6, 0.05, 0.95);
  // Bright nose ridge.
  fill_ellipse(img, s * 0.5, s * 0.6, s * 0.08, s * 0.25, 0.8);
  add_gaussian_noise(img, 0.04, rng);
  stretch_to_range(img, 0.0, 1.0);
  return img;
}

// TreeA: lone tree silhouette against bright sky — strongly bimodal.
GrayImage gen_tree_a(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kTreeA));
  gradient_v(img, 0.92, 0.8);
  fill_rect(img, static_cast<int>(s * 0.48), static_cast<int>(s * 0.45),
            static_cast<int>(s * 0.52), s, 0.1);
  // Canopy as clustered dark blobs.
  for (int i = 0; i < 30; ++i) {
    const double cx = s * rng.uniform(0.3, 0.7);
    const double cy = s * rng.uniform(0.2, 0.5);
    fill_circle(img, cx, cy, s * rng.uniform(0.03, 0.08), 0.15);
  }
  fill_rect(img, 0, static_cast<int>(s * 0.88), s, s, 0.35);  // ground
  add_gaussian_noise(img, 0.012, rng);
  return img;
}

// HouseA: geometric architecture — large flat regions, spiky histogram.
GrayImage gen_house_a(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kHouseA));
  gradient_v(img, 0.85, 0.8);                               // sky
  fill_rect(img, 0, static_cast<int>(s * 0.75), s, s, 0.4);  // lawn
  fill_rect(img, static_cast<int>(s * 0.2), static_cast<int>(s * 0.4),
            static_cast<int>(s * 0.8), static_cast<int>(s * 0.78), 0.65);
  // Roof.
  for (int k = 0; k < static_cast<int>(s * 0.15); ++k) {
    fill_rect(img, static_cast<int>(s * 0.18) + k,
              static_cast<int>(s * 0.4) - k,
              static_cast<int>(s * 0.82) - k,
              static_cast<int>(s * 0.4) - k + 1, 0.3);
  }
  // Windows and door.
  for (int wcol = 0; wcol < 3; ++wcol) {
    fill_rect(img, static_cast<int>(s * (0.26 + 0.18 * wcol)),
              static_cast<int>(s * 0.48),
              static_cast<int>(s * (0.34 + 0.18 * wcol)),
              static_cast<int>(s * 0.58), 0.2);
  }
  fill_rect(img, static_cast<int>(s * 0.45), static_cast<int>(s * 0.6),
            static_cast<int>(s * 0.55), static_cast<int>(s * 0.78), 0.25);
  add_gaussian_noise(img, 0.008, rng);
  return img;
}

// GirlB: low-key portrait — darker overall than Girl.
GrayImage gen_girl_b(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kGirlB));
  gradient_radial(img, s * 0.5, s * 0.4, s, 0.4, 0.1);
  fill_ellipse(img, s * 0.5, s * 0.45, s * 0.16, s * 0.2, 0.55);
  fill_ellipse(img, s * 0.5, s * 0.95, s * 0.28, s * 0.3, 0.3);
  add_gaussian_blob(img, s * 0.45, s * 0.42, s * 0.03, -0.12);
  add_gaussian_blob(img, s * 0.55, s * 0.42, s * 0.03, -0.12);
  box_blur(img, std::max(1, s / 128), 2);
  add_gaussian_noise(img, 0.015, rng);
  return img;
}

// Testpat: synthetic test pattern — ramps, bars, checkerboard.  Histogram:
// a near-uniform component (ramps) plus strong spikes (flat bars).
GrayImage gen_testpat(int s) {
  GrayImage img(s, s);
  // Top third: horizontal ramp covering the full range.
  GrayImage ramp(s, std::max(1, s / 3));
  gradient_h(ramp, 0.0, 1.0);
  for (int y = 0; y < ramp.height(); ++y) {
    for (int x = 0; x < s; ++x) img(x, y) = ramp(x, y);
  }
  // Middle third: grayscale step bars.
  const int y0 = s / 3;
  const int y1 = 2 * s / 3;
  const int bars = 8;
  for (int b = 0; b < bars; ++b) {
    fill_rect(img, b * s / bars, y0, (b + 1) * s / bars, y1,
              static_cast<double>(b) / (bars - 1));
  }
  // Bottom third: checkerboard + vertical ramp quadrant.
  GrayImage lower(s, s - y1);
  checkerboard(lower, std::max(1, s / 16), 0.2, 0.8);
  for (int y = 0; y < lower.height(); ++y) {
    for (int x = 0; x < s; ++x) img(x, y + y1) = lower(x, y);
  }
  for (int y = y1; y < s; ++y) {
    for (int x = 2 * s / 3; x < s; ++x) {
      img(x, y) = to_pixel(static_cast<double>(y - y1) / (s - y1));
    }
  }
  return img;
}

// Elaine: portrait with broad tonal coverage.
GrayImage gen_elaine(int s) {
  GrayImage img(s, s);
  util::Rng rng(seed_for(UsidId::kElaine));
  gradient_radial(img, s * 0.4, s * 0.35, s * 1.1, 0.7, 0.25);
  fill_ellipse(img, s * 0.52, s * 0.45, s * 0.19, s * 0.24, 0.66);
  fill_ellipse(img, s * 0.52, s * 0.23, s * 0.22, s * 0.14, 0.35);  // hair
  fill_ellipse(img, s * 0.5, s * 0.92, s * 0.34, s * 0.3, 0.55);
  add_gaussian_blob(img, s * 0.46, s * 0.43, s * 0.04, -0.1);
  add_gaussian_blob(img, s * 0.6, s * 0.43, s * 0.04, -0.1);
  add_gaussian_blob(img, s * 0.25, s * 0.75, s * 0.08, 0.25);
  box_blur(img, std::max(1, s / 128), 1);
  add_gaussian_noise(img, 0.02, rng);
  stretch_to_range(img, 0.05, 0.95);
  return img;
}

}  // namespace

std::string_view usid_name(UsidId id) noexcept {
  switch (id) {
    case UsidId::kLena: return "Lena";
    case UsidId::kAutumn: return "Autumn";
    case UsidId::kFootball: return "Football";
    case UsidId::kPeppers: return "Peppers";
    case UsidId::kGreens: return "Greens";
    case UsidId::kPears: return "Pears";
    case UsidId::kOnion: return "Onion";
    case UsidId::kTrees: return "Trees";
    case UsidId::kWest: return "West";
    case UsidId::kPout: return "Pout";
    case UsidId::kSail: return "Sail";
    case UsidId::kSplash: return "Splash";
    case UsidId::kGirl: return "Girl";
    case UsidId::kBaboon: return "Baboon";
    case UsidId::kTreeA: return "TreeA";
    case UsidId::kHouseA: return "HouseA";
    case UsidId::kGirlB: return "GirlB";
    case UsidId::kTestpat: return "Testpat";
    case UsidId::kElaine: return "Elaine";
  }
  return "Unknown";
}

GrayImage make_usid(UsidId id, int size) {
  HEBS_REQUIRE(size >= 16, "benchmark images need size >= 16");
  switch (id) {
    case UsidId::kLena: return gen_lena(size);
    case UsidId::kAutumn: return gen_autumn(size);
    case UsidId::kFootball: return gen_football(size);
    case UsidId::kPeppers: return gen_peppers(size);
    case UsidId::kGreens: return gen_greens(size);
    case UsidId::kPears: return gen_pears(size);
    case UsidId::kOnion: return gen_onion(size);
    case UsidId::kTrees: return gen_trees(size);
    case UsidId::kWest: return gen_west(size);
    case UsidId::kPout: return gen_pout(size);
    case UsidId::kSail: return gen_sail(size);
    case UsidId::kSplash: return gen_splash(size);
    case UsidId::kGirl: return gen_girl(size);
    case UsidId::kBaboon: return gen_baboon(size);
    case UsidId::kTreeA: return gen_tree_a(size);
    case UsidId::kHouseA: return gen_house_a(size);
    case UsidId::kGirlB: return gen_girl_b(size);
    case UsidId::kTestpat: return gen_testpat(size);
    case UsidId::kElaine: return gen_elaine(size);
  }
  throw util::InvalidArgument("unknown UsidId");
}

std::vector<NamedImage> usid_album(int size) {
  std::vector<NamedImage> album;
  album.reserve(kAllUsidIds.size());
  for (UsidId id : kAllUsidIds) {
    album.push_back({std::string(usid_name(id)), make_usid(id, size)});
  }
  return album;
}

std::vector<NamedImage> usid_figure8_subset(int size) {
  const std::array<UsidId, 6> subset = {
      UsidId::kLena,   UsidId::kPeppers, UsidId::kBaboon,
      UsidId::kSplash, UsidId::kSail,    UsidId::kTestpat,
  };
  std::vector<NamedImage> out;
  out.reserve(subset.size());
  for (UsidId id : subset) {
    out.push_back({std::string(usid_name(id)), make_usid(id, size)});
  }
  return out;
}

RgbImage make_usid_color(UsidId id, int size) {
  const GrayImage luma = make_usid(id, size);
  // Two low-frequency chroma fields steer the red/blue balance; green
  // follows so that BT.601 luma stays close to the grayscale original.
  const ValueNoise chroma_u(seed_for(id) + 0xC01);
  const ValueNoise chroma_v(seed_for(id) + 0xC02);
  RgbImage out(size, size);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const double base = luma(x, y) / 255.0;
      const double u =
          0.25 * (chroma_u.fbm(x / (size / 4.0), y / (size / 4.0), 2) - 0.5);
      const double v =
          0.25 * (chroma_v.fbm(x / (size / 4.0), y / (size / 4.0), 2) - 0.5);
      const double r = util::clamp01(base + u);
      const double b = util::clamp01(base + v);
      // Solve 0.299 r + 0.587 g + 0.114 b = base for g, clamped.
      const double g =
          util::clamp01((base - 0.299 * r - 0.114 * b) / 0.587);
      out.set(x, y, {to_pixel(r), to_pixel(g), to_pixel(b)});
    }
  }
  return out;
}

std::vector<GrayImage> make_video_clip(int frames, int size,
                                       std::uint64_t seed) {
  HEBS_REQUIRE(frames >= 1, "clip needs at least one frame");
  HEBS_REQUIRE(size >= 16, "clip frames need size >= 16");
  std::vector<GrayImage> clip;
  clip.reserve(static_cast<std::size_t>(frames));
  const ValueNoise noise(seed);
  for (int f = 0; f < frames; ++f) {
    GrayImage frame(size, size);
    // A panning textured scene whose overall brightness breathes slowly,
    // with an abrupt "scene cut" to a darker setting two-thirds in.
    const double pan = 0.08 * f;
    const bool second_scene = f >= 2 * frames / 3;
    const double base = second_scene ? 0.25 : 0.55;
    const double breathe =
        0.12 * std::sin(2.0 * 3.14159265 * f / std::max(8, frames / 2));
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const double v = noise.fbm((x + pan * size) / (size / 8.0),
                                   y / (size / 8.0), 4);
        frame(x, y) = to_pixel(base + breathe + 0.35 * (v - 0.5));
      }
    }
    // A bright moving object.
    const double ox = size * (0.2 + 0.6 * f / std::max(1, frames - 1));
    add_gaussian_blob(frame, ox, size * 0.5, size * 0.06, 0.4);
    clip.push_back(std::move(frame));
  }
  return clip;
}

}  // namespace hebs::image
