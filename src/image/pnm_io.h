// PNM (PGM/PPM) image file I/O.
//
// The benchmark harness and examples persist before/after images so a
// human can inspect the backlight-scaled results.  Binary (P5/P6) and
// ASCII (P2/P3) variants are supported, which covers everything the USC
// SIPI database ships as after conversion.
#pragma once

#include <string>

#include "image/image.h"

namespace hebs::image {

/// Writes a grayscale image as binary PGM (P5).
void write_pgm(const GrayImage& img, const std::string& path);

/// Writes a grayscale image as ASCII PGM (P2).
void write_pgm_ascii(const GrayImage& img, const std::string& path);

/// Writes an RGB image as binary PPM (P6).
void write_ppm(const RgbImage& img, const std::string& path);

/// Reads a PGM file (P2 or P5). Throws IoError on malformed input.
GrayImage read_pgm(const std::string& path);

/// Reads a PPM file (P3 or P6). Throws IoError on malformed input.
RgbImage read_ppm(const std::string& path);

/// Writes a deep-pixel grayscale image as binary PGM (P5) with
/// maxval = img.max_pixel().  Per the PGM specification, a maxval above
/// 255 stores each sample as two bytes, most significant first
/// (big-endian).  Samples are written raw — no rescaling.
void write_pgm16(const GrayImage16& img, const std::string& path);

/// Reads a PGM file (P2 or P5) of any maxval in [1, 65535] into a
/// deep-pixel image of maxval + 1 levels, preserving the raw samples
/// (no rescaling; an 8-bit file yields a 256-level GrayImage16).
/// Binary files with maxval > 255 carry big-endian two-byte samples.
/// Throws IoError on malformed input, truncated pixel data, or any
/// sample above maxval.
GrayImage16 read_pgm16(const std::string& path);

}  // namespace hebs::image
