#include "image/draw.h"

#include <algorithm>
#include <cmath>

#include "util/mathutil.h"

namespace hebs::image {

namespace {
// Clips v to the raster's x range.
int clip_x(const GrayImage& img, int v) {
  return std::clamp(v, 0, img.width());
}
int clip_y(const GrayImage& img, int v) {
  return std::clamp(v, 0, img.height());
}
}  // namespace

std::uint8_t to_pixel(double v) noexcept {
  return static_cast<std::uint8_t>(
      std::lround(util::clamp01(v) * kMaxPixel));
}

void fill_rect(GrayImage& img, int x0, int y0, int x1, int y1, double v) {
  const std::uint8_t p = to_pixel(v);
  for (int y = clip_y(img, y0); y < clip_y(img, y1); ++y) {
    for (int x = clip_x(img, x0); x < clip_x(img, x1); ++x) {
      img(x, y) = p;
    }
  }
}

void fill_circle(GrayImage& img, double cx, double cy, double r, double v) {
  fill_ellipse(img, cx, cy, r, r, v);
}

void fill_ellipse(GrayImage& img, double cx, double cy, double rx, double ry,
                  double v) {
  if (rx <= 0 || ry <= 0) return;
  const std::uint8_t p = to_pixel(v);
  const int y0 = clip_y(img, static_cast<int>(std::floor(cy - ry)));
  const int y1 = clip_y(img, static_cast<int>(std::ceil(cy + ry)) + 1);
  const int x0 = clip_x(img, static_cast<int>(std::floor(cx - rx)));
  const int x1 = clip_x(img, static_cast<int>(std::ceil(cx + rx)) + 1);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const double dx = (x - cx) / rx;
      const double dy = (y - cy) / ry;
      if (dx * dx + dy * dy <= 1.0) img(x, y) = p;
    }
  }
}

void gradient_h(GrayImage& img, double v0, double v1) {
  for (int x = 0; x < img.width(); ++x) {
    const double t =
        img.width() > 1 ? static_cast<double>(x) / (img.width() - 1) : 0.0;
    const std::uint8_t p = to_pixel(util::lerp(v0, v1, t));
    for (int y = 0; y < img.height(); ++y) img(x, y) = p;
  }
}

void gradient_v(GrayImage& img, double v0, double v1) {
  for (int y = 0; y < img.height(); ++y) {
    const double t =
        img.height() > 1 ? static_cast<double>(y) / (img.height() - 1) : 0.0;
    const std::uint8_t p = to_pixel(util::lerp(v0, v1, t));
    for (int x = 0; x < img.width(); ++x) img(x, y) = p;
  }
}

void gradient_radial(GrayImage& img, double cx, double cy, double r,
                     double v0, double v1) {
  if (r <= 0) return;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double d = std::hypot(x - cx, y - cy) / r;
      img(x, y) = to_pixel(util::lerp(v0, v1, util::clamp01(d)));
    }
  }
}

void add_gaussian_blob(GrayImage& img, double cx, double cy, double sigma,
                       double amp) {
  if (sigma <= 0) return;
  const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
  // 3-sigma support is visually indistinguishable from the full kernel.
  const double support = 3.0 * sigma;
  const int y0 = clip_y(img, static_cast<int>(std::floor(cy - support)));
  const int y1 = clip_y(img, static_cast<int>(std::ceil(cy + support)) + 1);
  const int x0 = clip_x(img, static_cast<int>(std::floor(cx - support)));
  const int x1 = clip_x(img, static_cast<int>(std::ceil(cx + support)) + 1);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
      const double add = amp * std::exp(-d2 * inv2s2);
      img(x, y) = to_pixel(img(x, y) / 255.0 + add);
    }
  }
}

void checkerboard(GrayImage& img, int cell, double v0, double v1) {
  if (cell < 1) cell = 1;
  const std::uint8_t p0 = to_pixel(v0);
  const std::uint8_t p1 = to_pixel(v1);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      img(x, y) = (((x / cell) + (y / cell)) % 2 == 0) ? p0 : p1;
    }
  }
}

void add_gaussian_noise(GrayImage& img, double sigma, util::Rng& rng) {
  for (auto& p : img.pixels()) {
    const double v = p / 255.0 + rng.gaussian(0.0, sigma);
    p = to_pixel(v);
  }
}

void add_salt_pepper(GrayImage& img, double fraction, util::Rng& rng) {
  for (auto& p : img.pixels()) {
    if (rng.uniform() < fraction) {
      p = rng.uniform() < 0.5 ? 0 : kMaxPixel;
    }
  }
}

void vignette(GrayImage& img, double edge) {
  const double cx = (img.width() - 1) / 2.0;
  const double cy = (img.height() - 1) / 2.0;
  const double rmax = std::hypot(cx, cy);
  if (rmax <= 0) return;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double d = std::hypot(x - cx, y - cy) / rmax;
      const double gain = util::lerp(1.0, edge, d * d);
      img(x, y) = to_pixel(img(x, y) / 255.0 * gain);
    }
  }
}

void box_blur(GrayImage& img, int radius, int passes) {
  if (radius < 1 || img.empty()) return;
  const int w = img.width();
  const int h = img.height();
  std::vector<double> a(img.size());
  std::vector<double> b(img.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = img.pixels()[i];

  auto idx = [w](int x, int y) {
    return static_cast<std::size_t>(y) * w + x;
  };
  for (int pass = 0; pass < passes; ++pass) {
    // Horizontal pass with a sliding-window sum (clamped borders).
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          acc += a[idx(std::clamp(x + k, 0, w - 1), y)];
        }
        b[idx(x, y)] = acc / (2 * radius + 1);
      }
    }
    // Vertical pass.
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          acc += b[idx(x, std::clamp(y + k, 0, h - 1))];
        }
        a[idx(x, y)] = acc / (2 * radius + 1);
      }
    }
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    img.pixels()[i] = to_pixel(a[i] / 255.0);
  }
}

void stretch_to_range(GrayImage& img, double lo, double hi) {
  const auto mm = img.min_max();
  if (mm.max == mm.min) return;
  const double span = static_cast<double>(mm.max - mm.min);
  for (auto& p : img.pixels()) {
    const double t = (p - mm.min) / span;
    p = to_pixel(util::lerp(lo, hi, t));
  }
}

}  // namespace hebs::image
