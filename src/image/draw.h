// Drawing primitives used to compose the synthetic benchmark images.
//
// All coordinates are pixel coordinates; primitives clip against the image
// bounds.  Shading helpers take normalized values in [0, 1] and convert to
// 8-bit internally so generators can reason in the same normalized space
// as the rest of the library.
#pragma once

#include <cstdint>

#include "image/image.h"
#include "util/rng.h"

namespace hebs::image {

/// Converts a normalized value in [0,1] to an 8-bit pixel (with clamping).
std::uint8_t to_pixel(double v) noexcept;

/// Fills an axis-aligned rectangle [x0,x1) x [y0,y1).
void fill_rect(GrayImage& img, int x0, int y0, int x1, int y1, double v);

/// Fills a solid circle of radius r centered at (cx, cy).
void fill_circle(GrayImage& img, double cx, double cy, double r, double v);

/// Fills a solid axis-aligned ellipse.
void fill_ellipse(GrayImage& img, double cx, double cy, double rx, double ry,
                  double v);

/// Horizontal linear gradient from v0 (left) to v1 (right).
void gradient_h(GrayImage& img, double v0, double v1);

/// Vertical linear gradient from v0 (top) to v1 (bottom).
void gradient_v(GrayImage& img, double v0, double v1);

/// Radial gradient: v0 at (cx, cy) fading to v1 at distance r.
void gradient_radial(GrayImage& img, double cx, double cy, double r,
                     double v0, double v1);

/// Adds a smooth Gaussian blob of amplitude `amp` (can be negative) with
/// the given standard deviation, centered at (cx, cy).
void add_gaussian_blob(GrayImage& img, double cx, double cy, double sigma,
                       double amp);

/// Checkerboard with the given cell size alternating v0/v1.
void checkerboard(GrayImage& img, int cell, double v0, double v1);

/// Adds zero-mean Gaussian noise with std dev `sigma` (normalized units).
void add_gaussian_noise(GrayImage& img, double sigma, util::Rng& rng);

/// Adds salt-and-pepper noise: `fraction` of pixels forced to 0 or 255.
void add_salt_pepper(GrayImage& img, double fraction, util::Rng& rng);

/// Multiplies the image by a radial vignette (1 at center, `edge` at the
/// corners).
void vignette(GrayImage& img, double edge);

/// Separable box blur with the given radius (>= 1), applied `passes`
/// times; three passes approximate a Gaussian.
void box_blur(GrayImage& img, int radius, int passes = 1);

/// Remaps pixel values affinely so the histogram spans exactly [lo, hi]
/// (normalized).  No-op when the image is constant.
void stretch_to_range(GrayImage& img, double lo, double hi);

}  // namespace hebs::image
