// Geometric image operations: crop, flips, rotation, bilinear resize.
//
// Standard raster utilities a display stack needs (scaler in the video
// controller, multi-resolution evaluation in the benchmarks).
#pragma once

#include "image/image.h"

namespace hebs::image {

/// Extracts the rectangle [x0, x0+w) x [y0, y0+h); must lie inside.
GrayImage crop(const GrayImage& img, int x0, int y0, int w, int h);

/// Mirrors left-right.
GrayImage flip_horizontal(const GrayImage& img);

/// Mirrors top-bottom.
GrayImage flip_vertical(const GrayImage& img);

/// Rotates 90 degrees clockwise (width and height swap).
GrayImage rotate90(const GrayImage& img);

/// Bilinear resize to the given dimensions (both >= 1).
GrayImage resize_bilinear(const GrayImage& img, int new_w, int new_h);

}  // namespace hebs::image
