#include "image/image.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "kernels/kernels.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::image {

GrayImage::GrayImage(int width, int height, std::uint8_t fill)
    : width_(width), height_(height) {
  HEBS_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  pixels_.assign(static_cast<std::size_t>(width) * height, fill);
}

std::uint8_t GrayImage::at(int x, int y) const {
  HEBS_REQUIRE(contains(x, y), "pixel coordinates out of bounds");
  return (*this)(x, y);
}

void GrayImage::set(int x, int y, std::uint8_t v) {
  HEBS_REQUIRE(contains(x, y), "pixel coordinates out of bounds");
  (*this)(x, y) = v;
}

void GrayImage::fill(std::uint8_t v) noexcept {
  std::fill(pixels_.begin(), pixels_.end(), v);
}

GrayImage GrayImage::from_pixels(int width, int height,
                                 std::span<const std::uint8_t> pixels) {
  GrayImage out(width, height);
  HEBS_REQUIRE(pixels.size() == out.size(),
               "pixel buffer does not match the image dimensions");
  std::copy(pixels.begin(), pixels.end(), out.pixels_.begin());
  return out;
}

double GrayImage::mean() const noexcept {
  if (pixels_.empty()) return 0.0;
  // The byte sum is exact in 64 bits, so the dispatched kernel is
  // bit-identical to the old serial double accumulation.
  const std::uint64_t acc =
      kernels::active().sum_u8(pixels_.data(), pixels_.size());
  return static_cast<double>(acc) / static_cast<double>(pixels_.size());
}

GrayImage::MinMax GrayImage::min_max() const noexcept {
  if (pixels_.empty()) return {};
  const auto [lo, hi] = std::minmax_element(pixels_.begin(), pixels_.end());
  return {*lo, *hi};
}

int GrayImage::dynamic_range() const noexcept {
  const MinMax mm = min_max();
  return mm.max - mm.min;
}

GrayImage16::GrayImage16(int width, int height, int levels,
                         std::uint16_t fill)
    : width_(width), height_(height), levels_(levels) {
  HEBS_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  HEBS_REQUIRE(levels >= 2 && levels <= PixelTraits<std::uint16_t>::kLevels,
               "level count must be in [2, 65536]");
  HEBS_REQUIRE(static_cast<int>(fill) < levels,
               "fill value exceeds the level count");
  pixels_.assign(static_cast<std::size_t>(width) * height, fill);
}

std::uint16_t GrayImage16::at(int x, int y) const {
  HEBS_REQUIRE(contains(x, y), "pixel coordinates out of bounds");
  return (*this)(x, y);
}

void GrayImage16::set(int x, int y, std::uint16_t v) {
  HEBS_REQUIRE(contains(x, y), "pixel coordinates out of bounds");
  HEBS_REQUIRE(static_cast<int>(v) < levels_,
               "pixel value exceeds the level count");
  (*this)(x, y) = v;
}

void GrayImage16::fill(std::uint16_t v) noexcept {
  std::fill(pixels_.begin(), pixels_.end(), v);
}

GrayImage16 GrayImage16::from_pixels(int width, int height, int levels,
                                     std::span<const std::uint16_t> pixels) {
  GrayImage16 out(width, height, levels);
  HEBS_REQUIRE(pixels.size() == out.size(),
               "pixel buffer does not match the image dimensions");
  for (const std::uint16_t v : pixels) {
    HEBS_REQUIRE(static_cast<int>(v) < levels,
                 "pixel value exceeds the level count");
  }
  std::copy(pixels.begin(), pixels.end(), out.pixels_.begin());
  return out;
}

GrayImage16 GrayImage16::widen(const GrayImage& g, int levels) {
  GrayImage16 out(g.width(), g.height(), levels);
  // Per-level table: 256 rounded ratios cover every possible sample.
  std::array<std::uint16_t, kLevels> map{};
  const std::uint32_t maxv = static_cast<std::uint32_t>(levels - 1);
  for (int i = 0; i < kLevels; ++i) {
    map[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(
        (static_cast<std::uint32_t>(i) * maxv + kMaxPixel / 2) / kMaxPixel);
  }
  const auto src = g.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    out.pixels_[i] = map[src[i]];
  }
  return out;
}

double GrayImage16::mean() const noexcept {
  if (pixels_.empty()) return 0.0;
  const std::uint64_t acc =
      kernels::active().sum_u16(pixels_.data(), pixels_.size());
  return static_cast<double>(acc) / static_cast<double>(pixels_.size());
}

GrayImage16::MinMax GrayImage16::min_max() const noexcept {
  if (pixels_.empty()) return {};
  const auto [lo, hi] = std::minmax_element(pixels_.begin(), pixels_.end());
  return {*lo, *hi};
}

int GrayImage16::dynamic_range() const noexcept {
  const MinMax mm = min_max();
  return mm.max - mm.min;
}

FloatImage::FloatImage(int width, int height, double fill)
    : width_(width), height_(height) {
  HEBS_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  values_.assign(static_cast<std::size_t>(width) * height, fill);
}

double FloatImage::mean() const noexcept {
  return util::mean(values_);
}

FloatImage FloatImage::from_gray(const GrayImage& g) {
  // Normalization is a 256-entry table lookup; the table entries are
  // the very same src/255 doubles the old per-pixel division produced.
  static const auto norm = [] {
    std::array<double, kLevels> t{};
    for (int i = 0; i < kLevels; ++i) {
      t[static_cast<std::size_t>(i)] = static_cast<double>(i) / kMaxPixel;
    }
    return t;
  }();
  FloatImage out(g.width(), g.height());
  kernels::active().lut_apply_f64(g.pixels().data(), g.size(), norm.data(),
                                  out.values_.data());
  return out;
}

FloatImage FloatImage::from_gray16(const GrayImage16& g) {
  // Per-level normalization table (g.levels() doubles, pool-backed):
  // the same src/(levels-1) values a per-pixel division would produce.
  const double maxv = static_cast<double>(g.max_pixel());
  hebs::util::PoolVector<double> norm(static_cast<std::size_t>(g.levels()));
  for (int i = 0; i < g.levels(); ++i) {
    norm[static_cast<std::size_t>(i)] = static_cast<double>(i) / maxv;
  }
  FloatImage out(g.width(), g.height());
  const auto src = g.pixels();
  auto dst = out.values();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = norm[src[i]];
  return out;
}

GrayImage FloatImage::to_gray() const {
  GrayImage out(width_, height_);
  auto dst = out.pixels();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double v = util::clamp01(values_[i]);
    dst[i] = static_cast<std::uint8_t>(std::lround(v * kMaxPixel));
  }
  return out;
}

GrayImage16 FloatImage::to_gray16(int levels) const {
  GrayImage16 out(width_, height_, levels);
  const double maxv = static_cast<double>(levels - 1);
  auto dst = out.pixels();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double v = util::clamp01(values_[i]);
    dst[i] = static_cast<std::uint16_t>(std::lround(v * maxv));
  }
  return out;
}

RgbImage::RgbImage(int width, int height) : width_(width), height_(height) {
  HEBS_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  data_.assign(static_cast<std::size_t>(width) * height * 3, 0);
}

RgbImage::Pixel RgbImage::get(int x, int y) const noexcept {
  const std::size_t i = (static_cast<std::size_t>(y) * width_ + x) * 3;
  return {data_[i], data_[i + 1], data_[i + 2]};
}

void RgbImage::set(int x, int y, Pixel p) noexcept {
  const std::size_t i = (static_cast<std::size_t>(y) * width_ + x) * 3;
  data_[i] = p.r;
  data_[i + 1] = p.g;
  data_[i + 2] = p.b;
}

GrayImage RgbImage::to_luma() const {
  GrayImage out(width_, height_);
  kernels::active().luma_bt601_rgb8(data_.data(), out.size(),
                                    out.pixels().data());
  return out;
}

RgbImage RgbImage::from_gray(const GrayImage& g) {
  RgbImage out(g.width(), g.height());
  for (int y = 0; y < g.height(); ++y) {
    for (int x = 0; x < g.width(); ++x) {
      const std::uint8_t v = g(x, y);
      out.set(x, y, {v, v, v});
    }
  }
  return out;
}

RgbImage RgbImage::from_pixels(int width, int height,
                               std::span<const std::uint8_t> pixels) {
  RgbImage out(width, height);
  HEBS_REQUIRE(pixels.size() == out.data_.size(),
               "pixel buffer does not match the image dimensions");
  std::copy(pixels.begin(), pixels.end(), out.data_.begin());
  return out;
}

}  // namespace hebs::image
