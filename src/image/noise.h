// Coherent value noise for natural-looking synthetic textures.
//
// Fractal Brownian motion over seeded lattice value noise gives the
// broadband texture (Baboon fur, tree foliage, water) that makes the
// synthetic album exercise the same windowed-statistics paths of the UIQI
// metric as photographic content.
#pragma once

#include <cstdint>

#include "image/image.h"

namespace hebs::image {

/// Deterministic lattice value-noise field.
class ValueNoise {
 public:
  explicit ValueNoise(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Noise value in [0, 1] at continuous coordinates, smooth (C1) in x/y.
  double sample(double x, double y) const noexcept;

  /// Fractal Brownian motion: `octaves` octaves of `sample`, each at
  /// double frequency and `gain` amplitude. Output in [0, 1].
  double fbm(double x, double y, int octaves, double gain = 0.5) const noexcept;

 private:
  /// Hash of lattice point (xi, yi) to [0, 1].
  double lattice(std::int64_t xi, std::int64_t yi) const noexcept;

  std::uint64_t seed_;
};

/// Fills `img` with fBm noise scaled to [lo, hi]; `scale` is the feature
/// size in pixels of the base octave.
void fill_fbm(GrayImage& img, std::uint64_t seed, double scale, int octaves,
              double lo, double hi);

}  // namespace hebs::image
