#include "image/pnm_io.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace hebs::image {

namespace {

void write_header(std::ostream& out, const char* magic, int w, int h) {
  out << magic << '\n' << w << ' ' << h << '\n' << 255 << '\n';
}

/// Reads the next whitespace/comment-delimited token of a PNM header.
std::string next_token(std::istream& in) {
  std::string tok;
  for (;;) {
    const int c = in.peek();
    if (c == EOF) break;
    if (c == '#') {  // comment runs to end of line
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      continue;
    }
    if (std::isspace(c) != 0) {
      in.get();
      if (!tok.empty()) break;
      continue;
    }
    tok += static_cast<char>(in.get());
  }
  return tok;
}

int parse_int(std::istream& in, const std::string& what) {
  const std::string tok = next_token(in);
  if (tok.empty()) throw util::IoError("truncated PNM header: missing " + what);
  try {
    std::size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw util::IoError("malformed PNM " + what + ": '" + tok + "'");
  }
}

struct PnmHeader {
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
};

PnmHeader read_header(std::istream& in, const std::string& path) {
  PnmHeader h;
  h.magic = next_token(in);
  if (h.magic != "P2" && h.magic != "P3" && h.magic != "P5" &&
      h.magic != "P6") {
    throw util::IoError("unsupported PNM magic '" + h.magic + "' in " + path);
  }
  h.width = parse_int(in, "width");
  h.height = parse_int(in, "height");
  h.maxval = parse_int(in, "maxval");
  if (h.width <= 0 || h.height <= 0) {
    throw util::IoError("non-positive PNM dimensions in " + path);
  }
  if (h.maxval <= 0 || h.maxval > 65535) {
    throw util::IoError("unsupported PNM maxval (must be 1..65535) in " +
                        path);
  }
  return h;
}

/// The 8-bit readers' depth gate: they keep their historical contract
/// (and message) of rejecting deep files; read_pgm16 is the entry
/// point that accepts them.
void require_8bit_maxval(const PnmHeader& h, const std::string& path) {
  if (h.maxval > 255) {
    throw util::IoError("unsupported PNM maxval (must be 1..255) in " + path);
  }
}

std::uint8_t scale_to_255(int raw, int maxval) {
  return static_cast<std::uint8_t>((raw * 255 + maxval / 2) / maxval);
}

/// Validates one binary (P5/P6) sample against the header's maxval.
/// The ASCII paths already reject out-of-range samples; without this
/// the binary paths would scale an over-maxval byte past 255 and wrap
/// silently through the uint8_t cast — corrupt data accepted as pixels.
std::uint8_t scale_binary(unsigned char raw, int maxval,
                          const std::string& path, const char* kind) {
  if (static_cast<int>(raw) > maxval) {
    throw util::IoError(std::string(kind) + " binary sample " +
                        std::to_string(static_cast<int>(raw)) +
                        " exceeds maxval " + std::to_string(maxval) + " in " +
                        path);
  }
  return scale_to_255(raw, maxval);
}

}  // namespace

void write_pgm(const GrayImage& img, const std::string& path) {
  HEBS_REQUIRE(!img.empty(), "cannot write an empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  write_header(out, "P5", img.width(), img.height());
  out.write(reinterpret_cast<const char*>(img.pixels().data()),
            static_cast<std::streamsize>(img.size()));
  if (!out) throw util::IoError("write failed: " + path);
}

void write_pgm_ascii(const GrayImage& img, const std::string& path) {
  HEBS_REQUIRE(!img.empty(), "cannot write an empty image");
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  write_header(out, "P2", img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out << static_cast<int>(img(x, y))
          << (x + 1 == img.width() ? '\n' : ' ');
    }
  }
  if (!out) throw util::IoError("write failed: " + path);
}

void write_ppm(const RgbImage& img, const std::string& path) {
  HEBS_REQUIRE(!img.empty(), "cannot write an empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  write_header(out, "P6", img.width(), img.height());
  out.write(reinterpret_cast<const char*>(img.data().data()),
            static_cast<std::streamsize>(img.data().size()));
  if (!out) throw util::IoError("write failed: " + path);
}

GrayImage read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open for reading: " + path);
  const PnmHeader h = read_header(in, path);
  if (h.magic != "P2" && h.magic != "P5") {
    throw util::IoError("not a PGM file: " + path);
  }
  require_8bit_maxval(h, path);
  GrayImage img(h.width, h.height);
  auto dst = img.pixels();
  if (h.magic == "P5") {
    std::vector<char> buf(img.size());
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (in.gcount() != static_cast<std::streamsize>(buf.size())) {
      throw util::IoError("truncated PGM pixel data in " + path);
    }
    for (std::size_t i = 0; i < buf.size(); ++i) {
      dst[i] = scale_binary(static_cast<unsigned char>(buf[i]), h.maxval,
                            path, "PGM");
    }
  } else {
    for (std::size_t i = 0; i < img.size(); ++i) {
      const int v = parse_int(in, "pixel");
      if (v < 0 || v > h.maxval) {
        throw util::IoError("PGM pixel out of range in " + path);
      }
      dst[i] = scale_to_255(v, h.maxval);
    }
  }
  return img;
}

void write_pgm16(const GrayImage16& img, const std::string& path) {
  HEBS_REQUIRE(!img.empty(), "cannot write an empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  out << "P5\n" << img.width() << ' ' << img.height() << '\n'
      << img.max_pixel() << '\n';
  if (img.max_pixel() <= 255) {
    for (std::uint16_t v : img.pixels()) {
      out.put(static_cast<char>(v));
    }
  } else {
    // Two bytes per sample, most significant first (the PGM byte order
    // for maxval > 255), independent of host endianness.
    for (std::uint16_t v : img.pixels()) {
      out.put(static_cast<char>(v >> 8));
      out.put(static_cast<char>(v & 0xff));
    }
  }
  if (!out) throw util::IoError("write failed: " + path);
}

GrayImage16 read_pgm16(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open for reading: " + path);
  const PnmHeader h = read_header(in, path);
  if (h.magic != "P2" && h.magic != "P5") {
    throw util::IoError("not a PGM file: " + path);
  }
  GrayImage16 img(h.width, h.height, h.maxval + 1);
  auto dst = img.pixels();
  if (h.magic == "P5") {
    const int bytes_per_sample = h.maxval > 255 ? 2 : 1;
    std::vector<char> buf(img.size() * bytes_per_sample);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (in.gcount() != static_cast<std::streamsize>(buf.size())) {
      throw util::IoError("truncated PGM pixel data in " + path);
    }
    for (std::size_t i = 0; i < img.size(); ++i) {
      const int v =
          bytes_per_sample == 2
              ? (static_cast<unsigned char>(buf[2 * i]) << 8) |
                    static_cast<unsigned char>(buf[2 * i + 1])
              : static_cast<unsigned char>(buf[i]);
      if (v > h.maxval) {
        throw util::IoError("PGM binary sample " + std::to_string(v) +
                            " exceeds maxval " + std::to_string(h.maxval) +
                            " in " + path);
      }
      dst[i] = static_cast<std::uint16_t>(v);
    }
  } else {
    for (std::size_t i = 0; i < img.size(); ++i) {
      const int v = parse_int(in, "pixel");
      if (v < 0 || v > h.maxval) {
        throw util::IoError("PGM pixel out of range in " + path);
      }
      dst[i] = static_cast<std::uint16_t>(v);
    }
  }
  return img;
}

RgbImage read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open for reading: " + path);
  const PnmHeader h = read_header(in, path);
  if (h.magic != "P3" && h.magic != "P6") {
    throw util::IoError("not a PPM file: " + path);
  }
  require_8bit_maxval(h, path);
  RgbImage img(h.width, h.height);
  auto dst = img.data();
  if (h.magic == "P6") {
    std::vector<char> buf(dst.size());
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (in.gcount() != static_cast<std::streamsize>(buf.size())) {
      throw util::IoError("truncated PPM pixel data in " + path);
    }
    for (std::size_t i = 0; i < buf.size(); ++i) {
      dst[i] = scale_binary(static_cast<unsigned char>(buf[i]), h.maxval,
                            path, "PPM");
    }
  } else {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      const int v = parse_int(in, "pixel");
      if (v < 0 || v > h.maxval) {
        throw util::IoError("PPM pixel out of range in " + path);
      }
      dst[i] = scale_to_255(v, h.maxval);
    }
  }
  return img;
}

}  // namespace hebs::image
