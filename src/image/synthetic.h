// Synthetic stand-ins for the USC SIPI Image Database (USID) benchmarks.
//
// The paper evaluates HEBS on 19 named USID images (Table 1).  The
// database itself is not redistributable here, so each image is replaced
// by a deterministic procedural scene engineered to match the *histogram
// character* of its namesake: `Pout` is low-contrast and mid-heavy,
// `Baboon` is broadband full-range texture, `Testpat` is ramps plus flat
// bars, portraits are mid-tone dominated, and so on.  HEBS consumes only
// the histogram plus windowed local statistics (through the UIQI
// distortion metric), so matching those properties exercises the same
// code paths and yields the same qualitative power/distortion trade-offs.
// See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "image/image.h"

namespace hebs::image {

/// Identifiers for the 19 benchmark images of the paper's Table 1.
enum class UsidId {
  kLena,
  kAutumn,
  kFootball,
  kPeppers,
  kGreens,
  kPears,
  kOnion,
  kTrees,
  kWest,
  kPout,
  kSail,
  kSplash,
  kGirl,
  kBaboon,
  kTreeA,
  kHouseA,
  kGirlB,
  kTestpat,
  kElaine,
};

/// All benchmark identifiers in the paper's Table 1 row order.
inline constexpr std::array<UsidId, 19> kAllUsidIds = {
    UsidId::kLena,   UsidId::kAutumn, UsidId::kFootball, UsidId::kPeppers,
    UsidId::kGreens, UsidId::kPears,  UsidId::kOnion,    UsidId::kTrees,
    UsidId::kWest,   UsidId::kPout,   UsidId::kSail,     UsidId::kSplash,
    UsidId::kGirl,   UsidId::kBaboon, UsidId::kTreeA,    UsidId::kHouseA,
    UsidId::kGirlB,  UsidId::kTestpat, UsidId::kElaine,
};

/// The paper's Table 1 name for an identifier (e.g. "Lena").
std::string_view usid_name(UsidId id) noexcept;

/// Generates the synthetic stand-in for `id` at `size` x `size` pixels.
/// Deterministic: the same (id, size) always yields the same pixels.
GrayImage make_usid(UsidId id, int size = 256);

/// An image paired with its benchmark name.
struct NamedImage {
  std::string name;
  GrayImage image;
};

/// The full 19-image album in Table 1 order.
std::vector<NamedImage> usid_album(int size = 256);

/// The six-image subset used for the paper's Figure 8 gallery.  The paper
/// does not name the six; we pick a histogram-diverse subset (portrait,
/// smooth blobs, broadband texture, dark-dominated, bright-dominated,
/// test pattern) and document the choice in EXPERIMENTS.md.
std::vector<NamedImage> usid_figure8_subset(int size = 256);

/// A synthetic video clip: `frames` frames of a slowly panning/dimming
/// scene, used by the video-playback example and the flicker-control
/// extension tests.
std::vector<GrayImage> make_video_clip(int frames, int size = 128,
                                       std::uint64_t seed = 2005);

/// A color (RGB) variant of a benchmark image: the grayscale scene as
/// luma plus smooth procedural chroma, for exercising the color
/// backlight-scaling path of §2.  Deterministic per (id, size).
RgbImage make_usid_color(UsidId id, int size = 256);

}  // namespace hebs::image
