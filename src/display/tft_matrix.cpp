#include "display/tft_matrix.h"

#include <algorithm>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::display {

TftMatrix::TftMatrix(int width, int height, const TftMatrixOptions& opts)
    : width_(width), height_(height), opts_(opts) {
  HEBS_REQUIRE(width > 0 && height > 0, "matrix dimensions must be positive");
  HEBS_REQUIRE(opts.hold_retention > 0.0 && opts.hold_retention <= 1.0,
               "hold retention must be in (0, 1]");
  HEBS_REQUIRE(opts.lc_response > 0.0 && opts.lc_response <= 1.0,
               "LC response must be in (0, 1]");
  HEBS_REQUIRE(opts.rows_per_frame >= 1, "must scan at least one row");
  held_.assign(static_cast<std::size_t>(width) * height, 0.0);
  transmittance_.assign(held_.size(), 0.0);
}

void TftMatrix::scan_frame(const hebs::image::GrayImage& frame,
                           const GrayscaleVoltage& driver) {
  HEBS_REQUIRE(frame.width() == width_ && frame.height() == height_,
               "frame size does not match the matrix");
  // Per-level normalized target voltage (the source-driver output).
  std::array<double, hebs::image::kLevels> target{};
  for (int level = 0; level < hebs::image::kLevels; ++level) {
    target[static_cast<std::size_t>(level)] =
        driver.voltage(level) / driver.vdd();
  }

  // Droop first: every cell loses a little charge over the frame time.
  for (double& v : held_) v *= opts_.hold_retention;

  // Scan: refresh up to rows_per_frame rows, wrapping across frames.
  const int rows_to_scan = std::min(opts_.rows_per_frame, height_);
  for (int r = 0; r < rows_to_scan; ++r) {
    const int y = (next_row_ + r) % height_;
    for (int x = 0; x < width_; ++x) {
      held_[static_cast<std::size_t>(y) * width_ + x] =
          target[frame(x, y)];
    }
  }
  next_row_ = (next_row_ + rows_to_scan) % height_;

  // LC relaxation toward the held voltage (t ∝ v for the linear cell).
  for (std::size_t i = 0; i < transmittance_.size(); ++i) {
    transmittance_[i] +=
        opts_.lc_response * (held_[i] - transmittance_[i]);
  }
  ++frames_;
}

hebs::image::FloatImage TftMatrix::emitted(double backlight) const {
  HEBS_REQUIRE(backlight >= 0.0 && backlight <= 1.0,
               "backlight factor must be in [0, 1]");
  hebs::image::FloatImage out(width_, height_);
  auto dst = out.values();
  for (std::size_t i = 0; i < transmittance_.size(); ++i) {
    dst[i] = backlight * util::clamp01(transmittance_[i]);
  }
  return out;
}

double TftMatrix::transmittance(int x, int y) const {
  HEBS_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
               "cell coordinates out of range");
  return transmittance_[static_cast<std::size_t>(y) * width_ + x];
}

double TftMatrix::held_voltage(int x, int y) const {
  HEBS_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
               "cell coordinates out of range");
  return held_[static_cast<std::size_t>(y) * width_ + x];
}

}  // namespace hebs::display
