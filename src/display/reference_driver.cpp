#include "display/reference_driver.h"

#include <cmath>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::display {

ConventionalLadder::ConventionalLadder(int taps, double vdd)
    : taps_(taps), vdd_(vdd) {
  HEBS_REQUIRE(taps >= 2, "a divider needs at least two taps");
  HEBS_REQUIRE(vdd > 0.0, "vdd must be positive");
}

GrayscaleVoltage ConventionalLadder::transfer() const {
  return GrayscaleVoltage::linear(taps_, vdd_);
}

GrayscaleVoltage ConventionalLadder::clamped_transfer(double g_l,
                                                      double g_u) const {
  HEBS_REQUIRE(g_l >= 0.0 && g_u <= 1.0 && g_l < g_u,
               "band must satisfy 0 <= g_l < g_u <= 1");
  std::vector<double> nodes(static_cast<std::size_t>(taps_));
  for (int i = 0; i < taps_; ++i) {
    const double x = static_cast<double>(i) / (taps_ - 1);
    const double y = util::clamp01((x - g_l) / (g_u - g_l));
    nodes[static_cast<std::size_t>(i)] = y * vdd_;
  }
  return {std::move(nodes), vdd_};
}

HierarchicalLadder::HierarchicalLadder(const HierarchicalLadderOptions& opts)
    : opts_(opts) {
  HEBS_REQUIRE(opts.bands >= 1, "need at least one band");
  HEBS_REQUIRE(opts.dac_bits >= 1 && opts.dac_bits <= 16,
               "DAC resolution must be 1..16 bits");
  HEBS_REQUIRE(opts.vdd > 0.0, "vdd must be positive");
  reset();
}

void HierarchicalLadder::reset() {
  nodes_.assign(static_cast<std::size_t>(opts_.bands) + 1, 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i] = opts_.vdd * static_cast<double>(i) /
                static_cast<double>(opts_.bands);
  }
}

void HierarchicalLadder::program(const hebs::transform::PwlCurve& lambda,
                                 double beta) {
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  if (!lambda.is_monotonic()) {
    throw util::HardwareError(
        "reference ladder cannot realize a non-monotonic transfer");
  }
  std::vector<double> nodes(static_cast<std::size_t>(opts_.bands) + 1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double x =
        static_cast<double>(i) / static_cast<double>(opts_.bands);
    // Eq. 10: V_i = Y_{q_i} / beta * Vdd, clamped by the supply rail.
    const double volts =
        std::min(opts_.vdd, lambda(x) / beta * opts_.vdd);
    nodes[i] = quantize(std::max(0.0, volts));
  }
  nodes_ = std::move(nodes);
}

GrayscaleVoltage HierarchicalLadder::transfer() const {
  return {nodes_, opts_.vdd};
}

hebs::transform::PwlCurve HierarchicalLadder::effective_transform(
    double beta) const {
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double x =
        static_cast<double>(i) / static_cast<double>(opts_.bands);
    pts.push_back({x, beta * nodes_[i] / opts_.vdd});
  }
  return hebs::transform::PwlCurve(std::move(pts));
}

double HierarchicalLadder::quantization_step() const noexcept {
  return opts_.vdd / std::pow(2.0, opts_.dac_bits + 1);
}

double HierarchicalLadder::quantize(double volts) const noexcept {
  const double steps = std::pow(2.0, opts_.dac_bits) - 1.0;
  const double code = std::round(volts / opts_.vdd * steps);
  return code / steps * opts_.vdd;
}

}  // namespace hebs::display
