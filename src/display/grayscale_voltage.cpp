#include "display/grayscale_voltage.h"

#include <cmath>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::display {

GrayscaleVoltage::GrayscaleVoltage(std::vector<double> node_voltages,
                                   double vdd)
    : nodes_(std::move(node_voltages)), vdd_(vdd) {
  HEBS_REQUIRE(vdd_ > 0.0, "vdd must be positive");
  HEBS_REQUIRE(nodes_.size() >= 2, "a ladder needs at least two nodes");
  for (double v : nodes_) {
    HEBS_REQUIRE(v >= 0.0 && v <= vdd_ + 1e-9,
                 "node voltage outside [0, vdd]");
  }
}

GrayscaleVoltage GrayscaleVoltage::linear(int taps, double vdd) {
  HEBS_REQUIRE(taps >= 2, "a ladder needs at least two taps");
  std::vector<double> nodes(static_cast<std::size_t>(taps));
  for (int i = 0; i < taps; ++i) {
    nodes[static_cast<std::size_t>(i)] =
        vdd * static_cast<double>(i) / (taps - 1);
  }
  return {std::move(nodes), vdd};
}

double GrayscaleVoltage::voltage(int level) const {
  HEBS_REQUIRE(level >= 0 && level <= hebs::image::kMaxPixel,
               "level out of range");
  const double pos = static_cast<double>(level) / hebs::image::kMaxPixel *
                     static_cast<double>(nodes_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  if (lo + 1 >= nodes_.size()) return nodes_.back();
  const double t = pos - static_cast<double>(lo);
  return util::lerp(nodes_[lo], nodes_[lo + 1], t);
}

hebs::transform::PwlCurve GrayscaleVoltage::curve() const {
  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    pts.push_back({static_cast<double>(i) /
                       static_cast<double>(nodes_.size() - 1),
                   nodes_[i] / vdd_});
  }
  return hebs::transform::PwlCurve(std::move(pts));
}

bool GrayscaleVoltage::is_monotonic() const noexcept {
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i] < nodes_[i - 1]) return false;
  }
  return true;
}

}  // namespace hebs::display
