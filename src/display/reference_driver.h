// Programmable LCD Reference Drivers (PLRD) — Figure 5 of the paper.
//
// Conventional circuit (Fig. 5a): a fixed resistor voltage divider feeds
// the source-driver buffers.  Reference [5] adds clamp switches at both
// ends, which can only realize the single-band grayscale-spreading
// transfer of Eq. 3 with a single slope.
//
// Proposed circuit (Fig. 5b): a hierarchical divider with k controllable
// voltage sources V_i (normally V_i = i*Vdd/k) plus switches between
// grayscale levels.  Reprogramming the V_i realizes a k-band piecewise-
// linear transfer — including flat bands in the middle of the range —
// which is exactly what the PLC-coarsened HEBS transformation needs.
// The programming rule is Eq. 10: V_i = Y_{q_i} / β * Vdd, i.e. the
// backlight-compensated (1/β-spread) transform value at the node.
#pragma once

#include "display/grayscale_voltage.h"
#include "transform/pwl.h"

namespace hebs::display {

/// The conventional fixed divider of Fig. 5a, with the clamp switches of
/// reference [5].
class ConventionalLadder {
 public:
  /// `taps` buffered reference voltages (the AD8511 of ref [11][12] is an
  /// 11-channel part fed by a 10-way divider).
  explicit ConventionalLadder(int taps = 11, double vdd = kDefaultVdd);

  /// The unmodified transfer: v(X) linear from 0 to vdd.
  GrayscaleVoltage transfer() const;

  /// The transfer with the CBCS clamp switches engaged: levels below g_l
  /// map to 0, above g_u to vdd, and a single affine slope in between —
  /// Eq. 3 realized at tap-grid resolution.  g_l/g_u are normalized and
  /// must satisfy 0 <= g_l < g_u <= 1.  The single-slope restriction is
  /// inherent to this circuit (paper §4.1, limitation 2).
  GrayscaleVoltage clamped_transfer(double g_l, double g_u) const;

  int taps() const noexcept { return taps_; }
  double vdd() const noexcept { return vdd_; }

 private:
  int taps_;
  double vdd_;
};

/// Configuration of the proposed hierarchical divider.
struct HierarchicalLadderOptions {
  int bands = 8;      ///< number of controllable sources k (Fig. 5b)
  int dac_bits = 8;   ///< resolution of each programmable source
  double vdd = kDefaultVdd;
};

/// The proposed programmable hierarchical divider of Fig. 5b.
class HierarchicalLadder {
 public:
  explicit HierarchicalLadder(
      const HierarchicalLadderOptions& opts = {});

  /// Programs the k+1 node voltages to realize the pixel transformation
  /// `lambda` with backlight compensation: node i at pixel position
  /// x_i = i/k gets V_i = min(vdd, lambda(x_i)/beta * vdd), quantized to
  /// the DAC resolution (Eq. 10; the min models the clamp switch that
  /// produces flat bands at saturation).
  ///
  /// Throws HardwareError when `lambda` is non-monotonic, since a
  /// resistor ladder cannot produce decreasing node voltages.
  void program(const hebs::transform::PwlCurve& lambda, double beta);

  /// Resets all sources to the default V_i = i*vdd/k (identity transfer).
  void reset();

  /// The realized level-to-voltage transfer.
  GrayscaleVoltage transfer() const;

  /// The effective displayed-luminance transform at backlight factor
  /// `beta`: y(x) = beta * v(255 x)/vdd.  When programmed via `program`
  /// with the same beta, this approximates the requested lambda (up to
  /// grid resolution, DAC quantization and the vdd clamp).
  hebs::transform::PwlCurve effective_transform(double beta) const;

  /// Worst-case absolute voltage error introduced by DAC quantization,
  /// in volts: vdd / 2^(dac_bits+1).
  double quantization_step() const noexcept;

  const HierarchicalLadderOptions& options() const noexcept { return opts_; }
  const std::vector<double>& node_voltages() const noexcept {
    return nodes_;
  }

 private:
  double quantize(double volts) const noexcept;

  HierarchicalLadderOptions opts_;
  std::vector<double> nodes_;
};

}  // namespace hebs::display
