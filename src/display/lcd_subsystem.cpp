#include "display/lcd_subsystem.h"

#include <cmath>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::display {

LcdSubsystem::LcdSubsystem(hebs::power::LcdSubsystemPower power_model,
                           const HierarchicalLadderOptions& ladder_opts)
    : power_model_(std::move(power_model)), ladder_(ladder_opts) {}

LcdSubsystem LcdSubsystem::lp064v1() {
  return {hebs::power::LcdSubsystemPower::lp064v1(), {}};
}

void LcdSubsystem::configure(const hebs::transform::PwlCurve& lambda,
                             double beta, DeploymentMode mode) {
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  beta_ = beta;
  mode_ = mode;
  if (mode == DeploymentMode::kHardwareLadder) {
    ladder_.program(lambda, beta);
  } else {
    ladder_.reset();
    // Software path: the video controller applies the backlight-
    // compensated transform min(1, lambda(x)/beta) pixel by pixel.  The
    // table comes from one sweep over the curve's segments.
    const hebs::transform::FloatLut samples = lambda.sample_levels();
    hebs::transform::Lut lut;
    for (int level = 0; level < hebs::transform::Lut::kSize; ++level) {
      const double y = util::clamp01(samples[level] / beta);
      lut[level] = static_cast<std::uint8_t>(
          std::lround(y * hebs::image::kMaxPixel));
    }
    software_lut_ = lut;
  }
}

void LcdSubsystem::reset() {
  beta_ = 1.0;
  mode_ = DeploymentMode::kSoftwareTransform;
  software_lut_ = hebs::transform::Lut();
  ladder_.reset();
}

DisplayResult LcdSubsystem::display(
    const hebs::image::GrayImage& frame) const {
  DisplayResult result;
  result.beta = beta_;
  if (mode_ == DeploymentMode::kHardwareLadder) {
    const LcdPanel panel(ladder_.transfer());
    result.luminance = panel.render(frame, beta_);
    // Panel power depends on the transmittance actually driven, which in
    // hardware mode includes the 1/beta voltage spread.
    const auto hist = hebs::histogram::Histogram::from_image(frame);
    double panel_watts = 0.0;
    for (int level = 0; level < hebs::histogram::Histogram::kBins; ++level) {
      panel_watts += power_model_.panel().pixel_power(
                         util::clamp01(panel.transmittance(level))) *
                     static_cast<double>(hist.count(level));
    }
    panel_watts /= static_cast<double>(hist.total());
    result.power.ccfl_watts = power_model_.ccfl().power(beta_);
    result.power.panel_watts = panel_watts;
  } else {
    const hebs::image::GrayImage remapped = software_lut_.apply(frame);
    result.luminance = software_render(frame, software_lut_, beta_);
    result.power = power_model_.frame_power(remapped, beta_);
  }
  return result;
}

}  // namespace hebs::display
