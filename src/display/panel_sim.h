// TFT-LCD panel luminance simulation.
//
// §2, Eq. 1a/1b: the luminance of a displayed pixel is I(X) = b · t(X) —
// backlight factor times cell transmittance.  The simulator renders the
// luminance raster a viewer would perceive, for either deployment path:
//
//  * hardware path — original pixels driven through a (possibly
//    reprogrammed) reference ladder: I = b · v(X)/vdd;
//  * software path — pixels remapped by a LUT and driven through the
//    ideal linear ladder: I = b · lut(X)/255.
//
// Comparing the two rasters is how the integration tests verify that the
// ladder programming (Eq. 10) reproduces the pixel-domain algorithm.
#pragma once

#include "display/grayscale_voltage.h"
#include "image/image.h"
#include "transform/lut.h"

namespace hebs::display {

/// Panel driven by an explicit grayscale-voltage transfer.
class LcdPanel {
 public:
  explicit LcdPanel(GrayscaleVoltage transfer);

  /// Luminance raster at backlight factor `backlight` in [0, 1].
  hebs::image::FloatImage render(const hebs::image::GrayImage& frame,
                                 double backlight) const;

  /// Per-level transmittance actually driven (includes any 1/β spread
  /// programmed into the ladder) — the value the panel power model needs.
  double transmittance(int level) const {
    return transfer_.transmittance(level);
  }

  const GrayscaleVoltage& transfer() const noexcept { return transfer_; }

 private:
  GrayscaleVoltage transfer_;
};

/// Software path: luminance of LUT-remapped pixels on an ideal linear
/// panel, I = backlight * lut(X)/255.
hebs::image::FloatImage software_render(const hebs::image::GrayImage& frame,
                                        const hebs::transform::Lut& lut,
                                        double backlight);

/// Reference rendering of the unmodified image at full backlight.
hebs::image::FloatImage reference_render(const hebs::image::GrayImage& frame);

}  // namespace hebs::display
