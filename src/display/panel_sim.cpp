#include "display/panel_sim.h"

#include <array>

#include "util/error.h"

namespace hebs::display {

LcdPanel::LcdPanel(GrayscaleVoltage transfer)
    : transfer_(std::move(transfer)) {}

hebs::image::FloatImage LcdPanel::render(const hebs::image::GrayImage& frame,
                                         double backlight) const {
  HEBS_REQUIRE(backlight >= 0.0 && backlight <= 1.0,
               "backlight factor must be in [0, 1]");
  HEBS_REQUIRE(!frame.empty(), "cannot render an empty frame");
  // Precompute per-level transmittance once; pixels then index the table.
  std::array<double, hebs::image::kLevels> lum{};
  for (int level = 0; level < hebs::image::kLevels; ++level) {
    lum[static_cast<std::size_t>(level)] =
        backlight * transfer_.transmittance(level);
  }
  hebs::image::FloatImage out(frame.width(), frame.height());
  auto dst = out.values();
  const auto src = frame.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = lum[src[i]];
  }
  return out;
}

hebs::image::FloatImage software_render(const hebs::image::GrayImage& frame,
                                        const hebs::transform::Lut& lut,
                                        double backlight) {
  HEBS_REQUIRE(backlight >= 0.0 && backlight <= 1.0,
               "backlight factor must be in [0, 1]");
  HEBS_REQUIRE(!frame.empty(), "cannot render an empty frame");
  hebs::image::FloatImage out(frame.width(), frame.height());
  auto dst = out.values();
  const auto src = frame.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = backlight * static_cast<double>(lut[src[i]]) /
             hebs::image::kMaxPixel;
  }
  return out;
}

hebs::image::FloatImage reference_render(
    const hebs::image::GrayImage& frame) {
  return software_render(frame, hebs::transform::Lut(), 1.0);
}

}  // namespace hebs::display
