// TFT matrix addressing and cell-charging dynamics — §2 / Fig. 1b-1c.
//
// The paper describes the electrical structure under the transfer
// functions: each pixel is a liquid-crystal cell with a storage
// capacitor charged through a TFT when its row is scanned.  Gate bus
// lines enable one row at a time; source bus lines drive the grayscale
// voltage onto the selected row's cells.  A cell therefore samples its
// target voltage once per frame and holds (with slight droop) until the
// next scan; the LC transmittance itself responds with a first-order
// lag (the LC response time), which is what produces motion ghosting.
//
// This module simulates that pipeline at frame granularity:
//   * row-sequential scan with a per-frame scan budget,
//   * storage-capacitor droop between refreshes,
//   * first-order LC transmittance response toward the held voltage.
// It lets the tests demonstrate that reprogramming the reference ladder
// (HEBS's realization) needs no extra scan bandwidth — the voltages
// change, the addressing does not.
#pragma once

#include <vector>

#include "display/grayscale_voltage.h"
#include "image/image.h"

namespace hebs::display {

/// Electrical/timing parameters of the panel matrix.
struct TftMatrixOptions {
  /// Fraction of the written cell voltage retained over one frame time
  /// (storage-capacitor droop; 1 = ideal hold).
  double hold_retention = 0.995;
  /// LC response: fraction of the remaining distance to the target
  /// transmittance covered per frame (1 = instant, smaller = ghosting).
  double lc_response = 0.8;
  /// Rows scanned per frame; must cover the panel height for a full
  /// refresh each frame (partial scan models a slow controller).
  int rows_per_frame = 1 << 20;
};

/// Frame-granularity simulation of the scanned TFT matrix.
class TftMatrix {
 public:
  TftMatrix(int width, int height, const TftMatrixOptions& opts = {});

  /// Presents a new frame: rows are scanned in order (continuing from
  /// where the previous scan stopped if rows_per_frame < height), cells
  /// on scanned rows sample the driver voltage for their pixel value,
  /// unscanned rows droop, and every cell's transmittance relaxes
  /// toward its held voltage.
  void scan_frame(const hebs::image::GrayImage& frame,
                  const GrayscaleVoltage& driver);

  /// Luminance raster currently emitted at backlight factor b:
  /// I = b * transmittance.
  hebs::image::FloatImage emitted(double backlight) const;

  /// Current transmittance of one cell (0..1).
  double transmittance(int x, int y) const;

  /// Held cell voltage of one cell, normalized by vdd.
  double held_voltage(int x, int y) const;

  /// Number of full frames scanned so far.
  int frames_scanned() const noexcept { return frames_; }

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

 private:
  int width_;
  int height_;
  TftMatrixOptions opts_;
  int next_row_ = 0;
  int frames_ = 0;
  std::vector<double> held_;            // normalized held voltage
  std::vector<double> transmittance_;   // current LC state
};

}  // namespace hebs::display
