// Grayscale-voltage transfer function of an LCD source driver.
//
// §2 of the paper: the source driver converts each 8-bit pixel value X
// into a grayscale voltage v(X) by mixing a small set of reference
// voltages (taps); the cell transmittance t(X) is linear in v(X).  The
// taps come from a resistor-divider ladder, so v(X) is piecewise linear
// with one segment per tap interval.  This class models that mapping:
// node voltages at equally spaced pixel positions, linear interpolation
// between them.
#pragma once

#include <vector>

#include "transform/pwl.h"

namespace hebs::display {

/// Default driver supply voltage (volts) — typical for LCD reference
/// drivers such as the AD8511 cited by the paper.
inline constexpr double kDefaultVdd = 10.0;

/// Piecewise-linear level-to-voltage transfer defined by node voltages at
/// equally spaced pixel levels.
class GrayscaleVoltage {
 public:
  /// `node_voltages` holds k+1 voltages at pixel positions i*255/k.
  /// All must lie in [0, vdd]; at least two nodes are required.
  GrayscaleVoltage(std::vector<double> node_voltages, double vdd);

  /// The ideal linear driver: v(X) = X/255 * vdd with `taps` nodes.
  static GrayscaleVoltage linear(int taps = 11, double vdd = kDefaultVdd);

  /// Voltage for one pixel level (0..255).
  double voltage(int level) const;

  /// Cell transmittance for one level: t = v / vdd in [0, 1].
  double transmittance(int level) const { return voltage(level) / vdd_; }

  /// The normalized transfer curve y(x) = v(255 x)/vdd as a PWL curve.
  hebs::transform::PwlCurve curve() const;

  /// True when node voltages are non-decreasing — required for the
  /// displayed gray-level ordering to be preserved.
  bool is_monotonic() const noexcept;

  double vdd() const noexcept { return vdd_; }
  const std::vector<double>& node_voltages() const noexcept {
    return nodes_;
  }

 private:
  std::vector<double> nodes_;
  double vdd_;
};

}  // namespace hebs::display
