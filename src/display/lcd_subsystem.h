// End-to-end LCD subsystem model (Figure 1a of the paper).
//
// Ties the pieces together: a backlight-scaling configuration (pixel
// transformation Λ + backlight factor β) deployed either as a software
// pixel remap or as a hardware ladder reprogramming, the resulting
// displayed luminance, and the power drawn while displaying.  This is the
// object the examples and benchmarks drive.
#pragma once

#include <optional>

#include "display/panel_sim.h"
#include "display/reference_driver.h"
#include "power/lcd_power.h"
#include "transform/pwl.h"

namespace hebs::display {

/// Where the pixel transformation is applied.
enum class DeploymentMode {
  /// The video controller remaps pixels through the LUT; the ladder stays
  /// linear. Costs per-pixel work each frame (the drawback the paper
  /// attributes to [4]).
  kSoftwareTransform,
  /// Original pixels; the hierarchical reference ladder is reprogrammed
  /// per Eq. 10. No per-pixel work — the paper's preferred realization.
  kHardwareLadder,
};

/// What the subsystem produced for one frame.
struct DisplayResult {
  hebs::image::FloatImage luminance;       ///< what the viewer perceives
  hebs::power::PowerBreakdown power;       ///< CCFL + panel wattage
  double beta = 1.0;                       ///< backlight factor used
};

/// A complete display subsystem with a programmable backlight and ladder.
class LcdSubsystem {
 public:
  LcdSubsystem(hebs::power::LcdSubsystemPower power_model,
               const HierarchicalLadderOptions& ladder_opts = {});

  /// The paper's platform with default ladder options.
  static LcdSubsystem lp064v1();

  /// Configures the backlight-scaling operating point.  `lambda` is the
  /// (already backlight-uncompensated) pixel transformation; the ladder
  /// applies the 1/beta spread internally in hardware mode, while
  /// software mode remaps pixels by the compensated LUT
  /// min(1, lambda(x)/beta).
  void configure(const hebs::transform::PwlCurve& lambda, double beta,
                 DeploymentMode mode);

  /// Returns to identity transform at full backlight.
  void reset();

  /// Displays one frame under the current configuration.
  DisplayResult display(const hebs::image::GrayImage& frame) const;

  /// Current backlight factor.
  double beta() const noexcept { return beta_; }

  DeploymentMode mode() const noexcept { return mode_; }

  const HierarchicalLadder& ladder() const noexcept { return ladder_; }

  const hebs::power::LcdSubsystemPower& power_model() const noexcept {
    return power_model_;
  }

 private:
  hebs::power::LcdSubsystemPower power_model_;
  HierarchicalLadder ladder_;
  hebs::transform::Lut software_lut_;  // compensated LUT (software mode)
  double beta_ = 1.0;
  DeploymentMode mode_ = DeploymentMode::kSoftwareTransform;
};

}  // namespace hebs::display
