// Lookup-table pixel transforms.
//
// Every pixel transformation function Φ in the paper maps levels to
// levels, so it is fully described by an N-entry lookup table (N = 256
// for the paper's 8-bit path).  The LCD controller applies it either in
// software (pixel remapping) or implicitly through the programmable
// reference-voltage ladder.
#pragma once

#include <array>
#include <cstdint>

#include "image/image.h"
#include "util/pool.h"

namespace hebs::transform {

/// A 256-entry level-to-level lookup table (the 8-bit path's Φ).
class Lut {
 public:
  static constexpr int kSize = hebs::image::kLevels;

  /// Identity table.
  Lut() noexcept;

  /// Builds from an explicit table.
  explicit Lut(const std::array<std::uint8_t, kSize>& table) noexcept
      : table_(table) {}

  /// Maps one level.
  std::uint8_t operator[](int level) const {
    return table_[static_cast<std::size_t>(level)];
  }

  /// Mutable entry access.
  std::uint8_t& operator[](int level) {
    return table_[static_cast<std::size_t>(level)];
  }

  /// Applies the table to every pixel of an image.
  hebs::image::GrayImage apply(const hebs::image::GrayImage& img) const;

  /// Composition: result maps x -> other[(*this)[x]].
  Lut then(const Lut& other) const noexcept;

  /// True when the table is non-decreasing (the paper requires Φ to be
  /// monotonic so the displayed ordering of gray levels is preserved).
  bool is_monotonic() const noexcept;

  /// Smallest and largest output levels.
  std::uint8_t min_output() const noexcept;
  std::uint8_t max_output() const noexcept;

  /// Output dynamic range max_output - min_output.
  int output_range() const noexcept {
    return max_output() - min_output();
  }

  bool operator==(const Lut& other) const = default;

 private:
  std::array<std::uint8_t, kSize> table_;
};

/// A runtime-sized level-to-level table for deep-pixel frames (1024 or
/// 65536 entries, matching the frame's level count).  Pool-backed so
/// per-frame tables recycle the worker's BufferPool.
class Lut16 {
 public:
  /// Identity table over `size` levels.
  explicit Lut16(int size);

  int size() const noexcept { return static_cast<int>(table_.size()); }

  std::uint16_t operator[](int level) const {
    return table_[static_cast<std::size_t>(level)];
  }
  std::uint16_t& operator[](int level) {
    return table_[static_cast<std::size_t>(level)];
  }

  /// Applies the table to every pixel; img.levels() must equal size().
  hebs::image::GrayImage16 apply(const hebs::image::GrayImage16& img) const;

  bool is_monotonic() const noexcept;

  bool operator==(const Lut16& other) const = default;

 private:
  hebs::util::PoolVector<std::uint16_t> table_;
};

/// An N-entry level -> real-value table.  This is the precomputed form
/// of evaluating a transfer curve at every pixel level: one linear sweep
/// over the curve's segments replaces a per-level (or worse, per-pixel)
/// binary search for the containing segment.  The evaluation pipeline
/// samples the operating point's luminance transform into a FloatLut once
/// and then indexes it per pixel (or per populated level).
///
/// The entry count is a runtime property (size(), default 256): the
/// depth-generalized pipeline samples curves at the frame's level count.
class FloatLut {
 public:
  static constexpr int kSize = hebs::image::kLevels;

  /// All-zero 256-entry table.
  FloatLut() : FloatLut(kSize) {}

  /// All-zero table of `size` entries.
  explicit FloatLut(int size);

  /// Builds from an explicit 256-entry table.
  explicit FloatLut(const std::array<double, kSize>& table)
      : table_(table.begin(), table.end()) {}

  /// Number of entries (== the level count the table was sampled at).
  int size() const noexcept { return static_cast<int>(table_.size()); }

  double operator[](int level) const {
    return table_[static_cast<std::size_t>(level)];
  }
  double& operator[](int level) {
    return table_[static_cast<std::size_t>(level)];
  }

  /// Applies the table to every pixel, writing a real-valued raster.
  hebs::image::FloatImage apply(const hebs::image::GrayImage& img) const;

  /// Deep-pixel apply; img.levels() must equal size().
  hebs::image::FloatImage apply16(const hebs::image::GrayImage16& img) const;

  /// Quantizes every entry to an 8-bit level table:
  /// lround(clamp01(v) * 255).  The single definition of the
  /// float-to-level rounding rule shared by the gray, color and
  /// pipeline paths.  Requires a 256-entry table.
  Lut quantize() const;

  /// Quantizes to a deep-pixel table of this table's size:
  /// lround(clamp01(v) * (size()-1)) — the same rounding rule on the
  /// frame's own level lattice.
  Lut16 quantize16() const;

  /// Transforms every entry through `fn` (e.g. clipping against β).
  template <typename Fn>
  FloatLut map(Fn&& fn) const {
    FloatLut out(size());
    for (int i = 0; i < size(); ++i) out[i] = fn(table_[i]);
    return out;
  }

 private:
  hebs::util::PoolVector<double> table_;
};

}  // namespace hebs::transform
