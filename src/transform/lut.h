// Lookup-table pixel transforms.
//
// Every pixel transformation function Φ in the paper maps 8-bit levels to
// 8-bit levels, so it is fully described by a 256-entry lookup table.
// The LCD controller applies it either in software (pixel remapping) or
// implicitly through the programmable reference-voltage ladder.
#pragma once

#include <array>
#include <cstdint>

#include "image/image.h"

namespace hebs::transform {

/// A 256-entry level-to-level lookup table.
class Lut {
 public:
  static constexpr int kSize = hebs::image::kLevels;

  /// Identity table.
  Lut() noexcept;

  /// Builds from an explicit table.
  explicit Lut(const std::array<std::uint8_t, kSize>& table) noexcept
      : table_(table) {}

  /// Maps one level.
  std::uint8_t operator[](int level) const {
    return table_[static_cast<std::size_t>(level)];
  }

  /// Mutable entry access.
  std::uint8_t& operator[](int level) {
    return table_[static_cast<std::size_t>(level)];
  }

  /// Applies the table to every pixel of an image.
  hebs::image::GrayImage apply(const hebs::image::GrayImage& img) const;

  /// Composition: result maps x -> other[(*this)[x]].
  Lut then(const Lut& other) const noexcept;

  /// True when the table is non-decreasing (the paper requires Φ to be
  /// monotonic so the displayed ordering of gray levels is preserved).
  bool is_monotonic() const noexcept;

  /// Smallest and largest output levels.
  std::uint8_t min_output() const noexcept;
  std::uint8_t max_output() const noexcept;

  /// Output dynamic range max_output - min_output.
  int output_range() const noexcept {
    return max_output() - min_output();
  }

  bool operator==(const Lut& other) const = default;

 private:
  std::array<std::uint8_t, kSize> table_;
};

/// A 256-entry level -> real-value table.  This is the precomputed form
/// of evaluating a transfer curve at every pixel level: one linear sweep
/// over the curve's segments replaces a per-level (or worse, per-pixel)
/// binary search for the containing segment.  The evaluation pipeline
/// samples the operating point's luminance transform into a FloatLut once
/// and then indexes it per pixel.
class FloatLut {
 public:
  static constexpr int kSize = hebs::image::kLevels;

  /// All-zero table.
  FloatLut() noexcept : table_{} {}

  /// Builds from an explicit table.
  explicit FloatLut(const std::array<double, kSize>& table) noexcept
      : table_(table) {}

  double operator[](int level) const {
    return table_[static_cast<std::size_t>(level)];
  }
  double& operator[](int level) {
    return table_[static_cast<std::size_t>(level)];
  }

  /// Applies the table to every pixel, writing a real-valued raster.
  hebs::image::FloatImage apply(const hebs::image::GrayImage& img) const;

  /// Quantizes every entry to an 8-bit level table:
  /// lround(clamp01(v) * 255).  The single definition of the
  /// float-to-level rounding rule shared by the gray, color and
  /// pipeline paths.
  Lut quantize() const;

  /// Transforms every entry through `fn` (e.g. clipping against β).
  template <typename Fn>
  FloatLut map(Fn&& fn) const {
    FloatLut out;
    for (int i = 0; i < kSize; ++i) out[i] = fn(table_[i]);
    return out;
  }

 private:
  std::array<double, kSize> table_;
};

}  // namespace hebs::transform
