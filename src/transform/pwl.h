// Piecewise-linear transfer curves over the normalized pixel domain.
//
// The exact GHE transformation Φ is piecewise linear with O(|G|)
// segments; the PLC stage approximates it by a PwlCurve with few
// segments, and the hierarchical reference driver realizes such curves
// in hardware.  x and y are normalized pixel values in [0, 1].
#pragma once

#include <vector>

#include "transform/lut.h"
#include "util/pool.h"

namespace hebs::transform {

/// A 2-D point on a transfer curve (normalized coordinates).
struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
  bool operator==(const CurvePoint&) const = default;
};

/// A piecewise-linear curve defined by ordered breakpoints.
class PwlCurve {
 public:
  /// Breakpoint storage: pool-backed so curve churn (one Φ and one Λ
  /// per probed range, every frame) recycles through the worker's
  /// BufferPool.
  using PointList = hebs::util::PoolVector<CurvePoint>;

  PwlCurve() = default;

  /// Builds from breakpoints; xs must be strictly increasing and the
  /// first/last x are expected to cover the evaluation domain.
  explicit PwlCurve(PointList points);

  /// Convenience for plain-vector call sites (tests, tools); copies.
  explicit PwlCurve(const std::vector<CurvePoint>& points)
      : PwlCurve(PointList(points.begin(), points.end())) {}

  /// Braced-list construction: PwlCurve({{0.0, 0.0}, {1.0, 1.0}}).
  PwlCurve(std::initializer_list<CurvePoint> points)
      : PwlCurve(PointList(points.begin(), points.end())) {}

  /// Evaluates by linear interpolation; x outside [front.x, back.x]
  /// clamps to the end values.
  double operator()(double x) const;

  const PointList& points() const noexcept { return points_; }

  /// Number of linear segments (points - 1; 0 for degenerate curves).
  int segment_count() const noexcept {
    return points_.size() < 2 ? 0 : static_cast<int>(points_.size()) - 1;
  }

  /// True when y values are non-decreasing with x.
  bool is_monotonic() const noexcept;

  /// Smallest / largest y over the breakpoints.
  double min_y() const noexcept;
  double max_y() const noexcept;

  /// Samples the curve at the 256 level centers x = i/255 with one
  /// linear sweep over the segments.  Produces exactly the values 256
  /// calls of operator() would (same segment selection, same
  /// interpolation arithmetic) without a binary search per level.
  FloatLut sample_levels() const;

  /// Depth-generalized sampling at the `levels` level centers
  /// x = i/(levels-1); sample_levels() is exactly sample_levels(256).
  FloatLut sample_levels(int levels) const;

  /// Quantizes the curve to a 256-entry lookup table.
  Lut to_lut() const;

  /// Reconstructs the exact PWL curve of a lookup table (one breakpoint
  /// per level).
  static PwlCurve from_lut(const Lut& lut);

  /// Identity curve y = x on [0, 1].
  static PwlCurve identity();

  /// Mean squared error between two curves sampled at the 256 level
  /// centers — the PLC objective of the paper (squared error between
  /// Φ and Λ).
  static double mse_between(const PwlCurve& a, const PwlCurve& b);

 private:
  PointList points_;
};

}  // namespace hebs::transform
