#include "transform/classic.h"

#include "util/error.h"

namespace hebs::transform {

PwlCurve identity_curve() { return PwlCurve::identity(); }

PwlCurve brightness_shift_curve(double beta) {
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  const double shift = 1.0 - beta;
  if (shift == 0.0) return PwlCurve::identity();
  // Rises with slope one from (0, shift) until it saturates at x = beta.
  return PwlCurve({{0.0, shift}, {beta, 1.0}, {1.0, 1.0}});
}

PwlCurve contrast_stretch_curve(double beta) {
  HEBS_REQUIRE(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
  if (beta == 1.0) return PwlCurve::identity();
  // Slope 1/beta from the origin, saturating at x = beta.
  return PwlCurve({{0.0, 0.0}, {beta, 1.0}, {1.0, 1.0}});
}

PwlCurve single_band_curve(double g_l, double g_u) {
  HEBS_REQUIRE(g_l >= 0.0 && g_u <= 1.0 && g_l < g_u,
               "band must satisfy 0 <= g_l < g_u <= 1");
  PwlCurve::PointList pts;
  if (g_l > 0.0) pts.push_back({0.0, 0.0});
  pts.push_back({g_l, 0.0});
  pts.push_back({g_u, 1.0});
  if (g_u < 1.0) pts.push_back({1.0, 1.0});
  return PwlCurve(std::move(pts));
}

}  // namespace hebs::transform
