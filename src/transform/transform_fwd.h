// Forward declarations for the transform module.
#pragma once

namespace hebs::transform {
class Lut;
class PwlCurve;
}  // namespace hebs::transform
