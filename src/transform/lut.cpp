#include "transform/lut.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::transform {

Lut::Lut() noexcept {
  for (int i = 0; i < kSize; ++i) {
    table_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  }
}

hebs::image::GrayImage Lut::apply(const hebs::image::GrayImage& img) const {
  hebs::image::GrayImage out(img.width(), img.height());
  kernels::active().lut_apply_u8(img.pixels().data(), img.size(),
                                 table_.data(), out.pixels().data());
  return out;
}

Lut Lut::then(const Lut& other) const noexcept {
  Lut out(*this);
  for (int i = 0; i < kSize; ++i) {
    out[i] = other[(*this)[i]];
  }
  return out;
}

bool Lut::is_monotonic() const noexcept {
  for (int i = 1; i < kSize; ++i) {
    if (table_[static_cast<std::size_t>(i)] <
        table_[static_cast<std::size_t>(i - 1)]) {
      return false;
    }
  }
  return true;
}

std::uint8_t Lut::min_output() const noexcept {
  return *std::min_element(table_.begin(), table_.end());
}

std::uint8_t Lut::max_output() const noexcept {
  return *std::max_element(table_.begin(), table_.end());
}

Lut16::Lut16(int size) {
  HEBS_REQUIRE(size >= 2 &&
                   size <= hebs::image::PixelTraits<std::uint16_t>::kLevels,
               "table size must be in [2, 65536]");
  table_.resize(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    table_[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(i);
  }
}

hebs::image::GrayImage16 Lut16::apply(
    const hebs::image::GrayImage16& img) const {
  HEBS_REQUIRE(img.levels() == size(),
               "table size does not match the image level count");
  hebs::image::GrayImage16 out(img.width(), img.height(), img.levels());
  kernels::active().lut_apply_u16(img.pixels().data(), img.size(),
                                  table_.data(), out.pixels().data());
  return out;
}

bool Lut16::is_monotonic() const noexcept {
  for (std::size_t i = 1; i < table_.size(); ++i) {
    if (table_[i] < table_[i - 1]) return false;
  }
  return true;
}

FloatLut::FloatLut(int size) {
  HEBS_REQUIRE(size >= 2 &&
                   size <= hebs::image::PixelTraits<std::uint16_t>::kLevels,
               "table size must be in [2, 65536]");
  table_.assign(static_cast<std::size_t>(size), 0.0);
}

Lut FloatLut::quantize() const {
  HEBS_REQUIRE(size() == kSize, "8-bit quantize needs a 256-entry table");
  Lut out;
  for (int i = 0; i < kSize; ++i) {
    const double y = util::clamp01(table_[static_cast<std::size_t>(i)]);
    out[i] = static_cast<std::uint8_t>(
        std::lround(y * hebs::image::kMaxPixel));
  }
  return out;
}

Lut16 FloatLut::quantize16() const {
  Lut16 out(size());
  const double maxv = static_cast<double>(size() - 1);
  for (int i = 0; i < size(); ++i) {
    const double y = util::clamp01(table_[static_cast<std::size_t>(i)]);
    out[i] = static_cast<std::uint16_t>(std::lround(y * maxv));
  }
  return out;
}

hebs::image::FloatImage FloatLut::apply(
    const hebs::image::GrayImage& img) const {
  HEBS_REQUIRE(size() == kSize, "8-bit apply needs a 256-entry table");
  hebs::image::FloatImage out(img.width(), img.height());
  kernels::active().lut_apply_f64(img.pixels().data(), img.size(),
                                  table_.data(), out.values().data());
  return out;
}

hebs::image::FloatImage FloatLut::apply16(
    const hebs::image::GrayImage16& img) const {
  HEBS_REQUIRE(img.levels() == size(),
               "table size does not match the image level count");
  hebs::image::FloatImage out(img.width(), img.height());
  const auto src = img.pixels();
  auto dst = out.values();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = table_[src[i]];
  return out;
}

}  // namespace hebs::transform
