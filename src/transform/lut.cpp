#include "transform/lut.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"
#include "util/mathutil.h"

namespace hebs::transform {

Lut::Lut() noexcept {
  for (int i = 0; i < kSize; ++i) {
    table_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  }
}

hebs::image::GrayImage Lut::apply(const hebs::image::GrayImage& img) const {
  hebs::image::GrayImage out(img.width(), img.height());
  kernels::active().lut_apply_u8(img.pixels().data(), img.size(),
                                 table_.data(), out.pixels().data());
  return out;
}

Lut Lut::then(const Lut& other) const noexcept {
  Lut out(*this);
  for (int i = 0; i < kSize; ++i) {
    out[i] = other[(*this)[i]];
  }
  return out;
}

bool Lut::is_monotonic() const noexcept {
  for (int i = 1; i < kSize; ++i) {
    if (table_[static_cast<std::size_t>(i)] <
        table_[static_cast<std::size_t>(i - 1)]) {
      return false;
    }
  }
  return true;
}

std::uint8_t Lut::min_output() const noexcept {
  return *std::min_element(table_.begin(), table_.end());
}

std::uint8_t Lut::max_output() const noexcept {
  return *std::max_element(table_.begin(), table_.end());
}

Lut FloatLut::quantize() const {
  Lut out;
  for (int i = 0; i < kSize; ++i) {
    const double y = util::clamp01(table_[static_cast<std::size_t>(i)]);
    out[i] = static_cast<std::uint8_t>(
        std::lround(y * hebs::image::kMaxPixel));
  }
  return out;
}

hebs::image::FloatImage FloatLut::apply(
    const hebs::image::GrayImage& img) const {
  hebs::image::FloatImage out(img.width(), img.height());
  kernels::active().lut_apply_f64(img.pixels().data(), img.size(),
                                  table_.data(), out.values().data());
  return out;
}

}  // namespace hebs::transform
