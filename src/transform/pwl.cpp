#include "transform/pwl.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::transform {

PwlCurve::PwlCurve(PointList points) : points_(std::move(points)) {
  HEBS_REQUIRE(points_.size() >= 2, "a PWL curve needs at least two points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    HEBS_REQUIRE(points_[i].x > points_[i - 1].x,
                 "PWL breakpoints must be strictly increasing in x");
  }
}

double PwlCurve::operator()(double x) const {
  HEBS_REQUIRE(points_.size() >= 2, "evaluating an empty PWL curve");
  if (x <= points_.front().x) return points_.front().y;
  if (x >= points_.back().x) return points_.back().y;
  // Binary search for the segment containing x.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double value, const CurvePoint& p) { return value < p.x; });
  const CurvePoint& hi = *it;
  const CurvePoint& lo = *(it - 1);
  const double t = (x - lo.x) / (hi.x - lo.x);
  return util::lerp(lo.y, hi.y, t);
}

bool PwlCurve::is_monotonic() const noexcept {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].y < points_[i - 1].y) return false;
  }
  return true;
}

double PwlCurve::min_y() const noexcept {
  double m = points_.empty() ? 0.0 : points_.front().y;
  for (const auto& p : points_) m = std::min(m, p.y);
  return m;
}

double PwlCurve::max_y() const noexcept {
  double m = points_.empty() ? 0.0 : points_.front().y;
  for (const auto& p : points_) m = std::max(m, p.y);
  return m;
}

FloatLut PwlCurve::sample_levels() const { return sample_levels(FloatLut::kSize); }

FloatLut PwlCurve::sample_levels(int levels) const {
  HEBS_REQUIRE(points_.size() >= 2, "sampling an empty PWL curve");
  FloatLut out(levels);
  const double maxv = static_cast<double>(levels - 1);
  // Walk levels and segments together.  `seg` is the index such that
  // points_[seg] is the first breakpoint with x > level position — the
  // same breakpoint upper_bound would find in operator().
  std::size_t seg = 1;
  for (int i = 0; i < levels; ++i) {
    const double x = static_cast<double>(i) / maxv;
    if (x <= points_.front().x) {
      out[i] = points_.front().y;
      continue;
    }
    if (x >= points_.back().x) {
      out[i] = points_.back().y;
      continue;
    }
    while (seg < points_.size() && !(x < points_[seg].x)) ++seg;
    const CurvePoint& hi = points_[seg];
    const CurvePoint& lo = points_[seg - 1];
    const double t = (x - lo.x) / (hi.x - lo.x);
    out[i] = util::lerp(lo.y, hi.y, t);
  }
  return out;
}

Lut PwlCurve::to_lut() const { return sample_levels().quantize(); }

PwlCurve PwlCurve::from_lut(const Lut& lut) {
  PointList pts;
  pts.reserve(Lut::kSize);
  for (int i = 0; i < Lut::kSize; ++i) {
    pts.push_back({static_cast<double>(i) / hebs::image::kMaxPixel,
                   static_cast<double>(lut[i]) / hebs::image::kMaxPixel});
  }
  return PwlCurve(std::move(pts));
}

PwlCurve PwlCurve::identity() {
  return PwlCurve(PointList{{0.0, 0.0}, {1.0, 1.0}});
}

double PwlCurve::mse_between(const PwlCurve& a, const PwlCurve& b) {
  double acc = 0.0;
  for (int i = 0; i < Lut::kSize; ++i) {
    const double x = static_cast<double>(i) / hebs::image::kMaxPixel;
    const double d = a(x) - b(x);
    acc += d * d;
  }
  return acc / Lut::kSize;
}

}  // namespace hebs::transform
