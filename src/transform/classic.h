// The classic pixel transformation functions of the paper's Figure 2 and
// Eqs. 2a/2b/3 — the building blocks of the DLS [4] and CBCS [5]
// baselines.  All take and return normalized pixel values.
#pragma once

#include "transform/pwl.h"

namespace hebs::transform {

/// Figure 2a — identity: Φ(x, β) = x.
PwlCurve identity_curve();

/// Figure 2b / Eq. 2a — "backlight luminance dimming with brightness
/// compensation": Φ(x, β) = min(1, x + 1 - β).  Requires β in (0, 1].
PwlCurve brightness_shift_curve(double beta);

/// Figure 2c / Eq. 2b — "backlight luminance dimming with contrast
/// enhancement": Φ(x, β) = min(1, x / β).  Requires β in (0, 1].
PwlCurve contrast_stretch_curve(double beta);

/// Figure 2d / Eq. 3 — "single-band grayscale spreading": 0 below g_l,
/// affine c·x + d between g_l and g_u, 1 above g_u, where (g_l, 0) and
/// (g_u, 1) are the clipping intersections.  Requires 0 <= g_l < g_u <= 1.
PwlCurve single_band_curve(double g_l, double g_u);

}  // namespace hebs::transform
