#include "pipeline/temporal.h"

#include <cstddef>
#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"

namespace hebs::pipeline {

namespace {

/// Frames to stop seeding the searches after a warm miss: on content
/// whose operating point jumps every frame (pans, cuts), failed
/// verification probes are pure overhead, so back off and retry only
/// occasionally.  Warm hits reset the cooldown immediately.
constexpr int kSeedCooldown = 4;

}  // namespace

void TemporalReuse::reset() {
  has_prev_ = false;
  trace_ = SearchTrace{};
  seed_cooldown_ = 0;
}

core::HebsResult TemporalReuse::process(FrameContext& ctx,
                                        const hebs::image::GrayImage& frame,
                                        double d_max_percent) {
  ++stats_.frames;
  obs::add(obs::Counter::kTemporalFrames);
  // Span arg = reuse level taken: 0 cold, 1 delta-refresh,
  // 2 byte-identical (the trace's per-frame reuse annotation).
  obs::ScopedSpan reuse_span(obs::Span::kTemporalReuse, 0);
  if (!opts_.enabled) {
    obs::add(obs::Counter::kTemporalCold);
    ctx.rebind(frame);
    return run_exact(ctx, d_max_percent);
  }

  // One pass over (prev, cur) classifies the frame: byte-identical,
  // small delta (histogram refreshed incrementally as a side effect),
  // or large delta (bail, full recount).  ctx.bound() guards the
  // full-reuse path: its caches must describe prev_frame_'s content.
  bool unchanged = false;
  bool have_hist = false;
  hebs::histogram::Histogram refreshed;
  if (has_prev_ && prev_frame_.width() == frame.width() &&
      prev_frame_.height() == frame.height() && ctx.bound()) {
    const auto max_changed = static_cast<std::size_t>(
        opts_.max_delta_fraction * static_cast<double>(frame.size()));
    refreshed = prev_hist_;
    std::size_t changed = 0;
    if (refreshed.refresh_from_delta(prev_frame_, frame, max_changed,
                                     &changed)) {
      if (changed == 0) {
        unchanged = true;
      } else {
        have_hist = true;
      }
    }
  }

  core::HebsResult result;
  if (unchanged) {
    // The context's caches all derive from pixel content identical to
    // this frame's; keep them and return the previous raw result —
    // run_exact is deterministic, so recomputing would reproduce it.
    ctx.rebind_unchanged(frame);
    ++stats_.unchanged;
    obs::add(obs::Counter::kTemporalByteIdentical);
    reuse_span.set_arg(2);
    result = prev_raw_;
  } else {
    ctx.rebind(frame);
    if (have_hist) {
      ctx.set_exact_histogram(refreshed);
      prev_hist_ = std::move(refreshed);
      ++stats_.incremental;
      obs::add(obs::Counter::kTemporalDeltaRefresh);
      reuse_span.set_arg(1);
    } else {
      obs::add(obs::Counter::kTemporalCold);
    }
    SearchTrace out;
    const SearchTrace* seed =
        (has_prev_ && trace_.valid && seed_cooldown_ == 0) ? &trace_
                                                           : nullptr;
    result = run_exact_traced(ctx, d_max_percent, seed, &out);
    if (out.warmed) {
      ++stats_.warmed;
      obs::add(obs::Counter::kTemporalWarmVerified);
      seed_cooldown_ = 0;
    } else if (seed != nullptr) {
      seed_cooldown_ = kSeedCooldown;
    } else if (seed_cooldown_ > 0) {
      --seed_cooldown_;
    }
    trace_ = out;
    if (!have_hist) prev_hist_ = ctx.exact_histogram();
    prev_raw_ = result;
    // The unchanged path skips this copy: the delta walk just proved
    // prev_frame_ already holds these bytes.
    prev_frame_ = frame;
  }
  has_prev_ = true;
  return result;
}

}  // namespace hebs::pipeline
