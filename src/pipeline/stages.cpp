#include "pipeline/stages.h"

#include <algorithm>
#include <array>
#include <optional>
#include <utility>

#include "core/backlight.h"
#include "core/distortion_curve.h"
#include "core/ghe.h"
#include "core/plc.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/faultpoint.h"

namespace hebs::pipeline {

namespace {

/// The distortion-minimal monotone placement of the image's native range
/// [lo, hi] into the target [g_min, g_max]: an affine map of the
/// populated levels (contrast-preserving when the widths match, identity
/// when the intervals coincide), clamped outside.
hebs::transform::PwlCurve affine_placement(int lo, int hi, int g_min,
                                           int g_max, int max_pixel) {
  const double xn_lo = static_cast<double>(lo) / max_pixel;
  const double xn_hi = static_cast<double>(hi) / max_pixel;
  const double yn_lo = static_cast<double>(g_min) / max_pixel;
  const double yn_hi = static_cast<double>(g_max) / max_pixel;
  hebs::transform::PwlCurve::PointList pts;
  if (lo > 0) pts.push_back({0.0, yn_lo});
  pts.push_back({xn_lo, yn_lo});
  pts.push_back({xn_hi, yn_hi});
  if (hi < max_pixel) pts.push_back({1.0, yn_hi});
  return hebs::transform::PwlCurve(std::move(pts));
}

/// Pointwise blend w·a + (1-w)·b, sampled at every pixel level so the
/// result has the same per-level resolution as the exact GHE curve.
hebs::transform::PwlCurve blend_curves(const hebs::transform::PwlCurve& a,
                                       const hebs::transform::PwlCurve& b,
                                       double w, int levels) {
  const hebs::transform::FloatLut sa = a.sample_levels(levels);
  const hebs::transform::FloatLut sb = b.sample_levels(levels);
  const double maxv = static_cast<double>(levels - 1);
  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(static_cast<std::size_t>(levels));
  for (int level = 0; level < levels; ++level) {
    const double x = static_cast<double>(level) / maxv;
    pts.push_back({x, w * sa[level] + (1.0 - w) * sb[level]});
  }
  return hebs::transform::PwlCurve(std::move(pts));
}

void validate(const FrameContext& ctx, int range) {
  const core::HebsOptions& opts = ctx.options();
  HEBS_REQUIRE(ctx.bound() && (ctx.bound16() ? !ctx.image16().empty()
                                             : !ctx.image().empty()),
               "HEBS of an empty image");
  HEBS_REQUIRE(range >= 1, "dynamic range must be positive");
  HEBS_REQUIRE(opts.g_min >= 0 && opts.g_min + range <= ctx.max_pixel(),
               "target range exceeds the frame's pixel domain");
  HEBS_REQUIRE(opts.segments >= 1, "segment budget must be positive");
  HEBS_REQUIRE(opts.min_range >= 2,
               "min_range below 2 degenerates the PLC dynamic program");
  HEBS_REQUIRE(opts.equalization_strength <= 1.0,
               "equalization strength must be <= 1 (or negative for "
               "adaptive)");
  HEBS_REQUIRE(opts.min_beta > 0.0 && opts.min_beta <= 1.0,
               "min_beta must be in (0, 1]");
}

}  // namespace

void HistogramStage::run(const FrameContext& ctx,
                         core::HebsResult& result) const {
  (void)result;
  (void)ctx.histogram();
}

core::GheTarget select_target(const FrameContext& ctx, int range) {
  validate(ctx, range);
  const auto& hist = ctx.histogram();
  const int lo = hist.min_level();
  const int hi = hist.max_level();
  const int native = hi - lo;
  const int g_min = ctx.options().g_min;

  // Never map the brightest populated level above itself: brightening
  // costs backlight power and adds distortion, so the admissible range
  // is capped by the image's own maximum.
  const int g_max = std::min(g_min + range, std::max(hi, 1));
  // Preserve the native width when the target allows it (the adaptive
  // placement); otherwise compress down to the floor g_min.
  const int g_min_eff = native > 0 ? std::max(g_min, g_max - native) : g_min;
  return core::GheTarget{g_min_eff, g_max};
}

void RangeSelectStage::run(const FrameContext& ctx,
                           core::HebsResult& result) const {
  result.target = select_target(ctx, range_);
}

hebs::transform::PwlCurve phi_for_target(const FrameContext& ctx,
                                         const core::GheTarget& target) {
  const auto& hist = ctx.histogram();
  const int lo = hist.min_level();
  const int hi = hist.max_level();
  const int native = hi - lo;
  const int width = target.range();

  const hebs::transform::PwlCurve& ghe = ctx.ghe(target);
  double w = ctx.options().equalization_strength;
  if (w < 0.0) {
    w = native > 0
            ? 1.0 - static_cast<double>(width) / static_cast<double>(native)
            : 1.0;
  }
  if (native <= 0) w = 1.0;  // constant image: GHE handles it
  return w >= 1.0 ? ghe
                  : blend_curves(ghe,
                                 affine_placement(lo, hi, target.g_min,
                                                  target.g_max,
                                                  ctx.max_pixel()),
                                 w, ctx.levels());
}

void GheStage::run(const FrameContext& ctx, core::HebsResult& result) const {
  result.phi = phi_for_target(ctx, result.target);
}

void PlcStage::run(const FrameContext& ctx, core::HebsResult& result) const {
  core::PlcResult plc = core::plc_coarsen(result.phi, ctx.options().segments);
  result.lambda = std::move(plc.curve);
  result.plc_mse = plc.mse;
}

void EvaluateStage::run(const FrameContext& ctx,
                        core::HebsResult& result) const {
  const double beta = core::beta_for_gmax(
      result.target.g_max, ctx.options().min_beta, ctx.max_pixel());
  result.point = core::OperatingPoint{result.lambda, beta};
  result.evaluation = ctx.evaluate_lean(result.point);
}

core::HebsResult run_stages_at_range_lean(const FrameContext& ctx,
                                          int range) {
  const HistogramStage histogram_stage;
  const RangeSelectStage range_stage(range);
  const GheStage ghe_stage;
  const PlcStage plc_stage;
  const EvaluateStage evaluate_stage;
  const Stage* const stages[] = {&histogram_stage, &range_stage, &ghe_stage,
                                 &plc_stage, &evaluate_stage};
  core::HebsResult result;
  for (const Stage* stage : stages) {
    // The per-stage latency fault point: an installed stage-latency
    // spec stalls here, making deadline-miss behavior provokable with a
    // deterministic clock lever (off = one relaxed load per stage).
    util::fault::maybe_stall(util::fault::Point::kStageLatency);
    stage->run(ctx, result);
  }
  return result;
}

core::HebsResult run_stages_at_range(const FrameContext& ctx, int range) {
  core::HebsResult result = run_stages_at_range_lean(ctx, range);
  ctx.materialize_transformed(result);
  return result;
}

core::HebsResult run_with_curve(const FrameContext& ctx, double d_max_percent,
                                const core::DistortionCurve& curve) {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  int range = curve.min_range_for(d_max_percent, /*worst_case=*/true);
  range = std::max(range, ctx.options().min_range);
  range = std::min(range, ctx.max_pixel() - ctx.options().g_min);
  return ctx.at_range(range);
}

namespace {

constexpr int kBetaRefineIters = 12;

/// Concurrent brightness-scaling refinement: with Λ fixed, bisect β
/// below its luminance-exact value while the measured distortion stays
/// within budget, and keep the result when it saves more power.
///
/// `seed`/`trace` (both nullable) carry the temporal warm start: the
/// seeded path replays the previous frame's feasibility decisions
/// arithmetically and verifies only the final bracket endpoints — under
/// monotone feasibility in β (dimmer can only distort more), a verified
/// final bracket forces every intermediate decision, so the replay is
/// exactly the trajectory the cold bisection would take.  Any
/// verification miss runs the cold loop.
void refine_beta(const FrameContext& ctx, double d_max_percent,
                 core::HebsResult& result, const SearchTrace* seed,
                 SearchTrace* trace) {
  obs::ScopedSpan refine_span(obs::Span::kBetaRefine);
  const core::OperatingPoint base = result.point;
  const double min_beta = ctx.options().min_beta;
  // Lean evaluations: only the winning candidate's transformed raster
  // is materialized (below), not one per bisection probe.
  auto eval_at = [&](double beta) {
    obs::add(obs::Counter::kBetaProbes);
    obs::ScopedSpan probe_span(obs::Span::kBetaProbe,
                               static_cast<std::int32_t>(beta * 1e6));
    const core::OperatingPoint p{base.luminance_transform,
                                 std::max(min_beta, beta)};
    return ctx.evaluate_lean(p);
  };

  const double floor_beta = std::max(min_beta, 0.25 * base.beta);
  if (trace != nullptr) {
    trace->refine_ran = true;
    trace->base_beta = base.beta;
    trace->floor_beta = floor_beta;
  }
  // The best candidate is tracked by its β and scalar outcomes, not as
  // a full EvaluatedPoint: an EvaluatedPoint owns a pool-backed copy of
  // the luminance curve, and holding one per memoized probe (content-
  // dependent, up to ~32 at once) gave the steady state a working-set
  // high-water mark no warm-up pass could bound — the one pool miss
  // bench_alloc_steady_state catches.  The winner is re-materialized
  // exactly once at the end (eval_at is deterministic, so the re-run is
  // bit-identical to the probe that won).
  double best_beta = base.beta;
  double best_saving = result.evaluation.saving_percent;
  auto at_floor = eval_at(floor_beta);
  if (at_floor.distortion_percent <= d_max_percent) {
    best_beta = floor_beta;
    best_saving = at_floor.saving_percent;
    if (trace != nullptr) trace->floor_feasible = true;
  } else {
    // Exact β-evaluations land on a small set of fp points shared by
    // the falsi probes, the coarse prediction walk, the endpoint
    // verification and the cold fallback; memoizing their scalar
    // outcomes (exact double compare) makes every re-visit free without
    // changing any produced value.
    struct Probe {
      double beta;
      double distortion_percent;
      double saving_percent;
    };
    std::array<Probe, 36> evals;
    std::size_t evals_n = 0;
    auto eval_memo = [&](double beta) -> const Probe& {
      for (std::size_t k = 0; k < evals_n; ++k) {
        if (evals[k].beta == beta) {
          obs::add(obs::Counter::kEvalMemoHit);
          return evals[k];
        }
      }
      obs::add(obs::Counter::kEvalMemoMiss);
      const core::EvaluatedPoint ev = eval_at(beta);
      const Probe probe{beta, ev.distortion_percent, ev.saving_percent};
      if (evals_n == evals.size()) {
        // Unreachable (≤ 32 distinct points per refinement); kept safe.
        evals.back() = probe;
        return evals.back();
      }
      evals[evals_n] = probe;
      return evals[evals_n++];
    };
    // Attempts to adopt a predicted 12-bit decision path: replays the
    // same fp mid arithmetic the cold loop performs with decisions taken
    // from `path`, then verifies only the final bracket endpoints.
    // feasible == base.beta needs no probe (the range search already
    // measured it within budget); infeasible == floor_beta was just
    // measured over budget.  Under monotone feasibility in β (dimmer can
    // only distort more), a verified final bracket forces every
    // intermediate decision, so an adopted path is exactly the
    // trajectory the cold bisection would take.
    auto try_path = [&](std::uint16_t path) -> bool {
      double feasible = base.beta;
      double infeasible = floor_beta;
      bool any_feasible = false;
      for (int i = 0; i < kBetaRefineIters; ++i) {
        const double mid = (feasible + infeasible) / 2.0;
        if ((path >> i) & 1u) {
          feasible = mid;
          any_feasible = true;
        } else {
          infeasible = mid;
        }
      }
      bool ok = true;
      const Probe* ev_f = nullptr;
      if (any_feasible) {
        ev_f = &eval_memo(feasible);
        ok = ev_f->distortion_percent <= d_max_percent;
      }
      if (ok && infeasible != floor_beta) {
        ok = eval_memo(infeasible).distortion_percent > d_max_percent;
      }
      if (!ok) return false;
      if (any_feasible) {
        best_beta = ev_f->beta;
        best_saving = ev_f->saving_percent;
      }
      if (trace != nullptr) trace->beta_path = path;
      return true;
    };

    bool replayed = false;
    if (seed != nullptr && seed->valid && seed->refine_ran &&
        !seed->floor_feasible && seed->base_beta == base.beta &&
        seed->floor_beta == floor_beta) {
      replayed = try_path(seed->beta_path);
    }
    if (!replayed && ctx.options().coarse_search &&
        ctx.histogram().max_level() > ctx.histogram().min_level()) {
      // Measured-value walk: Illinois-damped regula falsi on the exact
      // (memoized) evaluations pre-localizes the feasibility crossing,
      // then the cold loop's 12 dyadic mids are replayed with each
      // decision inferred from the measured bracket where monotone
      // feasibility forces it, and measured directly where it does not.
      // The resulting path is endpoint-verified like a temporal seed.
      // The decimated proxy is deliberately not consulted here:
      // decimation discards exactly the clipped detail the metric
      // charges β for, so its values saturate near the crossing and
      // proxy-guided decisions go wrong on the deep bits — value
      // interpolation between exact measurements converges in a handful
      // of evaluations instead.  Constant frames skip the walk (the
      // outer `native > 0` gate): their windowed distortion degenerates
      // to catastrophic-cancellation residue, non-monotone in β, and
      // only the verbatim cold loop reproduces the frozen answer.
      double b_inf = floor_beta;  // measured over budget
      double b_feas = base.beta;  // measured within budget
      double d_inf = at_floor.distortion_percent;
      double d_feas = result.evaluation.distortion_percent;
      // Phase 1: shrink the measured bracket below the dyadic walk's
      // final resolution so phase 2 can infer (almost) every decision.
      // Only the feasibility SIGNS feed the walk; the values merely
      // steer the interpolation (distortion dips non-monotonically just
      // below base β on many frames, which is harmless: the cold loop,
      // and hence the replay contract, only cares about the budget
      // crossing).
      const double resolution = (base.beta - floor_beta) / 4096.0;
      constexpr int kFalsiProbes = 4;
      double w_inf = 1.0;
      double w_feas = 1.0;
      int last_side = 0;
      for (int probe = 0;
           probe < kFalsiProbes && b_feas - b_inf > resolution; ++probe) {
        const double di = w_inf * (d_inf - d_max_percent);
        const double df = w_feas * (d_feas - d_max_percent);
        const double margin = 0.125 * (b_feas - b_inf);
        const double guess = std::clamp(
            b_inf + di / (di - df) * (b_feas - b_inf), b_inf + margin,
            b_feas - margin);
        const double d = eval_memo(guess).distortion_percent;
        if (d <= d_max_percent) {
          b_feas = guess;
          d_feas = d;
          if (last_side == +1) w_inf *= 0.5;  // Illinois: damp stale end
          w_feas = 1.0;
          last_side = +1;
        } else {
          b_inf = guess;
          d_inf = d;
          if (last_side == -1) w_feas *= 0.5;
          w_inf = 1.0;
          last_side = -1;
        }
      }
      // Phase 2: replay the cold mids against the measured bracket,
      // evaluating only the mids the bracket cannot classify.
      {
        std::uint16_t predicted = 0;
        double feasible = base.beta;
        double infeasible = floor_beta;
        for (int i = 0; i < kBetaRefineIters; ++i) {
          const double mid = (feasible + infeasible) / 2.0;
          bool mid_feasible;
          if (mid >= b_feas) {
            mid_feasible = true;
          } else if (mid <= b_inf) {
            mid_feasible = false;
          } else {
            mid_feasible =
                eval_memo(mid).distortion_percent <= d_max_percent;
            if (mid_feasible) {
              b_feas = mid;
            } else {
              b_inf = mid;
            }
          }
          if (mid_feasible) {
            feasible = mid;
            predicted |= static_cast<std::uint16_t>(1u << i);
          } else {
            infeasible = mid;
          }
        }
        replayed = try_path(predicted);
      }
    }
    if (!replayed) {
      double feasible = base.beta;
      double infeasible = floor_beta;
      std::uint16_t path = 0;
      for (int i = 0; i < kBetaRefineIters; ++i) {
        const double mid = (feasible + infeasible) / 2.0;
        const Probe& eval = eval_memo(mid);
        if (eval.distortion_percent <= d_max_percent) {
          feasible = mid;
          best_beta = mid;
          best_saving = eval.saving_percent;
          path |= static_cast<std::uint16_t>(1u << i);
        } else {
          infeasible = mid;
        }
      }
      if (trace != nullptr) trace->beta_path = path;
    }
  }
  if (best_saving > result.evaluation.saving_percent) {
    // Materialize the winning probe exactly once.  at_floor is still on
    // hand; any other winner is re-evaluated — deterministic, so the
    // values match the probe that won bit for bit.
    result.evaluation =
        best_beta == floor_beta ? std::move(at_floor) : eval_at(best_beta);
    result.point = result.evaluation.point;
    ctx.materialize_transformed(result);
  }
  refine_span.set_arg(static_cast<std::int32_t>(best_beta * 1000.0));
}

}  // namespace

core::HebsResult run_exact_traced(const FrameContext& ctx,
                                  double d_max_percent,
                                  const SearchTrace* seed,
                                  SearchTrace* trace) {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  obs::add(obs::Counter::kFramesDecided);
  // The decision span covers the range search and the nested β
  // refinement; per-probe evaluations open their own child spans.
  obs::ScopedSpan decide_span(obs::Span::kRangeSearch);
  const int hi = ctx.max_pixel() - ctx.options().g_min;
  const int lo = std::min(ctx.options().min_range, hi);
  if (trace != nullptr) *trace = SearchTrace{};

  // Distortion decreases (weakly) as the admissible range grows, so the
  // smallest feasible range can be found by bisection on integers.  Each
  // probe is memoized in the context (curves and scalars only — no
  // per-probe raster), so revisited ranges cost nothing.
  auto distortion_at = [&](int range) {
    obs::add(obs::Counter::kRangeProbes);
    obs::ScopedSpan probe_span(obs::Span::kRangeProbe, range);
    return ctx.distortion_at_range(range);
  };

  core::HebsResult result;
  int chosen = 0;
  bool found = false;

  // Bounded local walk from a starting range to the verified bracket
  // p(r) ∧ (r = lo ∨ ¬p(r−1)) — under monotone feasibility in range the
  // minimal feasible range, which is where the cold bisection lands.
  // Returns nullopt when the budget runs out before the bracket is
  // established; a failed walk costs little extra, since every probe is
  // memoized and the fallback searches reuse it.
  auto verified_walk = [&](int start, int budget) -> std::optional<int> {
    int r = std::clamp(start, lo, hi);
    if (distortion_at(r) <= d_max_percent) {
      // Feasible: walk down to the smallest feasible range.
      while (r > lo && budget > 0 && distortion_at(r - 1) <= d_max_percent) {
        --r;
        --budget;
      }
      // Established when the loop stopped on the bracket condition, not
      // on an exhausted budget.
      if (r == lo || (budget > 0 && distortion_at(r - 1) > d_max_percent)) {
        return r;
      }
      return std::nullopt;
    }
    // Infeasible: walk up to the first feasible range (¬p(r−1) holds for
    // every range the walk passes).
    while (r < hi && budget > 0) {
      ++r;
      --budget;
      if (distortion_at(r) <= d_max_percent) return r;
    }
    return std::nullopt;
  };

  // Warm path: walk from the seeded range instead of a full bisection.
  // The cap keeps a stale seed cheap — past kWarmRangeWalk probes the
  // bisection is competitive.
  constexpr int kWarmRangeWalk = 5;
  if (seed != nullptr && seed->valid) {
    if (seed->hi_infeasible) {
      if (distortion_at(hi) > d_max_percent) {
        if (trace != nullptr) {
          trace->valid = true;
          trace->hi_infeasible = true;
          trace->range = hi;
          trace->warmed = true;
        }
        // Cold's early exit: the least-distorted point, no refinement.
        return ctx.at_range(hi);
      }
    } else if (const auto r = verified_walk(seed->range, kWarmRangeWalk)) {
      chosen = *r;
      result = ctx.at_range(chosen);
      found = true;
      if (trace != nullptr) trace->warmed = true;
    }
  }

  // Coarse path: close the exact bracket with value interpolation
  // instead of blind bisection.  Feasibility always comes from the
  // exact evaluator, every probe strictly tightens the exact bracket,
  // and the loop exits only on measured facts: either d(hi) over
  // budget (the cold early exit) or the verified bracket p(r) ∧ (r =
  // lo ∨ ¬p(r−1)) — the cold bisection's answer under weakly monotone
  // measured distortion.  Probe choice, in order of information in
  // hand: with a measured point on each side, a secant through the two
  // exact values (with a stall guard that reverts to the midpoint when
  // a probe cuts less than a quarter of the bracket, so the worst case
  // stays logarithmic); with one side only, the decimated proxy
  // offset-calibrated through the measured point; with nothing (or no
  // usable proxy), the cold order — top of the interval first.
  // Typical cost: 2–4 full-resolution probes instead of the
  // bisection's ~log2(hi−lo).  Constant frames are excluded: their
  // sub-clamp distortion is catastrophic-cancellation residue,
  // non-monotone in range, and only the verbatim cold probe sequence
  // reproduces the frozen answer (their probes are cheap anyway — every
  // range at or above the populated level collapses to one memoized
  // target).
  if (!found && ctx.options().coarse_search &&
      ctx.histogram().max_level() > ctx.histogram().min_level()) {
    const bool proxy = ctx.approx_distortion_at_range(hi).has_value();
    const auto approx_at = [&](int range) {
      return *ctx.approx_distortion_at_range(range);
    };
    int lo_bound = lo - 1;  // largest range measured infeasible (none yet)
    int hi_bound = hi + 1;  // smallest range measured feasible (none yet)
    double d_lo = 0.0;      // exact distortion at lo_bound, once measured
    double d_hi = 0.0;      // exact distortion at hi_bound, once measured
    double w_lo = 1.0;      // Illinois weights for the two-sided secant
    double w_hi = 1.0;
    int last_side = 0;
    int last_width = 0;
    int proxy_guesses = 0;
    while (hi_bound != lo && lo_bound + 1 != hi_bound) {
      const int c_lo = lo_bound + 1;
      const int c_hi = std::min(hi, hi_bound - 1);
      const int width = hi_bound - lo_bound;
      const bool stalled =
          last_width != 0 && width > last_width - last_width / 4;
      last_width = width;
      int guess;
      if (lo_bound >= lo && hi_bound <= hi) {
        // Both sides measured: a secant through the exact values,
        // Illinois-damped so a run of same-side updates cannot creep
        // (the stale end's residual is halved, pulling the next guess
        // across).  A stalled probe reverts to the midpoint outright,
        // keeping the worst case logarithmic.
        if (stalled) {
          guess = lo_bound + width / 2;
        } else {
          const double rl = w_lo * (d_lo - d_max_percent);
          const double rh = w_hi * (d_hi - d_max_percent);
          guess = lo_bound + static_cast<int>(rl / (rl - rh) *
                                              static_cast<double>(width));
        }
        guess = std::clamp(guess, c_lo, c_hi);
      } else if (hi_bound <= hi) {
        // Only a feasible point so far: test adjacency at the bottom.
        // Decisive either way — feasible closes the bracket at lo,
        // infeasible switches to the two-sided secant.
        guess = c_lo;
      } else if (proxy && proxy_guesses < 3) {
        // Only infeasible measurements (or none): take the proxy's
        // predicted crossing — raw on the first probe, ratio-calibrated
        // through the measured point after (decimation compresses the
        // distortion scale roughly proportionally, so a multiplicative
        // fit tracks where an additive offset overshoots); c_hi when
        // the calibrated proxy believes nothing fits (which probes the
        // exact top of the open interval — at the first iteration the
        // d(hi) measurement that decides the cold early exit).  Two
        // guesses of this kind suffice to seed the secant; past that
        // the cold order below takes over.
        ++proxy_guesses;
        double scale = 1.0;
        if (lo_bound >= lo && approx_at(lo_bound) > 1e-6) {
          scale = d_lo / approx_at(lo_bound);
        }
        guess = c_hi;
        if (approx_at(c_lo) * scale <= d_max_percent) {
          guess = c_lo;
        } else if (c_hi > c_lo &&
                   approx_at(c_hi) * scale <= d_max_percent) {
          int infeasible = c_lo;
          int feasible = c_hi;
          while (feasible - infeasible > 1) {
            const int mid = (feasible + infeasible) / 2;
            if (approx_at(mid) * scale <= d_max_percent) {
              feasible = mid;
            } else {
              infeasible = mid;
            }
          }
          guess = feasible;
        }
      } else {
        // No usable proxy (tiny frames) or its two guesses spent: cold
        // order — the top of the interval first, midpoint progress once
        // a bound is in hand.
        guess = lo_bound < lo ? c_hi
                              : std::clamp(lo_bound + width / 2, c_lo, c_hi);
      }
      const double d = distortion_at(guess);
      if (d <= d_max_percent) {
        hi_bound = guess;
        d_hi = d;
        if (last_side == +1) w_lo *= 0.5;
        w_hi = 1.0;
        last_side = +1;
      } else {
        lo_bound = guess;
        d_lo = d;
        if (last_side == -1) w_hi *= 0.5;
        w_lo = 1.0;
        last_side = -1;
      }
    }
    if (lo_bound == hi) {
      // d(hi) measured over budget: the cold early exit (least-distorted
      // point, no refinement).
      if (trace != nullptr) {
        trace->valid = true;
        trace->hi_infeasible = true;
        trace->range = hi;
      }
      return ctx.at_range(hi);
    }
    chosen = hi_bound;
    result = ctx.at_range(chosen);
    found = true;
  }

  if (!found) {
    if (distortion_at(hi) > d_max_percent) {
      // Even the widest range misses the budget (tiny budgets on busy
      // images): return the least-distorted point.
      if (trace != nullptr) {
        trace->valid = true;
        trace->hi_infeasible = true;
        trace->range = hi;
      }
      return ctx.at_range(hi);
    }
    if (distortion_at(lo) <= d_max_percent) {
      chosen = lo;
    } else {
      int infeasible = lo;  // distortion > budget here
      int feasible = hi;    // distortion <= budget here
      while (feasible - infeasible > 1) {
        const int mid = (feasible + infeasible) / 2;
        if (distortion_at(mid) <= d_max_percent) {
          feasible = mid;
        } else {
          infeasible = mid;
        }
      }
      chosen = feasible;
    }
    result = ctx.at_range(chosen);
  }

  if (ctx.options().concurrent_scaling) {
    refine_beta(ctx, d_max_percent, result, seed, trace);
  }
  if (trace != nullptr) {
    trace->valid = true;
    trace->range = chosen;
  }
  return result;
}

core::HebsResult run_exact(const FrameContext& ctx, double d_max_percent) {
  return run_exact_traced(ctx, d_max_percent, nullptr, nullptr);
}

}  // namespace hebs::pipeline
