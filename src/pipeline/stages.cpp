#include "pipeline/stages.h"

#include <algorithm>
#include <optional>

#include "core/backlight.h"
#include "core/distortion_curve.h"
#include "core/ghe.h"
#include "core/plc.h"
#include "util/error.h"

namespace hebs::pipeline {

namespace {

/// The distortion-minimal monotone placement of the image's native range
/// [lo, hi] into the target [g_min, g_max]: an affine map of the
/// populated levels (contrast-preserving when the widths match, identity
/// when the intervals coincide), clamped outside.
hebs::transform::PwlCurve affine_placement(int lo, int hi, int g_min,
                                           int g_max) {
  const double xn_lo = static_cast<double>(lo) / hebs::image::kMaxPixel;
  const double xn_hi = static_cast<double>(hi) / hebs::image::kMaxPixel;
  const double yn_lo = static_cast<double>(g_min) / hebs::image::kMaxPixel;
  const double yn_hi = static_cast<double>(g_max) / hebs::image::kMaxPixel;
  hebs::transform::PwlCurve::PointList pts;
  if (lo > 0) pts.push_back({0.0, yn_lo});
  pts.push_back({xn_lo, yn_lo});
  pts.push_back({xn_hi, yn_hi});
  if (hi < hebs::image::kMaxPixel) pts.push_back({1.0, yn_hi});
  return hebs::transform::PwlCurve(std::move(pts));
}

/// Pointwise blend w·a + (1-w)·b, sampled at every pixel level so the
/// result has the same per-level resolution as the exact GHE curve.
hebs::transform::PwlCurve blend_curves(const hebs::transform::PwlCurve& a,
                                       const hebs::transform::PwlCurve& b,
                                       double w) {
  const hebs::transform::FloatLut sa = a.sample_levels();
  const hebs::transform::FloatLut sb = b.sample_levels();
  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(static_cast<std::size_t>(hebs::image::kLevels));
  for (int level = 0; level < hebs::image::kLevels; ++level) {
    const double x = static_cast<double>(level) / hebs::image::kMaxPixel;
    pts.push_back({x, w * sa[level] + (1.0 - w) * sb[level]});
  }
  return hebs::transform::PwlCurve(std::move(pts));
}

void validate(const FrameContext& ctx, int range) {
  const core::HebsOptions& opts = ctx.options();
  HEBS_REQUIRE(ctx.bound() && !ctx.image().empty(), "HEBS of an empty image");
  HEBS_REQUIRE(range >= 1, "dynamic range must be positive");
  HEBS_REQUIRE(opts.g_min >= 0 && opts.g_min + range <= hebs::image::kMaxPixel,
               "target range exceeds the 8-bit domain");
  HEBS_REQUIRE(opts.segments >= 1, "segment budget must be positive");
  HEBS_REQUIRE(opts.min_range >= 2,
               "min_range below 2 degenerates the PLC dynamic program");
  HEBS_REQUIRE(opts.equalization_strength <= 1.0,
               "equalization strength must be <= 1 (or negative for "
               "adaptive)");
  HEBS_REQUIRE(opts.min_beta > 0.0 && opts.min_beta <= 1.0,
               "min_beta must be in (0, 1]");
}

}  // namespace

void HistogramStage::run(const FrameContext& ctx,
                         core::HebsResult& result) const {
  (void)result;
  (void)ctx.histogram();
}

core::GheTarget select_target(const FrameContext& ctx, int range) {
  validate(ctx, range);
  const auto& hist = ctx.histogram();
  const int lo = hist.min_level();
  const int hi = hist.max_level();
  const int native = hi - lo;
  const int g_min = ctx.options().g_min;

  // Never map the brightest populated level above itself: brightening
  // costs backlight power and adds distortion, so the admissible range
  // is capped by the image's own maximum.
  const int g_max = std::min(g_min + range, std::max(hi, 1));
  // Preserve the native width when the target allows it (the adaptive
  // placement); otherwise compress down to the floor g_min.
  const int g_min_eff = native > 0 ? std::max(g_min, g_max - native) : g_min;
  return core::GheTarget{g_min_eff, g_max};
}

void RangeSelectStage::run(const FrameContext& ctx,
                           core::HebsResult& result) const {
  result.target = select_target(ctx, range_);
}

void GheStage::run(const FrameContext& ctx, core::HebsResult& result) const {
  const auto& hist = ctx.histogram();
  const int lo = hist.min_level();
  const int hi = hist.max_level();
  const int native = hi - lo;
  const int width = result.target.range();

  const hebs::transform::PwlCurve& ghe = ctx.ghe(result.target);
  double w = ctx.options().equalization_strength;
  if (w < 0.0) {
    w = native > 0
            ? 1.0 - static_cast<double>(width) / static_cast<double>(native)
            : 1.0;
  }
  if (native <= 0) w = 1.0;  // constant image: GHE handles it
  result.phi =
      w >= 1.0
          ? ghe
          : blend_curves(ghe,
                         affine_placement(lo, hi, result.target.g_min,
                                          result.target.g_max),
                         w);
}

void PlcStage::run(const FrameContext& ctx, core::HebsResult& result) const {
  core::PlcResult plc = core::plc_coarsen(result.phi, ctx.options().segments);
  result.lambda = std::move(plc.curve);
  result.plc_mse = plc.mse;
}

void EvaluateStage::run(const FrameContext& ctx,
                        core::HebsResult& result) const {
  const double beta =
      core::beta_for_gmax(result.target.g_max, ctx.options().min_beta);
  result.point = core::OperatingPoint{result.lambda, beta};
  result.evaluation = ctx.evaluate_lean(result.point);
}

core::HebsResult run_stages_at_range_lean(const FrameContext& ctx,
                                          int range) {
  const HistogramStage histogram_stage;
  const RangeSelectStage range_stage(range);
  const GheStage ghe_stage;
  const PlcStage plc_stage;
  const EvaluateStage evaluate_stage;
  const Stage* const stages[] = {&histogram_stage, &range_stage, &ghe_stage,
                                 &plc_stage, &evaluate_stage};
  core::HebsResult result;
  for (const Stage* stage : stages) stage->run(ctx, result);
  return result;
}

core::HebsResult run_stages_at_range(const FrameContext& ctx, int range) {
  core::HebsResult result = run_stages_at_range_lean(ctx, range);
  ctx.materialize_transformed(result);
  return result;
}

core::HebsResult run_with_curve(const FrameContext& ctx, double d_max_percent,
                                const core::DistortionCurve& curve) {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  int range = curve.min_range_for(d_max_percent, /*worst_case=*/true);
  range = std::max(range, ctx.options().min_range);
  range = std::min(range, hebs::image::kMaxPixel - ctx.options().g_min);
  return ctx.at_range(range);
}

namespace {

constexpr int kBetaRefineIters = 12;

/// Concurrent brightness-scaling refinement: with Λ fixed, bisect β
/// below its luminance-exact value while the measured distortion stays
/// within budget, and keep the result when it saves more power.
///
/// `seed`/`trace` (both nullable) carry the temporal warm start: the
/// seeded path replays the previous frame's feasibility decisions
/// arithmetically and verifies only the final bracket endpoints — under
/// monotone feasibility in β (dimmer can only distort more), a verified
/// final bracket forces every intermediate decision, so the replay is
/// exactly the trajectory the cold bisection would take.  Any
/// verification miss runs the cold loop.
void refine_beta(const FrameContext& ctx, double d_max_percent,
                 core::HebsResult& result, const SearchTrace* seed,
                 SearchTrace* trace) {
  const core::OperatingPoint base = result.point;
  const double min_beta = ctx.options().min_beta;
  // Lean evaluations: only the winning candidate's transformed raster
  // is materialized (below), not one per bisection probe.
  auto eval_at = [&](double beta) {
    const core::OperatingPoint p{base.luminance_transform,
                                 std::max(min_beta, beta)};
    return ctx.evaluate_lean(p);
  };

  const double floor_beta = std::max(min_beta, 0.25 * base.beta);
  if (trace != nullptr) {
    trace->refine_ran = true;
    trace->base_beta = base.beta;
    trace->floor_beta = floor_beta;
  }
  core::EvaluatedPoint best = result.evaluation;
  auto at_floor = eval_at(floor_beta);
  if (at_floor.distortion_percent <= d_max_percent) {
    best = at_floor;
    if (trace != nullptr) trace->floor_feasible = true;
  } else {
    bool replayed = false;
    if (seed != nullptr && seed->valid && seed->refine_ran &&
        !seed->floor_feasible && seed->base_beta == base.beta &&
        seed->floor_beta == floor_beta) {
      // Replay: the same fp mid arithmetic the cold loop performs,
      // decisions taken from the seed instead of evaluations.
      double feasible = base.beta;
      double infeasible = floor_beta;
      bool any_feasible = false;
      for (int i = 0; i < kBetaRefineIters; ++i) {
        const double mid = (feasible + infeasible) / 2.0;
        if ((seed->beta_path >> i) & 1u) {
          feasible = mid;
          any_feasible = true;
        } else {
          infeasible = mid;
        }
      }
      // Verify the endpoints.  feasible == base.beta needs no probe (the
      // range search already measured it within budget); infeasible ==
      // floor_beta was just measured over budget.
      bool ok = true;
      std::optional<core::EvaluatedPoint> ev_f;
      if (any_feasible) {
        ev_f = eval_at(feasible);
        ok = ev_f->distortion_percent <= d_max_percent;
      }
      if (ok && infeasible != floor_beta) {
        ok = eval_at(infeasible).distortion_percent > d_max_percent;
      }
      if (ok) {
        if (any_feasible) best = *ev_f;
        if (trace != nullptr) trace->beta_path = seed->beta_path;
        replayed = true;
      }
    }
    if (!replayed) {
      double feasible = base.beta;
      double infeasible = floor_beta;
      std::uint16_t path = 0;
      for (int i = 0; i < kBetaRefineIters; ++i) {
        const double mid = (feasible + infeasible) / 2.0;
        const auto eval = eval_at(mid);
        if (eval.distortion_percent <= d_max_percent) {
          feasible = mid;
          best = eval;
          path |= static_cast<std::uint16_t>(1u << i);
        } else {
          infeasible = mid;
        }
      }
      if (trace != nullptr) trace->beta_path = path;
    }
  }
  if (best.saving_percent > result.evaluation.saving_percent) {
    result.point = best.point;
    result.evaluation = best;
    ctx.materialize_transformed(result);
  }
}

}  // namespace

core::HebsResult run_exact_traced(const FrameContext& ctx,
                                  double d_max_percent,
                                  const SearchTrace* seed,
                                  SearchTrace* trace) {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  const int hi = hebs::image::kMaxPixel - ctx.options().g_min;
  const int lo = std::min(ctx.options().min_range, hi);
  if (trace != nullptr) *trace = SearchTrace{};

  // Distortion decreases (weakly) as the admissible range grows, so the
  // smallest feasible range can be found by bisection on integers.  Each
  // probe is memoized in the context (curves and scalars only — no
  // per-probe raster), so revisited ranges cost nothing.
  auto distortion_at = [&](int range) {
    return ctx.distortion_at_range(range);
  };

  core::HebsResult result;
  int chosen = 0;
  bool found = false;

  // Warm path: a bounded local walk from the seeded range instead of a
  // full bisection.  Under monotone feasibility in range, the walk
  // terminates exactly when it establishes the verified bracket
  // p(r) ∧ (r = lo ∨ ¬p(r−1)) — the minimal feasible range, which is
  // where the cold bisection lands.  The walk is capped: past
  // kWarmRangeWalk probes the bisection is competitive, and a failed
  // walk costs little extra — every probe is memoized and the cold
  // search below reuses it.
  constexpr int kWarmRangeWalk = 5;
  if (seed != nullptr && seed->valid) {
    if (seed->hi_infeasible) {
      if (distortion_at(hi) > d_max_percent) {
        if (trace != nullptr) {
          trace->valid = true;
          trace->hi_infeasible = true;
          trace->range = hi;
          trace->warmed = true;
        }
        // Cold's early exit: the least-distorted point, no refinement.
        return ctx.at_range(hi);
      }
    } else {
      int r = std::clamp(seed->range, lo, hi);
      int budget = kWarmRangeWalk;
      if (distortion_at(r) <= d_max_percent) {
        // Feasible: walk down to the smallest feasible range.
        while (r > lo && budget > 0 &&
               distortion_at(r - 1) <= d_max_percent) {
          --r;
          --budget;
        }
        // Established when the loop stopped on the bracket condition,
        // not on an exhausted budget.
        found = r == lo || (budget > 0 &&
                            distortion_at(r - 1) > d_max_percent);
      } else {
        // Infeasible: walk up to the first feasible range.
        while (r < hi && budget > 0) {
          ++r;
          --budget;
          if (distortion_at(r) <= d_max_percent) {
            // ¬p(r−1) held when the walk passed it.
            found = true;
            break;
          }
        }
      }
      if (found) {
        chosen = r;
        result = ctx.at_range(chosen);
        if (trace != nullptr) trace->warmed = true;
      }
    }
  }

  if (!found) {
    if (distortion_at(hi) > d_max_percent) {
      // Even the widest range misses the budget (tiny budgets on busy
      // images): return the least-distorted point.
      if (trace != nullptr) {
        trace->valid = true;
        trace->hi_infeasible = true;
        trace->range = hi;
      }
      return ctx.at_range(hi);
    }
    if (distortion_at(lo) <= d_max_percent) {
      chosen = lo;
    } else {
      int infeasible = lo;  // distortion > budget here
      int feasible = hi;    // distortion <= budget here
      while (feasible - infeasible > 1) {
        const int mid = (feasible + infeasible) / 2;
        if (distortion_at(mid) <= d_max_percent) {
          feasible = mid;
        } else {
          infeasible = mid;
        }
      }
      chosen = feasible;
    }
    result = ctx.at_range(chosen);
  }

  if (ctx.options().concurrent_scaling) {
    refine_beta(ctx, d_max_percent, result, seed, trace);
  }
  if (trace != nullptr) {
    trace->valid = true;
    trace->range = chosen;
  }
  return result;
}

core::HebsResult run_exact(const FrameContext& ctx, double d_max_percent) {
  return run_exact_traced(ctx, d_max_percent, nullptr, nullptr);
}

}  // namespace hebs::pipeline
