// Temporal-coherence fast path for the stream executor.
//
// Video frames are rarely independent: most are byte-identical to or
// small deltas of their predecessor, and the HEBS operating point moves
// slowly outside scene cuts.  A `TemporalReuse` tracks one stream
// slot's previous frame and exploits three levels of coherence:
//
//   1. unchanged frame (0 differing pixels): the previous raw result is
//      returned wholesale and the FrameContext keeps every cache
//      (`rebind_unchanged`) — run_exact is a deterministic function of
//      (pixels, options, power model), so recomputing it would
//      reproduce the same bits.  Unconditionally exact;
//   2. small delta: the exact histogram is refreshed incrementally
//      (`Histogram::refresh_from_delta`, integer counts ⇒ exact) and the
//      range/β searches are warm-started from the previous trace with
//      bracket verification (`run_exact_traced`), falling back to the
//      cold search whenever verification misses.  Bit-identical to the
//      cold search whenever measured distortion is monotone over the
//      search interval — see the contract note on run_exact_traced;
//   3. large delta (scene cut): verification fails fast and the cold
//      search runs — the fast path degrades to a few wasted probes,
//      which the context memoizes for the cold search anyway, and a
//      seed cooldown stops even those on content that keeps missing.
//
// The invariants this rests on are documented in DESIGN.md §9.
#pragma once

#include <cstddef>

#include "core/hebs.h"
#include "histogram/histogram.h"
#include "image/image.h"
#include "pipeline/frame_context.h"
#include "pipeline/stages.h"

namespace hebs::pipeline {

/// Tunables of the temporal fast path.
struct TemporalOptions {
  /// Master switch; disabled, process() degrades to rebind + run_exact.
  bool enabled = true;
  /// Largest fraction of differing pixels the incremental histogram
  /// update may touch before bailing to the full SIMD recount.
  double max_delta_fraction = 0.25;
};

/// Per-slot stream state: the previous frame this slot processed, its
/// histogram, raw result and search trace.  Not thread-safe; the engine
/// gives each stream slot its own instance, and a slot is touched by at
/// most one worker per round.
class TemporalReuse {
 public:
  explicit TemporalReuse(TemporalOptions opts = {}) : opts_(opts) {}

  /// Binds `ctx` to `frame` and runs the exact search through whichever
  /// coherence level applies.  The returned result equals
  /// `ctx.rebind(frame); run_exact(ctx, d_max_percent)` bit-for-bit
  /// under the monotone-distortion contract (see run_exact_traced and
  /// DESIGN.md §9); unchanged-frame reuse is unconditionally exact.
  /// The caller keeps `frame` alive while the binding lasts (as with
  /// rebind()).
  core::HebsResult process(FrameContext& ctx,
                           const hebs::image::GrayImage& frame,
                           double d_max_percent);

  /// Forgets the previous frame (e.g. between clips).
  void reset();

  /// Coherence counters for benches and tests.
  struct Stats {
    std::size_t frames = 0;       ///< frames processed
    std::size_t unchanged = 0;    ///< full-reuse hits (byte-identical)
    std::size_t incremental = 0;  ///< incremental histogram refreshes
    std::size_t warmed = 0;       ///< searches whose seed verified
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  TemporalOptions opts_;
  bool has_prev_ = false;
  int seed_cooldown_ = 0;
  hebs::image::GrayImage prev_frame_;
  hebs::histogram::Histogram prev_hist_;
  core::HebsResult prev_raw_;
  SearchTrace trace_;
  Stats stats_;
};

}  // namespace hebs::pipeline
