// The staged decomposition of the HEBS per-frame flow (Fig. 4).
//
//   HistogramStage   -> image statistics (warms the context's histogram)
//   RangeSelectStage -> effective target range [g_min_eff, g_max]
//   GheStage         -> exact equalizing transform Φ (strength-blended)
//   PlcStage         -> m-segment coarsening Λ
//   EvaluateStage    -> operating point (Λ, β) + measured distortion/power
//
// Stages communicate exclusively through the shared FrameContext (for
// memoized frame products) and the HebsResult under construction.  The
// free-function front ends in core/hebs.h and the PipelineEngine's batch
// and stream modes all drive these same stages, which is what guarantees
// their outputs are bit-identical.
#pragma once

#include <cstdint>

#include "core/hebs.h"
#include "pipeline/frame_context.h"

namespace hebs::core {
class DistortionCurve;
}

namespace hebs::pipeline {

/// One step of the per-frame pipeline.  Reads memoized products from the
/// context and fills its slice of the result.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const noexcept = 0;
  virtual void run(const FrameContext& ctx, core::HebsResult& result) const = 0;
};

/// Warms the context's histogram (exact or injected estimate).
class HistogramStage : public Stage {
 public:
  const char* name() const noexcept override { return "histogram"; }
  void run(const FrameContext& ctx, core::HebsResult& result) const override;
};

/// Picks the effective target [g_min_eff, g_max] for a requested dynamic
/// range: caps g_max at the brightest populated level and preserves the
/// native width when the target allows it (adaptive placement).
class RangeSelectStage : public Stage {
 public:
  explicit RangeSelectStage(int range) : range_(range) {}
  const char* name() const noexcept override { return "range-select"; }
  void run(const FrameContext& ctx, core::HebsResult& result) const override;

 private:
  int range_;
};

/// Solves GHE into the selected target and applies the
/// equalization-strength blend with the affine placement.
class GheStage : public Stage {
 public:
  const char* name() const noexcept override { return "ghe"; }
  void run(const FrameContext& ctx, core::HebsResult& result) const override;
};

/// Coarsens Φ to the ladder's segment budget.
class PlcStage : public Stage {
 public:
  const char* name() const noexcept override { return "plc"; }
  void run(const FrameContext& ctx, core::HebsResult& result) const override;
};

/// Derives β from the target, forms the operating point, and measures
/// distortion/power through the context's cached evaluator.
class EvaluateStage : public Stage {
 public:
  const char* name() const noexcept override { return "evaluate"; }
  void run(const FrameContext& ctx, core::HebsResult& result) const override;
};

/// The effective target RangeSelectStage would pick for `range` — cheap,
/// lets FrameContext::at_range collapse ranges that clamp to the same
/// target onto one memo entry.
core::GheTarget select_target(const FrameContext& ctx, int range);

/// The exact strength-blended transform Φ GheStage would produce for a
/// target (the stage is a thin wrapper over this).  Exposed so the
/// coarse search can form its Λ≈Φ proxy probes from the very curve the
/// exact pipeline deploys.
hebs::transform::PwlCurve phi_for_target(const FrameContext& ctx,
                                         const core::GheTarget& target);

/// Runs the five standard stages in order at a fixed range.  Unmemoized;
/// use FrameContext::at_range for the cached entry point.
core::HebsResult run_stages_at_range(const FrameContext& ctx, int range);

/// Same, but leaves evaluation.transformed unmaterialized — the form
/// FrameContext memoizes for search probes (a probe reads only curves
/// and scalars, so caching a frame-sized raster per probed target would
/// be pure memory waste).  FrameContext::materialize_transformed fills
/// the raster, byte-identically, on first full access.
core::HebsResult run_stages_at_range_lean(const FrameContext& ctx, int range);

/// Deployed flow: range from the distortion characteristic curve
/// (worst-case fit), then the staged pipeline.
core::HebsResult run_with_curve(const FrameContext& ctx, double d_max_percent,
                                const core::DistortionCurve& curve);

/// Oracle flow: bisects the range against the measured distortion, then
/// optionally refines β (concurrent scaling).  Each probe hits the
/// context's per-range memo, so no range is evaluated twice.
core::HebsResult run_exact(const FrameContext& ctx, double d_max_percent);

/// Where one frame's exact search landed — the seed the temporal fast
/// path hands to the next frame, and the record run_exact_traced leaves
/// behind.  Contains no frame data, only search coordinates.
struct SearchTrace {
  bool valid = false;
  /// Even the widest range missed the budget (the search early-exits at
  /// `hi` and skips β refinement).
  bool hi_infeasible = false;
  /// The range the search selected (at_range argument of the result).
  int range = 0;
  // --- β-refinement record (concurrent_scaling only) ---
  bool refine_ran = false;
  /// The floor probe satisfied the budget (refinement ends there).
  bool floor_feasible = false;
  double base_beta = 0.0;
  double floor_beta = 0.0;
  /// Bit i = 1 iff bisection iteration i found its midpoint feasible.
  std::uint16_t beta_path = 0;
  /// Record-only: this trace's search verified its seed (statistics for
  /// the temporal layer; never read as a seed input).
  bool warmed = false;
};

/// run_exact with temporal warm starting.  `seed` (nullable) is the
/// previous frame's trace: the range search walks to a verified
/// bracket — p(r) ∧ ¬p(r−1), with p(r) = "distortion at r within
/// budget" — and the β refinement replays the seeded decision path and
/// verifies only the final bracket endpoints.  Any verification miss
/// falls back to the full cold search.
///
/// Identity contract (DESIGN.md §9): whenever measured distortion is
/// weakly monotone in range and in β over the search interval, the
/// verified bracket is unique, it is the minimal feasible point, and
/// the result is bit-identical to run_exact for EVERY seed.  Measured
/// distortion is monotone up to sub-0.1% quantization wiggles; a
/// budget landing inside such a wiggle admits several verified
/// brackets, and warm and cold may then return different ones — note
/// the cold bisection's own "minimal feasible" reading rests on the
/// same monotonicity, so in that regime both searches return "a"
/// verified bracket, each a feasible operating point honoring the
/// budget.  `trace_out` (nullable) receives this frame's trace for
/// seeding the next.
core::HebsResult run_exact_traced(const FrameContext& ctx,
                                  double d_max_percent,
                                  const SearchTrace* seed,
                                  SearchTrace* trace_out);

}  // namespace hebs::pipeline
