// Shared per-frame state for the staged HEBS pipeline.
//
// A FrameContext binds one input frame to one set of pipeline options
// and one power model, and memoizes every frame-derived intermediate the
// stages need: the image histogram, the reference luminance raster and
// its distortion-evaluator caches, the reference power draw, per-target
// GHE curves, and complete per-range pipeline results.  hebs_exact's
// bisection probes a dozen ranges on the same frame; with a context each
// probe pays only the truly range-dependent work (GHE/PLC on 256-entry
// curves plus the test-side half of the distortion metric) instead of
// recomputing the frame-side products from scratch.
//
// Every memoized value is the output of exactly the computation the
// serial unbatched path performs, so cached and uncached flows are
// bit-identical — the invariant the engine's batch/stream modes (and
// their tests) rely on.
//
// A context is not thread-safe; the engine gives each worker its own and
// rebind()s it between frames (per-worker context reuse).
#pragma once

#include <map>
#include <optional>
#include <utility>

#include "core/hebs.h"
#include "histogram/histogram.h"
#include "image/image.h"
#include "power/lcd_power.h"
#include "quality/distortion.h"
#include "transform/pwl.h"
#include "util/pool.h"

namespace hebs::pipeline {

class FrameContext {
 public:
  /// Unbound context; rebind() must be called before use.
  FrameContext(core::HebsOptions opts, hebs::power::LcdSubsystemPower model);

  FrameContext(const hebs::image::GrayImage& image, core::HebsOptions opts,
               hebs::power::LcdSubsystemPower model);

  /// Deep-pixel binding: the context runs the same stages on the
  /// frame's own level lattice (image.levels() bins).
  FrameContext(const hebs::image::GrayImage16& image, core::HebsOptions opts,
               hebs::power::LcdSubsystemPower model);

  // Not copyable: by_range_ holds pointers into by_target_'s nodes, so a
  // copy would alias (and later dangle into) the source's memo.  Moves
  // are fine — map nodes are stable across moves.
  FrameContext(const FrameContext&) = delete;
  FrameContext& operator=(const FrameContext&) = delete;
  FrameContext(FrameContext&&) = default;
  FrameContext& operator=(FrameContext&&) = default;

  /// Points the context at a new frame and clears every frame-derived
  /// cache.  The image is NOT copied; the caller keeps it alive for the
  /// lifetime of the binding.  When the calling thread has a BufferPool
  /// installed, the dropped caches recycle through it instead of hitting
  /// the heap — rebind() recycles, it does not free.
  void rebind(const hebs::image::GrayImage& image);

  /// Deep-pixel rebind (same contract; the context's level count
  /// becomes image.levels()).
  void rebind(const hebs::image::GrayImage16& image);

  /// Points the context at a new frame whose pixels are byte-identical
  /// to the currently bound one, KEEPING every frame-derived cache.
  /// Every memoized product is a deterministic function of the pixel
  /// content (plus options/model), so the caches remain exactly what a
  /// full rebind would recompute.  The temporal fast path uses this for
  /// duplicate frames; callers must have verified byte equality.
  void rebind_unchanged(const hebs::image::GrayImage& image);

  /// Seeds the exact-histogram cache after rebind().  `hist` must equal
  /// Histogram::from_image(image) — the temporal fast path maintains it
  /// incrementally from the previous frame's histogram (integer counts,
  /// so the incremental update is exact) and hands it over here to skip
  /// the full recount.
  void set_exact_histogram(hebs::histogram::Histogram hist);

  bool bound() const noexcept {
    return image_ != nullptr || image16_ != nullptr;
  }
  /// True when the bound frame is a deep-pixel (GrayImage16) raster.
  bool bound16() const noexcept { return image16_ != nullptr; }
  const hebs::image::GrayImage& image() const;
  const hebs::image::GrayImage16& image16() const;

  /// Level count of the bound frame (256 for 8-bit bindings) and its
  /// largest representable level — the depth parameter every stage
  /// reads instead of the baked-in kLevels/kMaxPixel.
  int levels() const noexcept { return levels_; }
  int max_pixel() const noexcept { return levels_ - 1; }

  const core::HebsOptions& options() const noexcept { return opts_; }
  const hebs::power::LcdSubsystemPower& power_model() const noexcept {
    return model_;
  }

  /// Histogram the statistics-driven stages (range selection, GHE) use.
  /// By default the exact image histogram; a streaming estimate may be
  /// injected with set_histogram_estimate.
  const hebs::histogram::Histogram& histogram() const;

  /// Exact image histogram, regardless of any injected estimate.  Power
  /// accounting and distortion evaluation always use this.
  const hebs::histogram::Histogram& exact_histogram() const;

  /// Injects an estimated histogram (e.g. from a StreamingHistogram) to
  /// drive the statistics stages instead of the exact one.
  void set_histogram_estimate(hebs::histogram::Histogram estimate);
  bool has_histogram_estimate() const noexcept {
    return estimate_.has_value();
  }

  /// Reference luminance raster of the unmodified frame (X/255).
  const hebs::image::FloatImage& reference_luminance() const;

  /// Distortion evaluator with the reference-side metric caches built.
  const hebs::quality::DistortionEvaluator& evaluator() const;

  /// Power draw of the unmodified frame at full backlight.
  const hebs::power::PowerBreakdown& reference_power() const;

  /// Exact GHE transformation for a target range (memoized per target).
  const hebs::transform::PwlCurve& ghe(const core::GheTarget& target) const;

  /// Full five-stage pipeline result at a fixed dynamic range, memoized
  /// per range (and per effective target, so ranges that clamp to the
  /// same target share one computation).
  const core::HebsResult& at_range(int range) const;

  /// The memoized result without materializing its transformed raster —
  /// for callers that only read curves/scalars (e.g. the video
  /// controller re-deriving Λ for an applied β).
  const core::HebsResult& at_range_lean(int range) const;

  /// Measured distortion at a range — what a search probe needs.  Uses
  /// the same memo as at_range but never materializes the probe's 8-bit
  /// transformed raster, so bisecting over many ranges stores only
  /// curves and scalars per target, not a frame-sized image each.
  double distortion_at_range(int range) const;

  /// Measures an operating point on this frame, reusing the cached
  /// reference-side work.  Bit-identical to
  /// core::evaluate_operating_point on the same inputs.
  core::EvaluatedPoint evaluate(const core::OperatingPoint& point) const;

  /// Like evaluate(), but leaves evaluation.transformed empty — the
  /// memoized stage pipeline uses this for probes and materializes the
  /// raster lazily (materialize_transformed) on first full access.
  core::EvaluatedPoint evaluate_lean(const core::OperatingPoint& point) const;

  /// Fills result.evaluation.transformed (ψ(F) quantized to 8 bits) if
  /// it is still empty.  Deterministic from result.point, so a lazily
  /// materialized raster is byte-identical to an eagerly computed one.
  void materialize_transformed(core::HebsResult& result) const;

  /// Same for a bare evaluation (filled from evaluation.point).
  void materialize_transformed(core::EvaluatedPoint& evaluation) const;

  // --- Coarse (proxy) probes -------------------------------------------
  //
  // Guidance values for the coarse-to-fine search (DESIGN.md §11): both
  // measure distortion on a decimated proxy of the frame, so they are
  // cheap but approximate.  They steer WHERE the exact search probes and
  // never feed a result — bit-identity of the search output does not
  // depend on them.  nullopt when the frame is too small for a usable
  // proxy (the search then skips straight to its exact fallback).

  /// Approximate distortion of a per-level map of the frame.
  std::optional<double> approx_distortion_mapped(
      const hebs::transform::FloatLut& levels) const;

  /// Approximate pipeline distortion at a dynamic range: exact target
  /// and Φ (shared memos), Λ≈Φ (PLC skipped), β from the target, then
  /// the proxy measurement.  Memoized per effective target.
  std::optional<double> approx_distortion_at_range(int range) const;

 private:
  /// Shared body of evaluate/evaluate_lean: measures the point given
  /// its already-sampled per-level displayed luminance.
  core::EvaluatedPoint evaluate_levels(
      const core::OperatingPoint& point,
      const hebs::transform::FloatLut& lum) const;

  /// Decimated proxy of the bound frame plus its own distortion
  /// evaluator (reference caches on the proxy), built lazily on the
  /// first coarse probe.
  struct ApproxState {
    bool usable = false;
    hebs::image::GrayImage proxy;
    hebs::image::GrayImage16 proxy16;  ///< used for deep-pixel bindings
    std::optional<hebs::quality::DistortionEvaluator> evaluator;
  };
  const ApproxState& approx() const;

  /// Clears every frame-derived cache (shared by both rebind depths).
  void clear_caches();

  const hebs::image::GrayImage* image_ = nullptr;
  const hebs::image::GrayImage16* image16_ = nullptr;
  int levels_ = hebs::image::kLevels;
  core::HebsOptions opts_;
  hebs::power::LcdSubsystemPower model_;

  std::optional<hebs::histogram::Histogram> estimate_;
  mutable std::optional<hebs::histogram::Histogram> exact_hist_;
  mutable std::optional<hebs::quality::DistortionEvaluator> evaluator_;
  mutable std::optional<hebs::power::PowerBreakdown> reference_power_;
  // Pool-backed maps: rebind()'s clear() returns the nodes to the
  // worker's BufferPool and the next frame's probes reacquire them.
  mutable hebs::util::PoolMap<std::pair<int, int>, hebs::transform::PwlCurve>
      ghe_;
  mutable hebs::util::PoolMap<std::pair<int, int>, core::HebsResult>
      by_target_;
  mutable hebs::util::PoolMap<int, core::HebsResult*> by_range_;
  mutable std::optional<ApproxState> approx_;
  mutable hebs::util::PoolMap<std::pair<int, int>, double> approx_by_target_;
};

}  // namespace hebs::pipeline
