// Thread-pool executor for the pipeline engine.
//
// A fixed pool of persistent worker threads with a fork-join
// parallel_for.  Indices are handed out dynamically (work stealing via a
// shared atomic cursor) so imbalanced per-frame costs — hebs_exact's
// bisection depth varies with image content — do not serialize the
// batch.  Each executing thread has a stable worker id, which the engine
// uses to maintain per-worker FrameContext scratch state.  Output
// determinism is the caller's job: write results by index, never by
// completion order.
//
// Locking discipline (machine-checked under Clang, DESIGN.md §12): the
// pool has exactly one mutex, mu_, guarding the fork-join handshake
// state (the published task, the join counter, the wake generation, the
// stop flag and the first captured exception).  The two atomics — the
// work-claiming cursor and the failure flag — are intentionally outside
// the lock: workers touch them on every claimed index, and pulling them
// under mu_ would serialize the claim path.  They carry no ordering
// duties (the mutex handshake publishes the task; results are written
// by index), so relaxed loads/stores suffice.
#pragma once

#include <cstddef>
#include <functional>

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hebs::pipeline {

class ThreadPool {
 public:
  /// `threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return thread_count_; }

  /// Workers that actually claim indices in a parallel_for: the pool
  /// size capped at the hardware concurrency.  Workers beyond the cap
  /// wake, decrement the join counter and go back to sleep — running
  /// more claimants than cores only adds context switching and cache
  /// thrashing per index (the measured engine-8t per-frame regression
  /// on small machines).  Worker ids stay stable; which indices a
  /// worker claims never affects results (written by index).
  int effective_concurrency() const noexcept;

  /// Runs fn(index, worker) for every index in [0, n); blocks until the
  /// call completes.  `worker` is in [0, thread_count()).  With one
  /// thread everything runs inline on the calling thread.  If fn
  /// throws, remaining unclaimed indices are skipped (in-flight ones
  /// finish) and the first exception is rethrown to the caller.
  /// Safe to call from multiple threads: concurrent calls serialize on
  /// the pool (one fan-out at a time, FIFO by lock acquisition).  Not
  /// reentrant — fn must not call parallel_for on the same pool (the
  /// claiming worker would deadlock waiting for its own batch); doing
  /// so throws hebs::util::InvalidArgument instead.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, int)>& fn)
      HEBS_EXCLUDES(mu_);

 private:
  void worker_loop(int worker) HEBS_EXCLUDES(mu_);

  int thread_count_;
  std::vector<std::thread> threads_;

  util::Mutex mu_;
  util::CondVar cv_work_;
  util::CondVar cv_done_;
  /// The task being fanned out, published to workers under mu_ by
  /// parallel_for and cleared before it returns.
  const std::function<void(std::size_t, int)>* task_ HEBS_GUARDED_BY(mu_) =
      nullptr;
  std::size_t task_n_ HEBS_GUARDED_BY(mu_) = 0;
  int task_limit_ HEBS_GUARDED_BY(mu_) = 0;
  /// Claim cursor and failure latch: lock-free by design (see header
  /// comment); both are reset under mu_ before each fan-out.
  std::atomic<std::size_t> cursor_{0};
  std::atomic<bool> failed_{false};
  int active_ HEBS_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ HEBS_GUARDED_BY(mu_) = 0;
  bool stop_ HEBS_GUARDED_BY(mu_) = false;
  /// True from task publication until the owning parallel_for call has
  /// torn the task down again; concurrent external callers queue on it.
  bool busy_ HEBS_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ HEBS_GUARDED_BY(mu_);
};

}  // namespace hebs::pipeline
