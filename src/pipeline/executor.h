// Thread-pool executor for the pipeline engine.
//
// A fixed pool of persistent worker threads with a fork-join
// parallel_for.  Indices are handed out dynamically (work stealing via a
// shared atomic cursor) so imbalanced per-frame costs — hebs_exact's
// bisection depth varies with image content — do not serialize the
// batch.  Each executing thread has a stable worker id, which the engine
// uses to maintain per-worker FrameContext scratch state.  Output
// determinism is the caller's job: write results by index, never by
// completion order.
#pragma once

#include <cstddef>
#include <functional>

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hebs::pipeline {

class ThreadPool {
 public:
  /// `threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return thread_count_; }

  /// Workers that actually claim indices in a parallel_for: the pool
  /// size capped at the hardware concurrency.  Workers beyond the cap
  /// wake, decrement the join counter and go back to sleep — running
  /// more claimants than cores only adds context switching and cache
  /// thrashing per index (the measured engine-8t per-frame regression
  /// on small machines).  Worker ids stay stable; which indices a
  /// worker claims never affects results (written by index).
  int effective_concurrency() const noexcept;

  /// Runs fn(index, worker) for every index in [0, n); blocks until the
  /// call completes.  `worker` is in [0, thread_count()).  With one
  /// thread everything runs inline on the calling thread.  If fn
  /// throws, remaining unclaimed indices are skipped (in-flight ones
  /// finish) and the first exception is rethrown to the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, int)>& fn);

 private:
  void worker_loop(int worker);

  int thread_count_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, int)>* task_ = nullptr;
  std::size_t task_n_ = 0;
  int task_limit_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<bool> failed_{false};
  int active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace hebs::pipeline
