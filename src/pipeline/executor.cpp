#include "pipeline/executor.h"

#include <algorithm>

#include "obs/counters.h"
#include "util/error.h"

namespace hebs::pipeline {

namespace {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

/// The pool whose task is executing on this thread, if any.  Lets
/// parallel_for distinguish true reentrancy (fn calling back into the
/// same pool — a guaranteed deadlock, rejected with an exception) from
/// an independent caller thread (legal; serializes on busy_).
thread_local const ThreadPool* t_running_pool = nullptr;

struct RunningPoolScope {
  explicit RunningPoolScope(const ThreadPool* pool) noexcept
      : prev_(t_running_pool) {
    t_running_pool = pool;
  }
  ~RunningPoolScope() { t_running_pool = prev_; }
  RunningPoolScope(const RunningPoolScope&) = delete;
  RunningPoolScope& operator=(const RunningPoolScope&) = delete;

 private:
  const ThreadPool* prev_;
};

}  // namespace

int ThreadPool::effective_concurrency() const noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  // 0 = unknown hardware: trust the requested pool size.
  if (hw == 0) return thread_count_;
  return std::min(thread_count_, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads)
    : thread_count_(resolve_thread_count(threads)) {
  // With a single thread parallel_for runs inline; no workers needed.
  if (thread_count_ == 1) return;
  threads_.reserve(static_cast<std::size_t>(thread_count_));
  try {
    for (int w = 0; w < thread_count_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // A spawn failed (thread limit): shut down the workers that did
    // start so their joinable std::threads don't terminate the process,
    // then surface the error to the caller.
    {
      util::MutexLock lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, int)>* task = nullptr;
    std::size_t n = 0;
    int limit = 0;
    {
      util::MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) cv_work_.wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
      n = task_n_;
      limit = task_limit_;
    }
    std::exception_ptr error;
    RunningPoolScope running(this);
    // Workers beyond the effective-concurrency cap sit this call out
    // without touching the cursor (a fetch_add here would consume an
    // index nobody processes); they still join the barrier below.
    while (worker < limit) {
      // Once any worker failed the call will rethrow, so stop claiming
      // indices instead of burning through the rest of the batch.
      if (failed_.load(std::memory_order_relaxed)) break;
      const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*task)(i, worker);
      } catch (...) {
        if (!error) error = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    {
      util::MutexLock lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, int)>& fn) {
  if (n == 0) return;
  HEBS_REQUIRE(t_running_pool != this,
               "parallel_for is not reentrant: the body must not call "
               "back into the pool that is running it");
  obs::add(obs::Counter::kParallelForCalls);
  obs::add(obs::Counter::kParallelForItems, n);
  if (threads_.empty()) {
    RunningPoolScope running(this);
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::exception_ptr error;
  {
    util::MutexLock lock(mu_);
    // Concurrent external callers are legal and serialize here, FIFO
    // by wakeup: busy_ covers publication through teardown, so a
    // waiting caller can never observe (or clobber) another call's
    // task state.  A fan-out that finds the pool busy is the queue
    // depth the observability layer reports.
    if (busy_) obs::add(obs::Counter::kParallelForQueued);
    while (busy_) cv_done_.wait(mu_);
    busy_ = true;
    task_ = &fn;
    task_n_ = n;
    task_limit_ = effective_concurrency();
    cursor_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    active_ = static_cast<int>(threads_.size());
    first_error_ = nullptr;
    ++generation_;
    cv_work_.notify_all();
    while (active_ != 0) cv_done_.wait(mu_);
    task_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
    busy_ = false;
    // Wake the next queued caller (cv_done_ doubles as the busy_
    // handoff; predicates disambiguate).
    cv_done_.notify_all();
  }
  // Rethrow outside the lock: a throwing unwind must not hold mu_.
  if (error) std::rethrow_exception(error);
}

}  // namespace hebs::pipeline
