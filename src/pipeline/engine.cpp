#include "pipeline/engine.h"

#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/distortion_curve.h"
#include "obs/trace.h"
#include "pipeline/stages.h"
#include "pipeline/temporal.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/pool.h"

namespace hebs::pipeline {

PipelineEngine::PipelineEngine(EngineOptions opts,
                               hebs::power::LcdSubsystemPower power_model)
    : opts_(std::move(opts)),
      model_(std::move(power_model)),
      pool_(opts_.num_threads) {}

namespace {

std::unique_ptr<util::BufferPool> make_pool(const EngineOptions& opts) {
  if (!opts.use_buffer_pool) return nullptr;  // null scope = plain heap
  return std::make_unique<util::BufferPool>(
      util::PoolOptions{opts.pool_max_retained_bytes});
}

/// RowExecutor backed by the engine's ThreadPool: fans one frame's
/// independent row ranges across the pool's workers.  Installed only
/// around work running inline on the calling thread while the pool is
/// idle (parallel_for is not reentrant).  The runner closure is built
/// once — a std::function per run() would put an allocation into the
/// steady state the alloc bench gates.
class PoolRowExecutor final : public util::RowExecutor {
 public:
  explicit PoolRowExecutor(ThreadPool& pool)
      : pool_(pool),
        effective_(pool.effective_concurrency()),
        runner_([this](std::size_t chunk, int) {
          const int begin = static_cast<int>(chunk) * step_;
          (*body_)(begin, std::min(n_, begin + step_));
        }) {}

  void run(int n, util::RowBody body) override {
    // Fan out only when splitting can help: more than one worker that
    // can actually run concurrently, and enough rows per chunk to
    // amortize the pool wake.
    constexpr int kMinChunkRows = 8;
    if (effective_ < 2 || n < 2 * kMinChunkRows) {
      body(0, n);
      return;
    }
    const int chunks = std::min(effective_, n / kMinChunkRows);
    n_ = n;
    step_ = (n + chunks - 1) / chunks;
    body_ = &body;
    pool_.parallel_for(static_cast<std::size_t>(chunks), runner_);
    body_ = nullptr;
  }

 private:
  ThreadPool& pool_;
  const int effective_;
  int n_ = 0;
  int step_ = 0;
  const util::RowBody* body_ = nullptr;
  const std::function<void(std::size_t, int)> runner_;
};

/// Runs `per_frame` for every image on the pool, each worker reusing one
/// rebound FrameContext drawing from its own recycling buffer pool.
/// Results land at their frame's index, so output order never depends
/// on scheduling.
template <typename Result, typename PerFrame>
std::vector<Result> map_frames(ThreadPool& pool, const EngineOptions& opts,
                               std::span<const hebs::image::GrayImage> images,
                               const hebs::power::LcdSubsystemPower& model,
                               PerFrame&& per_frame) {
  std::vector<Result> results(images.size());
  if (images.size() == 1) {
    // Single frame: frame-level fan-out cannot help, so run inline on
    // the calling thread (no pool wake) and repurpose the idle workers
    // for intra-frame row parallelism instead — this is what lets extra
    // threads cut single-frame latency rather than add dispatch cost.
    auto buffer_pool = make_pool(opts);
    util::PoolScope scope(buffer_pool.get());
    std::optional<PoolRowExecutor> rows;
    std::optional<util::ParallelScope> rows_scope;
    if (pool.effective_concurrency() > 1) {
      rows.emplace(pool);
      rows_scope.emplace(&*rows);
    }
    FrameContext ctx(opts.hebs, model);
    obs::ScopedSpan frame_span(obs::Span::kFrame, 0);
    ctx.rebind(images[0]);
    results[0] = per_frame(ctx, std::size_t{0});
    return results;
  }
  const auto workers = static_cast<std::size_t>(pool.thread_count());
  std::vector<std::unique_ptr<FrameContext>> contexts(workers);
  std::vector<std::unique_ptr<util::BufferPool>> pools(workers);
  pool.parallel_for(images.size(), [&](std::size_t i, int worker) {
    const auto w = static_cast<std::size_t>(worker);
    if (!pools[w]) pools[w] = make_pool(opts);
    util::PoolScope scope(pools[w].get());
    obs::ScopedSpan frame_span(obs::Span::kFrame,
                               static_cast<std::int32_t>(i));
    auto& ctx = contexts[w];
    if (!ctx) ctx = std::make_unique<FrameContext>(opts.hebs, model);
    ctx->rebind(images[i]);
    results[i] = per_frame(*ctx, i);
  });
  // Contexts must release their pooled caches before the pools detach
  // (detached blocks go back to the heap instead of recycling — only a
  // lifetime nicety here, but it keeps pool accounting exact).
  contexts.clear();
  return results;
}

}  // namespace

std::vector<core::HebsResult> PipelineEngine::process_batch(
    std::span<const hebs::image::GrayImage> images, double d_max_percent) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [d_max_percent](FrameContext& ctx, std::size_t) {
        return run_exact(ctx, d_max_percent);
      });
}

std::vector<core::HebsResult> PipelineEngine::process_batch_at_range(
    std::span<const hebs::image::GrayImage> images, int range) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [range](FrameContext& ctx, std::size_t) {
        return ctx.at_range(range);
      });
}

std::vector<core::HebsResult> PipelineEngine::process_batch_with_curve(
    std::span<const hebs::image::GrayImage> images, double d_max_percent,
    const core::DistortionCurve& curve) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [d_max_percent, &curve](FrameContext& ctx, std::size_t) {
        return run_with_curve(ctx, d_max_percent, curve);
      });
}

std::vector<core::FrameDecision> PipelineEngine::process_stream(
    std::span<const hebs::image::GrayImage> frames,
    core::VideoBacklightController& controller) {
  const core::VideoOptions& vopts = controller.options();

  // Optional sampling front end: estimate per-frame histograms with the
  // decimating estimator.  Ingestion is ordered (the estimator is
  // stateful), so snapshots are taken serially up front.
  std::vector<hebs::histogram::Histogram> estimates;
  if (opts_.use_streaming_histogram) {
    hebs::histogram::StreamingHistogram estimator(opts_.streaming);
    estimates.reserve(frames.size());
    for (const auto& frame : frames) {
      estimator.ingest(frame);
      estimates.push_back(estimator.estimate());
    }
  }

  // The clip is processed in rounds of `slots` frames: the per-frame
  // searches run on the pool, then the ordered post-stage consumes the
  // round strictly in frame order, so peak memory stays at `slots`
  // cached contexts and the controller's state advances exactly as
  // serial processing would.  Each slot owns a persistent FrameContext,
  // a recycling BufferPool, and — temporal mode — the coherence state
  // of its fixed-stride frame chain (slot k sees frames k, k + slots,
  // k + 2·slots, …; with one worker the chain is the clip itself).
  // Round boundaries cannot change any value: per-frame raw searches
  // are independent (temporal reuse is verified, see temporal.h), and
  // flicker control consumes them in frame order either way.
  const bool temporal =
      opts_.temporal_reuse && !opts_.use_streaming_histogram;
  const auto threads = static_cast<std::size_t>(pool_.thread_count());
  const std::size_t slots = std::max<std::size_t>(
      1, std::min(frames.size(), threads == 1 ? 1 : 2 * threads));

  struct Slot {
    std::unique_ptr<util::BufferPool> pool;
    std::unique_ptr<FrameContext> ctx;
    TemporalReuse reuse;
    core::HebsResult raw;
    Slot(const EngineOptions& opts, bool temporal_on)
        : pool(make_pool(opts)), reuse(slot_reuse_options(temporal_on)) {}

    static TemporalOptions slot_reuse_options(bool temporal_on) {
      TemporalOptions t;  // delta threshold keeps its one default
      t.enabled = temporal_on;
      return t;
    }
  };
  std::vector<Slot> slot_states;
  slot_states.reserve(slots);
  for (std::size_t k = 0; k < slots; ++k) {
    slot_states.emplace_back(opts_, temporal);
  }

  std::vector<core::FrameDecision> decisions;
  decisions.reserve(frames.size());

  // One callable for the whole clip (constructing a std::function per
  // round would put an allocation back into the steady state).
  std::size_t begin = 0;
  const std::function<void(std::size_t, int)> search_round =
      [&](std::size_t k, int) {
        const std::size_t i = begin + k;
        Slot& s = slot_states[k];
        util::PoolScope scope(s.pool.get());
        obs::ScopedSpan frame_span(obs::Span::kFrame,
                                   static_cast<std::int32_t>(i));
        if (!s.ctx) {
          s.ctx = std::make_unique<FrameContext>(vopts.hebs,
                                                 controller.power_model());
        }
        if (!estimates.empty()) {
          s.ctx->rebind(frames[i]);
          s.ctx->set_histogram_estimate(estimates[i]);
          s.raw = run_exact(*s.ctx, vopts.d_max_percent);
        } else {
          // TemporalReuse handles both modes: disabled, it degrades to
          // rebind + run_exact (the cold path).
          s.raw = s.reuse.process(*s.ctx, frames[i], vopts.d_max_percent);
        }
      };

  // The ordered post-stage's scratch (applied-β re-derivations) has its
  // own pool: it runs on the calling thread across all slots.
  auto post_pool = make_pool(opts_);
  for (begin = 0; begin < frames.size(); begin += slots) {
    const std::size_t count = std::min(slots, frames.size() - begin);

    // Parallel stage: the per-frame exact HEBS search.  Contexts stay
    // alive into the post-stage, which reuses their caches for the
    // applied-β re-derivation.
    pool_.parallel_for(count, search_round);

    // Ordered post-stage: flicker control advances the controller's
    // state exactly as serial per-frame processing would.
    util::PoolScope scope(post_pool.get());
    for (std::size_t k = 0; k < count; ++k) {
      obs::ScopedSpan post_span(obs::Span::kFlickerPost,
                                static_cast<std::int32_t>(begin + k));
      decisions.push_back(controller.apply_flicker_control(
          *slot_states[k].ctx, slot_states[k].raw));
    }
  }
  // Release pooled caches before their pools detach (see map_frames).
  slot_states.clear();
  return decisions;
}

std::vector<core::FrameDecision> PipelineEngine::process_stream(
    std::span<const hebs::image::GrayImage> frames,
    const core::VideoOptions& opts) {
  core::VideoBacklightController controller(opts, model_);
  return process_stream(frames, controller);
}

namespace {

/// The post-decision color stage (core::render_color) shaped into the
/// engine's per-frame output type.
ColorFrameOutput run_color_stage(const hebs::image::RgbImage& rgb,
                                 const hebs::image::GrayImage& luma,
                                 const core::OperatingPoint& point,
                                 core::ColorMode mode) {
  obs::ScopedSpan span(obs::Span::kColorRender);
  core::ColorRendering rendering = core::render_color(rgb, luma, point, mode);
  return {std::move(rendering.displayed), rendering.hue_error};
}

std::vector<hebs::image::GrayImage> materialize_lumas(
    std::span<const hebs::image::RgbImage> images) {
  std::vector<hebs::image::GrayImage> lumas;
  lumas.reserve(images.size());
  for (const auto& img : images) lumas.push_back(img.to_luma());
  return lumas;
}

bool same_point(const core::OperatingPoint& a, const core::OperatingPoint& b) {
  return a.beta == b.beta &&
         a.luminance_transform.points() == b.luminance_transform.points();
}

bool same_bytes(const hebs::image::RgbImage& a,
                const hebs::image::RgbImage& b) {
  const auto da = a.data();
  const auto db = b.data();
  return da.size() == db.size() &&
         std::memcmp(da.data(), db.data(), da.size()) == 0;
}

}  // namespace

std::vector<ColorBatchResult> PipelineEngine::process_batch_color(
    std::span<const hebs::image::RgbImage> images, double d_max_percent,
    core::ColorMode mode) {
  // Luma extraction is ordered-independent but cheap (one dispatched
  // kernel sweep per frame); done up front so the lumas outlive every
  // context binding.
  const auto lumas = materialize_lumas(images);
  return map_frames<ColorBatchResult>(
      pool_, opts_, lumas, model_,
      [&images, &lumas, d_max_percent, mode](FrameContext& ctx,
                                             std::size_t i) {
        ColorBatchResult r;
        r.luma = run_exact(ctx, d_max_percent);
        r.color = run_color_stage(images[i], lumas[i], r.luma.point, mode);
        return r;
      });
}

std::vector<ColorStreamResult> PipelineEngine::process_stream_color(
    std::span<const hebs::image::RgbImage> frames,
    const core::VideoOptions& opts, core::ColorMode mode) {
  const auto lumas = materialize_lumas(frames);
  auto decisions = process_stream(lumas, opts);

  // Ordered color post-stage.  Rendering is a deterministic function of
  // (frame bytes, applied point, mode), so when both match the previous
  // frame the previous rendering is reused wholesale — the color
  // counterpart of the luma side's unchanged-frame fast path, and the
  // reason a static RGB clip pays one memcpy instead of the per-pixel
  // transform + chroma measurement per frame.
  // No pool scope here: the stage's only allocations are the output
  // rasters, which all escape into `out` — nothing would ever recycle.
  std::vector<ColorStreamResult> out;
  out.reserve(decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    ColorStreamResult r;
    r.decision = std::move(decisions[i]);
    const bool reuse = opts.temporal_reuse && i > 0 &&
                       same_point(r.decision.point, out.back().decision.point) &&
                       same_bytes(frames[i], frames[i - 1]);
    if (reuse) {
      r.color.displayed = out.back().color.displayed;
      r.color.hue_error = out.back().color.hue_error;
    } else {
      r.color = run_color_stage(frames[i], lumas[i], r.decision.point, mode);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace hebs::pipeline
