#include "pipeline/engine.h"

#include <memory>

#include "core/distortion_curve.h"
#include "pipeline/stages.h"
#include "util/error.h"

namespace hebs::pipeline {

PipelineEngine::PipelineEngine(EngineOptions opts,
                               hebs::power::LcdSubsystemPower power_model)
    : opts_(std::move(opts)),
      model_(std::move(power_model)),
      pool_(opts_.num_threads) {}

namespace {

/// Runs `per_frame` for every image on the pool, each worker reusing one
/// rebound FrameContext.  Results land at their frame's index, so output
/// order never depends on scheduling.
template <typename Result, typename PerFrame>
std::vector<Result> map_frames(ThreadPool& pool,
                               std::span<const hebs::image::GrayImage> images,
                               const core::HebsOptions& hebs_opts,
                               const hebs::power::LcdSubsystemPower& model,
                               PerFrame&& per_frame) {
  std::vector<Result> results(images.size());
  std::vector<std::unique_ptr<FrameContext>> contexts(
      static_cast<std::size_t>(pool.thread_count()));
  pool.parallel_for(images.size(), [&](std::size_t i, int worker) {
    auto& ctx = contexts[static_cast<std::size_t>(worker)];
    if (!ctx) ctx = std::make_unique<FrameContext>(hebs_opts, model);
    ctx->rebind(images[i]);
    results[i] = per_frame(*ctx, i);
  });
  return results;
}

}  // namespace

std::vector<core::HebsResult> PipelineEngine::process_batch(
    std::span<const hebs::image::GrayImage> images, double d_max_percent) {
  return map_frames<core::HebsResult>(
      pool_, images, opts_.hebs, model_,
      [d_max_percent](FrameContext& ctx, std::size_t) {
        return run_exact(ctx, d_max_percent);
      });
}

std::vector<core::HebsResult> PipelineEngine::process_batch_at_range(
    std::span<const hebs::image::GrayImage> images, int range) {
  return map_frames<core::HebsResult>(
      pool_, images, opts_.hebs, model_,
      [range](FrameContext& ctx, std::size_t) {
        return ctx.at_range(range);
      });
}

std::vector<core::HebsResult> PipelineEngine::process_batch_with_curve(
    std::span<const hebs::image::GrayImage> images, double d_max_percent,
    const core::DistortionCurve& curve) {
  return map_frames<core::HebsResult>(
      pool_, images, opts_.hebs, model_,
      [d_max_percent, &curve](FrameContext& ctx, std::size_t) {
        return run_with_curve(ctx, d_max_percent, curve);
      });
}

std::vector<core::FrameDecision> PipelineEngine::process_stream(
    std::span<const hebs::image::GrayImage> frames,
    core::VideoBacklightController& controller) {
  const core::VideoOptions& vopts = controller.options();

  // Optional sampling front end: estimate per-frame histograms with the
  // decimating estimator.  Ingestion is ordered (the estimator is
  // stateful), so snapshots are taken serially up front.
  std::vector<hebs::histogram::Histogram> estimates;
  if (opts_.use_streaming_histogram) {
    hebs::histogram::StreamingHistogram estimator(opts_.streaming);
    estimates.reserve(frames.size());
    for (const auto& frame : frames) {
      estimator.ingest(frame);
      estimates.push_back(estimator.estimate());
    }
  }

  // The clip is processed in bounded windows so peak memory stays flat:
  // a frame's context (reference rasters, metric caches, memoized
  // per-range results) lives only from its parallel search until the
  // ordered post-stage consumes it.  Window boundaries cannot change any
  // value — per-frame raw searches are independent, and flicker control
  // consumes them strictly in frame order either way.
  const std::size_t window =
      std::max<std::size_t>(4 * static_cast<std::size_t>(pool_.thread_count()), 16);
  std::vector<core::FrameDecision> decisions;
  decisions.reserve(frames.size());
  std::vector<std::unique_ptr<FrameContext>> contexts(
      std::min(window, frames.size()));
  std::vector<core::HebsResult> raws(contexts.size());
  for (std::size_t begin = 0; begin < frames.size(); begin += window) {
    const std::size_t count = std::min(window, frames.size() - begin);

    // Parallel stage: the per-frame exact HEBS search.  Contexts stay
    // alive into the post-stage, which reuses their caches for the
    // applied-β re-derivation.
    pool_.parallel_for(count, [&](std::size_t k, int) {
      const std::size_t i = begin + k;
      contexts[k] = std::make_unique<FrameContext>(
          frames[i], vopts.hebs, controller.power_model());
      if (!estimates.empty()) {
        contexts[k]->set_histogram_estimate(estimates[i]);
      }
      raws[k] = run_exact(*contexts[k], vopts.d_max_percent);
    });

    // Ordered post-stage: flicker control advances the controller's
    // state exactly as serial per-frame processing would.
    for (std::size_t k = 0; k < count; ++k) {
      decisions.push_back(
          controller.apply_flicker_control(*contexts[k], raws[k]));
      contexts[k].reset();  // caches are frame-local; free them eagerly
    }
  }
  return decisions;
}

std::vector<core::FrameDecision> PipelineEngine::process_stream(
    std::span<const hebs::image::GrayImage> frames,
    const core::VideoOptions& opts) {
  core::VideoBacklightController controller(opts, model_);
  return process_stream(frames, controller);
}

}  // namespace hebs::pipeline
