#include "pipeline/engine.h"

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/distortion_curve.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "pipeline/stages.h"
#include "pipeline/temporal.h"
#include "util/error.h"
#include "util/faultpoint.h"
#include "util/parallel.h"
#include "util/pool.h"

namespace hebs::pipeline {

PipelineEngine::PipelineEngine(EngineOptions opts,
                               hebs::power::LcdSubsystemPower power_model)
    : opts_(std::move(opts)),
      model_(std::move(power_model)),
      pool_(opts_.num_threads) {}

namespace {

std::unique_ptr<util::BufferPool> make_pool(const EngineOptions& opts) {
  if (!opts.use_buffer_pool) return nullptr;  // null scope = plain heap
  return std::make_unique<util::BufferPool>(
      util::PoolOptions{opts.pool_max_retained_bytes, opts.pool_max_bytes});
}

// ---- fault containment helpers (DESIGN.md §14) ------------------------

/// The provably-safe result a degraded frame emits: β = 1 and the
/// identity LUT — the display shows the unmodified frame (zero
/// distortion) at full backlight (zero saving).  Power reports stay
/// zero: power accounting is not available for a frame whose pipeline
/// never completed.  Runs under a SuppressScope so a persistent
/// injected fault (e.g. pool-alloc:count=0) cannot re-fire inside its
/// own containment handler.
core::HebsResult identity_fallback(const hebs::image::GrayImage& frame) {
  util::fault::SuppressScope no_refire;
  core::HebsResult r;
  r.point = core::identity_operating_point();
  r.lambda = r.point.luminance_transform;
  r.target = {0, hebs::image::kMaxPixel};
  r.evaluation.point = r.point;
  r.evaluation.transformed = frame;  // identity: displayed == input
  return r;
}

/// Deep-pixel twin of identity_fallback, on the frame's own lattice.
core::HebsResult identity_fallback(const hebs::image::GrayImage16& frame) {
  util::fault::SuppressScope no_refire;
  core::HebsResult r;
  r.point = core::identity_operating_point();
  r.lambda = r.point.luminance_transform;
  r.target = {0, frame.max_pixel()};
  r.evaluation.point = r.point;
  r.evaluation.transformed16 = frame;  // identity: displayed == input
  return r;
}

bool is_io_error(const std::exception& e) noexcept {
  return dynamic_cast<const util::IoError*>(&e) != nullptr;
}

std::string fault_message(const char* stage, std::size_t frame,
                          const char* what) {
  return "frame " + std::to_string(frame) + ": " + stage + " stage: " + what;
}

std::string deadline_message(const char* stage, std::size_t frame,
                             std::int64_t deadline_us) {
  return "frame " + std::to_string(frame) + ": " + stage +
         " stage: frame deadline " + std::to_string(deadline_us) +
         " us exceeded; identity fallback emitted";
}

void record_fault(std::vector<FrameFault>* faults, std::size_t i, bool io,
                  std::string message, bool deadline = false) {
  obs::add(obs::Counter::kFramesDegraded);
  if (faults == nullptr) return;
  FrameFault& f = (*faults)[i];
  f.degraded = true;
  f.io = io;
  f.deadline = deadline;
  f.message = std::move(message);
}

using DeadlineClock = std::chrono::steady_clock;

bool deadline_blown(const EngineOptions& opts,
                    DeadlineClock::time_point start) {
  if (opts.frame_deadline_us <= 0) return false;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             DeadlineClock::now() - start)
             .count() > opts.frame_deadline_us;
}

/// RowExecutor backed by the engine's ThreadPool: fans one frame's
/// independent row ranges across the pool's workers.  Installed only
/// around work running inline on the calling thread while the pool is
/// idle (parallel_for is not reentrant).  The runner closure is built
/// once — a std::function per run() would put an allocation into the
/// steady state the alloc bench gates.
class PoolRowExecutor final : public util::RowExecutor {
 public:
  explicit PoolRowExecutor(ThreadPool& pool)
      : pool_(pool),
        effective_(pool.effective_concurrency()),
        runner_([this](std::size_t chunk, int) {
          const int begin = static_cast<int>(chunk) * step_;
          (*body_)(begin, std::min(n_, begin + step_));
        }) {}

  void run(int n, util::RowBody body) override {
    // Fan out only when splitting can help: more than one worker that
    // can actually run concurrently, and enough rows per chunk to
    // amortize the pool wake.
    constexpr int kMinChunkRows = 8;
    if (effective_ < 2 || n < 2 * kMinChunkRows) {
      body(0, n);
      return;
    }
    const int chunks = std::min(effective_, n / kMinChunkRows);
    n_ = n;
    step_ = (n + chunks - 1) / chunks;
    body_ = &body;
    pool_.parallel_for(static_cast<std::size_t>(chunks), runner_);
    body_ = nullptr;
  }

 private:
  ThreadPool& pool_;
  const int effective_;
  int n_ = 0;
  int step_ = 0;
  const util::RowBody* body_ = nullptr;
  const std::function<void(std::size_t, int)> runner_;
};

/// Runs `per_frame` for every image on the pool, each worker reusing one
/// rebound FrameContext drawing from its own recycling buffer pool.
/// Results land at their frame's index, so output order never depends
/// on scheduling.
///
/// Containment: a frame whose work throws (or blows the frame deadline)
/// lands `fallback(i)` at its index instead of failing the batch, and
/// the worker's context is discarded — its memo state may be mid-update,
/// and no later frame may read poisoned caches.  The next frame on that
/// worker starts from a fresh context, so post-fault frames are
/// bit-identical to a cold run.
template <typename Result, typename Image, typename PerFrame,
          typename Fallback>
std::vector<Result> map_frames(ThreadPool& pool, const EngineOptions& opts,
                               std::span<const Image> images,
                               const hebs::power::LcdSubsystemPower& model,
                               PerFrame&& per_frame, Fallback&& fallback,
                               std::vector<FrameFault>* faults) {
  if (faults != nullptr) {
    faults->clear();
    faults->resize(images.size());
  }
  std::vector<Result> results(images.size());
  // The per-frame containment body, shared by the inline single-frame
  // path and the fan-out.  The SuppressScope around the fallback keeps
  // a persistent injected fault from re-firing inside the handler.
  const auto run_contained = [&](std::unique_ptr<FrameContext>& ctx,
                                 std::size_t i) {
    const auto start = DeadlineClock::now();
    try {
      util::fault::maybe_fail(util::fault::Point::kWorkerTask);
      if (!ctx) ctx = std::make_unique<FrameContext>(opts.hebs, model);
      ctx->rebind(images[i]);
      results[i] = per_frame(*ctx, i);
    } catch (const util::InvalidArgument&) {
      // Precondition violations are caller bugs, not runtime faults:
      // degrading would hide them, so they propagate out of the batch
      // (the pool rethrows the first one after the barrier).
      throw;
    } catch (const std::exception& e) {
      ctx.reset();  // quarantine
      util::fault::SuppressScope no_refire;
      results[i] = fallback(i);
      record_fault(faults, i, is_io_error(e),
                   fault_message("search", i, e.what()));
      return;
    }
    if (deadline_blown(opts, start)) {
      obs::add(obs::Counter::kDeadlineMiss);
      util::fault::SuppressScope no_refire;
      results[i] = fallback(i);
      record_fault(faults, i, /*io=*/false,
                   deadline_message("search", i, opts.frame_deadline_us),
                   /*deadline=*/true);
    }
  };
  if (images.size() == 1) {
    // Single frame: frame-level fan-out cannot help, so run inline on
    // the calling thread (no pool wake) and repurpose the idle workers
    // for intra-frame row parallelism instead — this is what lets extra
    // threads cut single-frame latency rather than add dispatch cost.
    auto buffer_pool = make_pool(opts);
    util::PoolScope scope(buffer_pool.get());
    std::optional<PoolRowExecutor> rows;
    std::optional<util::ParallelScope> rows_scope;
    if (pool.effective_concurrency() > 1) {
      rows.emplace(pool);
      rows_scope.emplace(&*rows);
    }
    std::unique_ptr<FrameContext> ctx;
    obs::ScopedSpan frame_span(obs::Span::kFrame, 0);
    run_contained(ctx, 0);
    return results;
  }
  const auto workers = static_cast<std::size_t>(pool.thread_count());
  std::vector<std::unique_ptr<FrameContext>> contexts(workers);
  std::vector<std::unique_ptr<util::BufferPool>> pools(workers);
  pool.parallel_for(images.size(), [&](std::size_t i, int worker) {
    const auto w = static_cast<std::size_t>(worker);
    if (!pools[w]) pools[w] = make_pool(opts);
    util::PoolScope scope(pools[w].get());
    obs::ScopedSpan frame_span(obs::Span::kFrame,
                               static_cast<std::int32_t>(i));
    run_contained(contexts[w], i);
  });
  // Contexts must release their pooled caches before the pools detach
  // (detached blocks go back to the heap instead of recycling — only a
  // lifetime nicety here, but it keeps pool accounting exact).
  contexts.clear();
  return results;
}

}  // namespace

std::vector<core::HebsResult> PipelineEngine::process_batch(
    std::span<const hebs::image::GrayImage> images, double d_max_percent,
    std::vector<FrameFault>* faults) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [d_max_percent](FrameContext& ctx, std::size_t) {
        return run_exact(ctx, d_max_percent);
      },
      [&images](std::size_t i) { return identity_fallback(images[i]); },
      faults);
}

std::vector<core::HebsResult> PipelineEngine::process_batch_at_range(
    std::span<const hebs::image::GrayImage> images, int range,
    std::vector<FrameFault>* faults) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [range](FrameContext& ctx, std::size_t) {
        return ctx.at_range(range);
      },
      [&images](std::size_t i) { return identity_fallback(images[i]); },
      faults);
}

std::vector<core::HebsResult> PipelineEngine::process_batch_with_curve(
    std::span<const hebs::image::GrayImage> images, double d_max_percent,
    const core::DistortionCurve& curve, std::vector<FrameFault>* faults) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [d_max_percent, &curve](FrameContext& ctx, std::size_t) {
        return run_with_curve(ctx, d_max_percent, curve);
      },
      [&images](std::size_t i) { return identity_fallback(images[i]); },
      faults);
}

std::vector<core::HebsResult> PipelineEngine::process_batch16(
    std::span<const hebs::image::GrayImage16> images, double d_max_percent,
    std::vector<FrameFault>* faults) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [d_max_percent](FrameContext& ctx, std::size_t) {
        return run_exact(ctx, d_max_percent);
      },
      [&images](std::size_t i) { return identity_fallback(images[i]); },
      faults);
}

std::vector<core::HebsResult> PipelineEngine::process_batch_at_range16(
    std::span<const hebs::image::GrayImage16> images, int range,
    std::vector<FrameFault>* faults) {
  return map_frames<core::HebsResult>(
      pool_, opts_, images, model_,
      [range](FrameContext& ctx, std::size_t) {
        return ctx.at_range(range);
      },
      [&images](std::size_t i) { return identity_fallback(images[i]); },
      faults);
}

std::vector<core::FrameDecision> PipelineEngine::process_stream(
    std::span<const hebs::image::GrayImage> frames,
    core::VideoBacklightController& controller,
    std::vector<FrameFault>* faults) {
  const core::VideoOptions& vopts = controller.options();
  if (faults != nullptr) {
    faults->clear();
    faults->resize(frames.size());
  }

  // Optional sampling front end: estimate per-frame histograms with the
  // decimating estimator.  Ingestion is ordered (the estimator is
  // stateful), so snapshots are taken serially up front.
  std::vector<hebs::histogram::Histogram> estimates;
  if (opts_.use_streaming_histogram) {
    hebs::histogram::StreamingHistogram estimator(opts_.streaming);
    estimates.reserve(frames.size());
    for (const auto& frame : frames) {
      estimator.ingest(frame);
      estimates.push_back(estimator.estimate());
    }
  }

  // The clip is processed in rounds of `slots` frames: the per-frame
  // searches run on the pool, then the ordered post-stage consumes the
  // round strictly in frame order, so peak memory stays at `slots`
  // cached contexts and the controller's state advances exactly as
  // serial processing would.  Each slot owns a persistent FrameContext,
  // a recycling BufferPool, and — temporal mode — the coherence state
  // of its fixed-stride frame chain (slot k sees frames k, k + slots,
  // k + 2·slots, …; with one worker the chain is the clip itself).
  // Round boundaries cannot change any value: per-frame raw searches
  // are independent (temporal reuse is verified, see temporal.h), and
  // flicker control consumes them in frame order either way.
  const bool temporal =
      opts_.temporal_reuse && !opts_.use_streaming_histogram;
  const auto threads = static_cast<std::size_t>(pool_.thread_count());
  const std::size_t slots = std::max<std::size_t>(
      1, std::min(frames.size(), threads == 1 ? 1 : 2 * threads));

  struct Slot {
    std::unique_ptr<util::BufferPool> pool;
    std::unique_ptr<FrameContext> ctx;
    TemporalReuse reuse;
    core::HebsResult raw;
    Slot(const EngineOptions& opts, bool temporal_on)
        : pool(make_pool(opts)), reuse(slot_reuse_options(temporal_on)) {}

    static TemporalOptions slot_reuse_options(bool temporal_on) {
      TemporalOptions t;  // delta threshold keeps its one default
      t.enabled = temporal_on;
      return t;
    }
  };
  std::vector<Slot> slot_states;
  slot_states.reserve(slots);
  for (std::size_t k = 0; k < slots; ++k) {
    slot_states.emplace_back(opts_, temporal);
  }

  std::vector<core::FrameDecision> decisions;
  decisions.reserve(frames.size());

  // Per-round containment flags: degraded[k] marks slot k's frame of
  // the current round as carrying the identity fallback.  Written by
  // the slot's worker, read by the ordered post-stage after the round's
  // barrier.
  std::vector<std::uint8_t> degraded(slots, 0);

  // Full quarantine of a faulted slot: its context's memo state and its
  // temporal chain may be poisoned (mid-update when the fault unwound),
  // so both are discarded — the slot's next frame runs the cold path on
  // a fresh context, exactly as a cold run started there would.
  const auto quarantine = [](Slot& s) {
    s.ctx.reset();
    s.reuse.reset();
  };

  // One callable for the whole clip (constructing a std::function per
  // round would put an allocation back into the steady state).
  std::size_t begin = 0;
  const std::function<void(std::size_t, int)> search_round =
      [&](std::size_t k, int) {
        const std::size_t i = begin + k;
        Slot& s = slot_states[k];
        util::PoolScope scope(s.pool.get());
        obs::ScopedSpan frame_span(obs::Span::kFrame,
                                   static_cast<std::int32_t>(i));
        degraded[k] = 0;
        const auto start = DeadlineClock::now();
        try {
          util::fault::maybe_fail(util::fault::Point::kWorkerTask);
          if (!s.ctx) {
            s.ctx = std::make_unique<FrameContext>(vopts.hebs,
                                                   controller.power_model());
          }
          if (!estimates.empty()) {
            s.ctx->rebind(frames[i]);
            s.ctx->set_histogram_estimate(estimates[i]);
            s.raw = run_exact(*s.ctx, vopts.d_max_percent);
          } else {
            // TemporalReuse handles both modes: disabled, it degrades to
            // rebind + run_exact (the cold path).
            s.raw = s.reuse.process(*s.ctx, frames[i], vopts.d_max_percent);
          }
        } catch (const util::InvalidArgument&) {
          throw;  // caller bug, not a runtime fault — see map_frames
        } catch (const std::exception& e) {
          quarantine(s);
          util::fault::SuppressScope no_refire;
          s.raw = identity_fallback(frames[i]);
          degraded[k] = 1;
          record_fault(faults, i, is_io_error(e),
                       fault_message("stream search", i, e.what()));
          return;
        }
        if (deadline_blown(opts_, start)) {
          obs::add(obs::Counter::kDeadlineMiss);
          // The computed state is valid, merely late — but the emitted
          // decision is the fallback and the controller treats it as a
          // discontinuity, so the slot restarts cold too (uniform
          // degradation contract: one recovery story for every fault).
          quarantine(s);
          util::fault::SuppressScope no_refire;
          s.raw = identity_fallback(frames[i]);
          degraded[k] = 1;
          record_fault(
              faults, i, /*io=*/false,
              deadline_message("stream search", i, opts_.frame_deadline_us),
              /*deadline=*/true);
        }
      };

  // The ordered post-stage's scratch (applied-β re-derivations) has its
  // own pool: it runs on the calling thread across all slots.
  auto post_pool = make_pool(opts_);
  for (begin = 0; begin < frames.size(); begin += slots) {
    const std::size_t count = std::min(slots, frames.size() - begin);

    // Parallel stage: the per-frame exact HEBS search.  Contexts stay
    // alive into the post-stage, which reuses their caches for the
    // applied-β re-derivation.
    pool_.parallel_for(count, search_round);

    // Ordered post-stage: flicker control advances the controller's
    // state exactly as serial per-frame processing would.  A frame
    // degraded in the search stage bypasses flicker control (its slot
    // context is gone) and resets the controller's history instead; a
    // fault inside the post-stage itself is contained the same way.
    util::PoolScope scope(post_pool.get());
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = begin + k;
      Slot& s = slot_states[k];
      obs::ScopedSpan post_span(obs::Span::kFlickerPost,
                                static_cast<std::int32_t>(i));
      if (degraded[k]) {
        // Containment path: copying the pooled fallback result must not
        // re-fire a persistent injected allocation fault.
        util::fault::SuppressScope no_refire;
        decisions.push_back(controller.apply_degraded(s.raw));
        continue;
      }
      try {
        decisions.push_back(controller.apply_flicker_control(*s.ctx, s.raw));
      } catch (const util::InvalidArgument&) {
        throw;  // caller bug, not a runtime fault — see map_frames
      } catch (const std::exception& e) {
        quarantine(s);
        util::fault::SuppressScope no_refire;
        s.raw = identity_fallback(frames[i]);
        decisions.push_back(controller.apply_degraded(s.raw));
        record_fault(faults, i, is_io_error(e),
                     fault_message("flicker post-stage", i, e.what()));
      }
    }
  }
  // Release pooled caches before their pools detach (see map_frames).
  slot_states.clear();
  return decisions;
}

std::vector<core::FrameDecision> PipelineEngine::process_stream(
    std::span<const hebs::image::GrayImage> frames,
    const core::VideoOptions& opts, std::vector<FrameFault>* faults) {
  core::VideoBacklightController controller(opts, model_);
  return process_stream(frames, controller, faults);
}

namespace {

/// The post-decision color stage (core::render_color) shaped into the
/// engine's per-frame output type.
ColorFrameOutput run_color_stage(const hebs::image::RgbImage& rgb,
                                 const hebs::image::GrayImage& luma,
                                 const core::OperatingPoint& point,
                                 core::ColorMode mode) {
  obs::ScopedSpan span(obs::Span::kColorRender);
  core::ColorRendering rendering = core::render_color(rgb, luma, point, mode);
  return {std::move(rendering.displayed), rendering.hue_error};
}

std::vector<hebs::image::GrayImage> materialize_lumas(
    std::span<const hebs::image::RgbImage> images) {
  std::vector<hebs::image::GrayImage> lumas;
  lumas.reserve(images.size());
  for (const auto& img : images) lumas.push_back(img.to_luma());
  return lumas;
}

bool same_point(const core::OperatingPoint& a, const core::OperatingPoint& b) {
  return a.beta == b.beta &&
         a.luminance_transform.points() == b.luminance_transform.points();
}

bool same_bytes(const hebs::image::RgbImage& a,
                const hebs::image::RgbImage& b) {
  const auto da = a.data();
  const auto db = b.data();
  return da.size() == db.size() &&
         std::memcmp(da.data(), db.data(), da.size()) == 0;
}

}  // namespace

std::vector<ColorBatchResult> PipelineEngine::process_batch_color(
    std::span<const hebs::image::RgbImage> images, double d_max_percent,
    core::ColorMode mode, std::vector<FrameFault>* faults) {
  // Luma extraction is ordered-independent but cheap (one dispatched
  // kernel sweep per frame); done up front so the lumas outlive every
  // context binding.
  const auto lumas = materialize_lumas(images);
  return map_frames<ColorBatchResult>(
      pool_, opts_, std::span<const hebs::image::GrayImage>(lumas), model_,
      [&images, &lumas, d_max_percent, mode](FrameContext& ctx,
                                             std::size_t i) {
        ColorBatchResult r;
        r.luma = run_exact(ctx, d_max_percent);
        r.color = run_color_stage(images[i], lumas[i], r.luma.point, mode);
        return r;
      },
      [&images, &lumas](std::size_t i) {
        // Degraded color frame: identity decision, and the displayed
        // raster is the unmodified input (β = 1 + identity LUT changes
        // no pixel, so the chromaticity drift is exactly zero).
        ColorBatchResult r;
        r.luma = identity_fallback(lumas[i]);
        r.color.displayed = images[i];
        r.color.hue_error = 0.0;
        return r;
      },
      faults);
}

std::vector<ColorStreamResult> PipelineEngine::process_stream_color(
    std::span<const hebs::image::RgbImage> frames,
    const core::VideoOptions& opts, core::ColorMode mode,
    std::vector<FrameFault>* faults) {
  const auto lumas = materialize_lumas(frames);
  // Containment records are needed locally even when the caller passed
  // no sink: the color stage below must know which decisions carry the
  // identity fallback (their slot rendering is the unmodified input)
  // and which previous frames are ineligible as reuse sources.
  std::vector<FrameFault> stream_faults;
  auto decisions = process_stream(lumas, opts, &stream_faults);

  // Ordered color post-stage.  Rendering is a deterministic function of
  // (frame bytes, applied point, mode), so when both match the previous
  // frame the previous rendering is reused wholesale — the color
  // counterpart of the luma side's unchanged-frame fast path, and the
  // reason a static RGB clip pays one memcpy instead of the per-pixel
  // transform + chroma measurement per frame.
  // No pool scope here: the stage's only allocations are the output
  // rasters, which all escape into `out` — nothing would ever recycle.
  std::vector<ColorStreamResult> out;
  out.reserve(decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    ColorStreamResult r;
    r.decision = std::move(decisions[i]);
    if (stream_faults[i].degraded) {
      // The stream already emitted the identity decision for this
      // frame; its rendering is the unmodified input (β = 1 + identity
      // LUT change no pixel → zero chromaticity drift), no per-pixel
      // work and no chance of a second fault in the color stage.
      r.color.displayed = frames[i];
      r.color.hue_error = 0.0;
      out.push_back(std::move(r));
      continue;
    }
    const bool reuse = opts.temporal_reuse && i > 0 &&
                       !stream_faults[i - 1].degraded &&
                       same_point(r.decision.point, out.back().decision.point) &&
                       same_bytes(frames[i], frames[i - 1]);
    if (reuse) {
      r.color.displayed = out.back().color.displayed;
      r.color.hue_error = out.back().color.hue_error;
    } else {
      try {
        r.color = run_color_stage(frames[i], lumas[i], r.decision.point, mode);
      } catch (const util::InvalidArgument&) {
        throw;  // caller bug, not a runtime fault — see map_frames
      } catch (const std::exception& e) {
        // Color-stage containment: the whole frame degrades to the
        // identity fallback — decision and rendering stay consistent
        // (displaying the untouched raster at the computed β < 1 would
        // dim the frame, which is a visible artifact, not a fallback).
        // The stage is stateless per frame, so nothing needs quarantine.
        util::fault::SuppressScope no_refire;
        const core::HebsResult fb = identity_fallback(lumas[i]);
        r.decision.raw_beta = fb.point.beta;
        r.decision.beta = fb.point.beta;
        r.decision.scene_cut = false;
        r.decision.point = fb.point;
        r.decision.evaluation = fb.evaluation;
        r.color.displayed = frames[i];
        r.color.hue_error = 0.0;
        record_fault(&stream_faults, i, is_io_error(e),
                     fault_message("color render", i, e.what()));
      }
    }
    out.push_back(std::move(r));
  }
  if (faults != nullptr) *faults = std::move(stream_faults);
  return out;
}

}  // namespace hebs::pipeline
