// The pipeline engine: a thread-pool-backed batch/stream executor for
// the staged HEBS pipeline.
//
// Batch mode (photo albums, characterization sweeps, table regeneration)
// fans independent frames out over the pool; every worker owns one
// FrameContext that it rebinds per frame, so frame-side caches are
// reused without cross-thread sharing.  Results are written by frame
// index — output order (and every computed bit) is independent of the
// thread count.
//
// Stream mode (video) splits each frame's work into the parallelizable
// per-frame HEBS search and the inherently ordered flicker-control
// post-stage: raw operating points are computed concurrently, then the
// VideoBacklightController consumes them strictly in frame order,
// producing exactly the decisions the serial controller makes.  A
// decimated StreamingHistogram can optionally stand in for the exact
// per-frame histogram, as a real video controller's sampling front end
// would.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/color.h"
#include "core/hebs.h"
#include "core/video.h"
#include "histogram/streaming.h"
#include "pipeline/executor.h"
#include "pipeline/frame_context.h"

namespace hebs::core {
class DistortionCurve;
}

namespace hebs::pipeline {

/// Engine configuration.
struct EngineOptions {
  /// Worker threads; <= 0 selects the hardware concurrency.
  int num_threads = 0;
  /// Pipeline options applied by the batch entry points.  Stream mode
  /// ignores this and uses the controller's VideoOptions::hebs instead
  /// (the controller defines the stream's semantics).
  core::HebsOptions hebs;
  /// Stream mode: estimate per-frame histograms with a decimating
  /// StreamingHistogram instead of touching every pixel.
  bool use_streaming_histogram = false;
  /// Estimator configuration when use_streaming_histogram is set.
  hebs::histogram::StreamingOptions streaming;
  /// Per-worker recycling buffer pools: all per-frame scratch (rasters,
  /// integral tables, curves, memo nodes) recycles instead of hitting
  /// the heap — the engine's steady state allocates nothing per frame.
  /// Purely a performance knob; outputs are identical either way.
  bool use_buffer_pool = true;
  /// Free-list retention cap per pool, in bytes (0 = unlimited; an
  /// eviction inside the per-frame working set would reintroduce
  /// steady-state allocations).
  std::size_t pool_max_retained_bytes = 0;
  /// Stream mode: temporal-coherence fast path (duplicate-frame reuse,
  /// incremental histograms, warm-started searches).  Outputs are
  /// bit-identical to the cold path whenever measured distortion is
  /// monotone over the search interval (sub-0.1% quantization wiggles
  /// are the only exception; every decision honors the distortion
  /// budget either way — see DESIGN.md §9 and pipeline/temporal.h).
  /// Disable for unconditional cold-path equality.  Ignored when
  /// use_streaming_histogram is set (the stateful estimator makes
  /// consecutive frames non-comparable).
  bool temporal_reuse = true;
  /// Cap on bytes checked out of each per-worker pool at once; 0 =
  /// unlimited.  Exhaustion degrades to counted plain-heap blocks
  /// (obs kPoolHeapFallback) — it never fails a frame.
  std::size_t pool_max_bytes = 0;
  /// Soft per-frame deadline, microseconds; 0 = none.  A frame whose
  /// decision (rebind + search; color batches include the color stage)
  /// takes longer still completes, but its result is replaced by the
  /// identity fallback (β = 1, identity LUT — zero distortion, zero
  /// saving) and kDeadlineMiss/kFramesDegraded count it.  Soft: the
  /// check runs after the frame's work, so an overrun is detected, not
  /// preempted.
  std::int64_t frame_deadline_us = 0;
};

/// Per-frame containment record, parallel to a batch/stream result
/// vector (see the `faults` out-parameters below).  When a frame's
/// pipeline work throws or blows the frame deadline, the engine emits
/// the identity fallback for that frame instead of failing the call,
/// quarantines the worker/slot state that computed it (so poisoned
/// memoization never feeds a later frame), and records what happened
/// here.
struct FrameFault {
  /// This frame carries the identity fallback, not a computed decision.
  bool degraded = false;
  /// The contained exception was a util::IoError (the facade keeps
  /// kIoError for these; everything else maps to kInternal).
  bool io = false;
  /// The frame degraded because it blew the soft frame deadline, not
  /// because its work threw (the facade maps this to kDeadlineExceeded).
  bool deadline = false;
  /// Names the stage, the frame index and — for injected faults — the
  /// fault point.
  std::string message;
};

/// What the post-decision color stage produced for one frame.
struct ColorFrameOutput {
  /// The displayed RGB raster (the operating point applied per the
  /// requested ColorMode).
  hebs::image::RgbImage displayed;
  /// Chromaticity drift of `displayed` against the input frame.
  double hue_error = 0.0;
};

/// One color frame's decision + rendering (batch mode).
struct ColorBatchResult {
  /// The HEBS decision, computed on the frame's BT.601 luma — exactly
  /// the result process_batch returns for the pre-converted luma.
  core::HebsResult luma;
  ColorFrameOutput color;
};

/// One color frame's decision + rendering (stream mode).
struct ColorStreamResult {
  /// The flicker-controlled decision, identical to process_stream on
  /// the pre-converted luma clip.
  core::FrameDecision decision;
  ColorFrameOutput color;
};

class PipelineEngine {
 public:
  explicit PipelineEngine(EngineOptions opts = {},
                          hebs::power::LcdSubsystemPower power_model =
                              hebs::power::LcdSubsystemPower::lp064v1());

  int thread_count() const noexcept { return pool_.thread_count(); }
  const EngineOptions& options() const noexcept { return opts_; }

  /// Exact-search HEBS (the Table 1 protocol) for every image.
  /// result[i] corresponds to images[i].
  ///
  /// Fault containment (all batch/stream entry points): a frame whose
  /// work throws — or misses opts.frame_deadline_us — yields the
  /// identity fallback at its index rather than failing the call; when
  /// `faults` is non-null it is resized to images.size() and frame i's
  /// containment record lands at (*faults)[i].  Frames processed after
  /// a contained fault are bit-identical to a cold run: the faulted
  /// worker's FrameContext is discarded, never rebound.
  std::vector<core::HebsResult> process_batch(
      std::span<const hebs::image::GrayImage> images, double d_max_percent,
      std::vector<FrameFault>* faults = nullptr);

  /// Fixed-range HEBS for every image.
  std::vector<core::HebsResult> process_batch_at_range(
      std::span<const hebs::image::GrayImage> images, int range,
      std::vector<FrameFault>* faults = nullptr);

  /// Deep-pixel twin of process_batch: the same exact-search decision on
  /// each frame's own level lattice (images[i].levels() histogram bins).
  /// Mixed-depth batches are not supported — each call is one depth.
  std::vector<core::HebsResult> process_batch16(
      std::span<const hebs::image::GrayImage16> images, double d_max_percent,
      std::vector<FrameFault>* faults = nullptr);

  /// Deep-pixel twin of process_batch_at_range.
  std::vector<core::HebsResult> process_batch_at_range16(
      std::span<const hebs::image::GrayImage16> images, int range,
      std::vector<FrameFault>* faults = nullptr);

  /// Deployed flow for every image: range looked up from the distortion
  /// characteristic curve, no metric in the decision loop.
  std::vector<core::HebsResult> process_batch_with_curve(
      std::span<const hebs::image::GrayImage> images, double d_max_percent,
      const core::DistortionCurve& curve,
      std::vector<FrameFault>* faults = nullptr);

  /// Frame-adaptive video: per-frame raw operating points are searched
  /// concurrently, then `controller` applies flicker control strictly in
  /// frame order (its state advances exactly as if it had processed the
  /// clip serially).
  ///
  /// Fault containment: a faulted frame emits the identity decision
  /// (β = 1, identity LUT) and is treated as a stream discontinuity —
  /// the slot's FrameContext and TemporalReuse state are quarantined
  /// (rebuilt cold) and the controller's flicker history resets, so
  /// every frame after the fault is bit-identical to a cold run started
  /// there (DESIGN.md §14).
  std::vector<core::FrameDecision> process_stream(
      std::span<const hebs::image::GrayImage> frames,
      core::VideoBacklightController& controller,
      std::vector<FrameFault>* faults = nullptr);

  /// Same, with a fresh controller built from `opts`.
  std::vector<core::FrameDecision> process_stream(
      std::span<const hebs::image::GrayImage> frames,
      const core::VideoOptions& opts,
      std::vector<FrameFault>* faults = nullptr);

  /// Color batch: the exact-search decision runs on each frame's
  /// BT.601 luma (bit-identical to process_batch on pre-converted
  /// lumas), then the post-decision color stage applies the chosen
  /// operating point to the RGB raster in `mode` on the same worker.
  std::vector<ColorBatchResult> process_batch_color(
      std::span<const hebs::image::RgbImage> images, double d_max_percent,
      core::ColorMode mode, std::vector<FrameFault>* faults = nullptr);

  /// Color stream: luma decisions through the full stream machinery
  /// (flicker control, temporal fast path, pools — bit-identical to
  /// process_stream on the pre-converted luma clip), then the ordered
  /// color post-stage renders each applied operating point.  With
  /// opts.temporal_reuse the stage reuses the previous frame's RGB
  /// rendering when the input bytes and the applied point are
  /// unchanged (static content skips the per-pixel work; outputs are
  /// identical either way).
  std::vector<ColorStreamResult> process_stream_color(
      std::span<const hebs::image::RgbImage> frames,
      const core::VideoOptions& opts, core::ColorMode mode,
      std::vector<FrameFault>* faults = nullptr);

 private:
  EngineOptions opts_;
  hebs::power::LcdSubsystemPower model_;
  ThreadPool pool_;
};

}  // namespace hebs::pipeline
