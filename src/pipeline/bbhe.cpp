#include "pipeline/bbhe.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/error.h"
#include "util/pool.h"

namespace hebs::pipeline {

namespace {

/// BBHE's split point Xm: the highest populated level at or below the
/// histogram's mean.  Both the mean and the candidate levels are
/// compared in normalized [0, 1] space, and the split is anchored at a
/// *populated* level, which makes the choice depth-invariant: a u16
/// frame holding ratio-widened u8 content (257 v / 65535 == v / 255
/// exactly in IEEE doubles) partitions its populated levels identically
/// to the u8 frame.  A lattice-space integer mean would not — the
/// floored division lands between widened lattice points.
int mean_split_level(const hebs::histogram::Histogram& hist) {
  const double maxv = static_cast<double>(hist.bins() - 1);
  double weighted = 0.0;
  for (int level = 0; level < hist.bins(); ++level) {
    weighted += static_cast<double>(level) / maxv *
                static_cast<double>(hist.count(level));
  }
  const double mean = weighted / static_cast<double>(hist.total());
  int xm = hist.min_level();
  for (int level = hist.min_level(); level <= hist.max_level(); ++level) {
    if (hist.count(level) == 0) continue;
    if (static_cast<double>(level) / maxv <= mean) xm = level;
  }
  return xm;
}

/// Equalizes one histogram half [first..last] into the normalized band
/// [y_lo, y_hi], writing y[first..last].  Uses the exclusive-rank
/// normalization of the repo's GHE (DESIGN.md §3): the half's lowest
/// populated level maps exactly to y_lo and its highest exactly to
/// y_hi, so the composite transform preserves the native endpoints.
/// Unpopulated levels inherit the running value (flat segments), which
/// keeps the curve monotone.  A half with all its mass on one level
/// maps that level to y_lo (denominator zero — nothing to spread).
void equalize_half(const hebs::histogram::Histogram& hist, int first,
                   int last, double y_lo, double y_hi,
                   hebs::util::PoolVector<double>& y) {
  std::uint64_t n = 0;
  for (int level = first; level <= last; ++level) n += hist.count(level);
  int top = last;
  while (top > first && hist.count(top) == 0) --top;
  const std::uint64_t denom = n - hist.count(top);
  std::uint64_t below = 0;  // samples strictly below `level` in the half
  for (int level = first; level <= last; ++level) {
    const double frac =
        denom > 0 ? static_cast<double>(below) / static_cast<double>(denom)
                  : 0.0;
    y[static_cast<std::size_t>(level)] =
        y_lo + (y_hi - y_lo) * std::min(1.0, frac);
    below += hist.count(level);
  }
}

constexpr int kBetaIters = 12;

}  // namespace

hebs::transform::PwlCurve bbhe_transform(const FrameContext& ctx) {
  const auto& hist = ctx.histogram();
  HEBS_REQUIRE(hist.total() > 0, "BBHE of an empty histogram");
  const int bins = hist.bins();
  const double maxv = static_cast<double>(bins - 1);
  const int lo = hist.min_level();
  const int hi = hist.max_level();
  const int xm = mean_split_level(hist);

  hebs::util::PoolVector<double> y(static_cast<std::size_t>(bins));
  // Lower half [lo..Xm] equalizes into its own band; the upper half
  // (Xm..hi] into the band starting at its own first populated level,
  // so the two maps never cross, the mean's position is preserved, and
  // every band endpoint sits on a populated level (depth-invariant
  // normalization — see mean_split_level).
  equalize_half(hist, lo, xm, lo / maxv, xm / maxv, y);
  if (xm < hi) {
    int u_lo = xm + 1;
    while (u_lo < hi && hist.count(u_lo) == 0) ++u_lo;
    equalize_half(hist, xm + 1, hi, u_lo / maxv, hi / maxv, y);
  }
  for (int level = 0; level < lo; ++level) {
    y[static_cast<std::size_t>(level)] = lo / maxv;
  }
  for (int level = hi + 1; level < bins; ++level) {
    y[static_cast<std::size_t>(level)] = hi / maxv;
  }

  hebs::transform::PwlCurve::PointList pts;
  pts.reserve(static_cast<std::size_t>(bins));
  for (int level = 0; level < bins; ++level) {
    pts.push_back({level / maxv, y[static_cast<std::size_t>(level)]});
  }
  return hebs::transform::PwlCurve(std::move(pts));
}

core::HebsResult run_bbhe(const FrameContext& ctx, double d_max_percent) {
  HEBS_REQUIRE(d_max_percent >= 0.0, "distortion budget must be >= 0");
  obs::ScopedSpan span(obs::Span::kRangeSearch);
  core::HebsResult result;
  result.target = {ctx.histogram().min_level(), ctx.histogram().max_level()};
  result.phi = bbhe_transform(ctx);
  result.lambda = result.phi;

  const double min_beta = ctx.options().min_beta;
  auto eval_at = [&](double beta) {
    return ctx.evaluate_lean(core::OperatingPoint{result.lambda, beta});
  };

  // Feasibility (measured distortion within budget) is weakly monotone
  // in β — dimming clips more of the displayed range — so the dimmest
  // feasible backlight is found by bisection, exactly the structure of
  // the exact pipeline's β refinement.
  core::EvaluatedPoint best = eval_at(1.0);
  if (best.distortion_percent <= d_max_percent) {
    const auto at_floor = eval_at(min_beta);
    if (at_floor.distortion_percent <= d_max_percent) {
      best = at_floor;
    } else {
      double feasible = 1.0;
      double infeasible = min_beta;
      for (int i = 0; i < kBetaIters; ++i) {
        const double mid = (feasible + infeasible) / 2.0;
        const auto eval = eval_at(mid);
        if (eval.distortion_percent <= d_max_percent) {
          feasible = mid;
          best = eval;
        } else {
          infeasible = mid;
        }
      }
    }
  }
  // Even β = 1 over budget: keep the least-distorted point (the same
  // containment run_exact applies to infeasible budgets).

  result.point = best.point;
  result.evaluation = std::move(best);
  ctx.materialize_transformed(result);
  return result;
}

}  // namespace hebs::pipeline
