// Brightness-preserving bi-histogram equalization (BBHE) as a DBS
// policy — the pipeline's first fully depth-generic policy.
//
// BBHE (Kim, 1997) splits the image histogram at the mean level Xm and
// equalizes the two halves independently, each into its own native
// subrange: [min..Xm] stays below the mean, (Xm..max] stays above it.
// The composite transform preserves the image's mean brightness (the
// property the original paper proves), so it pairs naturally with
// backlight scaling: the displayed range is the image's own [min..max]
// and β follows from the brightest preserved level, then is bisected
// down against the measured distortion budget exactly like the exact
// pipeline's concurrent-scaling refinement.
//
// Everything here reads the frame through the FrameContext's memoized
// products (histogram, evaluator) and derives every quantity from
// hist.bins() — the same code path decides 8-, 10- and 16-bit frames on
// their own level lattices.
#pragma once

#include "core/hebs.h"
#include "pipeline/frame_context.h"

namespace hebs::pipeline {

/// The BBHE per-level transform for the context's histogram: one
/// breakpoint per level (x = level/(bins-1)), the lower half equalized
/// into [min..Xm], the upper half into (Xm..max].  Monotone by
/// construction.  Exposed separately for tests.
hebs::transform::PwlCurve bbhe_transform(const FrameContext& ctx);

/// Runs the full BBHE decision on the bound frame: builds the
/// transform, then bisects β in [min_beta, 1] to the dimmest backlight
/// whose measured distortion stays within `d_max_percent` (feasibility
/// is weakly monotone in β: dimmer can only distort more).  When even
/// β = 1 misses the budget the least-distorted point (β = 1) is
/// returned — the same containment contract run_exact uses for
/// infeasible budgets.  The result's phi and lambda are both the BBHE
/// curve (there is no PLC stage); target is the image's native range.
core::HebsResult run_bbhe(const FrameContext& ctx, double d_max_percent);

}  // namespace hebs::pipeline
