#include "pipeline/frame_context.h"

#include <algorithm>
#include <cmath>

#include "core/backlight.h"
#include "core/ghe.h"
#include "core/plc.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "pipeline/stages.h"
#include "transform/lut.h"
#include "util/error.h"
#include "util/faultpoint.h"
#include "util/mathutil.h"

namespace hebs::pipeline {

FrameContext::FrameContext(core::HebsOptions opts,
                           hebs::power::LcdSubsystemPower model)
    : opts_(std::move(opts)), model_(std::move(model)) {}

FrameContext::FrameContext(const hebs::image::GrayImage& image,
                           core::HebsOptions opts,
                           hebs::power::LcdSubsystemPower model)
    : opts_(std::move(opts)), model_(std::move(model)) {
  rebind(image);
}

FrameContext::FrameContext(const hebs::image::GrayImage16& image,
                           core::HebsOptions opts,
                           hebs::power::LcdSubsystemPower model)
    : opts_(std::move(opts)), model_(std::move(model)) {
  rebind(image);
}

void FrameContext::clear_caches() {
  estimate_.reset();
  exact_hist_.reset();
  evaluator_.reset();
  reference_power_.reset();
  ghe_.clear();
  by_range_.clear();
  by_target_.clear();
  approx_.reset();
  approx_by_target_.clear();
}

void FrameContext::rebind(const hebs::image::GrayImage& image) {
  // The frame-ingestion fault point: an installed frame-corrupt spec
  // simulates corrupt/truncated frame bytes arriving at the binding
  // boundary (the engine's containment turns it into a degraded frame).
  util::fault::maybe_fail(util::fault::Point::kFrameCorrupt);
  image_ = &image;
  image16_ = nullptr;
  levels_ = hebs::image::kLevels;
  clear_caches();
}

void FrameContext::rebind(const hebs::image::GrayImage16& image) {
  util::fault::maybe_fail(util::fault::Point::kFrameCorrupt);
  image_ = nullptr;
  image16_ = &image;
  levels_ = image.levels();
  clear_caches();
}

void FrameContext::rebind_unchanged(const hebs::image::GrayImage& image) {
  HEBS_REQUIRE(image_ != nullptr && image_->width() == image.width() &&
                   image_->height() == image.height(),
               "rebind_unchanged needs a bound context of equal dimensions");
  // Caches stay: they depend only on pixel content (byte-identical by
  // the caller's contract), the options and the power model.
  image_ = &image;
}

void FrameContext::set_exact_histogram(hebs::histogram::Histogram hist) {
  HEBS_REQUIRE(bound(), "FrameContext is not bound to a frame");
  const std::size_t frame_size =
      image_ != nullptr ? image_->size() : image16_->size();
  HEBS_REQUIRE(hist.total() == frame_size,
               "seeded histogram does not cover the frame");
  HEBS_REQUIRE(hist.bins() == levels_,
               "seeded histogram does not match the frame's level count");
  exact_hist_ = std::move(hist);
}

const hebs::image::GrayImage& FrameContext::image() const {
  HEBS_REQUIRE(image_ != nullptr, "FrameContext is not bound to an 8-bit frame");
  return *image_;
}

const hebs::image::GrayImage16& FrameContext::image16() const {
  HEBS_REQUIRE(image16_ != nullptr,
               "FrameContext is not bound to a deep-pixel frame");
  return *image16_;
}

const hebs::histogram::Histogram& FrameContext::histogram() const {
  if (estimate_.has_value()) return *estimate_;
  return exact_histogram();
}

const hebs::histogram::Histogram& FrameContext::exact_histogram() const {
  if (!exact_hist_.has_value()) {
    // The full recount (delta-refreshed histograms arrive via
    // set_exact_histogram and never reach this branch).
    obs::ScopedSpan span(obs::Span::kHistogram);
    exact_hist_ = bound16()
                      ? hebs::histogram::Histogram::from_image(image16())
                      : hebs::histogram::Histogram::from_image(image());
  }
  return *exact_hist_;
}

void FrameContext::set_histogram_estimate(
    hebs::histogram::Histogram estimate) {
  HEBS_REQUIRE(!estimate.empty(), "histogram estimate is empty");
  estimate_ = std::move(estimate);
  // Statistics-driven products depend on the histogram; drop them.  The
  // proxy raster itself depends only on pixels and stays, but the
  // per-target coarse probes go through the GHE memo.
  ghe_.clear();
  by_range_.clear();
  by_target_.clear();
  approx_by_target_.clear();
}

const hebs::image::FloatImage& FrameContext::reference_luminance() const {
  return evaluator().reference();
}

const hebs::quality::DistortionEvaluator& FrameContext::evaluator() const {
  if (!evaluator_.has_value()) {
    // The raster is built as a prvalue and moved into the evaluator —
    // the context stores the reference exactly once (the evaluator also
    // exposes it via reference()).
    evaluator_.emplace(bound16()
                           ? hebs::image::FloatImage::from_gray16(image16())
                           : hebs::image::FloatImage::from_gray(image()),
                       opts_.distortion);
  }
  return *evaluator_;
}

const hebs::power::PowerBreakdown& FrameContext::reference_power() const {
  if (!reference_power_.has_value()) {
    reference_power_ = model_.frame_power(exact_histogram(), 1.0);
  }
  return *reference_power_;
}

const hebs::transform::PwlCurve& FrameContext::ghe(
    const core::GheTarget& target) const {
  const auto key = std::make_pair(target.g_min, target.g_max);
  auto it = ghe_.find(key);
  if (it == ghe_.end()) {
    it = ghe_.emplace(key, core::ghe_transform(histogram(), target)).first;
  }
  return it->second;
}

namespace {

core::HebsResult& lookup_mutable(
    const FrameContext& ctx, int range,
    hebs::util::PoolMap<int, core::HebsResult*>& by_range,
    hebs::util::PoolMap<std::pair<int, int>, core::HebsResult>& by_target) {
  const auto range_it = by_range.find(range);
  if (range_it != by_range.end()) {
    obs::add(obs::Counter::kAtRangeHit);
    return *range_it->second;
  }
  // Ranges clamped by the image's brightest level collapse onto the same
  // effective target; share one pipeline run between them.  Entries are
  // stored lean (no transformed raster) — probes never need it.
  const core::GheTarget target = select_target(ctx, range);
  const auto key = std::make_pair(target.g_min, target.g_max);
  auto target_it = by_target.find(key);
  if (target_it == by_target.end()) {
    obs::add(obs::Counter::kAtRangeMiss);
    target_it =
        by_target.emplace(key, run_stages_at_range_lean(ctx, range)).first;
  } else {
    // A clamped-range alias of an already-run target still skipped the
    // pipeline run, which is what the hit/miss ratio measures.
    obs::add(obs::Counter::kAtRangeHit);
  }
  by_range.emplace(range, &target_it->second);
  return target_it->second;
}

}  // namespace

const core::HebsResult& FrameContext::at_range(int range) const {
  core::HebsResult& entry = lookup_mutable(*this, range, by_range_, by_target_);
  materialize_transformed(entry);
  return entry;
}

const core::HebsResult& FrameContext::at_range_lean(int range) const {
  return lookup_mutable(*this, range, by_range_, by_target_);
}

double FrameContext::distortion_at_range(int range) const {
  return at_range_lean(range).evaluation.distortion_percent;
}

namespace {

using core::displayed_levels;

/// F' = ψ(F) quantized to 8 bits, per level: identical to
/// lum.apply(img).to_gray() without expanding the double raster.
hebs::image::GrayImage quantize_displayed(const hebs::image::GrayImage& img,
                                          const hebs::transform::FloatLut& lum) {
  obs::ScopedSpan span(obs::Span::kLutApply);
  return lum.quantize().apply(img);
}

/// Deep-pixel twin: F' on the frame's own level lattice.
hebs::image::GrayImage16 quantize_displayed16(
    const hebs::image::GrayImage16& img,
    const hebs::transform::FloatLut& lum) {
  obs::ScopedSpan span(obs::Span::kLutApply);
  return lum.quantize16().apply(img);
}

}  // namespace

core::EvaluatedPoint FrameContext::evaluate(
    const core::OperatingPoint& point) const {
  const hebs::transform::FloatLut lum = displayed_levels(point, levels_);
  core::EvaluatedPoint out = evaluate_levels(point, lum);
  if (bound16()) {
    out.transformed16 = quantize_displayed16(image16(), lum);
  } else {
    out.transformed = quantize_displayed(image(), lum);
  }
  return out;
}

void FrameContext::materialize_transformed(core::HebsResult& result) const {
  materialize_transformed(result.evaluation);
}

void FrameContext::materialize_transformed(
    core::EvaluatedPoint& evaluation) const {
  if (bound16()) {
    if (!evaluation.transformed16.empty()) return;
    evaluation.transformed16 = quantize_displayed16(
        image16(), displayed_levels(evaluation.point, levels_));
    return;
  }
  if (!evaluation.transformed.empty()) return;
  evaluation.transformed =
      quantize_displayed(image(), displayed_levels(evaluation.point, levels_));
}

core::EvaluatedPoint FrameContext::evaluate_lean(
    const core::OperatingPoint& point) const {
  return evaluate_levels(point, displayed_levels(point, levels_));
}

namespace {

/// Proxy decimation factor: about 24 samples along the short side keeps
/// the proxy's distortion ranking faithful while shrinking the metric
/// work by k² (96x96 -> 24x24 at the default bench size).
constexpr int kProxyShortSideSamples = 24;

/// Breakpoint budget for the proxy-side PLC: the dynamic program is
/// quadratic in curve points, so coarsening Λ from a subsampled Φ costs
/// ~(64/256)² of the exact DP while still charging the probe for the
/// distortion the segment budget adds — the dominant bias of a pure
/// Λ≈Φ shortcut.
constexpr int kProxyCurvePoints = 64;

hebs::transform::PwlCurve proxy_lambda(const hebs::transform::PwlCurve& phi,
                                       int segments) {
  const auto& pts = phi.points();
  const std::size_t n = pts.size();
  if (n <= static_cast<std::size_t>(kProxyCurvePoints)) {
    return core::plc_coarsen(phi, segments).curve;
  }
  // Every index step is >= 1 (n > kProxyCurvePoints), so the subsampled
  // xs stay strictly increasing; endpoints are kept exactly.
  hebs::transform::PwlCurve::PointList sub;
  sub.reserve(static_cast<std::size_t>(kProxyCurvePoints));
  for (int s = 0; s < kProxyCurvePoints; ++s) {
    const std::size_t i = static_cast<std::size_t>(s) * (n - 1) /
                          static_cast<std::size_t>(kProxyCurvePoints - 1);
    sub.push_back(pts[i]);
  }
  return core::plc_coarsen(hebs::transform::PwlCurve(std::move(sub)), segments)
      .curve;
}

/// Smallest proxy the bound metric can evaluate (window metrics need at
/// least one full block per side).
int approx_min_dim(const hebs::quality::DistortionOptions& d) {
  switch (d.metric) {
    case hebs::quality::Metric::kUiqi:
    case hebs::quality::Metric::kUiqiHvs:
      return std::max(8, d.uiqi.block_size);
    case hebs::quality::Metric::kSsim:
    case hebs::quality::Metric::kSsimHvs:
      return std::max(8, d.ssim.block_size);
    case hebs::quality::Metric::kContrastFidelity:
      return std::max(8, d.contrast.block_size);
    case hebs::quality::Metric::kMsSsim:
      return std::max(8, d.ms_ssim.ssim.block_size);
    case hebs::quality::Metric::kRmse:
      return 8;
  }
  return 8;
}

}  // namespace

const FrameContext::ApproxState& FrameContext::approx() const {
  if (!approx_.has_value()) {
    ApproxState st;
    const int width = bound16() ? image16().width() : image().width();
    const int height = bound16() ? image16().height() : image().height();
    const int k = std::min(width, height) / kProxyShortSideSamples;
    if (k >= 2) {
      const int pw = (width - 1) / k + 1;
      const int ph = (height - 1) / k + 1;
      const int min_dim = approx_min_dim(opts_.distortion);
      if (pw >= min_dim && ph >= min_dim) {
        if (bound16()) {
          const auto& img = image16();
          hebs::image::GrayImage16 proxy(pw, ph, levels_);
          for (int y = 0; y < ph; ++y) {
            for (int x = 0; x < pw; ++x) {
              proxy(x, y) = img(x * k, y * k);
            }
          }
          st.proxy16 = std::move(proxy);
          st.evaluator.emplace(
              hebs::image::FloatImage::from_gray16(st.proxy16),
              opts_.distortion);
        } else {
          const auto& img = image();
          hebs::image::GrayImage proxy(pw, ph);
          for (int y = 0; y < ph; ++y) {
            for (int x = 0; x < pw; ++x) {
              proxy(x, y) = img(x * k, y * k);
            }
          }
          st.proxy = std::move(proxy);
          st.evaluator.emplace(
              hebs::image::FloatImage::from_gray(st.proxy), opts_.distortion);
        }
        st.usable = true;
      }
    }
    approx_ = std::move(st);
  }
  return *approx_;
}

std::optional<double> FrameContext::approx_distortion_mapped(
    const hebs::transform::FloatLut& levels) const {
  const ApproxState& ap = approx();
  if (!ap.usable) return std::nullopt;
  if (bound16()) return ap.evaluator->percent_mapped(ap.proxy16, levels);
  return ap.evaluator->percent_mapped(ap.proxy, levels);
}

std::optional<double> FrameContext::approx_distortion_at_range(
    int range) const {
  const ApproxState& ap = approx();
  if (!ap.usable) return std::nullopt;
  const core::GheTarget target = select_target(*this, range);
  const auto key = std::make_pair(target.g_min, target.g_max);
  auto it = approx_by_target_.find(key);
  if (it == approx_by_target_.end()) {
    const core::OperatingPoint point{
        proxy_lambda(phi_for_target(*this, target), opts_.segments),
        core::beta_for_gmax(target.g_max, opts_.min_beta, max_pixel())};
    const hebs::transform::FloatLut lum = displayed_levels(point, levels_);
    it = approx_by_target_
             .emplace(key, bound16()
                               ? ap.evaluator->percent_mapped(ap.proxy16, lum)
                               : ap.evaluator->percent_mapped(ap.proxy, lum))
             .first;
  }
  return it->second;
}

core::EvaluatedPoint FrameContext::evaluate_levels(
    const core::OperatingPoint& point,
    const hebs::transform::FloatLut& lum) const {
  HEBS_REQUIRE(bound16() ? !image16().empty() : !image().empty(),
               "cannot evaluate on an empty image");
  HEBS_REQUIRE(point.beta > 0.0 && point.beta <= 1.0,
               "beta must be in (0, 1]");

  core::EvaluatedPoint out;
  out.point = point;

  // Distortion through the cached evaluator's per-level fast path (the
  // displayed raster is a per-level map of the original).
  out.distortion_percent = bound16()
                               ? evaluator().percent_mapped(image16(), lum)
                               : evaluator().percent_mapped(image(), lum);

  // Power: CCFL at β plus panel power at the driven transmittances
  // t(x) = ψ(x)/β, weighted by the original histogram.
  const auto& hist = exact_histogram();
  double panel_watts = 0.0;
  for (int level = 0; level < hist.bins(); ++level) {
    const double t = util::clamp01(lum[level] / point.beta);
    panel_watts += model_.panel().pixel_power(t) *
                   static_cast<double>(hist.count(level));
  }
  panel_watts /= static_cast<double>(hist.total());
  out.power.ccfl_watts = model_.ccfl().power(point.beta);
  out.power.panel_watts = panel_watts;

  out.reference_power = reference_power();
  const double before = out.reference_power.total();
  HEBS_REQUIRE(before > 0.0, "reference frame consumes no power");
  out.saving_percent = 100.0 * (1.0 - out.power.total() / before);
  return out;
}

}  // namespace hebs::pipeline
