#include "pipeline/frame_context.h"

#include <algorithm>
#include <cmath>

#include "core/ghe.h"
#include "pipeline/stages.h"
#include "transform/lut.h"
#include "util/error.h"
#include "util/mathutil.h"

namespace hebs::pipeline {

FrameContext::FrameContext(core::HebsOptions opts,
                           hebs::power::LcdSubsystemPower model)
    : opts_(std::move(opts)), model_(std::move(model)) {}

FrameContext::FrameContext(const hebs::image::GrayImage& image,
                           core::HebsOptions opts,
                           hebs::power::LcdSubsystemPower model)
    : opts_(std::move(opts)), model_(std::move(model)) {
  rebind(image);
}

void FrameContext::rebind(const hebs::image::GrayImage& image) {
  image_ = &image;
  estimate_.reset();
  exact_hist_.reset();
  evaluator_.reset();
  reference_power_.reset();
  ghe_.clear();
  by_range_.clear();
  by_target_.clear();
}

void FrameContext::rebind_unchanged(const hebs::image::GrayImage& image) {
  HEBS_REQUIRE(image_ != nullptr && image_->width() == image.width() &&
                   image_->height() == image.height(),
               "rebind_unchanged needs a bound context of equal dimensions");
  // Caches stay: they depend only on pixel content (byte-identical by
  // the caller's contract), the options and the power model.
  image_ = &image;
}

void FrameContext::set_exact_histogram(hebs::histogram::Histogram hist) {
  HEBS_REQUIRE(image_ != nullptr, "FrameContext is not bound to a frame");
  HEBS_REQUIRE(hist.total() == image_->size(),
               "seeded histogram does not cover the frame");
  exact_hist_ = std::move(hist);
}

const hebs::image::GrayImage& FrameContext::image() const {
  HEBS_REQUIRE(image_ != nullptr, "FrameContext is not bound to a frame");
  return *image_;
}

const hebs::histogram::Histogram& FrameContext::histogram() const {
  if (estimate_.has_value()) return *estimate_;
  return exact_histogram();
}

const hebs::histogram::Histogram& FrameContext::exact_histogram() const {
  if (!exact_hist_.has_value()) {
    exact_hist_ = hebs::histogram::Histogram::from_image(image());
  }
  return *exact_hist_;
}

void FrameContext::set_histogram_estimate(
    hebs::histogram::Histogram estimate) {
  HEBS_REQUIRE(!estimate.empty(), "histogram estimate is empty");
  estimate_ = std::move(estimate);
  // Statistics-driven products depend on the histogram; drop them.
  ghe_.clear();
  by_range_.clear();
  by_target_.clear();
}

const hebs::image::FloatImage& FrameContext::reference_luminance() const {
  return evaluator().reference();
}

const hebs::quality::DistortionEvaluator& FrameContext::evaluator() const {
  if (!evaluator_.has_value()) {
    // The raster is built as a prvalue and moved into the evaluator —
    // the context stores the reference exactly once (the evaluator also
    // exposes it via reference()).
    evaluator_.emplace(hebs::image::FloatImage::from_gray(image()),
                       opts_.distortion);
  }
  return *evaluator_;
}

const hebs::power::PowerBreakdown& FrameContext::reference_power() const {
  if (!reference_power_.has_value()) {
    reference_power_ = model_.frame_power(exact_histogram(), 1.0);
  }
  return *reference_power_;
}

const hebs::transform::PwlCurve& FrameContext::ghe(
    const core::GheTarget& target) const {
  const auto key = std::make_pair(target.g_min, target.g_max);
  auto it = ghe_.find(key);
  if (it == ghe_.end()) {
    it = ghe_.emplace(key, core::ghe_transform(histogram(), target)).first;
  }
  return it->second;
}

namespace {

core::HebsResult& lookup_mutable(
    const FrameContext& ctx, int range,
    hebs::util::PoolMap<int, core::HebsResult*>& by_range,
    hebs::util::PoolMap<std::pair<int, int>, core::HebsResult>& by_target) {
  const auto range_it = by_range.find(range);
  if (range_it != by_range.end()) {
    return *range_it->second;
  }
  // Ranges clamped by the image's brightest level collapse onto the same
  // effective target; share one pipeline run between them.  Entries are
  // stored lean (no transformed raster) — probes never need it.
  const core::GheTarget target = select_target(ctx, range);
  const auto key = std::make_pair(target.g_min, target.g_max);
  auto target_it = by_target.find(key);
  if (target_it == by_target.end()) {
    target_it =
        by_target.emplace(key, run_stages_at_range_lean(ctx, range)).first;
  }
  by_range.emplace(range, &target_it->second);
  return target_it->second;
}

}  // namespace

const core::HebsResult& FrameContext::at_range(int range) const {
  core::HebsResult& entry = lookup_mutable(*this, range, by_range_, by_target_);
  materialize_transformed(entry);
  return entry;
}

const core::HebsResult& FrameContext::at_range_lean(int range) const {
  return lookup_mutable(*this, range, by_range_, by_target_);
}

double FrameContext::distortion_at_range(int range) const {
  return at_range_lean(range).evaluation.distortion_percent;
}

namespace {

using core::displayed_levels;

/// F' = ψ(F) quantized to 8 bits, per level: identical to
/// lum.apply(img).to_gray() without expanding the double raster.
hebs::image::GrayImage quantize_displayed(const hebs::image::GrayImage& img,
                                          const hebs::transform::FloatLut& lum) {
  return lum.quantize().apply(img);
}

}  // namespace

core::EvaluatedPoint FrameContext::evaluate(
    const core::OperatingPoint& point) const {
  const hebs::transform::FloatLut lum = displayed_levels(point);
  core::EvaluatedPoint out = evaluate_levels(point, lum);
  out.transformed = quantize_displayed(image(), lum);
  return out;
}

void FrameContext::materialize_transformed(core::HebsResult& result) const {
  materialize_transformed(result.evaluation);
}

void FrameContext::materialize_transformed(
    core::EvaluatedPoint& evaluation) const {
  if (!evaluation.transformed.empty()) return;
  evaluation.transformed =
      quantize_displayed(image(), displayed_levels(evaluation.point));
}

core::EvaluatedPoint FrameContext::evaluate_lean(
    const core::OperatingPoint& point) const {
  return evaluate_levels(point, displayed_levels(point));
}

core::EvaluatedPoint FrameContext::evaluate_levels(
    const core::OperatingPoint& point,
    const hebs::transform::FloatLut& lum) const {
  HEBS_REQUIRE(!image().empty(), "cannot evaluate on an empty image");
  HEBS_REQUIRE(point.beta > 0.0 && point.beta <= 1.0,
               "beta must be in (0, 1]");

  core::EvaluatedPoint out;
  out.point = point;

  // Distortion through the cached evaluator's per-level fast path (the
  // displayed raster is a per-level map of the original).
  out.distortion_percent = evaluator().percent_mapped(image(), lum);

  // Power: CCFL at β plus panel power at the driven transmittances
  // t(x) = ψ(x)/β, weighted by the original histogram.
  const auto& hist = exact_histogram();
  double panel_watts = 0.0;
  for (int level = 0; level < hebs::histogram::Histogram::kBins; ++level) {
    const double t = util::clamp01(lum[level] / point.beta);
    panel_watts += model_.panel().pixel_power(t) *
                   static_cast<double>(hist.count(level));
  }
  panel_watts /= static_cast<double>(hist.total());
  out.power.ccfl_watts = model_.ccfl().power(point.beta);
  out.power.panel_watts = panel_watts;

  out.reference_power = reference_power();
  const double before = out.reference_power.total();
  HEBS_REQUIRE(before > 0.0, "reference frame consumes no power");
  out.saving_percent = 100.0 * (1.0 - out.power.total() / before);
  return out;
}

}  // namespace hebs::pipeline
