// AVX2 backend: 256-bit lanes (4 doubles / 32 bytes per op).
//
// Compiled with -mavx2 in its own TU; reachable only through
// kernels::active() after runtime CPUID detection.  Techniques:
//   * histogram: eight independent sub-tables plus a 32-byte
//     uniform-run shortcut (breaks the same-bin store-to-load
//     dependency chains; integer, bit-exact);
//   * 8-bit LUT: 16-way VPSHUFB decomposition with block-local range
//     pruning — the 256-entry table splits into sixteen 16-byte chunks
//     selected by each byte's high nibble, and a 128-pixel block only
//     visits the chunks its byte min/max admits (locally smooth content
//     usually needs one or two);
//   * luma: 4 pixels per iteration in double lanes, same mul/add
//     association as the scalar reference (no FMA contraction);
//   * byte sums: VPSADBW against zero.
#if defined(HEBS_KERNELS_ENABLE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>
#include <limits>

#include "kernels/kernels.h"
#include "kernels/kernels_ref.h"
#include "kernels/kernels_tuned.h"

namespace hebs::kernels {

namespace {

void histogram_u8_avx2(const std::uint8_t* src, std::size_t n,
                       std::uint64_t* counts) {
  tuned::histogram_u8_runs<32>(src, n, counts, [](const std::uint8_t* p) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i first = _mm256_set1_epi8(static_cast<char>(p[0]));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, first));
    return mask == -1 ? static_cast<int>(p[0]) : -1;
  });
}

// Uniformity probe over 16 u16 samples (one 256-bit vector): the
// sample value when all sixteen equal p[0], else -1.
int uniform16_avx2(const std::uint16_t* p) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i first = _mm256_set1_epi16(static_cast<short>(p[0]));
  const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, first));
  return mask == -1 ? static_cast<int>(p[0]) : -1;
}

void histogram_u16_avx2(const std::uint16_t* src, std::size_t n,
                        std::uint64_t* counts) {
  tuned::histogram_u16_runs<16>(src, n, counts, &uniform16_avx2);
}

void lut_apply_u16_avx2(const std::uint16_t* src, std::size_t n,
                        const std::uint16_t* lut, std::uint16_t* dst) {
  tuned::lut_apply_u16_blocks<16>(
      src, n, lut, dst, &uniform16_avx2,
      [](std::uint16_t* out, std::uint16_t value) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                            _mm256_set1_epi16(static_cast<short>(value)));
      });
}

std::uint64_t sum_u16_avx2(const std::uint16_t* src, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t total = 0;
  std::size_t i = 0;
  const std::size_t vec_end = n - n % 16;
  while (i < vec_end) {
    // 32-bit lane accumulators: each iteration adds at most 2 * 65535
    // per lane, so draining every 2^14 iterations stays far below 2^32.
    const std::size_t stop = std::min(vec_end, i + std::size_t{16384} * 16);
    __m256i acc = _mm256_setzero_si256();
    for (; i < stop; i += 16) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      acc = _mm256_add_epi32(acc, _mm256_unpacklo_epi16(v, zero));
      acc = _mm256_add_epi32(acc, _mm256_unpackhi_epi16(v, zero));
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (const std::uint32_t lane : lanes) total += lane;
  }
  return total + ref::sum_u16(src + i, n - i);
}

/// Smallest/largest byte across four 256-bit vectors, via lane folds.
inline void minmax_epu8_4(__m256i v0, __m256i v1, __m256i v2, __m256i v3,
                          int* out_min, int* out_max) {
  const __m256i mn256 =
      _mm256_min_epu8(_mm256_min_epu8(v0, v1), _mm256_min_epu8(v2, v3));
  const __m256i mx256 =
      _mm256_max_epu8(_mm256_max_epu8(v0, v1), _mm256_max_epu8(v2, v3));
  __m128i mn = _mm_min_epu8(_mm256_castsi256_si128(mn256),
                            _mm256_extracti128_si256(mn256, 1));
  __m128i mx = _mm_max_epu8(_mm256_castsi256_si128(mx256),
                            _mm256_extracti128_si256(mx256, 1));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 8));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 4));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 2));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 1));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 8));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 4));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 2));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 1));
  *out_min = _mm_cvtsi128_si32(mn) & 0xFF;
  *out_max = _mm_cvtsi128_si32(mx) & 0xFF;
}

void lut_apply_u8_avx2(const std::uint8_t* src, std::size_t n,
                       const std::uint8_t* lut, std::uint8_t* dst) {
  if (n < 128) {
    ref::lut_apply_u8(src, n, lut, dst);
    return;
  }
  // 16-way VPSHUFB decomposition with block-local range pruning: the
  // 256-entry table splits into sixteen 16-byte chunks selected by each
  // byte's high nibble.  Image content is locally smooth, so a 128-px
  // block usually spans only a few high nibbles — the block's byte
  // min/max bounds which chunk selects can match, and the rest are
  // skipped.  Each byte matches exactly one chunk, so the blend order
  // is irrelevant and the result equals the scalar lookup exactly.
  __m256i chunks[16];
  for (int j = 0; j < 16; ++j) {
    chunks[j] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lut + 16 * j)));
  }
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    __m256i vs[4];
    for (int q = 0; q < 4; ++q) {
      vs[q] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + i + 32 * q));
    }
    int mn = 0;
    int mx = 0;
    minmax_epu8_4(vs[0], vs[1], vs[2], vs[3], &mn, &mx);
    const int jlo = mn >> 4;
    const int jhi = mx >> 4;
    for (int q = 0; q < 4; ++q) {
      const __m256i lo = _mm256_and_si256(vs[q], nibble);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(vs[q], 4), nibble);
      __m256i acc = _mm256_shuffle_epi8(chunks[jlo], lo);
      for (int j = jlo + 1; j <= jhi; ++j) {
        const __m256i mask =
            _mm256_cmpeq_epi8(hi, _mm256_set1_epi8(static_cast<char>(j)));
        acc = _mm256_blendv_epi8(acc, _mm256_shuffle_epi8(chunks[j], lo),
                                 mask);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32 * q), acc);
    }
  }
  if (i < n) ref::lut_apply_u8(src + i, n - i, lut, dst + i);
}

// The interleaved color raster is bytes through the same shared table,
// so the rgb8 entry rides the range-pruned VPSHUFB path directly (a
// sub-pixel byte and a gray byte look identical to the LUT).
void lut_apply_rgb8_avx2(const std::uint8_t* rgb, std::size_t n_pixels,
                         const std::uint8_t* lut, std::uint8_t* dst) {
  lut_apply_u8_avx2(rgb, 3 * n_pixels, lut, dst);
}

void luma_bt601_rgb8_avx2(const std::uint8_t* rgb, std::size_t n,
                          std::uint8_t* dst) {
  const __m256d cr = _mm256_set1_pd(0.299);
  const __m256d cg = _mm256_set1_pd(0.587);
  const __m256d cb = _mm256_set1_pd(0.114);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lo = _mm256_setzero_pd();
  const __m256d hi = _mm256_set1_pd(255.0);
  const __m128i pack =
      _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                    -1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t* p = rgb + 3 * i;
    const __m256d r = _mm256_setr_pd(p[0], p[3], p[6], p[9]);
    const __m256d g = _mm256_setr_pd(p[1], p[4], p[7], p[10]);
    const __m256d b = _mm256_setr_pd(p[2], p[5], p[8], p[11]);
    __m256d l = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(r, cr), _mm256_mul_pd(g, cg)),
        _mm256_mul_pd(b, cb));
    // floor(x + 0.5) == round-half-away over the whole BT.601 domain
    // (verified exhaustively in the parity test).
    l = _mm256_floor_pd(_mm256_add_pd(l, half));
    l = _mm256_min_pd(_mm256_max_pd(l, lo), hi);
    const __m128i q = _mm256_cvtpd_epi32(l);  // values integral: exact
    const int packed = _mm_cvtsi128_si32(_mm_shuffle_epi8(q, pack));
    std::memcpy(dst + i, &packed, 4);
  }
  if (i < n) ref::luma_bt601_rgb8(rgb + 3 * i, n - i, dst + i);
}

std::uint64_t sum_u8_avx2(const std::uint8_t* src, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  const __m128i lo128 = _mm256_castsi256_si128(acc);
  const __m128i hi128 = _mm256_extracti128_si256(acc, 1);
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm_extract_epi64(lo128, 0)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(lo128, 1)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(hi128, 0)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(hi128, 1));
  return total + ref::sum_u8(src + i, n - i);
}

// f64 LUT gathers were measured slower than the scalar two-load loop
// on this generation's VPGATHERDPD (the table lives in L1 either way),
// so the f64 lookup stays on the reference loop.  mul_f64/saxpy_f64 are
// likewise pinned to the reference loops: one multiply (or FMA-less
// multiply-add) per 8-byte element is memory-bound, and BENCH_kernels
// measured the 256-bit versions at parity with scalar (DESIGN.md §8).

void blur_row_f64_avx2(const double* src, double* dst, int w,
                       const double* taps, int radius) {
  const int x_lo = std::min(radius, w);
  const int x_hi = std::max(x_lo, w - radius);
  for (int x = 0; x < x_lo; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
  int x = x_lo;
  for (; x + 4 <= x_hi; x += 4) {
    __m256d acc = _mm256_setzero_pd();
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) {
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_set1_pd(taps[k]), _mm256_loadu_pd(in + k)));
    }
    _mm256_storeu_pd(dst + x, acc);
  }
  for (; x < x_hi; ++x) {
    double acc = 0.0;
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) acc += taps[k] * in[k];
    dst[x] = acc;
  }
  for (x = x_hi; x < w; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
}

void blur_col_f64_avx2(const double* src, int w, int h, int y,
                       const double* taps, int radius, double* out_row) {
  const bool interior = y >= radius && y + radius < h;
  int x = 0;
  for (; x + 4 <= w; x += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc = _mm256_add_pd(
          acc,
          _mm256_mul_pd(_mm256_set1_pd(taps[k]),
                        _mm256_loadu_pd(src + static_cast<std::size_t>(yy) * w +
                                        x)));
    }
    _mm256_storeu_pd(out_row + x, acc);
  }
  for (; x < w; ++x) {
    double acc = 0.0;
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc += taps[k] * src[static_cast<std::size_t>(yy) * w + x];
    }
    out_row[x] = acc;
  }
}

void uiqi_q_row_f64_avx2(const double* mean_a, const double* var_a,
                         const double* b_top, const double* b_bot,
                         const double* bb_top, const double* bb_bot,
                         const double* ab_top, const double* ab_bot,
                         std::size_t n_win, int block, double n_px,
                         double* q_out) {
  // Four windows per iteration.  Every lane performs exactly the scalar
  // reference's IEEE operation sequence (separate mul/add, no FMA); the
  // q branches become masked blends, so the divisions in dead lanes
  // (inf/NaN) are discarded without affecting live lanes.
  const auto b = static_cast<std::size_t>(block);
  const __m256d vn = _mm256_set1_pd(n_px);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d four = _mm256_set1_pd(4.0);
  std::size_t x = 0;
  for (; x + 4 <= n_win; x += 4) {
    const auto rect = [&](const double* top, const double* bot) {
      // bot[x+b] - bot[x] - top[x+b] + top[x], the rect_sum term order.
      return _mm256_add_pd(
          _mm256_sub_pd(_mm256_sub_pd(_mm256_loadu_pd(bot + x + b),
                                      _mm256_loadu_pd(bot + x)),
                        _mm256_loadu_pd(top + x + b)),
          _mm256_loadu_pd(top + x));
    };
    const __m256d rect_b = rect(b_top, b_bot);
    const __m256d rect_bb = rect(bb_top, bb_bot);
    const __m256d rect_ab = rect(ab_top, ab_bot);
    const __m256d ma = _mm256_loadu_pd(mean_a + x);
    const __m256d va = _mm256_loadu_pd(var_a + x);
    const __m256d mb = _mm256_div_pd(rect_b, vn);
    __m256d vb =
        _mm256_sub_pd(_mm256_div_pd(rect_bb, vn), _mm256_mul_pd(mb, mb));
    const __m256d cov =
        _mm256_sub_pd(_mm256_div_pd(rect_ab, vn), _mm256_mul_pd(ma, mb));
    // if (var_b < 0) var_b = 0 — a compare/blend, not max_pd, so the
    // -0.0 case keeps the scalar semantics exactly.
    vb = _mm256_blendv_pd(vb, zero, _mm256_cmp_pd(vb, zero, _CMP_LT_OQ));
    const __m256d mean_prod = _mm256_mul_pd(ma, mb);
    const __m256d denom1 =
        _mm256_add_pd(_mm256_mul_pd(ma, ma), _mm256_mul_pd(mb, mb));
    const __m256d denom2 = _mm256_add_pd(va, vb);
    const __m256d d12 = _mm256_mul_pd(denom1, denom2);
    const __m256d q_main = _mm256_div_pd(
        _mm256_mul_pd(_mm256_mul_pd(four, cov), mean_prod), d12);
    const __m256d q_mean =
        _mm256_div_pd(_mm256_mul_pd(two, mean_prod), denom1);
    __m256d q = _mm256_blendv_pd(one, q_mean,
                                 _mm256_cmp_pd(denom1, zero, _CMP_GT_OQ));
    q = _mm256_blendv_pd(q, q_main, _mm256_cmp_pd(d12, zero, _CMP_GT_OQ));
    _mm256_storeu_pd(q_out + x, q);
  }
  if (x < n_win) {
    ref::uiqi_q_row_f64(mean_a + x, var_a + x, b_top + x, b_bot + x,
                        bb_top + x, bb_bot + x, ab_top + x, ab_bot + x,
                        n_win - x, block, n_px, q_out + x);
  }
}

double plc_scan_f64_avx2(const PlcScanArgs* args, std::size_t* out_j) {
  const PlcScanArgs& a = *args;
  if (a.i - a.j_begin < 8) return ref::plc_scan_f64(args, out_j);

  // The scalar seed candidate starts the prune bound; a block whose
  // smallest prev[] strictly exceeds the bound cannot contain the
  // argmin (candidate >= prev, ties at the bound are never pruned), so
  // it is skipped whole.  The bound is a stale-but-safe upper estimate
  // of the running best, refreshed by a horizontal fold every few
  // blocks.
  std::size_t seed_j = a.j_seed;
  const double seed_best = a.prev[seed_j] + ref::plc_chord_err(a, seed_j);
  double bound = seed_best;

  const __m256d vpix = _mm256_set1_pd(a.pix);
  const __m256d vpiy = _mm256_set1_pd(a.piy);
  const __m256d vsxi = _mm256_set1_pd(a.sxi);
  const __m256d vsyi = _mm256_set1_pd(a.syi);
  const __m256d vsxxi = _mm256_set1_pd(a.sxxi);
  const __m256d vsyyi = _mm256_set1_pd(a.syyi);
  const __m256d vsxyi = _mm256_set1_pd(a.sxyi);
  const __m256d vip1 = _mm256_set1_pd(static_cast<double>(a.i + 1));
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());

  // Lane l accumulates the lowest-j argmin over its j ≡ l (mod 4)
  // subsequence: within a lane j only grows, so a strict `<` keeps the
  // earliest j automatically.
  __m256d vbest = inf;
  __m256d vbestj = zero;
  const std::size_t jb = a.j_begin;
  __m256d vj = _mm256_setr_pd(
      static_cast<double>(jb), static_cast<double>(jb + 1),
      static_cast<double>(jb + 2), static_cast<double>(jb + 3));
  const __m256d vj_step = _mm256_set1_pd(4.0);

  std::size_t j = jb;
  int blocks_since_refresh = 0;
  for (; j + 4 <= a.i; j += 4, vj = _mm256_add_pd(vj, vj_step)) {
    const __m256d prev = _mm256_loadu_pd(a.prev + j);
    // Block prune: skip when even the smallest prev[] strictly exceeds
    // the (stale >= true best) bound.
    __m128d m01 = _mm_min_pd(_mm256_castpd256_pd128(prev),
                             _mm256_extractf128_pd(prev, 1));
    m01 = _mm_min_sd(m01, _mm_unpackhi_pd(m01, m01));
    if (_mm_cvtsd_f64(m01) > bound) continue;

    const __m256d pjx = _mm256_loadu_pd(a.px + j);
    const __m256d pjy = _mm256_loadu_pd(a.py + j);
    const __m256d s =
        _mm256_div_pd(_mm256_sub_pd(vpiy, pjy), _mm256_sub_pd(vpix, pjx));
    // n = i - j + 1; both operands are exact small integers in double.
    const __m256d n = _mm256_sub_pd(vip1, vj);
    const __m256d sum_x = _mm256_sub_pd(vsxi, _mm256_loadu_pd(a.sx + j));
    const __m256d sum_y = _mm256_sub_pd(vsyi, _mm256_loadu_pd(a.sy + j));
    const __m256d sum_xx = _mm256_sub_pd(vsxxi, _mm256_loadu_pd(a.sxx + j));
    const __m256d sum_yy = _mm256_sub_pd(vsyyi, _mm256_loadu_pd(a.syy + j));
    const __m256d sum_xy = _mm256_sub_pd(vsxyi, _mm256_loadu_pd(a.sxy + j));
    // Identical association to the scalar reference: each `x*y*z`
    // groups as `(x*y)*z`, each `a - b + c` as `(a - b) + c`.
    const __m256d sum_dyy = _mm256_add_pd(
        _mm256_sub_pd(sum_yy,
                      _mm256_mul_pd(_mm256_mul_pd(two, pjy), sum_y)),
        _mm256_mul_pd(_mm256_mul_pd(n, pjy), pjy));
    const __m256d sum_dxx = _mm256_add_pd(
        _mm256_sub_pd(sum_xx,
                      _mm256_mul_pd(_mm256_mul_pd(two, pjx), sum_x)),
        _mm256_mul_pd(_mm256_mul_pd(n, pjx), pjx));
    const __m256d sum_dxy = _mm256_add_pd(
        _mm256_sub_pd(_mm256_sub_pd(sum_xy, _mm256_mul_pd(pjx, sum_y)),
                      _mm256_mul_pd(pjy, sum_x)),
        _mm256_mul_pd(_mm256_mul_pd(n, pjx), pjy));
    __m256d err = _mm256_add_pd(
        _mm256_sub_pd(sum_dyy,
                      _mm256_mul_pd(_mm256_mul_pd(two, s), sum_dxy)),
        _mm256_mul_pd(_mm256_mul_pd(s, s), sum_dxx));
    // err > 0 ? err : 0.0 — masking to +0.0 matches the scalar branch.
    err = _mm256_and_pd(err, _mm256_cmp_pd(err, zero, _CMP_GT_OQ));
    const __m256d cand = _mm256_add_pd(prev, err);
    const __m256d lt = _mm256_cmp_pd(cand, vbest, _CMP_LT_OQ);
    vbest = _mm256_blendv_pd(vbest, cand, lt);
    vbestj = _mm256_blendv_pd(vbestj, vj, lt);

    if (++blocks_since_refresh == 16) {
      blocks_since_refresh = 0;
      __m128d b01 = _mm_min_pd(_mm256_castpd256_pd128(vbest),
                               _mm256_extractf128_pd(vbest, 1));
      b01 = _mm_min_sd(b01, _mm_unpackhi_pd(b01, b01));
      const double lane_min = _mm_cvtsd_f64(b01);
      if (lane_min < bound) bound = lane_min;
    }
  }

  // Fold the lanes (lexicographic min on (value, j) — the global
  // lowest-j argmin), then the seed candidate and the scalar tail.
  double best_v[4];
  double best_j[4];
  _mm256_storeu_pd(best_v, vbest);
  _mm256_storeu_pd(best_j, vbestj);
  double row_best = seed_best;
  std::size_t row_parent = seed_j;
  for (int l = 0; l < 4; ++l) {
    const auto lj = static_cast<std::size_t>(best_j[l]);
    if (best_v[l] < row_best ||
        (best_v[l] == row_best && lj < row_parent)) {
      row_best = best_v[l];
      row_parent = lj;
    }
  }
  for (; j < a.i; ++j) {
    if (a.prev[j] > row_best ||
        (a.prev[j] == row_best && j >= row_parent)) {
      continue;
    }
    const double candidate = a.prev[j] + ref::plc_chord_err(a, j);
    if (candidate < row_best ||
        (candidate == row_best && j < row_parent)) {
      row_best = candidate;
      row_parent = j;
    }
  }
  *out_j = row_parent;
  return row_best;
}

}  // namespace

const KernelSet* kernelset_avx2() {
  static const KernelSet set = {
      "avx2",
      "AVX2: 256-bit lanes, range-pruned VPSHUFB LUT, SAD sums",
      &histogram_u8_avx2,
      &lut_apply_u8_avx2,
      &lut_apply_rgb8_avx2,
      &luma_bt601_rgb8_avx2,
      &sum_u8_avx2,
      &histogram_u16_avx2,
      &lut_apply_u16_avx2,
      &sum_u16_avx2,
      &ref::lut_apply_f64,
      &ref::mul_f64,
      &ref::saxpy_f64,
      &blur_row_f64_avx2,
      &blur_col_f64_avx2,
      &ref::sum_f64,
      &ref::prefix_row_f64,
      &ref::window_sums_single_f64,
      &ref::window_sums_pair_f64,
      &uiqi_q_row_f64_avx2,
      &plc_scan_f64_avx2,
  };
  return &set;
}

}  // namespace hebs::kernels

#endif  // HEBS_KERNELS_ENABLE_AVX2 && __AVX2__
