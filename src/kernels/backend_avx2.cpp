// AVX2 backend: 256-bit lanes (4 doubles / 32 bytes per op).
//
// Compiled with -mavx2 in its own TU; reachable only through
// kernels::active() after runtime CPUID detection.  Techniques:
//   * histogram: eight independent sub-tables plus a 32-byte
//     uniform-run shortcut (breaks the same-bin store-to-load
//     dependency chains; integer, bit-exact);
//   * 8-bit LUT: 16-way VPSHUFB decomposition with block-local range
//     pruning — the 256-entry table splits into sixteen 16-byte chunks
//     selected by each byte's high nibble, and a 128-pixel block only
//     visits the chunks its byte min/max admits (locally smooth content
//     usually needs one or two);
//   * luma: 4 pixels per iteration in double lanes, same mul/add
//     association as the scalar reference (no FMA contraction);
//   * byte sums: VPSADBW against zero.
#if defined(HEBS_KERNELS_ENABLE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "kernels/kernels.h"
#include "kernels/kernels_ref.h"
#include "kernels/kernels_tuned.h"

namespace hebs::kernels {

namespace {

void histogram_u8_avx2(const std::uint8_t* src, std::size_t n,
                       std::uint64_t* counts) {
  tuned::histogram_u8_runs<32>(src, n, counts, [](const std::uint8_t* p) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i first = _mm256_set1_epi8(static_cast<char>(p[0]));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, first));
    return mask == -1 ? static_cast<int>(p[0]) : -1;
  });
}

/// Smallest/largest byte across four 256-bit vectors, via lane folds.
inline void minmax_epu8_4(__m256i v0, __m256i v1, __m256i v2, __m256i v3,
                          int* out_min, int* out_max) {
  const __m256i mn256 =
      _mm256_min_epu8(_mm256_min_epu8(v0, v1), _mm256_min_epu8(v2, v3));
  const __m256i mx256 =
      _mm256_max_epu8(_mm256_max_epu8(v0, v1), _mm256_max_epu8(v2, v3));
  __m128i mn = _mm_min_epu8(_mm256_castsi256_si128(mn256),
                            _mm256_extracti128_si256(mn256, 1));
  __m128i mx = _mm_max_epu8(_mm256_castsi256_si128(mx256),
                            _mm256_extracti128_si256(mx256, 1));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 8));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 4));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 2));
  mn = _mm_min_epu8(mn, _mm_srli_si128(mn, 1));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 8));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 4));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 2));
  mx = _mm_max_epu8(mx, _mm_srli_si128(mx, 1));
  *out_min = _mm_cvtsi128_si32(mn) & 0xFF;
  *out_max = _mm_cvtsi128_si32(mx) & 0xFF;
}

void lut_apply_u8_avx2(const std::uint8_t* src, std::size_t n,
                       const std::uint8_t* lut, std::uint8_t* dst) {
  if (n < 128) {
    ref::lut_apply_u8(src, n, lut, dst);
    return;
  }
  // 16-way VPSHUFB decomposition with block-local range pruning: the
  // 256-entry table splits into sixteen 16-byte chunks selected by each
  // byte's high nibble.  Image content is locally smooth, so a 128-px
  // block usually spans only a few high nibbles — the block's byte
  // min/max bounds which chunk selects can match, and the rest are
  // skipped.  Each byte matches exactly one chunk, so the blend order
  // is irrelevant and the result equals the scalar lookup exactly.
  __m256i chunks[16];
  for (int j = 0; j < 16; ++j) {
    chunks[j] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lut + 16 * j)));
  }
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    __m256i vs[4];
    for (int q = 0; q < 4; ++q) {
      vs[q] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + i + 32 * q));
    }
    int mn = 0;
    int mx = 0;
    minmax_epu8_4(vs[0], vs[1], vs[2], vs[3], &mn, &mx);
    const int jlo = mn >> 4;
    const int jhi = mx >> 4;
    for (int q = 0; q < 4; ++q) {
      const __m256i lo = _mm256_and_si256(vs[q], nibble);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(vs[q], 4), nibble);
      __m256i acc = _mm256_shuffle_epi8(chunks[jlo], lo);
      for (int j = jlo + 1; j <= jhi; ++j) {
        const __m256i mask =
            _mm256_cmpeq_epi8(hi, _mm256_set1_epi8(static_cast<char>(j)));
        acc = _mm256_blendv_epi8(acc, _mm256_shuffle_epi8(chunks[j], lo),
                                 mask);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32 * q), acc);
    }
  }
  if (i < n) ref::lut_apply_u8(src + i, n - i, lut, dst + i);
}

// The interleaved color raster is bytes through the same shared table,
// so the rgb8 entry rides the range-pruned VPSHUFB path directly (a
// sub-pixel byte and a gray byte look identical to the LUT).
void lut_apply_rgb8_avx2(const std::uint8_t* rgb, std::size_t n_pixels,
                         const std::uint8_t* lut, std::uint8_t* dst) {
  lut_apply_u8_avx2(rgb, 3 * n_pixels, lut, dst);
}

void luma_bt601_rgb8_avx2(const std::uint8_t* rgb, std::size_t n,
                          std::uint8_t* dst) {
  const __m256d cr = _mm256_set1_pd(0.299);
  const __m256d cg = _mm256_set1_pd(0.587);
  const __m256d cb = _mm256_set1_pd(0.114);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lo = _mm256_setzero_pd();
  const __m256d hi = _mm256_set1_pd(255.0);
  const __m128i pack =
      _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                    -1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t* p = rgb + 3 * i;
    const __m256d r = _mm256_setr_pd(p[0], p[3], p[6], p[9]);
    const __m256d g = _mm256_setr_pd(p[1], p[4], p[7], p[10]);
    const __m256d b = _mm256_setr_pd(p[2], p[5], p[8], p[11]);
    __m256d l = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(r, cr), _mm256_mul_pd(g, cg)),
        _mm256_mul_pd(b, cb));
    // floor(x + 0.5) == round-half-away over the whole BT.601 domain
    // (verified exhaustively in the parity test).
    l = _mm256_floor_pd(_mm256_add_pd(l, half));
    l = _mm256_min_pd(_mm256_max_pd(l, lo), hi);
    const __m128i q = _mm256_cvtpd_epi32(l);  // values integral: exact
    const int packed = _mm_cvtsi128_si32(_mm_shuffle_epi8(q, pack));
    std::memcpy(dst + i, &packed, 4);
  }
  if (i < n) ref::luma_bt601_rgb8(rgb + 3 * i, n - i, dst + i);
}

std::uint64_t sum_u8_avx2(const std::uint8_t* src, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  const __m128i lo128 = _mm256_castsi256_si128(acc);
  const __m128i hi128 = _mm256_extracti128_si256(acc, 1);
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm_extract_epi64(lo128, 0)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(lo128, 1)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(hi128, 0)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(hi128, 1));
  return total + ref::sum_u8(src + i, n - i);
}

// f64 LUT gathers were measured slower than the scalar two-load loop
// on this generation's VPGATHERDPD (the table lives in L1 either way),
// so the f64 lookup stays on the reference loop.  mul_f64/saxpy_f64 are
// likewise pinned to the reference loops: one multiply (or FMA-less
// multiply-add) per 8-byte element is memory-bound, and BENCH_kernels
// measured the 256-bit versions at parity with scalar (DESIGN.md §8).

void blur_row_f64_avx2(const double* src, double* dst, int w,
                       const double* taps, int radius) {
  const int x_lo = std::min(radius, w);
  const int x_hi = std::max(x_lo, w - radius);
  for (int x = 0; x < x_lo; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
  int x = x_lo;
  for (; x + 4 <= x_hi; x += 4) {
    __m256d acc = _mm256_setzero_pd();
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) {
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_set1_pd(taps[k]), _mm256_loadu_pd(in + k)));
    }
    _mm256_storeu_pd(dst + x, acc);
  }
  for (; x < x_hi; ++x) {
    double acc = 0.0;
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) acc += taps[k] * in[k];
    dst[x] = acc;
  }
  for (x = x_hi; x < w; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
}

void blur_col_f64_avx2(const double* src, int w, int h, int y,
                       const double* taps, int radius, double* out_row) {
  const bool interior = y >= radius && y + radius < h;
  int x = 0;
  for (; x + 4 <= w; x += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc = _mm256_add_pd(
          acc,
          _mm256_mul_pd(_mm256_set1_pd(taps[k]),
                        _mm256_loadu_pd(src + static_cast<std::size_t>(yy) * w +
                                        x)));
    }
    _mm256_storeu_pd(out_row + x, acc);
  }
  for (; x < w; ++x) {
    double acc = 0.0;
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc += taps[k] * src[static_cast<std::size_t>(yy) * w + x];
    }
    out_row[x] = acc;
  }
}

}  // namespace

const KernelSet* kernelset_avx2() {
  static const KernelSet set = {
      "avx2",
      "AVX2: 256-bit lanes, range-pruned VPSHUFB LUT, SAD sums",
      &histogram_u8_avx2,
      &lut_apply_u8_avx2,
      &lut_apply_rgb8_avx2,
      &luma_bt601_rgb8_avx2,
      &sum_u8_avx2,
      &ref::lut_apply_f64,
      &ref::mul_f64,
      &ref::saxpy_f64,
      &blur_row_f64_avx2,
      &blur_col_f64_avx2,
      &ref::sum_f64,
      &ref::prefix_row_f64,
      &ref::window_sums_single_f64,
      &ref::window_sums_pair_f64,
  };
  return &set;
}

}  // namespace hebs::kernels

#endif  // HEBS_KERNELS_ENABLE_AVX2 && __AVX2__
