// NEON (AArch64 AdvSIMD) backend: 128-bit lanes, 2 doubles per op.
//
// AdvSIMD is architecturally mandatory on AArch64, so this backend is
// always supported where it is compiled.  Float kernels issue the same
// IEEE mul/add sequence per element as the scalar reference (vmul/vadd,
// never vfma), and FRINTA implements exactly std::round's
// ties-away-from-zero, so outputs are bit-identical to scalar.
#if defined(HEBS_KERNELS_ENABLE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include "kernels/kernels.h"
#include "kernels/kernels_ref.h"
#include "kernels/kernels_tuned.h"

namespace hebs::kernels {

namespace {

void histogram_u8_neon(const std::uint8_t* src, std::size_t n,
                       std::uint64_t* counts) {
  tuned::histogram_u8_runs<16>(src, n, counts, [](const std::uint8_t* p) {
    const uint8x16_t v = vld1q_u8(p);
    const std::uint8_t lo = vminvq_u8(v);
    const std::uint8_t hi = vmaxvq_u8(v);
    return lo == hi ? static_cast<int>(lo) : -1;
  });
}

// Uniformity probe over 16 u16 samples (two 128-bit vectors): the
// sample value when all sixteen equal p[0], else -1.
int uniform16_neon(const std::uint16_t* p) {
  const uint16x8_t a = vld1q_u16(p);
  const uint16x8_t b = vld1q_u16(p + 8);
  const uint16x8_t mn = vminq_u16(a, b);
  const uint16x8_t mx = vmaxq_u16(a, b);
  const std::uint16_t lo = vminvq_u16(mn);
  const std::uint16_t hi = vmaxvq_u16(mx);
  return lo == hi ? static_cast<int>(lo) : -1;
}

void histogram_u16_neon(const std::uint16_t* src, std::size_t n,
                        std::uint64_t* counts) {
  tuned::histogram_u16_runs<16>(src, n, counts, &uniform16_neon);
}

void lut_apply_u16_neon(const std::uint16_t* src, std::size_t n,
                        const std::uint16_t* lut, std::uint16_t* dst) {
  tuned::lut_apply_u16_blocks<16>(
      src, n, lut, dst, &uniform16_neon,
      [](std::uint16_t* out, std::uint16_t value) {
        const uint16x8_t v = vdupq_n_u16(value);
        vst1q_u16(out, v);
        vst1q_u16(out + 8, v);
      });
}

std::uint64_t sum_u16_neon(const std::uint16_t* src, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    total += vaddlvq_u16(vld1q_u16(src + i));
  }
  return total + ref::sum_u16(src + i, n - i);
}

void luma_bt601_rgb8_neon(const std::uint8_t* rgb, std::size_t n,
                          std::uint8_t* dst) {
  const float64x2_t cr = vdupq_n_f64(0.299);
  const float64x2_t cg = vdupq_n_f64(0.587);
  const float64x2_t cb = vdupq_n_f64(0.114);
  const float64x2_t lo = vdupq_n_f64(0.0);
  const float64x2_t hi = vdupq_n_f64(255.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint8_t* p = rgb + 3 * i;
    const float64x2_t r = vsetq_lane_f64(
        static_cast<double>(p[3]),
        vdupq_n_f64(static_cast<double>(p[0])), 1);
    const float64x2_t g = vsetq_lane_f64(
        static_cast<double>(p[4]),
        vdupq_n_f64(static_cast<double>(p[1])), 1);
    const float64x2_t b = vsetq_lane_f64(
        static_cast<double>(p[5]),
        vdupq_n_f64(static_cast<double>(p[2])), 1);
    // ((0.299 r) + (0.587 g)) + (0.114 b), the scalar association.
    float64x2_t l =
        vaddq_f64(vaddq_f64(vmulq_f64(r, cr), vmulq_f64(g, cg)),
                  vmulq_f64(b, cb));
    l = vrndaq_f64(l);  // FRINTA: ties away from zero == std::round
    l = vminq_f64(vmaxq_f64(l, lo), hi);
    dst[i] = static_cast<std::uint8_t>(vgetq_lane_f64(l, 0));
    dst[i + 1] = static_cast<std::uint8_t>(vgetq_lane_f64(l, 1));
  }
  if (i < n) ref::luma_bt601_rgb8(rgb + 3 * i, n - i, dst + i);
}

std::uint64_t sum_u8_neon(const std::uint8_t* src, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    total += vaddlvq_u8(vld1q_u8(src + i));
  }
  return total + ref::sum_u8(src + i, n - i);
}

// mul_f64/saxpy_f64 are pinned to the scalar reference loops: both are
// memory-bound at one 8-byte element per multiply, and the x86 backends
// measured their 128/256-bit versions at parity with scalar — the same
// arithmetic-to-bandwidth ratio applies here (DESIGN.md §8).

void blur_row_f64_neon(const double* src, double* dst, int w,
                       const double* taps, int radius) {
  const int x_lo = std::min(radius, w);
  const int x_hi = std::max(x_lo, w - radius);
  for (int x = 0; x < x_lo; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
  int x = x_lo;
  for (; x + 2 <= x_hi; x += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) {
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(taps[k]),
                                     vld1q_f64(in + k)));
    }
    vst1q_f64(dst + x, acc);
  }
  for (; x < x_hi; ++x) {
    double acc = 0.0;
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) acc += taps[k] * in[k];
    dst[x] = acc;
  }
  for (x = x_hi; x < w; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
}

void blur_col_f64_neon(const double* src, int w, int h, int y,
                       const double* taps, int radius, double* out_row) {
  const bool interior = y >= radius && y + radius < h;
  int x = 0;
  for (; x + 2 <= w; x += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc = vaddq_f64(
          acc, vmulq_f64(vdupq_n_f64(taps[k]),
                         vld1q_f64(src + static_cast<std::size_t>(yy) * w +
                                   x)));
    }
    vst1q_f64(out_row + x, acc);
  }
  for (; x < w; ++x) {
    double acc = 0.0;
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc += taps[k] * src[static_cast<std::size_t>(yy) * w + x];
    }
    out_row[x] = acc;
  }
}

}  // namespace

const KernelSet* kernelset_neon() {
  static const KernelSet set = {
      "neon",
      "AArch64 AdvSIMD: 128-bit lanes, FRINTA rounding, ADDLV byte sums",
      &histogram_u8_neon,
      &ref::lut_apply_u8,
      &ref::lut_apply_rgb8,
      &luma_bt601_rgb8_neon,
      &sum_u8_neon,
      &histogram_u16_neon,
      &lut_apply_u16_neon,
      &sum_u16_neon,
      &ref::lut_apply_f64,
      &ref::mul_f64,
      &ref::saxpy_f64,
      &blur_row_f64_neon,
      &blur_col_f64_neon,
      &ref::sum_f64,
      &ref::prefix_row_f64,
      &ref::window_sums_single_f64,
      &ref::window_sums_pair_f64,
      // Two-double q lanes / DP lanes don't amortize the blend and
      // horizontal-fold overhead (same call as SSE4.2); reference loops.
      &ref::uiqi_q_row_f64,
      &ref::plc_scan_f64,
  };
  return &set;
}

}  // namespace hebs::kernels

#endif  // HEBS_KERNELS_ENABLE_NEON && __aarch64__
