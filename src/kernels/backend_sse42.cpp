// SSE4.2 backend: 128-bit lanes (2 doubles / 16 bytes per op).
//
// This TU is compiled with -msse4.2 while the rest of the library stays
// at the baseline ISA; it must therefore contain no code reachable
// without a runtime dispatch through kernels::active().  Float kernels
// issue the same IEEE mul/add sequence per element as the scalar
// reference (intrinsics are never contracted into FMA), so outputs are
// bit-identical.
#if defined(HEBS_KERNELS_ENABLE_SSE42) && defined(__SSE4_2__)

#include <nmmintrin.h>

#include "kernels/kernels.h"
#include "kernels/kernels_ref.h"
#include "kernels/kernels_tuned.h"

namespace hebs::kernels {

namespace {

void histogram_u8_sse42(const std::uint8_t* src, std::size_t n,
                        std::uint64_t* counts) {
  tuned::histogram_u8_runs<16>(src, n, counts, [](const std::uint8_t* p) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i first = _mm_set1_epi8(static_cast<char>(p[0]));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, first));
    return mask == 0xFFFF ? static_cast<int>(p[0]) : -1;
  });
}

// Uniformity probe over 16 u16 samples (two 128-bit vectors): the
// sample value when all sixteen equal p[0], else -1.
int uniform16_sse42(const std::uint16_t* p) {
  const __m128i first = _mm_set1_epi16(static_cast<short>(p[0]));
  const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 8));
  const __m128i eq =
      _mm_and_si128(_mm_cmpeq_epi16(a, first), _mm_cmpeq_epi16(b, first));
  return _mm_movemask_epi8(eq) == 0xFFFF ? static_cast<int>(p[0]) : -1;
}

void histogram_u16_sse42(const std::uint16_t* src, std::size_t n,
                         std::uint64_t* counts) {
  tuned::histogram_u16_runs<16>(src, n, counts, &uniform16_sse42);
}

void lut_apply_u16_sse42(const std::uint16_t* src, std::size_t n,
                         const std::uint16_t* lut, std::uint16_t* dst) {
  tuned::lut_apply_u16_blocks<16>(
      src, n, lut, dst, &uniform16_sse42,
      [](std::uint16_t* out, std::uint16_t value) {
        const __m128i v = _mm_set1_epi16(static_cast<short>(value));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out), v);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 8), v);
      });
}

std::uint64_t sum_u16_sse42(const std::uint16_t* src, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t total = 0;
  std::size_t i = 0;
  const std::size_t vec_end = n - n % 8;
  while (i < vec_end) {
    // 32-bit lane accumulators: each iteration adds at most 2 * 65535
    // per lane, so draining every 2^14 iterations stays far below 2^32.
    const std::size_t stop = std::min(vec_end, i + std::size_t{16384} * 8);
    __m128i acc = _mm_setzero_si128();
    for (; i < stop; i += 8) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      acc = _mm_add_epi32(acc, _mm_unpacklo_epi16(v, zero));
      acc = _mm_add_epi32(acc, _mm_unpackhi_epi16(v, zero));
    }
    alignas(16) std::uint32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
    total += std::uint64_t{lanes[0]} + lanes[1] + lanes[2] + lanes[3];
  }
  return total + ref::sum_u16(src + i, n - i);
}

void luma_bt601_rgb8_sse42(const std::uint8_t* rgb, std::size_t n,
                           std::uint8_t* dst) {
  const __m128d cr = _mm_set1_pd(0.299);
  const __m128d cg = _mm_set1_pd(0.587);
  const __m128d cb = _mm_set1_pd(0.114);
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d lo = _mm_setzero_pd();
  const __m128d hi = _mm_set1_pd(255.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint8_t* p = rgb + 3 * i;
    const __m128d r = _mm_setr_pd(p[0], p[3]);
    const __m128d g = _mm_setr_pd(p[1], p[4]);
    const __m128d b = _mm_setr_pd(p[2], p[5]);
    // ((0.299 r) + (0.587 g)) + (0.114 b), the scalar association.
    __m128d l = _mm_add_pd(_mm_add_pd(_mm_mul_pd(r, cr), _mm_mul_pd(g, cg)),
                           _mm_mul_pd(b, cb));
    // round-half-away == floor(x + 0.5) for every BT.601 luma value
    // (proven exhaustively over all 2^24 RGB inputs in the parity test).
    l = _mm_floor_pd(_mm_add_pd(l, half));
    l = _mm_min_pd(_mm_max_pd(l, lo), hi);
    const __m128i q = _mm_cvtpd_epi32(l);  // values integral: exact
    dst[i] = static_cast<std::uint8_t>(_mm_cvtsi128_si32(q));
    dst[i + 1] = static_cast<std::uint8_t>(_mm_extract_epi32(q, 1));
  }
  if (i < n) ref::luma_bt601_rgb8(rgb + 3 * i, n - i, dst + i);
}

std::uint64_t sum_u8_sse42(const std::uint8_t* src, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(v, zero));
  }
  std::uint64_t total = static_cast<std::uint64_t>(_mm_extract_epi64(acc, 0)) +
                        static_cast<std::uint64_t>(_mm_extract_epi64(acc, 1));
  return total + ref::sum_u8(src + i, n - i);
}

// mul_f64/saxpy_f64 are pinned to the scalar reference loops: both are
// memory-bound at one 8-byte element per multiply, and BENCH_kernels
// measured the 128-bit versions at parity with scalar (DESIGN.md §8).

void blur_row_f64_sse42(const double* src, double* dst, int w,
                        const double* taps, int radius) {
  const int x_lo = std::min(radius, w);
  const int x_hi = std::max(x_lo, w - radius);
  for (int x = 0; x < x_lo; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
  int x = x_lo;
  for (; x + 2 <= x_hi; x += 2) {
    __m128d acc = _mm_setzero_pd();
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(taps[k]),
                                       _mm_loadu_pd(in + k)));
    }
    _mm_storeu_pd(dst + x, acc);
  }
  for (; x < x_hi; ++x) {
    double acc = 0.0;
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) acc += taps[k] * in[k];
    dst[x] = acc;
  }
  for (x = x_hi; x < w; ++x) {
    dst[x] = ref::blur_row_one(src, w, x, taps, radius);
  }
}

void blur_col_f64_sse42(const double* src, int w, int h, int y,
                        const double* taps, int radius, double* out_row) {
  const bool interior = y >= radius && y + radius < h;
  int x = 0;
  for (; x + 2 <= w; x += 2) {
    __m128d acc = _mm_setzero_pd();
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc = _mm_add_pd(
          acc, _mm_mul_pd(_mm_set1_pd(taps[k]),
                          _mm_loadu_pd(src + static_cast<std::size_t>(yy) * w +
                                       x)));
    }
    _mm_storeu_pd(out_row + x, acc);
  }
  for (; x < w; ++x) {
    double acc = 0.0;
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc += taps[k] * src[static_cast<std::size_t>(yy) * w + x];
    }
    out_row[x] = acc;
  }
}

}  // namespace

const KernelSet* kernelset_sse42() {
  static const KernelSet set = {
      "sse42",
      "SSE4.2: 128-bit float lanes, SAD byte sums, sub-table histograms",
      &histogram_u8_sse42,
      &ref::lut_apply_u8,
      &ref::lut_apply_rgb8,
      &luma_bt601_rgb8_sse42,
      &sum_u8_sse42,
      &histogram_u16_sse42,
      &lut_apply_u16_sse42,
      &sum_u16_sse42,
      &ref::lut_apply_f64,
      &ref::mul_f64,
      &ref::saxpy_f64,
      &blur_row_f64_sse42,
      &blur_col_f64_sse42,
      &ref::sum_f64,
      &ref::prefix_row_f64,
      &ref::window_sums_single_f64,
      &ref::window_sums_pair_f64,
      // 128-bit lanes fit two doubles: the q-row and DP-scan bodies are
      // division/branch-heavy, and at 2-wide the blend overhead eats the
      // win (the AVX2 4-wide versions are where the payoff starts), so
      // both stay on the reference loops.
      &ref::uiqi_q_row_f64,
      &ref::plc_scan_f64,
  };
  return &set;
}

}  // namespace hebs::kernels

#endif  // HEBS_KERNELS_ENABLE_SSE42 && __SSE4_2__
