// Backend registry, CPU feature detection and startup selection.
//
// The table of compiled-in backends is fixed at build time (CMake
// defines HEBS_KERNELS_ENABLE_* for every backend whose -m flags the
// compiler accepted on this architecture); which of them this machine
// can actually run is decided once at process start.  Selection order:
//   1. HEBS_FORCE_BACKEND, when it names a compiled, supported backend
//      (anything else warns on stderr and falls through);
//   2. the widest supported backend in registration order.
// SessionConfig::kernel_backend later funnels into set_backend().
#include "kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/counters.h"

namespace hebs::kernels {

const KernelSet* kernelset_scalar();
#ifdef HEBS_KERNELS_ENABLE_SSE42
const KernelSet* kernelset_sse42();
#endif
#ifdef HEBS_KERNELS_ENABLE_AVX2
const KernelSet* kernelset_avx2();
#endif
#ifdef HEBS_KERNELS_ENABLE_NEON
const KernelSet* kernelset_neon();
#endif

namespace {

bool cpu_supports(std::string_view name) {
  if (name == "scalar") return true;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (name == "sse42") return __builtin_cpu_supports("sse4.2") != 0;
  if (name == "avx2") return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(__aarch64__)
  // NEON (AdvSIMD) is an architectural requirement of AArch64.
  if (name == "neon") return true;
#endif
  return false;
}

const std::vector<BackendInfo>& backend_table() {
  static const std::vector<BackendInfo> table = [] {
    std::vector<BackendInfo> t;
    const auto add = [&t](const KernelSet* set) {
      t.push_back({set, cpu_supports(set->name)});
    };
    add(kernelset_scalar());
#ifdef HEBS_KERNELS_ENABLE_SSE42
    add(kernelset_sse42());
#endif
#ifdef HEBS_KERNELS_ENABLE_AVX2
    add(kernelset_avx2());
#endif
#ifdef HEBS_KERNELS_ENABLE_NEON
    add(kernelset_neon());
#endif
    return t;
  }();
  return table;
}

const KernelSet* best_supported() {
  const KernelSet* best = kernelset_scalar();
  for (const BackendInfo& info : backend_table()) {
    if (info.supported) best = info.set;
  }
  return best;
}

const KernelSet* startup_selection() {
  const char* forced = std::getenv("HEBS_FORCE_BACKEND");
  if (forced != nullptr && forced[0] != '\0') {
    const KernelSet* set = find_backend(forced);
    if (set == nullptr) {
      std::fprintf(stderr,
                   "hebs: HEBS_FORCE_BACKEND=%s names no compiled-in kernel "
                   "backend; using auto-detection\n",
                   forced);
    } else if (!cpu_supports(set->name)) {
      std::fprintf(stderr,
                   "hebs: HEBS_FORCE_BACKEND=%s is not supported by this "
                   "CPU; using auto-detection\n",
                   forced);
    } else {
      return set;
    }
  }
  return best_supported();
}

std::atomic<const KernelSet*>& active_slot() {
  static std::atomic<const KernelSet*> slot{startup_selection()};
  return slot;
}

/// The dispatch counter for a set, keyed on the registry name's second
/// character — unique across "scalar"/"sse42"/"avx2"/"neon" and cheaper
/// than a string compare on the per-dispatch-site path.
obs::Counter dispatch_counter(const KernelSet& set) noexcept {
  switch (set.name[1]) {
    case 'c':
      return obs::Counter::kDispatchScalar;
    case 's':
      return obs::Counter::kDispatchSse42;
    case 'v':
      return obs::Counter::kDispatchAvx2;
    default:
      return obs::Counter::kDispatchNeon;
  }
}

}  // namespace

std::span<const BackendInfo> backends() { return backend_table(); }

const KernelSet* find_backend(std::string_view name) {
  for (const BackendInfo& info : backend_table()) {
    if (name == info.set->name) return info.set;
  }
  return nullptr;
}

const KernelSet& scalar_kernels() { return *kernelset_scalar(); }

const KernelSet& active() {
  const KernelSet* set = active_slot().load(std::memory_order_relaxed);
  // One relaxed increment per dispatch site (callers hoist active()
  // outside their pixel loops, so this counts dispatches, not pixels).
  obs::add(dispatch_counter(*set));
  return *set;
}

SetBackendResult set_backend(std::string_view name) {
  const KernelSet* set = find_backend(name);
  if (set == nullptr) return SetBackendResult::kUnknownBackend;
  if (!cpu_supports(set->name)) return SetBackendResult::kUnsupportedBackend;
  active_slot().store(set, std::memory_order_relaxed);
  return SetBackendResult::kOk;
}

}  // namespace hebs::kernels
