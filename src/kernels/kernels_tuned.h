// ISA-independent tuned building blocks shared by the vector backends.
//
// Histogram accumulation does not map onto pre-AVX-512 SIMD lanes (no
// conflict detection), but its scalar bottleneck is not arithmetic —
// it is the store-to-load dependency between increments of the same
// bin, which smooth image regions hit constantly.  Splitting the
// counts across independent sub-tables breaks those chains; the
// technique needs no vector instructions, so the vector backends share
// this one implementation and the scalar backend keeps the naive loop
// as the reference semantics.  Counts are integers, so any split is
// bit-exact.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/kernels_ref.h"

namespace hebs::kernels::tuned {

/// Histogram with eight 32-bit sub-tables and a uniform-block shortcut.
///
/// * Eight independent increment chains cover the ~6-cycle
///   store-to-load latency even on a constant raster, and 32-bit
///   counters keep all tables inside 8 KiB of L1.  The outer chunk loop
///   drains them to the 64-bit output well before any counter can reach
///   2^32.
/// * `probe(p)` is the backend's SIMD uniformity test over kBlock
///   bytes: the byte value when all kBlock bytes at p are equal, else
///   -1.  Flat regions (dark frames, letterboxing, UI chrome) then cost
///   one compare per block instead of kBlock dependent increments.
/// Counts are integers, so any accumulation split is bit-exact.
template <int kBlock, typename UniformProbe>
inline void histogram_u8_runs(const std::uint8_t* src, std::size_t n,
                              std::uint64_t* counts, UniformProbe&& probe) {
  static_assert(kBlock % 8 == 0);
  // Sub-table bookkeeping only pays off once the 8 KiB of zeroing is
  // amortized; small rasters take the plain loop.
  if (n < 4096) {
    ref::histogram_u8(src, n, counts);
    return;
  }
  constexpr std::size_t kChunk = std::size_t{1} << 30;
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t len = std::min(kChunk, n - base);
    const std::uint8_t* p = src + base;
    std::uint32_t t[8][256] = {};
    std::size_t i = 0;
    for (; i + kBlock <= len; i += kBlock) {
      const int uniform = probe(p + i);
      if (uniform >= 0) {
        t[0][uniform] += kBlock;
        continue;
      }
      for (std::size_t j = i; j < i + kBlock; j += 8) {
        ++t[0][p[j + 0]];
        ++t[1][p[j + 1]];
        ++t[2][p[j + 2]];
        ++t[3][p[j + 3]];
        ++t[4][p[j + 4]];
        ++t[5][p[j + 5]];
        ++t[6][p[j + 6]];
        ++t[7][p[j + 7]];
      }
    }
    for (; i < len; ++i) ++t[0][p[i]];
    for (int v = 0; v < 256; ++v) {
      std::uint64_t acc = 0;
      for (int j = 0; j < 8; ++j) acc += t[j][v];
      counts[v] += acc;
    }
  }
}

/// Deep-pixel histogram with a uniform-block shortcut but no
/// sub-tables: with up to 65536 bins, eight 32-bit copies would need
/// 2 MiB of scratch — past L1/L2 the split costs more than the
/// store-to-load chains it hides.  The uniform probe still pays: flat
/// regions are just as common in deep content, and one compare per
/// block replaces kBlock dependent increments.  `probe(p)` tests
/// kBlock *samples* (not bytes): the sample value when all are equal,
/// else -1.  Counts are integers, so the shortcut is bit-exact.
template <int kBlock, typename UniformProbe>
inline void histogram_u16_runs(const std::uint16_t* src, std::size_t n,
                               std::uint64_t* counts, UniformProbe&& probe) {
  static_assert(kBlock % 8 == 0);
  if (n < 2048) {
    ref::histogram_u16(src, n, counts);
    return;
  }
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    const int uniform = probe(src + i);
    if (uniform >= 0) {
      counts[uniform] += kBlock;
      continue;
    }
    for (std::size_t j = i; j < i + kBlock; ++j) ++counts[src[j]];
  }
  for (; i < n; ++i) ++counts[src[i]];
}

/// Deep-pixel LUT application with a uniform-block shortcut: when all
/// kBlock samples of a block are equal, one table load fans out to the
/// whole block through the backend's `splat(dst, value)`; mixed blocks
/// fall back to per-sample gathers (u16 tables have no in-register
/// shuffle analogue of the byte-LUT VPSHUFB path).  Bit-exact: every
/// output is lut[src[i]] either way.
template <int kBlock, typename UniformProbe, typename Splat>
inline void lut_apply_u16_blocks(const std::uint16_t* src, std::size_t n,
                                 const std::uint16_t* lut,
                                 std::uint16_t* dst, UniformProbe&& probe,
                                 Splat&& splat) {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    const int uniform = probe(src + i);
    if (uniform >= 0) {
      splat(dst + i, lut[uniform]);
      continue;
    }
    for (std::size_t j = i; j < i + kBlock; ++j) dst[j] = lut[src[j]];
  }
  for (; i < n; ++i) dst[i] = lut[src[i]];
}

}  // namespace hebs::kernels::tuned
