// The scalar backend: the reference KernelSet every other backend is
// measured and parity-tested against.  Always compiled, always
// supported.
#include "kernels/kernels.h"
#include "kernels/kernels_ref.h"

namespace hebs::kernels {

const KernelSet* kernelset_scalar() {
  static const KernelSet set = {
      "scalar",
      "portable reference loops (the bit-exactness baseline)",
      &ref::histogram_u8,
      &ref::lut_apply_u8,
      &ref::lut_apply_rgb8,
      &ref::luma_bt601_rgb8,
      &ref::sum_u8,
      &ref::histogram_u16,
      &ref::lut_apply_u16,
      &ref::sum_u16,
      &ref::lut_apply_f64,
      &ref::mul_f64,
      &ref::saxpy_f64,
      &ref::blur_row_f64,
      &ref::blur_col_f64,
      &ref::sum_f64,
      &ref::prefix_row_f64,
      &ref::window_sums_single_f64,
      &ref::window_sums_pair_f64,
      &ref::uiqi_q_row_f64,
      &ref::plc_scan_f64,
  };
  return &set;
}

}  // namespace hebs::kernels
