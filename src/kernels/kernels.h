// SIMD kernel subsystem: runtime-dispatched per-pixel primitives.
//
// Every per-pixel inner loop the pipeline runs — histogram accumulation,
// LUT application, BT.601 luma extraction, integral-image window sums,
// Gaussian blur rows/columns, elementwise float ops — is reached through
// a `KernelSet` vtable.  One set per backend (scalar, SSE4.2, AVX2,
// NEON); the backend is chosen once at startup from CPU feature
// detection, overridable through the HEBS_FORCE_BACKEND environment
// variable and SessionConfig::kernel_backend.
//
// Output contract (enforced by the parity fuzz test):
//   * integer kernels are bit-identical across every backend;
//   * float kernels perform the same IEEE-754 operations per element in
//     the same order as the scalar reference, so they are bit-identical
//     too.  Kernels whose speed would require reassociating a serial
//     accumulation (sum_f64, prefix_row_f64, the window_sums_* integral
//     rows) are pinned to the scalar accumulation order instead — the
//     pipeline's bit-exactness guarantees (engine vs. frozen seed path,
//     percent-mapped vs. uiqi-hvs) depend on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace hebs::kernels {

/// Arguments of one PLC dynamic-program row scan (core/plc.cpp).  The
/// px/py/s* pointers are the chord-error point and prefix-sum arrays
/// (prefix arrays have one extra leading zero entry); `prev` is DP row
/// s-1; the scalar fields are the i-side values hoisted out of the j
/// loop (p_i and the prefix sums at i+1).
struct PlcScanArgs {
  const double* px;
  const double* py;
  const double* sx;
  const double* sy;
  const double* sxx;
  const double* syy;
  const double* sxy;
  const double* prev;
  double pix, piy;
  double sxi, syi, sxxi, syyi, sxyi;
  std::size_t i;       ///< chord endpoint (exclusive scan bound)
  std::size_t j_begin; ///< first candidate breakpoint (s-1)
  std::size_t j_seed;  ///< scan seed in [j_begin, i) — a perf hint for
                       ///< the prune bound; the result is seed-independent
};

/// Dispatch table of the per-pixel hot-path primitives.  All pointers
/// are non-null in every registered set.
struct KernelSet {
  const char* name;         ///< registry key ("scalar", "sse42", ...)
  const char* description;  ///< one-line summary for --list-backends

  // ------------------------------------------------- integer kernels
  /// counts[v] += number of occurrences of v in src[0..n)
  /// (256 bins; counts is accumulated into, not cleared).
  void (*histogram_u8)(const std::uint8_t* src, std::size_t n,
                       std::uint64_t* counts);
  /// dst[i] = lut[src[i]] for a 256-entry 8-bit table.
  void (*lut_apply_u8)(const std::uint8_t* src, std::size_t n,
                       const std::uint8_t* lut, std::uint8_t* dst);
  /// Per-channel LUT application over n interleaved RGB8 pixels: every
  /// sub-pixel byte maps through the same shared 256-entry table
  /// (§2's color path — the backlight is shared, so one curve drives
  /// all three channels).  Semantically lut_apply_u8 over 3n bytes;
  /// kept as its own entry so the color pipeline stage dispatches in
  /// pixels and each backend can route to its widest byte-LUT path.
  void (*lut_apply_rgb8)(const std::uint8_t* rgb, std::size_t n_pixels,
                         const std::uint8_t* lut, std::uint8_t* dst);
  /// ITU-R BT.601 luma of n interleaved RGB8 pixels:
  /// dst[i] = clamp(round(0.299 R + 0.587 G + 0.114 B), 0, 255).
  void (*luma_bt601_rgb8)(const std::uint8_t* rgb, std::size_t n,
                          std::uint8_t* dst);
  /// Sum of n bytes (exact in 64 bits for any raster < 2^56 pixels).
  std::uint64_t (*sum_u8)(const std::uint8_t* src, std::size_t n);

  // -------------------------------------- deep-pixel integer kernels
  // The u16 twins of the three per-pixel primitives the depth-
  // generalized pipeline needs (10/16-bit content stored as 16-bit
  // samples).  Same shape as the u8 entries: the caller sizes the
  // counts / lut arrays to the frame's level count; every sample is
  // < that count by the GrayImage16 invariant.  All three are pure
  // integer kernels, so backends are trivially bit-identical.
  /// counts[v] += number of occurrences of v in src[0..n)
  /// (caller-sized bins; counts is accumulated into, not cleared).
  void (*histogram_u16)(const std::uint16_t* src, std::size_t n,
                        std::uint64_t* counts);
  /// dst[i] = lut[src[i]] for a caller-sized 16-bit table.
  void (*lut_apply_u16)(const std::uint16_t* src, std::size_t n,
                        const std::uint16_t* lut, std::uint16_t* dst);
  /// Sum of n 16-bit samples (exact in 64 bits for any raster
  /// < 2^48 pixels).
  std::uint64_t (*sum_u16)(const std::uint16_t* src, std::size_t n);

  // ------------------------- float kernels (elementwise, bit-exact)
  /// dst[i] = lut[src[i]] for a 256-entry double table.
  void (*lut_apply_f64)(const std::uint8_t* src, std::size_t n,
                        const double* lut, double* dst);
  /// dst[i] = a[i] * b[i].
  void (*mul_f64)(const double* a, const double* b, double* dst,
                  std::size_t n);
  /// y[i] = y[i] + a * x[i].
  void (*saxpy_f64)(double a, const double* x, double* y, std::size_t n);
  /// One horizontal blur row with clamped borders: for every x,
  /// dst[x] = sum_k taps[k] * src[clamp(x + k - radius, 0, w-1)],
  /// taps accumulated in k order (2*radius+1 taps).
  void (*blur_row_f64)(const double* src, double* dst, int w,
                       const double* taps, int radius);
  /// One vertical blur output row y over the w x h raster `src`:
  /// out_row[x] = sum_k taps[k] * src[clamp(y + k - radius, 0, h-1)][x].
  void (*blur_col_f64)(const double* src, int w, int h, int y,
                       const double* taps, int radius, double* out_row);

  // ------------- float kernels (scalar accumulation-order contract)
  /// Left-to-right sum of n doubles.  Backends must keep the scalar
  /// order: callers (image means, power integrals) are compared
  /// bit-exactly across configurations.
  double (*sum_f64)(const double* v, std::size_t n);
  /// Integral-image row step: out[i] = above[i] + (v[0] + ... + v[i]),
  /// the running sum accumulated left to right.
  void (*prefix_row_f64)(const double* v, const double* above, double* out,
                         std::size_t n);
  /// Fused single-raster window-sum row: the sum and sum-of-squares
  /// integral rows of v in one sweep (each table's running sum in
  /// scalar order; products v[i]*v[i] are elementwise-exact).
  void (*window_sums_single_f64)(const double* v, std::size_t n,
                                 const double* above_s,
                                 const double* above_ss, double* out_s,
                                 double* out_ss);
  /// Fused pair window-sum row: the b, b*b and a*b integral rows in one
  /// sweep (for PairStats' covariance tables).
  void (*window_sums_pair_f64)(const double* a, const double* b,
                               std::size_t n, const double* above_b,
                               const double* above_bb,
                               const double* above_ab, double* out_b,
                               double* out_bb, double* out_ab);

  // ------------------- float kernels (per-window / per-candidate,
  //                      elementwise bit-exact; see DESIGN.md §8, §11)
  /// One stride-1 row of UIQI window quality indices.  Window x has its
  /// b / b·b / a·b rectangle sums read from the integral-table row pairs
  ///   rect(x) = bot[x + block] - bot[x] - top[x + block] + top[x]
  /// and its reference-side moments from the cached mean_a/var_a arrays
  /// (the reference/test evaluator split).  q_out[x] receives exactly
  /// the per-window value quality::uiqi_from_stats' scalar loop
  /// computes; the caller owns the strictly serial accumulation over
  /// q_out, so the metric keeps the scalar summation order.
  void (*uiqi_q_row_f64)(const double* mean_a, const double* var_a,
                         const double* b_top, const double* b_bot,
                         const double* bb_top, const double* bb_bot,
                         const double* ab_top, const double* ab_bot,
                         std::size_t n_win, int block, double n_px,
                         double* q_out);
  /// Lowest-j argmin of prev[j] + chord_error(j -> i) over
  /// j in [j_begin, i): the PLC DP inner scan.  Returns the best value
  /// and writes the argmin to *out_j.  Candidate values are computed
  /// with the exact scalar chord arithmetic; the selection rule
  /// (strictly smaller value, or equal value at smaller j) makes the
  /// result independent of evaluation order and of which candidates a
  /// backend prunes, so every backend returns identical (value, j).
  double (*plc_scan_f64)(const PlcScanArgs* args, std::size_t* out_j);
};

/// One compiled-in backend plus whether this machine can run it.
struct BackendInfo {
  const KernelSet* set = nullptr;
  bool supported = false;  ///< CPU has the required ISA extensions
};

/// All backends compiled into this build, in preference order
/// (scalar first, widest ISA last).  The scalar backend is always
/// present and always supported.
std::span<const BackendInfo> backends();

/// The compiled-in backend with this name, or nullptr.
const KernelSet* find_backend(std::string_view name);

/// The scalar reference set (always available).
const KernelSet& scalar_kernels();

/// The set every call site dispatches through.  First use selects the
/// widest supported backend, unless HEBS_FORCE_BACKEND names a
/// compiled-in, supported backend (unknown or unsupported names warn on
/// stderr and fall back to auto-detection).
const KernelSet& active();

enum class SetBackendResult {
  kOk,
  kUnknownBackend,      ///< name not compiled into this build
  kUnsupportedBackend,  ///< compiled in, but this CPU lacks the ISA
};

/// Switches the process-global active backend.  Thread-safe; in-flight
/// rasters finish on the set they started with.
SetBackendResult set_backend(std::string_view name);

}  // namespace hebs::kernels
