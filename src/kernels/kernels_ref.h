// Scalar reference implementations of every kernel.
//
// These loops are the semantic definition of the subsystem: every SIMD
// backend must reproduce their output bit-for-bit (see kernels.h for
// the contract).  They are also reused by the vector backends for
// border and tail lanes, so a backend never re-implements the scalar
// arithmetic twice.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace hebs::kernels::ref {

inline void histogram_u8(const std::uint8_t* src, std::size_t n,
                         std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) ++counts[src[i]];
}

inline void lut_apply_u8(const std::uint8_t* src, std::size_t n,
                         const std::uint8_t* lut, std::uint8_t* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = lut[src[i]];
}

inline void lut_apply_rgb8(const std::uint8_t* rgb, std::size_t n_pixels,
                           const std::uint8_t* lut, std::uint8_t* dst) {
  lut_apply_u8(rgb, 3 * n_pixels, lut, dst);
}

/// Same arithmetic as image::RgbImage::to_luma has always used:
/// double products summed left to right, round-half-away, clamp.
inline std::uint8_t luma_bt601_one(std::uint8_t r, std::uint8_t g,
                                   std::uint8_t b) {
  const double luma = 0.299 * r + 0.587 * g + 0.114 * b;
  const double rounded = std::round(luma);
  const double clamped = rounded < 0.0 ? 0.0 : (rounded > 255.0 ? 255.0
                                                                : rounded);
  return static_cast<std::uint8_t>(clamped);
}

inline void luma_bt601_rgb8(const std::uint8_t* rgb, std::size_t n,
                            std::uint8_t* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = luma_bt601_one(rgb[3 * i + 0], rgb[3 * i + 1], rgb[3 * i + 2]);
  }
}

inline std::uint64_t sum_u8(const std::uint8_t* src, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += src[i];
  return acc;
}

inline void lut_apply_f64(const std::uint8_t* src, std::size_t n,
                          const double* lut, double* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = lut[src[i]];
}

inline void mul_f64(const double* a, const double* b, double* dst,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
}

inline void saxpy_f64(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] + a * x[i];
}

/// One clamped-border output pixel of the horizontal blur.
inline double blur_row_one(const double* src, int w, int x,
                           const double* taps, int radius) {
  double acc = 0.0;
  for (int k = 0; k <= 2 * radius; ++k) {
    const int xx = std::clamp(x + k - radius, 0, w - 1);
    acc += taps[k] * src[xx];
  }
  return acc;
}

inline void blur_row_f64(const double* src, double* dst, int w,
                         const double* taps, int radius) {
  // Interior pixels need no clamping; the split keeps the hot loop
  // branch-free (taps accumulate in the same order in all three
  // regions, so the values are identical either way).
  const int x_lo = std::min(radius, w);
  const int x_hi = std::max(x_lo, w - radius);
  for (int x = 0; x < x_lo; ++x) dst[x] = blur_row_one(src, w, x, taps, radius);
  for (int x = x_lo; x < x_hi; ++x) {
    double acc = 0.0;
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) acc += taps[k] * in[k];
    dst[x] = acc;
  }
  for (int x = x_hi; x < w; ++x) dst[x] = blur_row_one(src, w, x, taps, radius);
}

inline void blur_col_f64(const double* src, int w, int h, int y,
                         const double* taps, int radius, double* out_row) {
  const bool interior = y >= radius && y + radius < h;
  for (int x = 0; x < w; ++x) {
    double acc = 0.0;
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc += taps[k] * src[static_cast<std::size_t>(yy) * w + x];
    }
    out_row[x] = acc;
  }
}

inline double sum_f64(const double* v, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

inline void prefix_row_f64(const double* v, const double* above, double* out,
                           std::size_t n) {
  double row = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    row += v[i];
    out[i] = above[i] + row;
  }
}

inline void window_sums_single_f64(const double* v, std::size_t n,
                                   const double* above_s,
                                   const double* above_ss, double* out_s,
                                   double* out_ss) {
  double rs = 0.0;
  double rss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = v[i];
    rs += x;
    out_s[i] = above_s[i] + rs;
    rss += x * x;
    out_ss[i] = above_ss[i] + rss;
  }
}

inline void window_sums_pair_f64(const double* a, const double* b,
                                 std::size_t n, const double* above_b,
                                 const double* above_bb,
                                 const double* above_ab, double* out_b,
                                 double* out_bb, double* out_ab) {
  double rb = 0.0;
  double rbb = 0.0;
  double rab = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xb = b[i];
    rb += xb;
    out_b[i] = above_b[i] + rb;
    rbb += xb * xb;
    out_bb[i] = above_bb[i] + rbb;
    rab += a[i] * xb;
    out_ab[i] = above_ab[i] + rab;
  }
}

}  // namespace hebs::kernels::ref
