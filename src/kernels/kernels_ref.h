// Scalar reference implementations of every kernel.
//
// These loops are the semantic definition of the subsystem: every SIMD
// backend must reproduce their output bit-for-bit (see kernels.h for
// the contract).  They are also reused by the vector backends for
// border and tail lanes, so a backend never re-implements the scalar
// arithmetic twice.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "kernels/kernels.h"

namespace hebs::kernels::ref {

inline void histogram_u8(const std::uint8_t* src, std::size_t n,
                         std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) ++counts[src[i]];
}

inline void lut_apply_u8(const std::uint8_t* src, std::size_t n,
                         const std::uint8_t* lut, std::uint8_t* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = lut[src[i]];
}

inline void lut_apply_rgb8(const std::uint8_t* rgb, std::size_t n_pixels,
                           const std::uint8_t* lut, std::uint8_t* dst) {
  lut_apply_u8(rgb, 3 * n_pixels, lut, dst);
}

/// Same arithmetic as image::RgbImage::to_luma has always used:
/// double products summed left to right, round-half-away, clamp.
inline std::uint8_t luma_bt601_one(std::uint8_t r, std::uint8_t g,
                                   std::uint8_t b) {
  const double luma = 0.299 * r + 0.587 * g + 0.114 * b;
  const double rounded = std::round(luma);
  const double clamped = rounded < 0.0 ? 0.0 : (rounded > 255.0 ? 255.0
                                                                : rounded);
  return static_cast<std::uint8_t>(clamped);
}

inline void luma_bt601_rgb8(const std::uint8_t* rgb, std::size_t n,
                            std::uint8_t* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = luma_bt601_one(rgb[3 * i + 0], rgb[3 * i + 1], rgb[3 * i + 2]);
  }
}

inline std::uint64_t sum_u8(const std::uint8_t* src, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += src[i];
  return acc;
}

inline void histogram_u16(const std::uint16_t* src, std::size_t n,
                          std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) ++counts[src[i]];
}

inline void lut_apply_u16(const std::uint16_t* src, std::size_t n,
                          const std::uint16_t* lut, std::uint16_t* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = lut[src[i]];
}

inline std::uint64_t sum_u16(const std::uint16_t* src, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += src[i];
  return acc;
}

inline void lut_apply_f64(const std::uint8_t* src, std::size_t n,
                          const double* lut, double* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = lut[src[i]];
}

inline void mul_f64(const double* a, const double* b, double* dst,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
}

inline void saxpy_f64(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] + a * x[i];
}

/// One clamped-border output pixel of the horizontal blur.
inline double blur_row_one(const double* src, int w, int x,
                           const double* taps, int radius) {
  double acc = 0.0;
  for (int k = 0; k <= 2 * radius; ++k) {
    const int xx = std::clamp(x + k - radius, 0, w - 1);
    acc += taps[k] * src[xx];
  }
  return acc;
}

inline void blur_row_f64(const double* src, double* dst, int w,
                         const double* taps, int radius) {
  // Interior pixels need no clamping; the split keeps the hot loop
  // branch-free (taps accumulate in the same order in all three
  // regions, so the values are identical either way).
  const int x_lo = std::min(radius, w);
  const int x_hi = std::max(x_lo, w - radius);
  for (int x = 0; x < x_lo; ++x) dst[x] = blur_row_one(src, w, x, taps, radius);
  for (int x = x_lo; x < x_hi; ++x) {
    double acc = 0.0;
    const double* in = src + x - radius;
    for (int k = 0; k <= 2 * radius; ++k) acc += taps[k] * in[k];
    dst[x] = acc;
  }
  for (int x = x_hi; x < w; ++x) dst[x] = blur_row_one(src, w, x, taps, radius);
}

inline void blur_col_f64(const double* src, int w, int h, int y,
                         const double* taps, int radius, double* out_row) {
  const bool interior = y >= radius && y + radius < h;
  for (int x = 0; x < w; ++x) {
    double acc = 0.0;
    for (int k = 0; k <= 2 * radius; ++k) {
      const int yy = interior ? y + k - radius
                              : std::clamp(y + k - radius, 0, h - 1);
      acc += taps[k] * src[static_cast<std::size_t>(yy) * w + x];
    }
    out_row[x] = acc;
  }
}

inline double sum_f64(const double* v, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

inline void prefix_row_f64(const double* v, const double* above, double* out,
                           std::size_t n) {
  double row = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    row += v[i];
    out[i] = above[i] + row;
  }
}

inline void window_sums_single_f64(const double* v, std::size_t n,
                                   const double* above_s,
                                   const double* above_ss, double* out_s,
                                   double* out_ss) {
  double rs = 0.0;
  double rss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = v[i];
    rs += x;
    out_s[i] = above_s[i] + rs;
    rss += x * x;
    out_ss[i] = above_ss[i] + rss;
  }
}

/// One UIQI window quality index from its rectangle sums and the cached
/// reference moments — the exact per-window arithmetic of
/// quality::uiqi_from_stats (WindowMoments' means/variances/covariance
/// followed by the q formula with its two degenerate-denominator
/// special cases).
inline double uiqi_q_one(double rect_b, double rect_bb, double rect_ab,
                         double mean_a, double var_a, double n_px) {
  const double mean_b = rect_b / n_px;
  double var_b = rect_bb / n_px - mean_b * mean_b;
  const double cov_ab = rect_ab / n_px - mean_a * mean_b;
  // Clamp tiny negative variances caused by floating-point cancellation
  // (mean_a/var_a arrive pre-clamped from the reference-side cache).
  if (var_b < 0.0) var_b = 0.0;
  const double mean_prod = mean_a * mean_b;
  const double denom1 = mean_a * mean_a + mean_b * mean_b;
  const double denom2 = var_a + var_b;
  double q = 1.0;  // both denominators zero: identical flat windows
  if (denom1 * denom2 > 0.0) {
    q = 4.0 * cov_ab * mean_prod / (denom1 * denom2);
  } else if (denom1 > 0.0) {
    q = 2.0 * mean_prod / denom1;
  }
  return q;
}

inline void uiqi_q_row_f64(const double* mean_a, const double* var_a,
                           const double* b_top, const double* b_bot,
                           const double* bb_top, const double* bb_bot,
                           const double* ab_top, const double* ab_bot,
                           std::size_t n_win, int block, double n_px,
                           double* q_out) {
  const auto b = static_cast<std::size_t>(block);
  for (std::size_t x = 0; x < n_win; ++x) {
    // Same term order as IntegralImage::rect_sum.
    const double rect_b = b_bot[x + b] - b_bot[x] - b_top[x + b] + b_top[x];
    const double rect_bb =
        bb_bot[x + b] - bb_bot[x] - bb_top[x + b] + bb_top[x];
    const double rect_ab =
        ab_bot[x + b] - ab_bot[x] - ab_top[x + b] + ab_top[x];
    q_out[x] = uiqi_q_one(rect_b, rect_bb, rect_ab, mean_a[x], var_a[x], n_px);
  }
}

/// Squared error of the chord p_j -> p_i over points j..i, from the
/// prefix sums: for an interior point p_k the error is
/// (y_k - y_j) - s (x_k - x_j) with s the chord slope, and the summed
/// square expands into range sums of y, y², x, x², xy.
inline double plc_chord_err(const PlcScanArgs& a, std::size_t j) {
  const double pjx = a.px[j];
  const double pjy = a.py[j];
  const double s = (a.piy - pjy) / (a.pix - pjx);
  // Range sums over k in [j, i].
  const double n = static_cast<double>(a.i - j + 1);
  const double sum_x = a.sxi - a.sx[j];
  const double sum_y = a.syi - a.sy[j];
  const double sum_xx = a.sxxi - a.sxx[j];
  const double sum_yy = a.syyi - a.syy[j];
  const double sum_xy = a.sxyi - a.sxy[j];
  // Sum over k of ((y_k - y_j) - s (x_k - x_j))^2
  //  = Σ dy²  - 2 s Σ dx dy + s² Σ dx²
  const double sum_dyy = sum_yy - 2.0 * pjy * sum_y + n * pjy * pjy;
  const double sum_dxx = sum_xx - 2.0 * pjx * sum_x + n * pjx * pjx;
  const double sum_dxy =
      sum_xy - pjx * sum_y - pjy * sum_x + n * pjx * pjy;
  const double err = sum_dyy - 2.0 * s * sum_dxy + s * s * sum_dxx;
  return err > 0.0 ? err : 0.0;  // guard fp cancellation
}

inline double plc_scan_f64(const PlcScanArgs* args, std::size_t* out_j) {
  const PlcScanArgs& a = *args;
  // Seed the scan (usually near the optimum, so the bound below is
  // tight from the start).  The selection rule — strictly smaller
  // value, or equal value at a smaller j — makes the result independent
  // of the seed: it is always the lowest-j argmin, exactly what a plain
  // ascending scan with strict `<` produces.
  std::size_t row_parent = a.j_seed;
  double row_best = a.prev[row_parent] + plc_chord_err(a, row_parent);
  for (std::size_t j = a.j_begin; j < a.i; ++j) {
    // candidate = prev[j] + chord(j, i) >= prev[j]: when prev[j]
    // already loses, skip the chord evaluation (and its division).
    // Equality can win only through a zero-error chord at j <
    // row_parent (the tie rule), so j >= row_parent is prunable at
    // equality too.
    if (a.prev[j] > row_best ||
        (a.prev[j] == row_best && j >= row_parent)) {
      continue;
    }
    const double candidate = a.prev[j] + plc_chord_err(a, j);
    if (candidate < row_best ||
        (candidate == row_best && j < row_parent)) {
      row_best = candidate;
      row_parent = j;
    }
  }
  *out_j = row_parent;
  return row_best;
}

inline void window_sums_pair_f64(const double* a, const double* b,
                                 std::size_t n, const double* above_b,
                                 const double* above_bb,
                                 const double* above_ab, double* out_b,
                                 double* out_bb, double* out_ab) {
  double rb = 0.0;
  double rbb = 0.0;
  double rab = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xb = b[i];
    rb += xb;
    out_b[i] = above_b[i] + rb;
    rbb += xb * xb;
    out_bb[i] = above_bb[i] + rbb;
    rab += a[i] * xb;
    out_ab[i] = above_ab[i] + rab;
  }
}

}  // namespace hebs::kernels::ref
