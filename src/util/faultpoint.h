// Deterministic fault injection — named, counted fault points.
//
// The serving story (ROADMAP: hebs_served) needs the containment and
// degradation paths of the pipeline to be *provable*: a poisoned frame,
// a failing allocation, an I/O error or a stalled stage must be
// reproducible on demand, under sanitizers, at any thread count.  This
// header provides that harness as a set of registered fault points the
// library's own code consults at its failure boundaries:
//
//   pool-alloc     std::bad_alloc at the BufferPool/PoolAllocator
//                  allocation boundary (util/pool.cpp)
//   worker-task    util::Error inside the engine's per-frame worker
//                  task (pipeline/engine.cpp)
//   frame-corrupt  util::Error at FrameContext::rebind, simulating
//                  corrupt/truncated frame bytes
//   curve-io       util::IoError in DistortionCurve load/save
//   trace-io       util::IoError in the span-trace writer
//   stage-latency  an artificial stall (spec.stall_us) per pipeline
//                  stage execution — the deadline tests' clock lever
//
// A point fires according to an installed Spec: 1-based hit index
// `first`, period `every`, budget `count` (0 = unlimited).  The text
// form (HEBS_FAULT environment variable, SessionConfig::fault_spec,
// hebs_cli --fault) is "point[:key=value,...]", ';'-separated for
// several points; "off" clears every installed point.  Examples:
//
//   HEBS_FAULT=pool-alloc                 first pool allocation throws
//   HEBS_FAULT=worker-task:first=3        frame hit #3 throws
//   HEBS_FAULT=frame-corrupt:every=4,count=0   every 4th rebind, forever
//   HEBS_FAULT=stage-latency:stall_us=2000,count=0   2 ms per stage
//
// Zero-cost when off: the hot-path check (`should_fire`) is one relaxed
// atomic load and a branch — no allocation, no lock — so the fault-
// disabled fast path stays inside the zero-allocation steady-state
// contract (bench_alloc_steady_state, bench_frame_latency, and the
// no-alloc lint all gate it).  Every firing bumps the point's counter
// in the obs registry, so tests match injections against expectations.
//
// Installation is process-global (like the kernel-backend selection)
// and NOT synchronized against concurrent firing: install/clear while
// the pipeline is idle (Session::create does; tests do).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hebs::util::fault {

/// Every registered fault point.  Order matches the obs counter block
/// (Counter::kFaultPoolAlloc..kFaultStageLatency).
enum class Point : std::uint32_t {
  kPoolAlloc,
  kWorkerTask,
  kFrameCorrupt,
  kCurveIo,
  kTraceIo,
  kStageLatency,
  kPointCount_,
};

inline constexpr std::size_t kPointCount =
    static_cast<std::size_t>(Point::kPointCount_);

/// When an armed point fires: hits are counted 1-based per point; the
/// point fires on hit indices first, first+every, first+2·every, …,
/// at most `count` times (0 = no budget).
struct Spec {
  Point point = Point::kPoolAlloc;
  std::uint64_t first = 1;
  std::uint64_t every = 1;
  std::uint64_t count = 1;
  /// kStageLatency only: stall per firing, microseconds.
  std::uint32_t stall_us = 1000;
};

namespace detail {
/// Bit p set = point p armed.  The one word the fast path reads.
extern std::atomic<std::uint32_t> g_armed;
/// Counts the hit and decides per the installed spec; bumps the obs
/// injection counter when firing.
bool fire_slow(Point p) noexcept;
/// The installed stall for a latency point.
std::uint32_t stall_us(Point p) noexcept;
/// Adjusts this thread's SuppressScope nesting depth.  Out-of-line so
/// the thread_local behind it is only ever touched from its own TU:
/// GCC's cross-TU TLS-wrapper access trips a UBSan false positive
/// ("load of null pointer") when inlined into instrumented callers,
/// and these calls only run on cold containment paths anyway.
void suppress_enter() noexcept;
void suppress_exit() noexcept;
}  // namespace detail

/// True when `p` has an installed spec.  One relaxed load.
inline bool armed(Point p) noexcept {
  return ((detail::g_armed.load(std::memory_order_relaxed) >>
           static_cast<std::uint32_t>(p)) &
          1u) != 0;
}

/// Counts a hit at this point and reports whether it fires.  The off
/// path (nothing installed) is one relaxed load and a branch.
inline bool should_fire(Point p) noexcept {
  if (!armed(p)) return false;
  return detail::fire_slow(p);
}

/// Throws the point's documented exception type (std::bad_alloc for
/// pool-alloc, util::IoError for the I/O points, util::Error
/// otherwise), message naming the point.
[[noreturn]] void throw_injected(Point p);

/// should_fire + throw_injected, the shape of the throwing fire sites.
inline void maybe_fail(Point p) {
  if (should_fire(p)) throw_injected(p);
}

/// Stall-type fire site: sleeps spec.stall_us when the point fires.
void maybe_stall(Point p);

/// Suppresses firing on this thread while alive.  The degraded-frame
/// fallback construction runs under one so a persistent fault (e.g.
/// pool-alloc:count=0) cannot re-fire inside its own containment
/// handler.
class SuppressScope {
 public:
  SuppressScope() noexcept { detail::suppress_enter(); }
  ~SuppressScope() { detail::suppress_exit(); }
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
};

/// The spec-syntax name ("pool-alloc", ...).
const char* point_name(Point p) noexcept;

/// Parses one "point[:key=value,...]" spec.  On failure returns false
/// and (if non-null) fills *error with a message naming the bad token.
bool parse_spec(const std::string& text, Spec* out, std::string* error);

/// Parses a ';'-separated spec list ("pool-alloc;curve-io:first=2").
bool parse_spec_list(const std::string& text, std::vector<Spec>* out,
                     std::string* error);

/// Installs a spec, resetting the point's hit/fired counts and arming
/// it.  Replaces any spec previously installed at the same point;
/// other points keep theirs.
void install(const Spec& spec);

/// Parses and installs a spec list.  The literal "off" (or "none")
/// clears every installed point instead.  All-or-nothing: a parse
/// error installs nothing and returns false.
bool install_from_string(const std::string& text, std::string* error);

/// Disarms every point and resets its counts.
void clear_all();

/// Firings at `p` since its last install (tests match this against the
/// obs counter and their expected injection count).
std::uint64_t fired_count(Point p) noexcept;

/// Hits (armed consultations) at `p` since its last install.
std::uint64_t hit_count(Point p) noexcept;

}  // namespace hebs::util::fault
