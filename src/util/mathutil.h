// Small numeric helpers shared across modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hebs::util {

/// Clamps `v` into [lo, hi].
constexpr double clamp(double v, double lo, double hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Clamps `v` into [0, 1].
constexpr double clamp01(double v) noexcept { return clamp(v, 0.0, 1.0); }

/// Linear interpolation between a and b by t in [0,1].
constexpr double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// True when |a - b| <= tol.
constexpr bool almost_equal(double a, double b, double tol = 1e-9) noexcept {
  const double d = a - b;
  return (d < 0 ? -d : d) <= tol;
}

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population variance; returns 0 for spans shorter than 1.
double variance(std::span<const double> xs) noexcept;

/// Population covariance of two equally sized spans.
double covariance(std::span<const double> xs, std::span<const double> ys);

/// p-th percentile (p in [0,100]) with linear interpolation.
/// The input need not be sorted; a sorted copy is made internally.
double percentile(std::span<const double> xs, double p);

/// Sum of a span.
double sum(std::span<const double> xs) noexcept;

/// Root mean square of elementwise differences. Spans must match in size.
double rms_diff(std::span<const double> xs, std::span<const double> ys);

/// Evenly spaced values from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace hebs::util
