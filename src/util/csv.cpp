#include "util/csv.h"

#include <sstream>

#include "util/error.h"

namespace hebs::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw IoError("cannot open CSV file for writing: " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) throw IoError("write failed on CSV file: " + path_);
}

void CsvWriter::write_row(std::initializer_list<std::string> cells) {
  write_row(std::vector<std::string>(cells));
}

std::string CsvWriter::num(double v) {
  std::ostringstream ss;
  ss.precision(12);
  ss << v;
  return ss.str();
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace hebs::util
