#include "util/rng.h"

#include <cmath>

namespace hebs::util {

Rng::Rng(std::uint64_t seed, std::uint64_t seq) noexcept
    : state_(0), inc_((seq << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() noexcept {
  // 53-bit mantissa from two draws for a dense [0,1) double.
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits = ((hi << 21) ^ lo) & ((1ULL << 53) - 1);
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) noexcept {
  const auto span = static_cast<std::uint32_t>(hi - lo) + 1u;
  // Lemire's unbiased bounded generation.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * span;
  auto l = static_cast<std::uint32_t>(m);
  if (l < span) {
    const std::uint32_t t = (0u - span) % span;
    while (l < t) {
      m = static_cast<std::uint64_t>(next_u32()) * span;
      l = static_cast<std::uint32_t>(m);
    }
  }
  return lo + static_cast<int>(m >> 32);
}

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace hebs::util
