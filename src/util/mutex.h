// Annotated mutex primitives for the thread-safety analysis.
//
// Clang's -Wthread-safety can only check locking discipline against
// types that declare themselves capabilities; std::mutex does not, so
// GUARDED_BY(std_mutex_member) is rejected by the analysis outright.
// This header provides the thinnest possible annotated wrappers:
//
//   * Mutex       — std::mutex with HEBS_CAPABILITY + annotated
//                   lock/unlock/try_lock (zero state added);
//   * MutexLock   — scoped lock_guard equivalent (HEBS_SCOPED_CAPABILITY
//                   so the analysis tracks its RAII acquire/release);
//   * CondVar     — std::condition_variable adapter whose wait() takes
//                   the Mutex itself and is annotated HEBS_REQUIRES(mu),
//                   so a wait outside the lock is a compile error under
//                   Clang (and UB caught by TSan elsewhere).
//
// CondVar::wait deliberately has no predicate overload: the predicate
// lambda would be analyzed as a separate unannotated function and every
// guarded read inside it would warn.  Call sites spell the condition as
// a while loop in the annotated function body instead, where the
// analysis can see the held lock:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);
//
// Everything forwards straight to the std primitives — the wrappers add
// annotations, not behavior, and compile to identical code.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace hebs::util {

/// std::mutex as a Clang capability.
class HEBS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HEBS_ACQUIRE() { mu_.lock(); }
  void unlock() HEBS_RELEASE() { mu_.unlock(); }
  bool try_lock() HEBS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard shape) the analysis can follow.
class HEBS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HEBS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HEBS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex.  wait() adopts the
/// already-held Mutex into a std::unique_lock for the underlying
/// std::condition_variable and releases custody again on return, so the
/// caller's MutexLock stays the one true owner; the annotation makes
/// holding the lock a compile-time requirement under Clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) HEBS_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // caller keeps ownership; do not unlock here
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hebs::util
