#include "util/faultpoint.h"

#include <chrono>
#include <new>
#include <thread>

#include "obs/counters.h"
#include "util/error.h"

namespace hebs::util::fault {

namespace detail {

std::atomic<std::uint32_t> g_armed{0};

namespace {

/// SuppressScope nesting depth on this thread.  TU-local: every access
/// goes through suppress_enter/suppress_exit/fire_slow in this file,
/// so no other TU ever emits a TLS-wrapper reference to it (see the
/// header comment on suppress_enter).
thread_local int t_suppress = 0;

}  // namespace

void suppress_enter() noexcept { ++t_suppress; }
void suppress_exit() noexcept { --t_suppress; }

namespace {

/// Per-point firing state.  The spec is written only while the point is
/// disarmed (install/clear contract), so the firing path reads it
/// without synchronization; the hit/fired counts are atomics because
/// worker threads fire concurrently.
struct PointState {
  Spec spec;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

PointState g_points[kPointCount];

PointState& state_of(Point p) noexcept {
  return g_points[static_cast<std::size_t>(p)];
}

obs::Counter injection_counter(Point p) noexcept {
  switch (p) {
    case Point::kPoolAlloc:
      return obs::Counter::kFaultPoolAlloc;
    case Point::kWorkerTask:
      return obs::Counter::kFaultWorkerTask;
    case Point::kFrameCorrupt:
      return obs::Counter::kFaultFrameCorrupt;
    case Point::kCurveIo:
      return obs::Counter::kFaultCurveIo;
    case Point::kTraceIo:
      return obs::Counter::kFaultTraceIo;
    case Point::kStageLatency:
    case Point::kPointCount_:
      break;
  }
  return obs::Counter::kFaultStageLatency;
}

void arm(Point p) noexcept {
  g_armed.fetch_or(1u << static_cast<std::uint32_t>(p),
                   std::memory_order_relaxed);
}

void disarm(Point p) noexcept {
  g_armed.fetch_and(~(1u << static_cast<std::uint32_t>(p)),
                    std::memory_order_relaxed);
}

}  // namespace

bool fire_slow(Point p) noexcept {
  if (t_suppress > 0) return false;
  PointState& st = state_of(p);
  const std::uint64_t hit =
      st.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const Spec& spec = st.spec;
  if (hit < spec.first) return false;
  if (spec.every == 0 || (hit - spec.first) % spec.every != 0) return false;
  if (spec.count != 0) {
    // Claim one slot of the firing budget; once it is spent every later
    // hit passes through, and `fired` stays an exact firing count.
    std::uint64_t f = st.fired.load(std::memory_order_relaxed);
    do {
      if (f >= spec.count) return false;
    } while (!st.fired.compare_exchange_weak(f, f + 1,
                                             std::memory_order_relaxed));
  } else {
    st.fired.fetch_add(1, std::memory_order_relaxed);
  }
  obs::add(injection_counter(p));
  return true;
}

std::uint32_t stall_us(Point p) noexcept { return state_of(p).spec.stall_us; }

}  // namespace detail

const char* point_name(Point p) noexcept {
  switch (p) {
    case Point::kPoolAlloc:
      return "pool-alloc";
    case Point::kWorkerTask:
      return "worker-task";
    case Point::kFrameCorrupt:
      return "frame-corrupt";
    case Point::kCurveIo:
      return "curve-io";
    case Point::kTraceIo:
      return "trace-io";
    case Point::kStageLatency:
      return "stage-latency";
    case Point::kPointCount_:
      break;
  }
  return "unknown";
}

namespace {

/// Allocation failure that still names its origin: catchable exactly
/// like the std::bad_alloc a real exhausted heap throws, but what()
/// carries the fault point so containment messages stay attributable
/// (the §14 contract: stage, frame index, fault point — never a bare
/// "unexpected failure").
class InjectedBadAlloc : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "injected fault at point pool-alloc: std::bad_alloc";
  }
};

}  // namespace

void throw_injected(Point p) {
  const std::string what =
      std::string("injected fault at point ") + point_name(p);
  switch (p) {
    case Point::kPoolAlloc:
      throw InjectedBadAlloc();
    case Point::kFrameCorrupt:
      throw Error(what + ": frame bytes corrupt/truncated at rebind");
    case Point::kCurveIo:
    case Point::kTraceIo:
      throw IoError(what);
    default:
      throw Error(what);
  }
}

void maybe_stall(Point p) {
  if (!should_fire(p)) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(detail::stall_us(p)));
}

namespace {

bool parse_point(const std::string& name, Point* out) {
  for (std::size_t i = 0; i < kPointCount; ++i) {
    const Point p = static_cast<Point>(i);
    if (name == point_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool parse_spec(const std::string& text, Spec* out, std::string* error) {
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  Spec spec;
  if (!parse_point(name, &spec.point)) {
    return fail(error, "unknown fault point \"" + name +
                           "\" (known: pool-alloc, worker-task, "
                           "frame-corrupt, curve-io, trace-io, "
                           "stage-latency)");
  }
  std::string params =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);
  while (!params.empty()) {
    const std::size_t comma = params.find(',');
    const std::string item = params.substr(0, comma);
    params = comma == std::string::npos ? std::string()
                                        : params.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return fail(error, "fault spec parameter \"" + item +
                             "\" is not key=value");
    }
    const std::string key = item.substr(0, eq);
    std::uint64_t value = 0;
    if (!parse_u64(item.substr(eq + 1), &value)) {
      return fail(error, "fault spec parameter \"" + item +
                             "\" needs an unsigned integer value");
    }
    if (key == "first") {
      if (value == 0) return fail(error, "fault spec first= is 1-based");
      spec.first = value;
    } else if (key == "every") {
      if (value == 0) return fail(error, "fault spec every= must be >= 1");
      spec.every = value;
    } else if (key == "count") {
      spec.count = value;  // 0 = unlimited
    } else if (key == "stall_us") {
      spec.stall_us = static_cast<std::uint32_t>(value);
    } else {
      return fail(error, "unknown fault spec key \"" + key +
                             "\" (known: first, every, count, stall_us)");
    }
  }
  *out = spec;
  return true;
}

bool parse_spec_list(const std::string& text, std::vector<Spec>* out,
                     std::string* error) {
  std::vector<Spec> specs;
  std::string rest = text;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string item = rest.substr(0, semi);
    rest = semi == std::string::npos ? std::string() : rest.substr(semi + 1);
    if (item.empty()) continue;
    Spec spec;
    if (!parse_spec(item, &spec, error)) return false;
    specs.push_back(spec);
  }
  if (specs.empty()) {
    return fail(error, "fault spec \"" + text + "\" names no fault point");
  }
  *out = std::move(specs);
  return true;
}

void install(const Spec& spec) {
  detail::PointState& st = detail::state_of(spec.point);
  detail::disarm(spec.point);  // write the spec only while disarmed
  st.spec = spec;
  st.hits.store(0, std::memory_order_relaxed);
  st.fired.store(0, std::memory_order_relaxed);
  detail::arm(spec.point);
}

bool install_from_string(const std::string& text, std::string* error) {
  if (text == "off" || text == "none") {
    clear_all();
    return true;
  }
  std::vector<Spec> specs;
  if (!parse_spec_list(text, &specs, error)) return false;
  for (const Spec& spec : specs) install(spec);
  return true;
}

void clear_all() {
  detail::g_armed.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kPointCount; ++i) {
    detail::PointState& st = detail::g_points[i];
    st.spec = Spec{};
    st.spec.point = static_cast<Point>(i);
    st.hits.store(0, std::memory_order_relaxed);
    st.fired.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t fired_count(Point p) noexcept {
  return detail::state_of(p).fired.load(std::memory_order_relaxed);
}

std::uint64_t hit_count(Point p) noexcept {
  return detail::state_of(p).hits.load(std::memory_order_relaxed);
}

}  // namespace hebs::util::fault
