// Console table formatting for benchmark output.
//
// Benchmarks print paper-style tables (e.g. Table 1: power saving per image
// per distortion level).  This helper keeps column alignment readable in a
// terminal without external dependencies.
#pragma once

#include <string>
#include <vector>

namespace hebs::util {

/// Accumulates rows and renders an aligned ASCII table.
class ConsoleTable {
 public:
  /// Creates a table with the given column headers.
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row (rendered as dashes).
  void add_separator();

  /// Formats a double with fixed decimals (default 2).
  static std::string num(double v, int decimals = 2);

  /// Renders the table including a header separator.
  std::string to_string() const;

  /// Number of data rows added so far.
  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hebs::util
