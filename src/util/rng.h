// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (synthetic image
// generation, measurement noise in the simulated lab bench, property-test
// inputs) draws from this generator so that runs are bit-reproducible
// across platforms.  The core is PCG32 (O'Neill, 2014): small state,
// excellent statistical quality, trivially seedable.
#pragma once

#include <cstdint>

namespace hebs::util {

/// PCG32 pseudo-random generator with convenience distributions.
class Rng {
 public:
  /// Seeds the generator. `seq` selects an independent stream.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t seq = 0xda3e39cb94b95bdbULL) noexcept;

  /// Next raw 32-bit value.
  std::uint32_t next_u32() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Standard normal via Marsaglia polar method.
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// SplitMix64 — used to derive independent seeds from a master seed.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace hebs::util
