// Minimal CSV writer used by the benchmark harness to persist series data
// (one file per paper figure) so plots can be regenerated externally.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace hebs::util {

/// Streams rows of comma-separated values to a file.
///
/// Values containing commas, quotes or newlines are quoted per RFC 4180.
/// The file is flushed and closed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws IoError when the file cannot be
  /// created.
  explicit CsvWriter(const std::string& path);

  /// Writes one row of string cells.
  void write_row(const std::vector<std::string>& cells);

  /// Writes one row mixing labels and numeric values.
  void write_row(std::initializer_list<std::string> cells);

  /// Formats a double with enough precision to round-trip.
  static std::string num(double v);

  /// Path this writer targets.
  const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
};

}  // namespace hebs::util
