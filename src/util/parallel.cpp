#include "util/parallel.h"

namespace hebs::util {

namespace {

thread_local RowExecutor* t_row_executor = nullptr;

}  // namespace

ParallelScope::ParallelScope(RowExecutor* exec) noexcept
    : prev_(t_row_executor) {
  t_row_executor = exec;
}

ParallelScope::~ParallelScope() { t_row_executor = prev_; }

RowExecutor* row_executor() noexcept { return t_row_executor; }

void parallel_rows(int n, RowBody body) {
  if (n <= 0) return;
  RowExecutor* exec = t_row_executor;
  if (exec == nullptr) {
    body(0, n);
    return;
  }
  exec->run(n, body);
}

}  // namespace hebs::util
