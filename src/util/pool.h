// Recycling buffer pool — the allocation backbone of the engine's
// zero-allocation steady state.
//
// The per-frame pipeline allocates the same family of buffers over and
// over: frame-sized rasters (reference luminance, HVS lightness, test
// rasters), integral-image tables, 256-point transfer curves, PLC
// scratch, memo-map nodes.  A `BufferPool` keeps freed blocks on
// size-bucketed free lists instead of returning them to the heap, so
// after a short warm-up every per-frame allocation is served by
// recycling a block freed one frame earlier and the steady state
// performs zero heap allocations per frame (the counting-allocator
// harness `bench_alloc_steady_state` enforces exactly this).
//
// Plumbing is by allocator, not by call site: `PoolAllocator<T>` is a
// stateless STL allocator that draws from the calling thread's
// *current* pool (installed with a RAII `PoolScope`) and falls back to
// the global heap when none is installed.  Every block carries a header
// naming its origin pool, so a container may be freed on any thread, in
// any scope — even after the owning `BufferPool` object is gone (the
// refcounted pool core outlives its last outstanding block).  This is
// what lets pipeline results (curves, rasters) escape the engine's
// worker scopes and still deallocate safely.
//
// Ownership rules (DESIGN.md §9):
//   * allocation goes to the thread's current pool; free goes to the
//     block's origin pool, wherever the free happens;
//   * a pool never frees an outstanding block — destroying the
//     `BufferPool` releases the cached (free) blocks and detaches; the
//     last outstanding block returning to a detached core frees both;
//   * pools are thread-safe (one mutex per pool); for scalability the
//     engine gives each worker slot its own pool.
#pragma once

#include <cstddef>
#include <map>
#include <new>
#include <vector>

namespace hebs::util {

namespace pool_detail {

struct PoolCore;

/// Allocates `bytes` from the calling thread's current pool (or the
/// global heap when none is installed).  Never returns nullptr.
void* pool_allocate(std::size_t bytes);

/// Returns a pool_allocate'd block to its origin pool (or the heap).
void pool_deallocate(void* p) noexcept;

PoolCore* current_core() noexcept;

}  // namespace pool_detail

/// Pool configuration.
struct PoolOptions {
  /// Cap on bytes kept on the free lists; blocks freed beyond the cap go
  /// to the heap.  0 = unlimited (the default — an eviction under the
  /// per-frame working set would break the zero-allocation steady
  /// state).
  std::size_t max_retained_bytes = 0;
  /// Cap on bytes checked out of the pool at once; 0 = unlimited.  An
  /// allocation that would exceed the cap degrades to a counted
  /// plain-heap block (Stats::heap_fallbacks, obs kPoolHeapFallback)
  /// instead of failing — pool exhaustion never throws, it only costs
  /// the recycling benefit for the overflowing blocks.
  std::size_t max_pool_bytes = 0;
};

/// A recycling arena: size-bucketed free lists of heap blocks.
class BufferPool {
 public:
  explicit BufferPool(PoolOptions opts = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Counters for the harnesses and tests.
  struct Stats {
    std::size_t hits = 0;         ///< allocations served from a free list
    std::size_t misses = 0;       ///< allocations that hit the heap
    std::size_t outstanding = 0;  ///< blocks currently alive
    std::size_t retained_bytes = 0;  ///< bytes cached on the free lists
    std::size_t heap_fallbacks = 0;  ///< allocations degraded past the
                                     ///< max_pool_bytes cap
  };
  Stats stats() const;

  /// Releases every cached (free) block to the heap.
  void trim();

 private:
  friend class PoolScope;
  pool_detail::PoolCore* core_;
};

/// RAII: installs a pool as the calling thread's allocation arena for
/// `PoolAllocator` and restores the previous one on destruction.
/// A null pool is a no-op scope.
class PoolScope {
 public:
  explicit PoolScope(BufferPool* pool) noexcept;
  ~PoolScope();

  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  pool_detail::PoolCore* prev_;
};

/// Stateless STL allocator over the thread's current pool.  All
/// instances compare equal; deallocation is routed by the block header,
/// so containers may migrate across threads and pool scopes freely.
template <class T>
struct PoolAllocator {
  using value_type = T;
  using is_always_equal = std::true_type;

  PoolAllocator() noexcept = default;
  template <class U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(pool_detail::pool_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    pool_detail::pool_deallocate(p);
  }

  template <class U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

/// The pool-backed vector every recycled buffer in the pipeline uses.
template <class T>
using PoolVector = std::vector<T, PoolAllocator<T>>;

/// Pool-backed ordered map (the FrameContext memo maps — their nodes
/// are freed on every rebind and reacquired for the next frame).
template <class K, class V>
using PoolMap = std::map<K, V, std::less<K>,
                         PoolAllocator<std::pair<const K, V>>>;

}  // namespace hebs::util
