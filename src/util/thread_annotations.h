// Clang thread-safety (capability) annotation macros.
//
// The repo's concurrency invariants — which mutex guards which fields,
// which functions must (or must not) be entered holding a lock — were
// prose contracts in headers until PR 7.  These macros turn them into
// compiler-checked facts: under Clang the annotations feed
// -Wthread-safety, which CI promotes to an error, so a call path that
// touches guarded state without its mutex fails the build instead of
// becoming a rare production race.  Under every other compiler (the
// local GCC builds included) they expand to nothing and the code is
// unchanged.
//
// The vocabulary follows the Clang thread-safety-analysis documentation
// (and abseil's thread_annotations.h, the de-facto reference usage):
//
//   * HEBS_CAPABILITY declares a lockable type (util::Mutex);
//   * HEBS_GUARDED_BY(mu) on a member: reads and writes require mu;
//   * HEBS_PT_GUARDED_BY(mu) on a pointer member: the pointee requires
//     mu (the pointer itself does not);
//   * HEBS_REQUIRES(mu) on a function: callers must hold mu;
//   * HEBS_ACQUIRE/HEBS_RELEASE on a function: it takes/drops mu;
//   * HEBS_EXCLUDES(mu) on a function: callers must NOT hold mu (the
//     anti-deadlock direction — e.g. ThreadPool::parallel_for, which
//     acquires the pool mutex itself);
//   * HEBS_NO_THREAD_SAFETY_ANALYSIS opts a function body out (used
//     only where the analysis cannot model the truth, never to silence
//     a genuine violation — each use carries a justification comment).
//
// DESIGN.md §12 documents the locking discipline these annotations
// enforce and lists every annotated structure.
#pragma once

#if defined(__clang__)
#define HEBS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HEBS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

#define HEBS_CAPABILITY(x) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define HEBS_SCOPED_CAPABILITY \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define HEBS_GUARDED_BY(x) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define HEBS_PT_GUARDED_BY(x) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define HEBS_ACQUIRE(...) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define HEBS_TRY_ACQUIRE(...) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define HEBS_RELEASE(...) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define HEBS_REQUIRES(...) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define HEBS_EXCLUDES(...) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define HEBS_RETURN_CAPABILITY(x) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define HEBS_ASSERT_CAPABILITY(x) \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define HEBS_NO_THREAD_SAFETY_ANALYSIS \
  HEBS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
