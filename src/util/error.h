// Error handling primitives shared by every hebs module.
//
// The library reports contract violations and unrecoverable conditions by
// throwing `hebs::util::Error` (or a subclass).  The HEBS_REQUIRE macro is
// the standard way to validate arguments at public API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace hebs::util {

/// Base exception for all errors raised by the hebs library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Parsing or I/O of an external resource (PNM file, CSV, ...) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A hardware-model constraint was violated (e.g. non-monotone ladder
/// program, voltage above Vdd).
class HardwareError : public Error {
 public:
  explicit HardwareError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement `" + expr + "` failed: " + msg);
}
}  // namespace detail

}  // namespace hebs::util

/// Validate a precondition of a public API; throws InvalidArgument with
/// source location on failure.
#define HEBS_REQUIRE(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::hebs::util::detail::throw_invalid_argument(#cond, __FILE__,         \
                                                   __LINE__, (msg));        \
    }                                                                       \
  } while (false)
