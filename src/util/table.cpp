#include "util/table.h"

#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace hebs::util {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HEBS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  HEBS_REQUIRE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::add_separator() { rows_.emplace_back(); }

std::string ConsoleTable::num(double v, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << v;
  return ss.str();
}

std::string ConsoleTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&widths](const std::vector<std::string>& cells) {
    std::ostringstream ss;
    ss << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      ss << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
         << " |";
    }
    ss << '\n';
    return ss.str();
  };
  auto render_separator = [&widths]() {
    std::ostringstream ss;
    ss << '+';
    for (std::size_t w : widths) ss << std::string(w + 2, '-') << '+';
    ss << '\n';
    return ss.str();
  };

  std::ostringstream out;
  out << render_separator() << render_line(headers_) << render_separator();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << render_separator();
    } else {
      out << render_line(row);
    }
  }
  out << render_separator();
  return out.str();
}

}  // namespace hebs::util
