#include "util/pool.h"

#include <cstdint>
#include <unordered_map>

#include "obs/counters.h"
#include "util/faultpoint.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hebs::util {

namespace pool_detail {

namespace {

/// Rounding quantum for free-list buckets: close-but-unequal sizes share
/// a bucket, and the per-frame working set (identical sizes every frame)
/// always hits exactly.
constexpr std::size_t kBucketQuantum = 64;

/// Header preceding every payload.  16 bytes keeps the payload at the
/// max_align_t alignment operator new provides.
struct BlockHeader {
  PoolCore* origin;   ///< pool custody; nullptr = plain heap block
  std::size_t bytes;  ///< rounded payload size (the bucket key)
};
static_assert(sizeof(BlockHeader) <= alignof(std::max_align_t),
              "header must preserve payload alignment");

constexpr std::size_t kHeaderSize = alignof(std::max_align_t);

std::size_t round_bucket(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  return (bytes + kBucketQuantum - 1) / kBucketQuantum * kBucketQuantum;
}

void* payload_of(void* raw) noexcept {
  return static_cast<std::byte*>(raw) + kHeaderSize;
}

BlockHeader* header_of(void* payload) noexcept {
  return reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(payload) -
                                        kHeaderSize);
}

}  // namespace

/// Shared pool state.  Separated from BufferPool so blocks that outlive
/// the pool object can still find their way home: the core is
/// refcounted by its outstanding blocks and self-destructs when the
/// owner has detached and the last block returns.
struct PoolCore {
  explicit PoolCore(PoolOptions o) : opts(o) {}

  PoolOptions opts;
  mutable hebs::util::Mutex mu;
  // Bucket size -> stack of cached raw blocks (header included).  The
  // map and its vectors use the global heap; in steady state they only
  // pop/push within existing capacity, so they allocate during warm-up
  // only.
  std::unordered_map<std::size_t, std::vector<void*>> free_
      HEBS_GUARDED_BY(mu);
  std::size_t retained_bytes HEBS_GUARDED_BY(mu) = 0;
  std::size_t outstanding HEBS_GUARDED_BY(mu) = 0;
  std::size_t outstanding_bytes HEBS_GUARDED_BY(mu) = 0;
  bool detached HEBS_GUARDED_BY(mu) = false;
  std::size_t hits HEBS_GUARDED_BY(mu) = 0;
  std::size_t misses HEBS_GUARDED_BY(mu) = 0;
  std::size_t heap_fallbacks HEBS_GUARDED_BY(mu) = 0;

  /// Frees every cached block.
  void release_cached_locked() HEBS_REQUIRES(mu) {
    for (auto& [bytes, blocks] : free_) {
      (void)bytes;
      for (void* raw : blocks) ::operator delete(raw);
      blocks.clear();
    }
    retained_bytes = 0;
  }
};

namespace {

thread_local PoolCore* t_current = nullptr;

}  // namespace

PoolCore* current_core() noexcept { return t_current; }

void* pool_allocate(std::size_t bytes) {
  const std::size_t rounded = round_bucket(bytes);
  PoolCore* core = t_current;
  if (core != nullptr) {
    // The registered allocation-failure fault point: every draw from an
    // installed BufferPool crosses this boundary, so a pool-alloc spec
    // fails allocations exactly where a genuinely exhausted pool would.
    // Scope-less (plain heap) draws are outside the boundary on
    // purpose: pools are installed around the engine's per-frame work,
    // which is where the containment contract (DESIGN.md §14) holds —
    // firing on a caller thread's setup allocations would escape it.
    // Off = one relaxed load.
    fault::maybe_fail(fault::Point::kPoolAlloc);
    {
      hebs::util::MutexLock lock(core->mu);
      const std::size_t cap = core->opts.max_pool_bytes;
      if (cap != 0 && core->outstanding_bytes + rounded > cap) {
        // Pool exhausted: degrade to a counted plain-heap block rather
        // than fail.  The block carries a null origin, so its free goes
        // straight back to the heap and the pool's accounting (and the
        // detached-core refcount) never sees it.
        ++core->heap_fallbacks;
        obs::add(obs::Counter::kPoolHeapFallback);
        void* raw = ::operator new(kHeaderSize + rounded);
        *static_cast<BlockHeader*>(raw) = {nullptr, rounded};
        return payload_of(raw);
      }
      auto it = core->free_.find(rounded);
      if (it != core->free_.end() && !it->second.empty()) {
        void* raw = it->second.back();
        it->second.pop_back();
        core->retained_bytes -= rounded;
        ++core->outstanding;
        core->outstanding_bytes += rounded;
        ++core->hits;
        // Process-global aggregates alongside the per-core fields:
        // pools are per-worker and ephemeral, the registry outlives
        // them all.  Relaxed atomics, fine under mu too.
        obs::add(obs::Counter::kPoolRecycled);
        obs::add(obs::Counter::kPoolBytesOutstanding, rounded);
        return payload_of(raw);
      }
    }
    // Miss: take the heap block first — outstanding may only count
    // blocks that actually exist (a throwing `new` must not wedge the
    // detached-core refcount).
    void* raw = ::operator new(kHeaderSize + rounded);
    {
      hebs::util::MutexLock lock(core->mu);
      ++core->outstanding;
      core->outstanding_bytes += rounded;
      ++core->misses;
    }
    obs::add(obs::Counter::kPoolFresh);
    obs::add(obs::Counter::kPoolBytesOutstanding, rounded);
    *static_cast<BlockHeader*>(raw) = {core, rounded};
    return payload_of(raw);
  }
  void* raw = ::operator new(kHeaderSize + rounded);
  *static_cast<BlockHeader*>(raw) = {nullptr, rounded};
  return payload_of(raw);
}

void pool_deallocate(void* p) noexcept {
  if (p == nullptr) return;
  BlockHeader* header = header_of(p);
  PoolCore* core = header->origin;
  if (core == nullptr) {
    ::operator delete(header);
    return;
  }
  obs::sub(obs::Counter::kPoolBytesOutstanding, header->bytes);
  bool destroy_core = false;
  {
    hebs::util::MutexLock lock(core->mu);
    --core->outstanding;
    core->outstanding_bytes -= header->bytes;
    const std::size_t cap = core->opts.max_retained_bytes;
    if (!core->detached &&
        (cap == 0 || core->retained_bytes + header->bytes <= cap)) {
      core->free_[header->bytes].push_back(header);
      core->retained_bytes += header->bytes;
      header = nullptr;  // cached; pool keeps custody
    }
    destroy_core = core->detached && core->outstanding == 0;
  }
  if (header != nullptr) ::operator delete(header);
  if (destroy_core) delete core;
}

}  // namespace pool_detail

BufferPool::BufferPool(PoolOptions opts)
    : core_(new pool_detail::PoolCore(opts)) {}

BufferPool::~BufferPool() {
  bool destroy = false;
  {
    hebs::util::MutexLock lock(core_->mu);
    core_->release_cached_locked();
    core_->detached = true;
    destroy = core_->outstanding == 0;
  }
  if (destroy) delete core_;
  // Otherwise the last outstanding block's deallocation deletes the
  // core (see pool_deallocate).
}

BufferPool::Stats BufferPool::stats() const {
  hebs::util::MutexLock lock(core_->mu);
  return {core_->hits, core_->misses, core_->outstanding,
          core_->retained_bytes, core_->heap_fallbacks};
}

void BufferPool::trim() {
  hebs::util::MutexLock lock(core_->mu);
  core_->release_cached_locked();
}

PoolScope::PoolScope(BufferPool* pool) noexcept
    : prev_(pool_detail::t_current) {
  if (pool != nullptr) pool_detail::t_current = pool->core_;
}

PoolScope::~PoolScope() { pool_detail::t_current = prev_; }

}  // namespace hebs::util
