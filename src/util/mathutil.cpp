#include "util/mathutil.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"
#include "util/error.h"

namespace hebs::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  // sum_f64 carries the scalar accumulation-order contract (kernels.h),
  // so the mean is bit-identical under every backend.
  return hebs::kernels::active().sum_f64(xs.data(), xs.size()) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double covariance(std::span<const double> xs, std::span<const double> ys) {
  HEBS_REQUIRE(xs.size() == ys.size(), "covariance needs equal sizes");
  if (xs.empty()) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += (xs[i] - mx) * (ys[i] - my);
  }
  return acc / static_cast<double>(xs.size());
}

double percentile(std::span<const double> xs, double p) {
  HEBS_REQUIRE(!xs.empty(), "percentile of empty span");
  HEBS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return lerp(sorted[lo], sorted[hi], frac);
}

double sum(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return hebs::kernels::active().sum_f64(xs.data(), xs.size());
}

double rms_diff(std::span<const double> xs, std::span<const double> ys) {
  HEBS_REQUIRE(xs.size() == ys.size(), "rms_diff needs equal sizes");
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - ys[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  HEBS_REQUIRE(n >= 2, "linspace needs at least two points");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;
  return out;
}

}  // namespace hebs::util
