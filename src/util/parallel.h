// Intra-frame row parallelism.
//
// The pipeline's frame-level parallelism (the engine's batch/stream
// fan-out) leaves single-frame *latency* untouched: one frame runs on
// one worker while the rest idle.  This header is the seam that fixes
// that.  A RowExecutor fans independent row ranges of one frame's inner
// loops (Gaussian blur rows, UIQI window rows, PLC DP columns) across
// threads; call sites reach it through parallel_rows(), which degrades
// to an inline serial loop when nothing is installed.
//
// Contract for parallel bodies:
//   * chunks are disjoint and cover [0, n); bodies must be independent
//     (no cross-chunk reads of written state) and must not allocate —
//     worker threads carry no BufferPool scope, so pooled containers
//     are unavailable inside a body;
//   * outputs must be written by index.  Every current call site writes
//     each element of its output exactly once from exactly one chunk,
//     so results are bit-identical for every executor, chunking and
//     thread count (the determinism contract DESIGN.md §11 documents).
//
// Installation is thread-local and RAII-scoped (mirroring PoolScope):
// the engine installs a ThreadPool-backed executor around single-frame
// work and nothing else changes — library code never spawns threads on
// its own.
#pragma once

namespace hebs::util {

/// Non-owning reference to a `void(begin, end)` row-range body (the
/// hot paths cannot afford a std::function allocation per call).
class RowBody {
 public:
  template <typename F>
  RowBody(const F& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_(&invoke<F>) {}

  void operator()(int begin, int end) const { call_(obj_, begin, end); }

 private:
  template <typename F>
  static void invoke(const void* obj, int begin, int end) {
    (*static_cast<const F*>(obj))(begin, end);
  }

  const void* obj_;
  void (*call_)(const void*, int, int);
};

/// Executes independent row-range bodies, possibly across threads.
class RowExecutor {
 public:
  virtual ~RowExecutor() = default;
  /// Runs body(begin, end) over disjoint chunks covering [0, n) and
  /// blocks until every chunk has finished.
  virtual void run(int n, RowBody body) = 0;
};

/// Installs `exec` as the calling thread's row executor for the scope's
/// lifetime (nullptr uninstalls; scopes nest, restoring the previous
/// executor on destruction).
class ParallelScope {
 public:
  explicit ParallelScope(RowExecutor* exec) noexcept;
  ~ParallelScope();
  ParallelScope(const ParallelScope&) = delete;
  ParallelScope& operator=(const ParallelScope&) = delete;

 private:
  RowExecutor* prev_;
};

/// The calling thread's installed executor (nullptr = serial).
RowExecutor* row_executor() noexcept;

/// Runs body(begin, end) over [0, n): one inline call covering the whole
/// range when no executor is installed, fanned across the installed
/// executor's threads otherwise.
void parallel_rows(int n, RowBody body);

}  // namespace hebs::util
