#include "obs/counters.h"

#include <cstdio>

namespace hebs::obs {

namespace counter_detail {

// Zero-initialized constant-initialized storage: no static-init order
// hazards, no destructor, counting is valid for the whole process
// lifetime.
std::array<std::atomic<std::uint64_t>, kCounterCount> g_cells{};

}  // namespace counter_detail

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kFramesDecided:
      return "hebs_frames_decided_total";
    case Counter::kTemporalFrames:
      return "hebs_temporal_frames_total";
    case Counter::kTemporalByteIdentical:
      return "hebs_temporal_reuse_byte_identical_total";
    case Counter::kTemporalDeltaRefresh:
      return "hebs_temporal_reuse_delta_refresh_total";
    case Counter::kTemporalCold:
      return "hebs_temporal_reuse_cold_total";
    case Counter::kTemporalWarmVerified:
      return "hebs_temporal_warm_verified_total";
    case Counter::kEvalMemoHit:
      return "hebs_eval_memo_hits_total";
    case Counter::kEvalMemoMiss:
      return "hebs_eval_memo_misses_total";
    case Counter::kAtRangeHit:
      return "hebs_at_range_hits_total";
    case Counter::kAtRangeMiss:
      return "hebs_at_range_misses_total";
    case Counter::kRangeProbes:
      return "hebs_range_probes_total";
    case Counter::kBetaProbes:
      return "hebs_beta_probes_total";
    case Counter::kPoolRecycled:
      return "hebs_pool_recycled_total";
    case Counter::kPoolFresh:
      return "hebs_pool_fresh_total";
    case Counter::kPoolBytesOutstanding:
      return "hebs_pool_bytes_outstanding";
    case Counter::kDispatchScalar:
      return "hebs_kernel_dispatch_scalar_total";
    case Counter::kDispatchSse42:
      return "hebs_kernel_dispatch_sse42_total";
    case Counter::kDispatchAvx2:
      return "hebs_kernel_dispatch_avx2_total";
    case Counter::kDispatchNeon:
      return "hebs_kernel_dispatch_neon_total";
    case Counter::kParallelForCalls:
      return "hebs_parallel_for_calls_total";
    case Counter::kParallelForItems:
      return "hebs_parallel_for_items_total";
    case Counter::kParallelForQueued:
      return "hebs_parallel_for_queued_total";
    case Counter::kFaultPoolAlloc:
      return "hebs_fault_injected_pool_alloc_total";
    case Counter::kFaultWorkerTask:
      return "hebs_fault_injected_worker_task_total";
    case Counter::kFaultFrameCorrupt:
      return "hebs_fault_injected_frame_corrupt_total";
    case Counter::kFaultCurveIo:
      return "hebs_fault_injected_curve_io_total";
    case Counter::kFaultTraceIo:
      return "hebs_fault_injected_trace_io_total";
    case Counter::kFaultStageLatency:
      return "hebs_fault_injected_stage_latency_total";
    case Counter::kFramesDegraded:
      return "hebs_frames_degraded_total";
    case Counter::kDeadlineMiss:
      return "hebs_deadline_miss_total";
    case Counter::kPoolHeapFallback:
      return "hebs_pool_heap_fallback_total";
    case Counter::kCounterCount_:
      break;
  }
  return "hebs_unknown";
}

bool counter_is_gauge(Counter c) noexcept {
  return c == Counter::kPoolBytesOutstanding;
}

CounterSnapshot CounterSnapshot::delta_since(
    const CounterSnapshot& baseline) const noexcept {
  CounterSnapshot d;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    d.values[i] = counter_is_gauge(c) ? values[i]
                                      : values[i] - baseline.values[i];
  }
  return d;
}

CounterSnapshot snapshot_counters() noexcept {
  CounterSnapshot s;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    s.values[i] = counter_detail::g_cells[i].load(std::memory_order_relaxed);
  }
  return s;
}

std::string counters_text(const CounterSnapshot& snap) {
  std::string out;
  out.reserve(kCounterCount * 48);
  char line[96];
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    std::snprintf(line, sizeof(line), "%s %llu\n", counter_name(c),
                  static_cast<unsigned long long>(snap.values[i]));
    out += line;
  }
  return out;
}

}  // namespace hebs::obs
