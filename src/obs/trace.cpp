#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/error.h"
#include "util/faultpoint.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hebs::obs {

namespace trace_detail {

std::atomic<bool> g_enabled{false};

namespace {

struct TraceEvent {
  std::int64_t start_ns;
  std::int64_t dur_ns;
  std::int32_t arg;
  Span span;
};

/// One thread's flight-recorder ring.  Written only by the owning
/// thread; read by collect/write, which run while no recording thread
/// is active (the documented contract).
struct Ring {
  TraceEvent* events = nullptr;
  std::size_t capacity = 0;
  std::size_t cursor = 0;      ///< next write slot
  std::uint64_t total = 0;     ///< events ever recorded (wrap detection)
};

/// Whole-tracer state: ring directory plus the flat pre-sized event
/// storage every ring carves its slice from.  Allocated once by
/// start_tracing and reused across epochs; never freed (the record path
/// may hold a pointer with only relaxed ordering).
struct TracerState {
  std::vector<Ring> rings;
  std::vector<TraceEvent> storage;
  std::atomic<std::uint32_t> claimed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::int64_t t0_ns = 0;
};

std::atomic<TracerState*> g_state{nullptr};
/// Bumped on every start_tracing: forces threads to re-claim rings, so
/// stale thread-local pointers from a previous epoch are never written.
std::atomic<std::uint32_t> g_trace_epoch{0};
/// Serializes the cold control plane (start/stop/clear/collect/write).
hebs::util::Mutex g_control_mu;

thread_local Ring* t_ring = nullptr;
thread_local std::uint32_t t_ring_epoch = 0;

/// The calling thread's ring for the current epoch, claiming a slot on
/// first use.  Returns nullptr (and counts a drop) when slots are
/// exhausted or tracing was torn down.  Allocation-free.
Ring* thread_ring() noexcept {
  const std::uint32_t epoch = g_trace_epoch.load(std::memory_order_acquire);
  if (t_ring_epoch == epoch) return t_ring;  // claimed or denied already
  TracerState* st = g_state.load(std::memory_order_acquire);
  t_ring_epoch = epoch;
  t_ring = nullptr;
  if (st != nullptr) {
    const std::uint32_t slot =
        st->claimed.fetch_add(1, std::memory_order_relaxed);
    if (slot < st->rings.size()) t_ring = &st->rings[slot];
  }
  return t_ring;
}

}  // namespace

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void record_span(Span span, std::int64_t start_ns, std::int32_t arg) noexcept {
  const std::int64_t end_ns = now_ns();
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Ring* ring = thread_ring();
  if (ring == nullptr || ring->capacity == 0) {
    TracerState* st = g_state.load(std::memory_order_relaxed);
    if (st != nullptr) st->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TracerState* st = g_state.load(std::memory_order_relaxed);
  ring->events[ring->cursor] = {start_ns - st->t0_ns, end_ns - start_ns, arg,
                                span};
  ring->cursor = ring->cursor + 1 == ring->capacity ? 0 : ring->cursor + 1;
  if (++ring->total > ring->capacity) {
    st->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace trace_detail

namespace {

using trace_detail::g_control_mu;
using trace_detail::g_enabled;
using trace_detail::g_state;
using trace_detail::g_trace_epoch;
using trace_detail::Ring;
using trace_detail::TracerState;

}  // namespace

const char* span_name(Span s) noexcept {
  switch (s) {
    case Span::kFrame:
      return "frame";
    case Span::kTemporalReuse:
      return "temporal-reuse";
    case Span::kHistogram:
      return "histogram";
    case Span::kRangeSearch:
      return "range-search";
    case Span::kRangeProbe:
      return "range-probe";
    case Span::kBetaRefine:
      return "beta-refine";
    case Span::kBetaProbe:
      return "beta-probe";
    case Span::kLutApply:
      return "lut-apply";
    case Span::kColorRender:
      return "color-render";
    case Span::kFlickerPost:
      return "flicker-post";
    case Span::kSpanCount_:
      break;
  }
  return "unknown";
}

void start_tracing(const TraceOptions& opts) {
  hebs::util::MutexLock lock(g_control_mu);
  if (g_enabled.load(std::memory_order_relaxed)) return;  // already active
  TracerState* st = g_state.load(std::memory_order_relaxed);
  const std::size_t threads = std::max<std::size_t>(opts.max_threads, 1);
  const std::size_t per_thread =
      std::max<std::size_t>(opts.events_per_thread, 16);
  if (st == nullptr || st->storage.size() < threads * per_thread) {
    // First start (or a bigger request): allocate the flat storage.
    // The previous state, if any, leaks by design — record_span may
    // still hold its pointer.
    auto* fresh = new TracerState;
    fresh->storage.resize(threads * per_thread);
    st = fresh;
    g_state.store(fresh, std::memory_order_release);
  }
  // Carve per-thread ring slices at the requested geometry (the epoch
  // bump below forces every thread to re-claim before its next record,
  // so no stale Ring pointer is ever written through).
  st->rings.assign(threads, Ring{});
  for (std::size_t i = 0; i < threads; ++i) {
    st->rings[i].events = st->storage.data() + i * per_thread;
    st->rings[i].capacity = per_thread;
  }
  st->claimed.store(0, std::memory_order_relaxed);
  st->dropped.store(0, std::memory_order_relaxed);
  st->t0_ns = trace_detail::now_ns();
  // New epoch: every thread re-claims before its first record.
  g_trace_epoch.fetch_add(1, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
}

void stop_tracing() noexcept {
  g_enabled.store(false, std::memory_order_release);
}

void clear_trace() noexcept {
  hebs::util::MutexLock lock(g_control_mu);
  TracerState* st = g_state.load(std::memory_order_relaxed);
  if (st == nullptr) return;
  for (Ring& ring : st->rings) {
    ring.cursor = 0;
    ring.total = 0;
  }
  st->dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t dropped_spans() noexcept {
  TracerState* st = g_state.load(std::memory_order_acquire);
  return st == nullptr ? 0 : st->dropped.load(std::memory_order_relaxed);
}

std::vector<CollectedSpan> collect_trace() {
  hebs::util::MutexLock lock(g_control_mu);
  std::vector<CollectedSpan> out;
  TracerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr) return out;
  const std::uint32_t claimed =
      std::min<std::uint32_t>(st->claimed.load(std::memory_order_relaxed),
                              static_cast<std::uint32_t>(st->rings.size()));
  for (std::uint32_t tid = 0; tid < claimed; ++tid) {
    const Ring& ring = st->rings[tid];
    const std::size_t count =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            ring.total, static_cast<std::uint64_t>(ring.capacity)));
    // Oldest-first: a wrapped ring's oldest retained event sits at the
    // cursor; an unwrapped ring starts at 0.
    const std::size_t begin = ring.total > ring.capacity ? ring.cursor : 0;
    for (std::size_t i = 0; i < count; ++i) {
      const auto& ev = ring.events[(begin + i) % ring.capacity];
      out.push_back({ev.span, tid, ev.start_ns, ev.dur_ns, ev.arg});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedSpan& a, const CollectedSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return out;
}

void write_chrome_trace(const std::string& path) {
  // Trace-write fault point (an injected IoError behaves exactly like a
  // destination that vanished between create and write).
  hebs::util::fault::maybe_fail(hebs::util::fault::Point::kTraceIo);
  const auto spans = collect_trace();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw hebs::util::IoError("cannot open trace path for writing: " + path);
  }
  bool ok = std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f) >= 0;
  for (std::size_t i = 0; i < spans.size() && ok; ++i) {
    const CollectedSpan& s = spans[i];
    // Complete ("X") events; ts/dur in microseconds as chrome expects.
    ok = std::fprintf(
             f,
             "{\"name\":\"%s\",\"cat\":\"hebs\",\"ph\":\"X\",\"pid\":1,"
             "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"arg\":%d}}%s\n",
             span_name(s.span), s.tid,
             static_cast<double>(s.start_ns) / 1000.0,
             static_cast<double>(s.dur_ns) / 1000.0, s.arg,
             i + 1 == spans.size() ? "" : ",") >= 0;
  }
  ok = ok && std::fputs("]}\n", f) >= 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) throw hebs::util::IoError("failed writing trace to " + path);
}

}  // namespace hebs::obs
