// Process-global observability counter registry.
//
// A fixed, enum-indexed array of relaxed atomics instrumenting the
// engine's invisible machinery: temporal-reuse levels, FrameContext and
// probe memo hit rates, BufferPool recycling, kernel-backend dispatch,
// search probe counts and ThreadPool fan-outs.  The registry is
// process-global (like the kernel backend selection): counting sites
// live on per-frame hot paths shared by every session, and a global
// fixed array is the only storage that is simultaneously allocation-free
// (bench_alloc_steady_state stays at 0 allocations/frame with counters
// enabled), TSan-clean (relaxed fetch_add carries no ordering duty — the
// counts are monotone diagnostics, never synchronization), and free of
// registration locks on the hot path.
//
// Counters are always on: one relaxed fetch_add per event.  Consumers
// read consistent *deltas* by snapshotting before and after the work
// they attribute (Session::stats() snapshots at create; FrameResult's
// breakdown snapshots around one frame).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hebs::obs {

/// Every counter the registry tracks.  Names reported by counter_name()
/// are the Prometheus-style series names of the text dump.
enum class Counter : std::size_t {
  // Frame decisions (one per full range search, cold or warm).
  kFramesDecided,
  // Temporal reuse: frames seen and the level taken per frame
  // (byte-identical / delta-refresh / cold are mutually exclusive;
  // warm-verified counts searches whose seeded bracket verified).
  kTemporalFrames,
  kTemporalByteIdentical,
  kTemporalDeltaRefresh,
  kTemporalCold,
  kTemporalWarmVerified,
  // refine_beta's probe memo (the 36-slot eval array).
  kEvalMemoHit,
  kEvalMemoMiss,
  // FrameContext's per-range result memo (at_range / distortion_at_range).
  kAtRangeHit,
  kAtRangeMiss,
  // Search probe evaluations: exact distortion probes of the range
  // search, and β candidate evaluations inside refine_beta.
  kRangeProbes,
  kBetaProbes,
  // BufferPool: recycled (free-list hit) vs fresh (heap miss) blocks,
  // and the bytes currently checked out of any pool (a gauge).
  kPoolRecycled,
  kPoolFresh,
  kPoolBytesOutstanding,
  // Kernel dispatch sites by selected backend.
  kDispatchScalar,
  kDispatchSse42,
  kDispatchAvx2,
  kDispatchNeon,
  // ThreadPool: fan-outs, total indices fanned out, and fan-outs that
  // found the pool busy and queued behind another caller.
  kParallelForCalls,
  kParallelForItems,
  kParallelForQueued,
  // Fault injection (util/faultpoint.h): firings per registered point.
  // Zero in production — nonzero only under an installed HEBS_FAULT /
  // SessionConfig::fault_spec spec, where tests match them against the
  // expected injection count.
  kFaultPoolAlloc,
  kFaultWorkerTask,
  kFaultFrameCorrupt,
  kFaultCurveIo,
  kFaultTraceIo,
  kFaultStageLatency,
  // Graceful degradation: frames that emitted the identity fallback
  // (contained fault or blown deadline), frames that specifically blew
  // the soft per-frame deadline, and pool allocations served as counted
  // heap fallbacks because the pool's byte cap was exhausted.
  kFramesDegraded,
  kDeadlineMiss,
  kPoolHeapFallback,
  kCounterCount_,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCounterCount_);

namespace counter_detail {
/// The registry cells.  Zero-initialized static storage; never touched
/// by constructors or destructors, so counting is safe at any point of
/// the process lifetime.
extern std::array<std::atomic<std::uint64_t>, kCounterCount> g_cells;
}  // namespace counter_detail

/// Adds `n` to a counter.  Relaxed: counts are diagnostics, not
/// synchronization (DESIGN.md §13).
inline void add(Counter c, std::uint64_t n = 1) noexcept {
  counter_detail::g_cells[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

/// Subtracts `n` from a gauge counter (kPoolBytesOutstanding).
inline void sub(Counter c, std::uint64_t n) noexcept {
  counter_detail::g_cells[static_cast<std::size_t>(c)].fetch_sub(
      n, std::memory_order_relaxed);
}

/// The Prometheus-style series name ("hebs_range_probes_total", ...).
const char* counter_name(Counter c) noexcept;

/// True for gauges (current level, may go down); false for monotone
/// totals.  delta_since() keeps gauges absolute.
bool counter_is_gauge(Counter c) noexcept;

/// A point-in-time copy of every counter.
struct CounterSnapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  std::uint64_t operator[](Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }

  /// This snapshot minus `baseline`, counter by counter — the activity
  /// between the two snapshots.  Gauges stay absolute (the level at
  /// *this* snapshot), totals subtract.
  CounterSnapshot delta_since(const CounterSnapshot& baseline) const noexcept;
};

/// Reads every counter (relaxed; consistent enough for diagnostics).
CounterSnapshot snapshot_counters() noexcept;

/// Renders a snapshot as Prometheus-style text: one "name value" line
/// per counter, ready for hebs_served to serve as a scrape body.
std::string counters_text(const CounterSnapshot& snap);

}  // namespace hebs::obs
