// Low-overhead span tracer: per-thread pre-sized ring buffers.
//
// Every pipeline stage worth attributing wall time to — histogram
// build, range search, per-probe evaluations, β refinement, LUT apply,
// color render, the flicker post-stage, the temporal-reuse decision —
// opens a ScopedSpan.  With tracing disabled (the default) a span site
// costs exactly one predictable branch: a relaxed load of the global
// enabled flag that stays false.  With tracing enabled, each span costs
// two steady_clock reads and one store into the recording thread's
// pre-sized ring; nothing on the record path allocates, takes a lock,
// or changes any computed value — traced runs are bit-identical to
// untraced runs, and bench_alloc_steady_state stays at 0
// allocations/frame with tracing on (rings are allocated by
// start_tracing, i.e. at session setup).
//
// Buffers are flight-recorder rings: when a thread's ring fills, the
// oldest events are overwritten and counted in dropped_spans().
// start/stop/collect/write are cold control-plane calls; collect and
// write expect no processing call to be in flight (the engine joins its
// workers before every Session call returns, so call them between
// frames/batches).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hebs::obs {

/// Span taxonomy (DESIGN.md §13).  Chrome-trace names come from
/// span_name().
enum class Span : std::uint8_t {
  kFrame,         ///< one frame's decision+render on a worker; arg = frame index
  kTemporalReuse, ///< TemporalReuse::process; arg = reuse level (0 cold,
                  ///< 1 delta-refresh, 2 byte-identical)
  kHistogram,     ///< exact histogram build (recount, not delta refresh)
  kRangeSearch,   ///< the decision: range search + β refine, one per decision
  kRangeProbe,    ///< one exact distortion probe; arg = candidate range
  kBetaRefine,    ///< refine_beta; arg = chosen per-mille β on exit
  kBetaProbe,     ///< one β candidate evaluation; arg = round(β * 1e6)
  kLutApply,      ///< displayed-raster materialization (LUT application)
  kColorRender,   ///< color post-stage rendering of one frame
  kFlickerPost,   ///< ordered flicker-control application; arg = frame index
  kSpanCount_,
};

inline constexpr std::size_t kSpanCount =
    static_cast<std::size_t>(Span::kSpanCount_);

/// The chrome://tracing event name of a span ("range-search", ...).
const char* span_name(Span s) noexcept;

namespace trace_detail {
extern std::atomic<bool> g_enabled;
/// Closes a span opened at start_ns on this thread: reads the clock,
/// claims the thread's ring on first use, appends one event.  Cold
/// misses (tracing stopped meanwhile, ring slots exhausted) drop the
/// event.  Never allocates.
void record_span(Span span, std::int64_t start_ns, std::int32_t arg) noexcept;
/// Monotonic timestamp (steady_clock, ns).
std::int64_t now_ns() noexcept;
}  // namespace trace_detail

/// Whether spans are currently being recorded.
inline bool tracing_enabled() noexcept {
  return trace_detail::g_enabled.load(std::memory_order_relaxed);
}

/// RAII span.  Disabled tracing: the constructor's single branch, and
/// the destructor sees the disarmed sentinel — no clock reads, no
/// stores beyond the members.
class ScopedSpan {
 public:
  explicit ScopedSpan(Span span, std::int32_t arg = 0) noexcept
      : span_(span), arg_(arg) {
    if (!tracing_enabled()) return;
    start_ns_ = trace_detail::now_ns();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (start_ns_ == kDisarmed) return;
    trace_detail::record_span(span_, start_ns_, arg_);
  }

  /// Updates the span's argument (e.g. the reuse level, decided after
  /// the span opened).
  void set_arg(std::int32_t arg) noexcept { arg_ = arg; }

 private:
  static constexpr std::int64_t kDisarmed =
      std::numeric_limits<std::int64_t>::min();
  Span span_;
  std::int32_t arg_;
  std::int64_t start_ns_ = kDisarmed;
};

struct TraceOptions {
  /// Ring slots: distinct recording threads supported per tracing
  /// epoch.  Threads beyond the cap drop their events (counted).
  std::size_t max_threads = 64;
  /// Events retained per thread before the ring wraps.
  std::size_t events_per_thread = std::size_t{1} << 16;
};

/// Allocates (or reuses) the ring buffers and starts recording.
/// Idempotent while active; restarting after stop_tracing() clears
/// previously recorded events.
void start_tracing(const TraceOptions& opts = {});

/// Stops recording.  Events stay available to collect/write until the
/// next start_tracing().
void stop_tracing() noexcept;

/// Drops all recorded events (buffers retained); recording state is
/// unchanged.  Call between measurement windows.
void clear_trace() noexcept;

/// Spans overwritten by ring wrap or dropped for lack of a ring slot.
std::uint64_t dropped_spans() noexcept;

/// One recorded span, in exporter-friendly form.
struct CollectedSpan {
  Span span = Span::kFrame;
  std::uint32_t tid = 0;       ///< recording thread's ring slot
  std::int64_t start_ns = 0;   ///< relative to the tracing epoch start
  std::int64_t dur_ns = 0;
  std::int32_t arg = 0;
};

/// Snapshot of every recorded span, sorted by (tid, start_ns).
std::vector<CollectedSpan> collect_trace();

/// Writes the recorded spans as chrome://tracing / Perfetto JSON
/// ("traceEvents" with complete "X" events).  Throws util::IoError when
/// the path cannot be opened or written.
void write_chrome_trace(const std::string& path);

}  // namespace hebs::obs
