#include "histogram/streaming.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "histogram/histogram_ops.h"
#include "kernels/kernels.h"
#include "util/error.h"

namespace hebs::histogram {

StreamingHistogram::StreamingHistogram(const StreamingOptions& opts)
    : opts_(opts) {
  HEBS_REQUIRE(opts.decimation >= 1, "decimation must be >= 1");
  HEBS_REQUIRE(opts.blend > 0.0 && opts.blend <= 1.0,
               "blend must be in (0, 1]");
}

void StreamingHistogram::ingest(const hebs::image::GrayImage& frame) {
  HEBS_REQUIRE(!frame.empty(), "cannot ingest an empty frame");
  std::array<double, Histogram::kBins> sample{};
  const auto pixels = frame.pixels();
  std::size_t sampled = 0;
  if (opts_.decimation == 1) {
    // Undecimated ingest is an exact histogram: run the dispatched
    // kernel and widen the integer counts (exact in double — repeated
    // += 1.0 produces the same value bit for bit).
    std::array<std::uint64_t, Histogram::kBins> counts{};
    kernels::active().histogram_u8(pixels.data(), pixels.size(),
                                   counts.data());
    for (int i = 0; i < Histogram::kBins; ++i) {
      sample[static_cast<std::size_t>(i)] =
          static_cast<double>(counts[static_cast<std::size_t>(i)]);
    }
    sampled = pixels.size();
  } else {
    for (std::size_t i = static_cast<std::size_t>(phase_); i < pixels.size();
         i += static_cast<std::size_t>(opts_.decimation)) {
      sample[pixels[i]] += 1.0;
      ++sampled;
    }
  }
  // Rotate the phase so a static scene is fully covered over time.
  phase_ = (phase_ + 1) % opts_.decimation;
  if (sampled == 0) return;

  // Scale the sample up to full-frame counts, then blend.
  const double scale =
      static_cast<double>(pixels.size()) / static_cast<double>(sampled);
  const double keep = frames_ == 0 ? 0.0 : 1.0 - opts_.blend;
  const double add = frames_ == 0 ? 1.0 : opts_.blend;
  for (int i = 0; i < Histogram::kBins; ++i) {
    weights_[static_cast<std::size_t>(i)] =
        keep * weights_[static_cast<std::size_t>(i)] +
        add * sample[static_cast<std::size_t>(i)] * scale;
  }
  last_frame_pixels_ = pixels.size();
  ++frames_;
}

Histogram StreamingHistogram::estimate() const {
  std::vector<std::uint64_t> counts(Histogram::kBins, 0);
  double total = 0.0;
  for (double w : weights_) total += w;
  if (total <= 0.0 || last_frame_pixels_ == 0) {
    return Histogram::from_counts(counts);
  }
  // Normalize to the last frame's pixel count with largest-remainder
  // rounding: floor every bin's real-valued share, then hand the
  // leftover pixels to the bins with the largest fractional parts (ties
  // to the lower bin, so the result is deterministic).  When the
  // accumulated weights are proportional to true counts — decimation 1,
  // where every frame's sample IS its exact histogram — the fractions
  // are within an ulp of integers and the estimate reproduces the exact
  // histogram, instead of leaking truncation error into the peak bin.
  const double pixels = static_cast<double>(last_frame_pixels_);
  std::array<double, Histogram::kBins> fraction{};
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double exact = weights_[i] / total * pixels;
    const double floored = std::floor(exact);
    counts[i] = static_cast<std::uint64_t>(floored);
    fraction[i] = exact - floored;
    assigned += counts[i];
  }
  std::uint64_t leftover =
      last_frame_pixels_ > assigned ? last_frame_pixels_ - assigned : 0;
  std::array<int, Histogram::kBins> order{};
  for (int i = 0; i < Histogram::kBins; ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&fraction](int a, int b) {
    return fraction[static_cast<std::size_t>(a)] >
           fraction[static_cast<std::size_t>(b)];
  });
  for (std::size_t k = 0; k < order.size() && leftover > 0; ++k, --leftover) {
    ++counts[static_cast<std::size_t>(order[k])];
  }
  return Histogram::from_counts(counts);
}

double StreamingHistogram::estimation_error(const Histogram& exact) const {
  return l1_distance(estimate(), exact);
}

}  // namespace hebs::histogram
