#include "histogram/streaming.h"

#include <cmath>

#include "histogram/histogram_ops.h"
#include "util/error.h"

namespace hebs::histogram {

StreamingHistogram::StreamingHistogram(const StreamingOptions& opts)
    : opts_(opts) {
  HEBS_REQUIRE(opts.decimation >= 1, "decimation must be >= 1");
  HEBS_REQUIRE(opts.blend > 0.0 && opts.blend <= 1.0,
               "blend must be in (0, 1]");
}

void StreamingHistogram::ingest(const hebs::image::GrayImage& frame) {
  HEBS_REQUIRE(!frame.empty(), "cannot ingest an empty frame");
  std::array<double, Histogram::kBins> sample{};
  const auto pixels = frame.pixels();
  std::size_t sampled = 0;
  for (std::size_t i = static_cast<std::size_t>(phase_); i < pixels.size();
       i += static_cast<std::size_t>(opts_.decimation)) {
    sample[pixels[i]] += 1.0;
    ++sampled;
  }
  // Rotate the phase so a static scene is fully covered over time.
  phase_ = (phase_ + 1) % opts_.decimation;
  if (sampled == 0) return;

  // Scale the sample up to full-frame counts, then blend.
  const double scale =
      static_cast<double>(pixels.size()) / static_cast<double>(sampled);
  const double keep = frames_ == 0 ? 0.0 : 1.0 - opts_.blend;
  const double add = frames_ == 0 ? 1.0 : opts_.blend;
  for (int i = 0; i < Histogram::kBins; ++i) {
    weights_[static_cast<std::size_t>(i)] =
        keep * weights_[static_cast<std::size_t>(i)] +
        add * sample[static_cast<std::size_t>(i)] * scale;
  }
  last_frame_pixels_ = pixels.size();
  ++frames_;
}

Histogram StreamingHistogram::estimate() const {
  std::vector<std::uint64_t> counts(Histogram::kBins, 0);
  double total = 0.0;
  for (double w : weights_) total += w;
  if (total <= 0.0 || last_frame_pixels_ == 0) {
    return Histogram::from_counts(counts);
  }
  // Normalize to the last frame's pixel count; remainder to the peak.
  std::uint64_t assigned = 0;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double share = weights_[i] / total;
    counts[i] = static_cast<std::uint64_t>(
        share * static_cast<double>(last_frame_pixels_));
    assigned += counts[i];
    if (weights_[i] > weights_[peak]) peak = i;
  }
  if (last_frame_pixels_ > assigned) {
    counts[peak] += last_frame_pixels_ - assigned;
  }
  return Histogram::from_counts(counts);
}

double StreamingHistogram::estimation_error(const Histogram& exact) const {
  return l1_distance(estimate(), exact);
}

}  // namespace hebs::histogram
