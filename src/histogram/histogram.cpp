#include "histogram/histogram.h"

#include <cmath>
#include <cstring>

#include "kernels/kernels.h"
#include "util/error.h"

namespace hebs::histogram {

Histogram::Histogram(int bins) : bins_(bins) {
  HEBS_REQUIRE(bins >= 2 && bins <= hebs::image::PixelTraits<
                                        std::uint16_t>::kLevels,
               "bin count must be in [2, 65536]");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

Histogram Histogram::from_image(const hebs::image::GrayImage& img) {
  Histogram h;
  kernels::active().histogram_u8(img.pixels().data(), img.size(),
                                 h.counts_.data());
  h.total_ = img.size();
  return h;
}

Histogram Histogram::from_image(const hebs::image::GrayImage16& img) {
  Histogram h(img.levels());
  kernels::active().histogram_u16(img.pixels().data(), img.size(),
                                  h.counts_.data());
  h.total_ = img.size();
  return h;
}

template <typename Image>
bool Histogram::refresh_from_delta_impl(const Image& prev, const Image& cur,
                                        std::size_t max_changed,
                                        std::size_t* changed_out) {
  HEBS_REQUIRE(prev.width() == cur.width() && prev.height() == cur.height(),
               "delta refresh needs equal-size frames");
  HEBS_REQUIRE(total_ == prev.size(),
               "histogram does not cover the previous frame");
  const auto* a = prev.pixels().data();
  const auto* b = cur.pixels().data();
  const std::size_t n = prev.size();
  // Samples per 64-bit compare word (8 for u8 frames, 4 for u16).
  constexpr std::size_t kStep = sizeof(std::uint64_t) / sizeof(a[0]);

  // Deltas are staged so an over-threshold bail leaves *this untouched.
  hebs::util::PoolVector<std::int64_t> delta(
      static_cast<std::size_t>(bins_), 0);
  std::size_t changed = 0;
  std::size_t i = 0;
  for (; i + kStep <= n; i += kStep) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a + i, sizeof(wa));
    std::memcpy(&wb, b + i, sizeof(wb));
    if (wa == wb) continue;  // the common case on coherent frames
    for (std::size_t j = i; j < i + kStep; ++j) {
      if (a[j] != b[j]) {
        --delta[a[j]];
        ++delta[b[j]];
        ++changed;
      }
    }
    if (changed > max_changed) {
      if (changed_out != nullptr) *changed_out = changed;
      return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) {
      --delta[a[i]];
      ++delta[b[i]];
      ++changed;
    }
  }
  if (changed > max_changed) {
    if (changed_out != nullptr) *changed_out = changed;
    return false;
  }
  for (int bin = 0; bin < bins_; ++bin) {
    const auto k = static_cast<std::size_t>(bin);
    counts_[k] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_[k]) + delta[k]);
  }
  if (changed_out != nullptr) *changed_out = changed;
  return true;
}

bool Histogram::refresh_from_delta(const hebs::image::GrayImage& prev,
                                   const hebs::image::GrayImage& cur,
                                   std::size_t max_changed,
                                   std::size_t* changed_out) {
  HEBS_REQUIRE(bins_ == kBins, "8-bit delta refresh needs a 256-bin histogram");
  return refresh_from_delta_impl(prev, cur, max_changed, changed_out);
}

bool Histogram::refresh_from_delta(const hebs::image::GrayImage16& prev,
                                   const hebs::image::GrayImage16& cur,
                                   std::size_t max_changed,
                                   std::size_t* changed_out) {
  HEBS_REQUIRE(prev.levels() == bins_ && cur.levels() == bins_,
               "delta refresh needs frames of the histogram's level count");
  return refresh_from_delta_impl(prev, cur, max_changed, changed_out);
}

Histogram Histogram::from_counts(std::span<const std::uint64_t> counts) {
  Histogram h(static_cast<int>(counts.size()));
  for (std::size_t i = 0; i < counts.size(); ++i) {
    h.counts_[i] = counts[i];
    h.total_ += counts[i];
  }
  return h;
}

std::uint64_t Histogram::count(int level) const {
  HEBS_REQUIRE(level >= 0 && level < bins_, "level out of range");
  return counts_[static_cast<std::size_t>(level)];
}

void Histogram::add(int level, std::uint64_t n) {
  HEBS_REQUIRE(level >= 0 && level < bins_, "level out of range");
  counts_[static_cast<std::size_t>(level)] += n;
  total_ += n;
}

double Histogram::pdf(int level) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(level)) / static_cast<double>(total_);
}

double Histogram::cdf(int level) const {
  HEBS_REQUIRE(level >= 0 && level < bins_, "level out of range");
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (int i = 0; i <= level; ++i) acc += counts_[static_cast<std::size_t>(i)];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

hebs::util::PoolVector<std::uint64_t> Histogram::cumulative_counts() const {
  hebs::util::PoolVector<std::uint64_t> cum(
      static_cast<std::size_t>(bins_), 0);
  std::uint64_t acc = 0;
  for (int i = 0; i < bins_; ++i) {
    acc += counts_[static_cast<std::size_t>(i)];
    cum[static_cast<std::size_t>(i)] = acc;
  }
  return cum;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i < bins_; ++i) {
    acc += static_cast<double>(i) *
           static_cast<double>(counts_[static_cast<std::size_t>(i)]);
  }
  return acc / static_cast<double>(total_);
}

double Histogram::variance() const {
  if (total_ == 0) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (int i = 0; i < bins_; ++i) {
    const double d = static_cast<double>(i) - m;
    acc += d * d * static_cast<double>(counts_[static_cast<std::size_t>(i)]);
  }
  return acc / static_cast<double>(total_);
}

double Histogram::entropy_bits() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i < bins_; ++i) {
    const double p = pdf(i);
    if (p > 0.0) acc -= p * std::log2(p);
  }
  return acc;
}

int Histogram::min_level() const noexcept {
  for (int i = 0; i < bins_; ++i) {
    if (counts_[static_cast<std::size_t>(i)] > 0) return i;
  }
  return -1;
}

int Histogram::max_level() const noexcept {
  for (int i = bins_ - 1; i >= 0; --i) {
    if (counts_[static_cast<std::size_t>(i)] > 0) return i;
  }
  return -1;
}

int Histogram::dynamic_range() const noexcept {
  const int lo = min_level();
  if (lo < 0) return 0;
  return max_level() - lo;
}

int Histogram::percentile_level(double p) const {
  HEBS_REQUIRE(total_ > 0, "percentile of empty histogram");
  HEBS_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  const auto threshold = static_cast<double>(total_) * p;
  std::uint64_t acc = 0;
  for (int i = 0; i < bins_; ++i) {
    acc += counts_[static_cast<std::size_t>(i)];
    if (static_cast<double>(acc) >= threshold) return i;
  }
  return bins_ - 1;
}

}  // namespace hebs::histogram
