#include "histogram/histogram_ops.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hebs::histogram {

Histogram truncate(const Histogram& h, int lo, int hi) {
  HEBS_REQUIRE(lo >= 0 && hi < Histogram::kBins && lo <= hi,
               "invalid truncation bounds");
  std::vector<std::uint64_t> counts(Histogram::kBins, 0);
  for (int i = 0; i < Histogram::kBins; ++i) {
    const int target = std::clamp(i, lo, hi);
    counts[static_cast<std::size_t>(target)] += h.count(i);
  }
  return Histogram::from_counts(counts);
}

Histogram smooth(const Histogram& h, int radius) {
  HEBS_REQUIRE(radius >= 0, "smoothing radius must be non-negative");
  if (radius == 0) return h;
  std::vector<double> smoothed(Histogram::kBins, 0.0);
  for (int i = 0; i < Histogram::kBins; ++i) {
    double acc = 0.0;
    int n = 0;
    for (int k = -radius; k <= radius; ++k) {
      const int j = i + k;
      if (j >= 0 && j < Histogram::kBins) {
        acc += static_cast<double>(h.count(j));
        ++n;
      }
    }
    smoothed[static_cast<std::size_t>(i)] = acc / n;
  }
  // Quantize while preserving the total count: floor everything, then give
  // the rounding remainder to the largest bin.
  std::vector<std::uint64_t> counts(Histogram::kBins, 0);
  std::uint64_t assigned = 0;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < smoothed.size(); ++i) {
    counts[i] = static_cast<std::uint64_t>(smoothed[i]);
    assigned += counts[i];
    if (smoothed[i] > smoothed[peak]) peak = i;
  }
  if (h.total() > assigned) counts[peak] += h.total() - assigned;
  return Histogram::from_counts(counts);
}

double l1_distance(const Histogram& a, const Histogram& b) {
  double acc = 0.0;
  for (int i = 0; i < Histogram::kBins; ++i) {
    acc += std::abs(a.pdf(i) - b.pdf(i));
  }
  return acc;
}

double chi_square_distance(const Histogram& a, const Histogram& b) {
  double acc = 0.0;
  for (int i = 0; i < Histogram::kBins; ++i) {
    const double pa = a.pdf(i);
    const double pb = b.pdf(i);
    const double denom = pa + pb;
    if (denom > 0.0) acc += (pa - pb) * (pa - pb) / denom;
  }
  return acc;
}

double emd_distance(const Histogram& a, const Histogram& b) {
  double acc = 0.0;
  double ca = 0.0;
  double cb = 0.0;
  for (int i = 0; i < Histogram::kBins; ++i) {
    ca += a.pdf(i);
    cb += b.pdf(i);
    acc += std::abs(ca - cb);
  }
  return acc;
}

double cumulative_uniform(double x, int g_min, int g_max, double n) {
  if (x < g_min) return 0.0;
  if (x > g_max) return n;
  if (g_max == g_min) return n;
  return n * (x - g_min) / (g_max - g_min);
}

double uniform_equalization_objective(const Histogram& h,
                                      std::span<const int> phi, int g_min,
                                      int g_max) {
  HEBS_REQUIRE(phi.size() == static_cast<std::size_t>(Histogram::kBins),
               "phi must map all 256 levels");
  HEBS_REQUIRE(g_min >= 0 && g_max < Histogram::kBins && g_min <= g_max,
               "invalid target range");
  if (h.empty()) return 0.0;
  const auto cum = h.cumulative_counts();
  const auto n = static_cast<double>(h.total());
  double acc = 0.0;
  for (int x = 0; x < Histogram::kBins; ++x) {
    const double u =
        cumulative_uniform(static_cast<double>(phi[static_cast<std::size_t>(x)]),
                           g_min, g_max, n);
    acc +=
        std::abs(u - static_cast<double>(cum[static_cast<std::size_t>(x)]));
  }
  return acc / (n * Histogram::kBins);
}

}  // namespace hebs::histogram
