// Streaming/decimated histogram estimation.
//
// §2 notes that backlight-scaling policies need "an image histogram
// estimator ... for calculating the statistics of the input image".  A
// real video controller cannot afford to touch every pixel of every
// frame; it samples the stream.  This module provides a decimating
// estimator (every Nth pixel with a per-frame phase rotation so static
// content is eventually fully covered) plus an exponential forget
// factor for temporal adaptation, and quantifies the estimation error
// the policies inherit.
#pragma once

#include <cstdint>

#include "histogram/histogram.h"

namespace hebs::histogram {

/// Options for the streaming estimator.
struct StreamingOptions {
  /// Sample every Nth pixel (1 = exact).
  int decimation = 16;
  /// Exponential forgetting: each new frame's histogram carries this
  /// weight against the accumulated estimate (1 = only newest frame).
  double blend = 0.25;
};

/// Accumulates a decimated, temporally blended histogram estimate.
class StreamingHistogram {
 public:
  explicit StreamingHistogram(const StreamingOptions& opts = {});

  /// Ingests one frame: samples every `decimation`-th pixel starting at
  /// a rotating phase, then blends into the running estimate.
  void ingest(const hebs::image::GrayImage& frame);

  /// Current estimate, scaled to the last frame's pixel count so it is
  /// directly comparable with an exact histogram.
  Histogram estimate() const;

  /// Frames ingested so far.
  int frames() const noexcept { return frames_; }

  /// L1 distance between the estimate's and an exact histogram's
  /// normalized distributions (0 = perfect).
  double estimation_error(const Histogram& exact) const;

 private:
  StreamingOptions opts_;
  std::array<double, Histogram::kBins> weights_{};
  std::uint64_t last_frame_pixels_ = 0;
  int phase_ = 0;
  int frames_ = 0;
};

}  // namespace hebs::histogram
