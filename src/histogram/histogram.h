// Image histogram and cumulative-distribution machinery.
//
// The paper's GHE formulation (Eqs. 4-7) works on the marginal histogram
// h(x) and the cumulative histogram H(x) of 8-bit pixel values.  This
// class owns the 256-bin counts and provides the statistics every other
// module needs (CDF lookups, percentiles, dynamic range, entropy).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "image/image.h"

namespace hebs::histogram {

/// A 256-bin histogram of 8-bit pixel values.
class Histogram {
 public:
  static constexpr int kBins = hebs::image::kLevels;

  /// All-zero histogram.
  Histogram() = default;

  /// Builds the histogram of a grayscale image.
  static Histogram from_image(const hebs::image::GrayImage& img);

  /// Incremental update for temporally coherent frames: refreshes this
  /// histogram — which must be the histogram of `prev` — into the
  /// histogram of `cur` by walking both rasters and touching only the
  /// differing pixels (word-wise compares skip equal runs).  Counts are
  /// integers, so the result is exactly from_image(cur).  Returns true
  /// on success with `*changed_out` (nullable) set to the number of
  /// differing pixels (0 ⇒ the frames are byte-identical); returns
  /// false, leaving the histogram untouched, when more than
  /// `max_changed` pixels differ and a full recount is cheaper.
  bool refresh_from_delta(const hebs::image::GrayImage& prev,
                          const hebs::image::GrayImage& cur,
                          std::size_t max_changed,
                          std::size_t* changed_out = nullptr);

  /// Builds from explicit per-bin counts (size must be kBins).
  static Histogram from_counts(std::span<const std::uint64_t> counts);

  /// Count in one bin; `level` must be in [0, 255].
  std::uint64_t count(int level) const;

  /// Adds `n` samples at `level`.
  void add(int level, std::uint64_t n = 1);

  /// Total number of samples (N in the paper).
  std::uint64_t total() const noexcept { return total_; }

  bool empty() const noexcept { return total_ == 0; }

  /// Marginal probability of a level: h(x)/N. Zero for an empty histogram.
  double pdf(int level) const;

  /// Normalized cumulative distribution H(x)/N over levels <= `level`.
  /// Zero for an empty histogram.
  double cdf(int level) const;

  /// Raw cumulative counts, one entry per level.  Returned by value as a
  /// fixed array — the per-target GHE solve calls this every probe, and
  /// an array keeps it off the heap.
  std::array<std::uint64_t, kBins> cumulative_counts() const;

  /// Mean pixel level.
  double mean() const;

  /// Population variance of pixel levels.
  double variance() const;

  /// Shannon entropy of the level distribution, in bits.
  double entropy_bits() const;

  /// Lowest populated level, or -1 when empty.
  int min_level() const noexcept;

  /// Highest populated level, or -1 when empty.
  int max_level() const noexcept;

  /// max_level - min_level (0 for empty or single-level histograms).
  int dynamic_range() const noexcept;

  /// Smallest level whose CDF reaches p (p in [0,1]). Requires non-empty.
  int percentile_level(double p) const;

  /// Underlying counts.
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  bool operator==(const Histogram& other) const = default;

 private:
  std::array<std::uint64_t, kBins> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace hebs::histogram
