// Image histogram and cumulative-distribution machinery.
//
// The paper's GHE formulation (Eqs. 4-7) works on the marginal histogram
// h(x) and the cumulative histogram H(x) of pixel values.  This class
// owns the per-bin counts and provides the statistics every other
// module needs (CDF lookups, percentiles, dynamic range, entropy).
//
// Depth model: the bin count is a runtime property (bins()) set by the
// frame the histogram was built from — 256 for the paper's 8-bit path,
// 1024/65536 for deep-pixel frames.  Every statistic iterates bins()
// entries; at 256 bins the arithmetic is exactly what the old
// fixed-array implementation produced, which is what keeps the u8
// pipeline bit-identical.  kBins remains the 8-bit constant for the
// u8-only callers (streaming scaler, LHE, fixed-point GHE LUT).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "image/image.h"
#include "util/pool.h"

namespace hebs::histogram {

/// An N-bin histogram of pixel values (N = 256 unless built from a
/// deep-pixel frame).
class Histogram {
 public:
  /// The 8-bit bin count; the default for histograms not built from a
  /// deep-pixel image.
  static constexpr int kBins = hebs::image::kLevels;

  /// All-zero 256-bin histogram.
  Histogram() : Histogram(kBins) {}

  /// All-zero histogram of `bins` bins (bins in [2, 65536]).
  explicit Histogram(int bins);

  /// Number of bins (== the level count of the source frame).
  int bins() const noexcept { return bins_; }

  /// Builds the histogram of an 8-bit grayscale image (256 bins).
  static Histogram from_image(const hebs::image::GrayImage& img);

  /// Builds the histogram of a deep-pixel image (img.levels() bins).
  static Histogram from_image(const hebs::image::GrayImage16& img);

  /// Incremental update for temporally coherent frames: refreshes this
  /// histogram — which must be the histogram of `prev` — into the
  /// histogram of `cur` by walking both rasters and touching only the
  /// differing pixels (word-wise compares skip equal runs).  Counts are
  /// integers, so the result is exactly from_image(cur).  Returns true
  /// on success with `*changed_out` (nullable) set to the number of
  /// differing pixels (0 ⇒ the frames are byte-identical); returns
  /// false, leaving the histogram untouched, when more than
  /// `max_changed` pixels differ and a full recount is cheaper.
  bool refresh_from_delta(const hebs::image::GrayImage& prev,
                          const hebs::image::GrayImage& cur,
                          std::size_t max_changed,
                          std::size_t* changed_out = nullptr);

  /// Deep-pixel twin of the delta refresh (same contract; the frames
  /// must share this histogram's level count).
  bool refresh_from_delta(const hebs::image::GrayImage16& prev,
                          const hebs::image::GrayImage16& cur,
                          std::size_t max_changed,
                          std::size_t* changed_out = nullptr);

  /// Builds from explicit per-bin counts (one bin per entry; size must
  /// be in [2, 65536]).
  static Histogram from_counts(std::span<const std::uint64_t> counts);

  /// Count in one bin; `level` must be in [0, bins()).
  std::uint64_t count(int level) const;

  /// Adds `n` samples at `level`.
  void add(int level, std::uint64_t n = 1);

  /// Total number of samples (N in the paper).
  std::uint64_t total() const noexcept { return total_; }

  bool empty() const noexcept { return total_ == 0; }

  /// Marginal probability of a level: h(x)/N. Zero for an empty histogram.
  double pdf(int level) const;

  /// Normalized cumulative distribution H(x)/N over levels <= `level`.
  /// Zero for an empty histogram.
  double cdf(int level) const;

  /// Raw cumulative counts, one entry per level.  Pool-backed so the
  /// per-target GHE solve (which calls this every probe) recycles the
  /// worker's BufferPool instead of the heap.
  hebs::util::PoolVector<std::uint64_t> cumulative_counts() const;

  /// Mean pixel level.
  double mean() const;

  /// Population variance of pixel levels.
  double variance() const;

  /// Shannon entropy of the level distribution, in bits.
  double entropy_bits() const;

  /// Lowest populated level, or -1 when empty.
  int min_level() const noexcept;

  /// Highest populated level, or -1 when empty.
  int max_level() const noexcept;

  /// max_level - min_level (0 for empty or single-level histograms).
  int dynamic_range() const noexcept;

  /// Smallest level whose CDF reaches p (p in [0,1]). Requires non-empty.
  int percentile_level(double p) const;

  /// Underlying counts.
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  bool operator==(const Histogram& other) const = default;

 private:
  template <typename Image>
  bool refresh_from_delta_impl(const Image& prev, const Image& cur,
                               std::size_t max_changed,
                               std::size_t* changed_out);

  int bins_ = kBins;
  hebs::util::PoolVector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hebs::histogram
