// Operations on histograms: truncation (the mechanism behind the CBCS
// baseline), smoothing, distance measures, and the uniformity objective
// of the paper's Eq. 4.
#pragma once

#include "histogram/histogram.h"

namespace hebs::histogram {

/// Saturates all mass below `lo` into bin `lo` and above `hi` into bin
/// `hi` — the both-ends truncation of reference [5].
Histogram truncate(const Histogram& h, int lo, int hi);

/// Moving-average smoothing over bins with the given radius; total count
/// is preserved up to rounding (the remainder is added to the peak bin).
Histogram smooth(const Histogram& h, int radius);

/// L1 distance between the normalized marginal distributions, in [0, 2].
double l1_distance(const Histogram& a, const Histogram& b);

/// Chi-square distance between normalized marginals:
/// sum (pa-pb)^2 / (pa+pb) over non-empty bins. In [0, 2].
double chi_square_distance(const Histogram& a, const Histogram& b);

/// 1-D earth mover's distance between normalized marginals, which for
/// sorted scalar distributions equals the L1 distance between CDFs
/// (summed over bins, normalized per-bin).  Units: pixel levels.
double emd_distance(const Histogram& a, const Histogram& b);

/// The paper's Eq. 4 objective evaluated for a transformation `phi`
/// (a 256-entry level map): integral over levels of
/// |U(phi(x)) - H(x)| where U is the cumulative uniform distribution on
/// [g_min, g_max].  Lower is better; the GHE solver minimizes this.
/// Returned value is normalized by (N * number of levels) so it is
/// comparable across image sizes.
double uniform_equalization_objective(const Histogram& h,
                                      std::span<const int> phi, int g_min,
                                      int g_max);

/// Cumulative uniform distribution U(x) on [g_min, g_max] scaled to total
/// `n` samples (footnote 3 of the paper).
double cumulative_uniform(double x, int g_min, int g_max, double n);

}  // namespace hebs::histogram
