// The stable entry point of the HEBS library.
//
// A Session binds one validated configuration to the engine state worth
// reusing across frames: the LCD-subsystem power model, the distortion
// characteristic curve cache (for the hebs-curve policy), and the
// multi-threaded PipelineEngine.  Create one session per configuration
// and feed it frames; sessions are moveable, single-threaded objects
// (process calls are not re-entrant — use one session per thread, the
// engine parallelizes inside a call).
//
// All failures come back as typed Status/Expected values; the facade
// neither aborts nor throws for invalid inputs.  Outputs are
// bit-identical to the internal hebs_exact / hebs_with_curve / DLS /
// CBCS paths on the same inputs, whatever the thread count.
#pragma once

#include <memory>
#include <vector>

#include "hebs/config.h"
#include "hebs/frame.h"
#include "hebs/image_view.h"
#include "hebs/stats.h"
#include "hebs/status.h"

namespace hebs {

class Session {
 public:
  /// Validates `config` (field domains, then policy/metric names
  /// against the registries, then the curve file when one is named) and
  /// builds the session.  Codes: kInvalidOption, kUnknownPolicy,
  /// kUnknownMetric, kIoError.
  static Expected<Session> create(SessionConfig config);

  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The validated configuration this session runs.
  const SessionConfig& config() const noexcept;

  /// Worker threads the engine actually runs.
  int thread_count() const noexcept;

  /// Runtime counter snapshot: subsystem activity since this session
  /// was created (temporal-reuse levels, memo hit rates, pool
  /// recycling, probe counts, kernel dispatch mix — see hebs/stats.h).
  /// The registry is process-global, so the delta is exact when this
  /// is the only session processing.
  SessionStats stats() const noexcept;

  /// Processes one frame with the configured policy.  When
  /// request.color_output is set (rgb8 views only), the result
  /// additionally carries the RGB rendering of the chosen operating
  /// point (displayed_rgb, applied per the session's color_mode) and
  /// its hue_error; the decision itself is always made on BT.601 luma
  /// and is bit-identical to processing the pre-converted luma frame.
  Expected<FrameResult> process(const FrameRequest& request);

  /// Processes many frames at a shared distortion budget.  The hebs-*
  /// policies fan out over the engine's thread pool; results are
  /// index-aligned with `frames` and identical for every thread count.
  Expected<std::vector<FrameResult>> process_batch(
      const std::vector<ImageView>& frames, double d_max_percent);

  /// Color batch: every frame must be an rgb8 view.  Decisions are
  /// bit-identical to process_batch on the pre-converted luma frames;
  /// each result additionally carries displayed_rgb/hue_error rendered
  /// per the session's color_mode (the hebs-exact policy renders on
  /// the worker that decided the frame; results are index-aligned and
  /// thread-count independent).
  Expected<std::vector<FrameResult>> process_batch_color(
      const std::vector<ImageView>& frames, double d_max_percent);

  /// Processes a video clip: per-frame searches run concurrently, then
  /// flicker control (β rate limit + scene-cut release) is applied
  /// strictly in frame order.  Requires policy "hebs-exact" (the
  /// controller runs the exact per-frame search); any other policy is
  /// rejected with kInvalidOption.
  Expected<std::vector<VideoFrameResult>> process_video(
      const std::vector<ImageView>& frames, double d_max_percent);

  /// Color video: every frame must be an rgb8 view.  The
  /// flicker-controlled luma decisions are bit-identical to
  /// process_video on the pre-converted luma clip (same temporal fast
  /// path and pools); the ordered color post-stage renders each
  /// applied operating point per the session's color_mode, reusing the
  /// previous frame's rendering on static content when temporal_reuse
  /// is on.  Requires policy "hebs-exact", like process_video.
  Expected<std::vector<VideoFrameResult>> process_video_color(
      const std::vector<ImageView>& frames, double d_max_percent);

 private:
  struct Impl;
  explicit Session(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace hebs
