// String-keyed registries of the backlight-scaling policies and
// distortion metrics the library ships.
//
// Policies and metrics are selected by name through SessionConfig, so
// adding an equalization variant (BBHE/DSIHE/... from the comparative-HE
// literature) or a metric is a registry entry, not an API break.  The
// registries are read-only from the public surface; the library
// registers its built-ins at static-initialization time inside the
// implementation.
//
// Launch policies: "hebs-exact", "hebs-curve", "dls", "dls-contrast",
// "cbcs".  Launch metrics: "uiqi-hvs", "percent-mapped", "uiqi",
// "ssim", "ssim-hvs", "rmse", "contrast-fidelity", "ms-ssim".
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hebs {

/// One registered policy or metric.
struct RegistryEntry {
  std::string name;         ///< stable registry key (kebab-case)
  std::string description;  ///< one-line human-readable summary
};

/// The DBS policies selectable via SessionConfig::policy.
class PolicyRegistry {
 public:
  /// All registered policies, in registration order.
  static const std::vector<RegistryEntry>& entries();
  /// Just the names, in registration order.
  static std::vector<std::string> names();
  static bool contains(std::string_view name);
};

/// The distortion metrics selectable via SessionConfig::metric.
class MetricRegistry {
 public:
  static const std::vector<RegistryEntry>& entries();
  static std::vector<std::string> names();
  static bool contains(std::string_view name);
};

/// The SIMD kernel backends compiled into this build ("scalar" always;
/// "sse42"/"avx2"/"neon" when the target architecture and compiler
/// allow).  Backends are selectable via SessionConfig::kernel_backend
/// or the HEBS_FORCE_BACKEND environment variable; entries whose ISA
/// this machine lacks say so in their description and are rejected at
/// Session::create.  Selection is process-global: every raster
/// operation dispatches through the one active backend.
class KernelRegistry {
 public:
  static const std::vector<RegistryEntry>& entries();
  static std::vector<std::string> names();
  static bool contains(std::string_view name);
  /// Name of the backend currently dispatched to ("avx2", ...).
  static std::string active();
};

}  // namespace hebs
