// Builder-style configuration for a hebs::Session.
//
// Every knob has the library default; setters return *this so a config
// reads as one chained expression:
//
//   auto session = hebs::Session::create(hebs::SessionConfig()
//                                            .policy("hebs-exact")
//                                            .metric("uiqi-hvs")
//                                            .segments(8)
//                                            .threads(4));
//
// validate() checks every field against its documented domain and
// reports the first violation as a typed Status — the facade never
// silently clamps an out-of-domain option.  Policy and metric *names*
// are resolved against the registries at Session::create time.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "hebs/status.h"

namespace hebs {

class SessionConfig {
 public:
  SessionConfig() = default;

  // ---------------------------------------------------- policy & metric
  /// DBS policy selected by registry name ("hebs-exact", "hebs-curve",
  /// "dls", "cbcs", ...).  Default "hebs-exact".
  SessionConfig& policy(std::string name) {
    policy_ = std::move(name);
    return *this;
  }
  const std::string& policy() const noexcept { return policy_; }

  /// Distortion metric selected by registry name ("uiqi-hvs",
  /// "percent-mapped", "ssim", ...).  Default "uiqi-hvs".
  SessionConfig& metric(std::string name) {
    metric_ = std::move(name);
    return *this;
  }
  const std::string& metric() const noexcept { return metric_; }

  /// SIMD kernel backend selected by KernelRegistry name ("scalar",
  /// "sse42", "avx2", "neon").  Default "" = keep the current
  /// process-global selection (auto-detected at startup, or forced via
  /// the HEBS_FORCE_BACKEND environment variable).  Note the backend is
  /// process-global: Session::create switches it for every session.
  /// All backends are bit-identical, so this only affects speed.
  SessionConfig& kernel_backend(std::string name) {
    kernel_backend_ = std::move(name);
    return *this;
  }
  const std::string& kernel_backend() const noexcept {
    return kernel_backend_;
  }

  /// How color (rgb8) frames processed with color output have the
  /// chosen operating point applied to their three sub-pixel channels:
  /// "shared-curve" (the paper's §2 construction: the shared monotone
  /// curve per channel — channel ordering preserved, bounded hue
  /// drift) or "luma-ratio" (chroma-preserving: the curve scales each
  /// pixel's BT.601 luma and the channels reapply their original
  /// ratios — hue exact up to rounding unless a channel saturates).
  /// β and the decision pipeline are identical in both modes; only the
  /// post-decision raster application differs.  Default "shared-curve".
  SessionConfig& color_mode(std::string name) {
    color_mode_ = std::move(name);
    return *this;
  }
  const std::string& color_mode() const noexcept { return color_mode_; }

  /// Pixel bit depth of the session's frames: 8 (gray8/rgb8 views,
  /// the default), or 10/16 for deep-pixel gray16 views.  A deep
  /// session decides on the frame's own level lattice (1024 or 65536
  /// histogram bins) with the same staged pipeline; supported policies
  /// are "hebs-exact" and "bbhe" (plus fixed_range requests), and
  /// frames must arrive as ImageView::gray16 whose samples stay below
  /// 2^bit_depth.  Mismatched view/depth combinations are typed errors
  /// (kUnknownDepth / kInvalidImage), never silent rescales.
  SessionConfig& bit_depth(int bits) {
    bit_depth_ = bits;
    return *this;
  }
  int bit_depth() const noexcept { return bit_depth_; }

  // ------------------------------------------------- pipeline tunables
  /// PLC segment budget m, >= 1.  Default 8.
  SessionConfig& segments(int m) {
    segments_ = m;
    return *this;
  }
  int segments() const noexcept { return segments_; }

  /// Floor for the bottom of the target range, in [0, 254].  Default 0.
  SessionConfig& g_min_floor(int g) {
    g_min_floor_ = g;
    return *this;
  }
  int g_min_floor() const noexcept { return g_min_floor_; }

  /// Smallest admissible dynamic range, >= 2.  Default 16.
  SessionConfig& min_range(int r) {
    min_range_ = r;
    return *this;
  }
  int min_range() const noexcept { return min_range_; }

  /// Lowest backlight factor, in (0, 1].  Default 0.05.
  SessionConfig& min_beta(double b) {
    min_beta_ = b;
    return *this;
  }
  double min_beta() const noexcept { return min_beta_; }

  /// Equalization strength w in [0, 1], or -1 for adaptive selection.
  /// Default -1.
  SessionConfig& equalization_strength(double w) {
    equalization_strength_ = w;
    return *this;
  }
  double equalization_strength() const noexcept {
    return equalization_strength_;
  }

  /// Concurrent brightness-scaling refinement in exact mode.  Default
  /// true.
  SessionConfig& concurrent_scaling(bool on) {
    concurrent_scaling_ = on;
    return *this;
  }
  bool concurrent_scaling() const noexcept { return concurrent_scaling_; }

  // ----------------------------------------------------------- engine
  /// Worker threads for batch/video processing; 0 selects the hardware
  /// concurrency.  Default 0.
  SessionConfig& threads(int n) {
    threads_ = n;
    return *this;
  }
  int threads() const noexcept { return threads_; }

  /// Per-worker recycling buffer pools: per-frame scratch (rasters,
  /// integral tables, curves, memo nodes) is recycled instead of
  /// reallocated, making the engine's steady state allocation-free.
  /// Purely a performance knob — outputs are identical either way.
  /// Default true.
  SessionConfig& buffer_pool(bool on) {
    buffer_pool_ = on;
    return *this;
  }
  bool buffer_pool() const noexcept { return buffer_pool_; }

  /// Cap on each buffer pool, in MiB; 0 = unlimited.  Bounds both the
  /// bytes a pool retains on its free lists and the bytes checked out
  /// of it at once: exhaustion degrades to counted plain-heap blocks
  /// (SessionStats::pool_heap_fallbacks) — it never fails a frame.
  /// Default 0 (a cap below the per-frame working set reintroduces
  /// steady-state allocations).
  SessionConfig& pool_max_mb(int mb) {
    pool_max_mb_ = mb;
    return *this;
  }
  int pool_max_mb() const noexcept { return pool_max_mb_; }

  /// Soft per-frame deadline for batch/video processing, microseconds;
  /// 0 = none.  A frame whose decision takes longer still completes,
  /// but its result is replaced by the identity fallback (β = 1,
  /// identity transform — zero distortion, zero saving) and marked
  /// degraded with kDeadlineExceeded (FrameResult::status).  Soft: the
  /// check runs after the frame's work, so an overrun is detected, not
  /// preempted.  The single-frame process() path has no deadline (the
  /// caller already observes its latency directly).  Default 0.
  SessionConfig& frame_deadline_us(std::int64_t us) {
    frame_deadline_us_ = us;
    return *this;
  }
  std::int64_t frame_deadline_us() const noexcept {
    return frame_deadline_us_;
  }

  /// Temporal-coherence fast path for process_video: duplicate-frame
  /// reuse, incremental histogram updates, and warm-started searches
  /// with verified brackets.  Results are bit-identical to the cold
  /// per-frame search under the monotone-distortion contract (see
  /// DESIGN.md §9; decisions honor the distortion budget either way).
  /// Set false for unconditional cold-path equality.  Default true.
  SessionConfig& temporal_reuse(bool on) {
    temporal_reuse_ = on;
    return *this;
  }
  bool temporal_reuse() const noexcept { return temporal_reuse_; }

  // --------------------------------------------- distortion curve cache
  /// CSV of a saved distortion characteristic curve for the hebs-curve
  /// policy.  When unset, the session characterizes on first use (at
  /// characterization_size) and caches the curve for its lifetime.
  SessionConfig& curve_path(std::string csv) {
    curve_path_ = std::move(csv);
    return *this;
  }
  const std::string& curve_path() const noexcept { return curve_path_; }

  // ---------------------------------------------------- observability
  /// Deterministic fault injection (testing/soak only): a
  /// ';'-separated list of "point[:key=value,...]" specs arming the
  /// library's named fault points, or "off"/"none" to disarm.  Points:
  /// "pool-alloc", "worker-task", "frame-corrupt", "curve-io",
  /// "trace-io", "stage-latency"; keys: first=N (1-based hit that fires
  /// first, default 1), every=N (stride after that, default 1), count=N
  /// (firing budget, 0 = unlimited, default 1), stall_us=N
  /// (stage-latency only, default 1000).  Empty (default) = keep the
  /// current process-global arming, or the HEBS_FAULT environment
  /// variable when set.  Injection is process-global (like the kernel
  /// backend) and installed at Session::create after everything else
  /// can no longer fail; a malformed spec is a kInvalidOption there.
  /// With no spec armed the fault machinery is a single predicted
  /// branch per checkpoint — the zero-overhead off path.
  SessionConfig& fault_spec(std::string spec) {
    fault_spec_ = std::move(spec);
    return *this;
  }
  const std::string& fault_spec() const noexcept { return fault_spec_; }

  /// Path to write a chrome://tracing / Perfetto JSON span trace of
  /// this session's processing.  Empty (default) = no tracing, unless
  /// the HEBS_TRACE environment variable names a path.  The file is
  /// created (truncated) at Session::create — an unwritable path is a
  /// kIoError there, never a silent drop — and the trace is written
  /// when the session is destroyed.  Tracing is process-global (spans
  /// from every live session land in one trace) and changes no output:
  /// traced runs are bit-identical to untraced runs.
  SessionConfig& trace_path(std::string path) {
    trace_path_ = std::move(path);
    return *this;
  }
  const std::string& trace_path() const noexcept { return trace_path_; }

  /// Image edge length of the on-demand characterization album, >= 16.
  /// Default 96.
  SessionConfig& characterization_size(int px) {
    characterization_size_ = px;
    return *this;
  }
  int characterization_size() const noexcept { return characterization_size_; }

  // ------------------------------------------------------------ video
  /// Maximum |Δβ| between consecutive non-scene-cut frames, in (0, 1].
  /// Default 0.04.
  SessionConfig& max_beta_step(double step) {
    max_beta_step_ = step;
    return *this;
  }
  double max_beta_step() const noexcept { return max_beta_step_; }

  /// EMA coefficient pulling β toward the per-frame optimum, in (0, 1].
  /// Default 0.5.
  SessionConfig& ema_alpha(double alpha) {
    ema_alpha_ = alpha;
    return *this;
  }
  double ema_alpha() const noexcept { return ema_alpha_; }

  /// Histogram L1 distance (0..2) above which a scene cut is declared.
  /// Default 0.5.
  SessionConfig& scene_cut_threshold(double t) {
    scene_cut_threshold_ = t;
    return *this;
  }
  double scene_cut_threshold() const noexcept { return scene_cut_threshold_; }

  /// Checks every field against its domain; returns the first violation
  /// as kInvalidOption with a message naming the field and the value.
  /// Registry names are checked at Session::create, not here.
  Status validate() const;

 private:
  std::string policy_ = "hebs-exact";
  std::string metric_ = "uiqi-hvs";
  std::string kernel_backend_;
  std::string color_mode_ = "shared-curve";
  int bit_depth_ = 8;
  int segments_ = 8;
  int g_min_floor_ = 0;
  int min_range_ = 16;
  double min_beta_ = 0.05;
  double equalization_strength_ = -1.0;
  bool concurrent_scaling_ = true;
  int threads_ = 0;
  bool buffer_pool_ = true;
  int pool_max_mb_ = 0;
  std::int64_t frame_deadline_us_ = 0;
  bool temporal_reuse_ = true;
  std::string curve_path_;
  std::string fault_spec_;
  std::string trace_path_;
  int characterization_size_ = 96;
  double max_beta_step_ = 0.04;
  double ema_alpha_ = 0.5;
  double scene_cut_threshold_ = 0.5;
};

}  // namespace hebs
