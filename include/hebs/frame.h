// Request/response types of the stable HEBS API.
//
// A FrameRequest names an input frame (as a zero-copy ImageView) and a
// distortion budget; a FrameResult is everything the configured policy
// decided and measured for it — the operating point (transfer curve and
// backlight factor), the displayed raster, and the distortion/power
// accounting.  These types are self-contained plain data: they expose
// no internal library types, so the facade headers install cleanly and
// the internals can keep evolving behind them.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hebs/image_view.h"
#include "hebs/status.h"

namespace hebs {

/// A breakpoint of a piecewise-linear transfer curve; x and y are
/// normalized pixel/luminance values in [0, 1].
struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
  bool operator==(const CurvePoint&) const = default;
};

/// Per-component power draw of one displayed frame.
struct PowerReport {
  double ccfl_watts = 0.0;   ///< backlight lamp + inverter
  double panel_watts = 0.0;  ///< TFT panel and driver
  double total_watts() const noexcept { return ccfl_watts + panel_watts; }
  bool operator==(const PowerReport&) const = default;
};

/// An owned 8-bit grayscale raster returned by the facade (the caller
/// may view() it to feed it back in without copying).
class OwnedImage {
 public:
  OwnedImage() = default;
  OwnedImage(int width, int height, std::vector<std::uint8_t> pixels)
      : width_(width), height_(height), pixels_(std::move(pixels)) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  bool empty() const noexcept { return pixels_.empty(); }
  const std::vector<std::uint8_t>& pixels() const noexcept { return pixels_; }

  /// Zero-copy gray8 view of this raster (valid while *this lives).
  ImageView view() const noexcept {
    return ImageView::gray8(pixels_.data(), width_, height_);
  }

  bool operator==(const OwnedImage&) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// An owned deep-pixel grayscale raster returned by the facade's
/// 10/16-bit path (the caller may view() it to feed it back in without
/// copying).  `levels` is the representable level count (1024 for
/// 10-bit, 65536 for 16-bit); every sample is < levels.
class OwnedImage16 {
 public:
  OwnedImage16() = default;
  OwnedImage16(int width, int height, int levels,
               std::vector<std::uint16_t> pixels)
      : width_(width),
        height_(height),
        levels_(levels),
        pixels_(std::move(pixels)) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int levels() const noexcept { return levels_; }
  bool empty() const noexcept { return pixels_.empty(); }
  /// Native-order uint16 samples, row-major, width * height of them.
  const std::vector<std::uint16_t>& pixels() const noexcept {
    return pixels_;
  }

  /// Zero-copy gray16 view of this raster (valid while *this lives).
  ImageView view() const noexcept {
    return ImageView::gray16(pixels_.data(), width_, height_);
  }

  bool operator==(const OwnedImage16&) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  int levels_ = 0;
  std::vector<std::uint16_t> pixels_;
};

/// An owned interleaved-RGB8 raster returned by the facade's color
/// path (the caller may view() it to feed it back in without copying).
class OwnedRgbImage {
 public:
  OwnedRgbImage() = default;
  OwnedRgbImage(int width, int height, std::vector<std::uint8_t> pixels)
      : width_(width), height_(height), pixels_(std::move(pixels)) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  bool empty() const noexcept { return pixels_.empty(); }
  /// Interleaved R,G,B bytes, row-major, 3 * width * height of them.
  const std::vector<std::uint8_t>& pixels() const noexcept { return pixels_; }

  /// Zero-copy rgb8 view of this raster (valid while *this lives).
  ImageView view() const noexcept {
    return ImageView::rgb8(pixels_.data(), width_, height_);
  }

  bool operator==(const OwnedRgbImage&) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// One frame to process.
struct FrameRequest {
  /// The input pixels; gray8 or interleaved rgb8 (BT.601 luma is
  /// extracted for RGB, bit-identical to a pre-converted gray frame).
  /// Deep sessions (SessionConfig::bit_depth 10/16) take gray16 views
  /// instead; the view format must match the session depth.
  ImageView image;
  /// Maximum tolerable distortion, percent in [0, 100].
  double d_max_percent = 10.0;
  /// When > 0: skip the budget search and run the HEBS pipeline at
  /// this fixed dynamic range, in [2, max_pixel - g_min_floor] where
  /// max_pixel is 2^bit_depth - 1 (255 for the default 8-bit session).
  /// Supported by the hebs-* policies only.
  int fixed_range = 0;
  /// Request a color rendering: the result additionally carries the
  /// transformed RGB raster (displayed_rgb, applied per the session's
  /// color_mode) and its hue_error.  Requires an rgb8 view; a gray8
  /// view with color_output set is rejected with kInvalidOption.
  bool color_output = false;
};

/// Optional per-frame observability breakdown (see DESIGN.md §13).
/// Filled by Session::process — the single-frame path, where the
/// counter deltas around the frame attribute exactly; batch and video
/// results leave it with `collected == false` (their frames run
/// concurrently, so per-frame attribution of the process-global
/// counters would be meaningless).  Counter fields are deltas of the
/// process-global registry, exact when no other session processes
/// concurrently.
struct FrameBreakdown {
  bool collected = false;
  /// Wall time of the whole decision + render, milliseconds.
  double decide_ms = 0.0;
  /// Exact distortion probes the range search evaluated.
  std::uint64_t range_probes = 0;
  /// β candidate evaluations inside the β refinement.
  std::uint64_t beta_probes = 0;
  /// refine_beta probe-memo hits/misses for this frame.
  std::uint64_t eval_memo_hits = 0;
  std::uint64_t eval_memo_misses = 0;
  /// Per-range result-memo hits/misses for this frame.
  std::uint64_t range_memo_hits = 0;
  std::uint64_t range_memo_misses = 0;
  bool operator==(const FrameBreakdown&) const = default;
};

/// Everything the session decided and measured for one frame.
struct FrameResult {
  /// Backlight scaling factor β in (0, 1].
  double beta = 1.0;
  /// Target range [g_min, g_max] the transform compresses into.
  /// Meaningful for frame/batch results of the hebs-* policies; the
  /// baselines and video results (whose flicker-controlled operating
  /// point is not range-targeted) leave the full-range defaults.
  int g_min = 0;
  int g_max = 255;
  /// Deployed piecewise-linear transfer Λ (what the driver realizes).
  std::vector<CurvePoint> lambda;
  /// Exact equalizing transform Φ before coarsening (hebs-* policies;
  /// empty for the baselines, which have no GHE stage).
  std::vector<CurvePoint> phi;
  /// Mean squared error of Λ against Φ (the PLC objective).
  double plc_mse = 0.0;
  /// Measured distortion of the displayed frame, percent.
  double distortion_percent = 0.0;
  /// Power saving versus the unmodified frame at full backlight.
  double saving_percent = 0.0;
  /// Power at the chosen operating point / at the reference point.
  PowerReport power;
  PowerReport reference_power;
  /// The displayed frame ψ(F), quantized to 8 bits (8-bit sessions;
  /// empty on the deep-pixel path).
  OwnedImage displayed;
  /// Deep-pixel sessions (bit_depth 10/16): the displayed frame
  /// quantized on the session's own level lattice.  Empty for 8-bit
  /// sessions.
  OwnedImage16 displayed16;
  /// Color path only (rgb8 input processed with color output): the
  /// displayed RGB raster, transformed per the session's color mode
  /// ("shared-curve": the shared ψ per sub-pixel channel, §2 of the
  /// paper; "luma-ratio": chroma-preserving luma scaling).  Empty for
  /// grayscale results.
  OwnedRgbImage displayed_rgb;
  /// Color path only: mean absolute chromaticity drift of
  /// displayed_rgb against the input (normalized channel-ratio L1;
  /// the MetricRegistry's "hue-error").  0 for grayscale results.
  double hue_error = 0.0;
  /// Per-frame observability breakdown (single-frame process() only).
  FrameBreakdown breakdown;
  /// Batch/video fault containment (DESIGN.md §14): true when this
  /// frame's pipeline work failed or blew the session's frame deadline
  /// and the result is the identity fallback (β = 1, identity Λ, the
  /// unmodified frame displayed — zero distortion, zero saving) rather
  /// than a computed decision.  The call as a whole still succeeds;
  /// `status` says why this frame degraded.  Frames after a degraded
  /// one are unaffected (bit-identical to a run without the fault).
  bool degraded = false;
  /// kOk for a computed frame; for a degraded frame, the containment
  /// cause — kIoError, kDeadlineExceeded, or kInternal — with a message
  /// naming the stage, frame index and (for injected faults) the fault
  /// point.
  Status status;
};

/// One frame of a video stream: the flicker-controlled decision plus
/// the per-frame result at the applied backlight factor.
struct VideoFrameResult {
  /// β the per-frame optimization asked for.
  double raw_beta = 1.0;
  /// β actually applied after flicker control.
  double beta = 1.0;
  /// Whether this frame was treated as a scene cut.
  bool scene_cut = false;
  /// Result at the applied operating point.  g_min/g_max, phi and
  /// plc_mse keep their defaults here: after flicker control the
  /// applied transform is re-derived for the rate-limited β and no
  /// longer corresponds to one searched target range.
  FrameResult frame;
};

}  // namespace hebs
