// Version of the stable HEBS public API.
//
// The facade under include/hebs/ follows semantic versioning: breaking
// changes to these headers bump the major version; adding policies,
// metrics or config knobs bumps the minor version.  The headers under
// include/hebs/advanced/ are NOT covered — they re-export library
// internals for in-repo tools and may change in any release.
#pragma once

#define HEBS_API_VERSION_MAJOR 1
#define HEBS_API_VERSION_MINOR 0
#define HEBS_API_VERSION_PATCH 0

namespace hebs {

inline constexpr int kApiVersionMajor = HEBS_API_VERSION_MAJOR;
inline constexpr int kApiVersionMinor = HEBS_API_VERSION_MINOR;
inline constexpr int kApiVersionPatch = HEBS_API_VERSION_PATCH;

/// "major.minor.patch".
inline constexpr const char* kApiVersionString = "1.0.0";

}  // namespace hebs
