// Zero-copy image ingestion for the stable HEBS API.
//
// An ImageView is a non-owning, stride-aware window onto pixel memory
// the caller already holds — a camera buffer, a decoded frame, a
// sub-rectangle of a larger surface.  Constructing and passing a view
// copies nothing; the session materializes the internal 8-bit luminance
// raster it needs at most once per frame (RGB views go through BT.601
// luma extraction, bit-identical to a pre-converted grayscale image).
//
// The caller keeps the pixel memory alive for the duration of the call
// that consumes the view; the library never stores a view past a call.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hebs/status.h"

namespace hebs {

/// Supported in-memory pixel layouts.
enum class PixelFormat {
  kGray8,   ///< one byte per pixel
  kRgb8,    ///< three bytes per pixel, interleaved R,G,B
  kGray16,  ///< one native-order uint16 sample per pixel (10/16-bit)
};

/// Bytes per pixel of a format.
constexpr int bytes_per_pixel(PixelFormat format) noexcept {
  switch (format) {
    case PixelFormat::kRgb8: return 3;
    case PixelFormat::kGray16: return 2;
    default: return 1;
  }
}

class ImageView {
 public:
  /// Empty view (width == height == 0, no data).
  ImageView() = default;

  /// A gray8 view.  stride_bytes is the distance between row starts;
  /// 0 means tightly packed (width bytes).
  static ImageView gray8(const std::uint8_t* data, int width, int height,
                         std::ptrdiff_t stride_bytes = 0) noexcept {
    return ImageView(data, width, height, stride_bytes, PixelFormat::kGray8);
  }

  /// An interleaved RGB8 view; 0 stride means tightly packed
  /// (3 * width bytes).
  static ImageView rgb8(const std::uint8_t* data, int width, int height,
                        std::ptrdiff_t stride_bytes = 0) noexcept {
    return ImageView(data, width, height, stride_bytes, PixelFormat::kRgb8);
  }

  /// A deep-pixel grayscale view: native-order uint16 samples, one per
  /// pixel.  Only sessions configured with SessionConfig::bit_depth 10
  /// or 16 accept gray16 views, and every sample must stay below
  /// 2^bit_depth — an over-depth sample is a kInvalidImage at process
  /// time, never a silent clamp.  0 stride means tightly packed
  /// (2 * width bytes).
  static ImageView gray16(const std::uint16_t* data, int width, int height,
                          std::ptrdiff_t stride_bytes = 0) noexcept {
    return ImageView(reinterpret_cast<const std::uint8_t*>(data), width,
                     height, stride_bytes, PixelFormat::kGray16);
  }

  const std::uint8_t* data() const noexcept { return data_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  PixelFormat format() const noexcept { return format_; }
  std::ptrdiff_t stride_bytes() const noexcept { return stride_bytes_; }

  bool empty() const noexcept { return width_ <= 0 || height_ <= 0; }

  /// Start of row y (unchecked).
  const std::uint8_t* row(int y) const noexcept {
    return data_ + static_cast<std::ptrdiff_t>(y) * stride_bytes_;
  }

  /// Structural validation: ok iff the view has positive dimensions,
  /// non-null data, and a stride covering at least one packed row.
  /// Codes: kInvalidImage (empty / null data / negative dims),
  /// kInvalidStride (stride < width * bytes_per_pixel).
  Status validate() const;

 private:
  ImageView(const std::uint8_t* data, int width, int height,
            std::ptrdiff_t stride_bytes, PixelFormat format) noexcept
      : data_(data),
        width_(width),
        height_(height),
        stride_bytes_(stride_bytes != 0
                          ? stride_bytes
                          : static_cast<std::ptrdiff_t>(width) *
                                bytes_per_pixel(format)),
        format_(format) {}

  const std::uint8_t* data_ = nullptr;
  int width_ = 0;
  int height_ = 0;
  std::ptrdiff_t stride_bytes_ = 0;
  PixelFormat format_ = PixelFormat::kGray8;
};

}  // namespace hebs
