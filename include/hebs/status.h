// Typed error channel of the stable HEBS API.
//
// The facade never aborts and never silently clamps an invalid input:
// every entry point reports failures through `Status` (a code plus a
// human-readable message) or `Expected<T>` (a value or a Status).  This
// replaces the exception surface of the internal layers at the API
// boundary — callers can switch on StatusCode without catching.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace hebs {

/// Machine-checkable failure categories of the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidOption,  ///< a SessionConfig field is outside its domain
  kInvalidImage,   ///< empty or structurally malformed ImageView
  kInvalidStride,  ///< view stride smaller than one packed row
  kInvalidBudget,  ///< distortion budget outside [0, 100] percent
  kUnknownPolicy,  ///< policy name not present in the PolicyRegistry
  kUnknownMetric,  ///< metric name not present in the MetricRegistry
  kUnknownBackend, ///< kernel backend name not usable on this machine
  kUnknownDepth,   ///< bit depth not supported, or view/config mismatch
  kIoError,        ///< loading/saving an external resource failed
  kInternal,       ///< unexpected failure inside the library
  kDeadlineExceeded,  ///< a frame blew its soft deadline; identity
                      ///< fallback emitted (see FrameResult::degraded)
};

/// Stable kebab-case name of a status code ("invalid-option", ...).
const char* status_code_name(StatusCode code) noexcept;

/// The outcome of a facade call: kOk, or a code plus a message that
/// names the offending field/value.  Default-constructed Status is ok.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return ok(); }

  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "code-name: message" (just "ok" for success).
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  bool operator==(const Status&) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or the Status explaining why it is absent.
///
/// Accessing value() on an error is a programming bug and throws
/// std::logic_error carrying the status text, so misuse is loud even in
/// release builds (the facade itself never relies on that throw).
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      throw std::logic_error("Expected<T> constructed from an ok Status");
    }
  }

  bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  /// The ok status when a value is present, the error otherwise.
  const Status& status() const noexcept { return status_; }

  const T& value() const& { return checked(); }
  T& value() & { return checked(); }
  T&& value() && { return std::move(checked()); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return has_value() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

  const T& operator*() const& { return checked(); }
  T& operator*() & { return checked(); }
  const T* operator->() const { return &checked(); }
  T* operator->() { return &checked(); }

 private:
  const T& checked() const {
    if (!value_) throw std::logic_error(status_.to_string());
    return *value_;
  }
  T& checked() {
    if (!value_) throw std::logic_error(status_.to_string());
    return *value_;
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace hebs
