// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "pipeline/bbhe.h"  // IWYU pragma: export
#include "pipeline/engine.h"  // IWYU pragma: export
#include "pipeline/executor.h"  // IWYU pragma: export
#include "pipeline/frame_context.h"  // IWYU pragma: export
#include "pipeline/stages.h"  // IWYU pragma: export
#include "pipeline/temporal.h"  // IWYU pragma: export
