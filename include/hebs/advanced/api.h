// Whitebox re-export: api-layer internals (ingestion helpers behind the
// stable facade) for in-repo tests and benches.  Not installed, no
// stability promise.
#pragma once

#include "api/view_convert.h"  // IWYU pragma: export
