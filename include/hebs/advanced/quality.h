// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "quality/contrast_fidelity.h"  // IWYU pragma: export
#include "quality/distortion.h"  // IWYU pragma: export
#include "quality/hvs.h"  // IWYU pragma: export
#include "quality/metrics.h"  // IWYU pragma: export
#include "quality/ms_ssim.h"  // IWYU pragma: export
#include "quality/ssim.h"  // IWYU pragma: export
#include "quality/uiqi.h"  // IWYU pragma: export
#include "quality/window_stats.h"  // IWYU pragma: export
