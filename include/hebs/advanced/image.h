// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "image/draw.h"  // IWYU pragma: export
#include "image/image.h"  // IWYU pragma: export
#include "image/noise.h"  // IWYU pragma: export
#include "image/ops.h"  // IWYU pragma: export
#include "image/pnm_io.h"  // IWYU pragma: export
#include "image/synthetic.h"  // IWYU pragma: export
