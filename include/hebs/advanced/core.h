// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "core/backlight.h"  // IWYU pragma: export
#include "core/color.h"  // IWYU pragma: export
#include "core/dbs.h"  // IWYU pragma: export
#include "core/distortion_curve.h"  // IWYU pragma: export
#include "core/ghe.h"  // IWYU pragma: export
#include "core/hebs.h"  // IWYU pragma: export
#include "core/lhe.h"  // IWYU pragma: export
#include "core/plc.h"  // IWYU pragma: export
#include "core/video.h"  // IWYU pragma: export
