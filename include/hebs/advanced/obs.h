// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "obs/counters.h"  // IWYU pragma: export
#include "obs/trace.h"  // IWYU pragma: export
