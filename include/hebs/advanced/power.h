// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "power/ccfl.h"  // IWYU pragma: export
#include "power/lab_bench.h"  // IWYU pragma: export
#include "power/lcd_power.h"  // IWYU pragma: export
#include "power/system.h"  // IWYU pragma: export
#include "power/tft_panel.h"  // IWYU pragma: export
