// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "baseline/cbcs.h"  // IWYU pragma: export
#include "baseline/dls.h"  // IWYU pragma: export
