// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "display/grayscale_voltage.h"  // IWYU pragma: export
#include "display/lcd_subsystem.h"  // IWYU pragma: export
#include "display/panel_sim.h"  // IWYU pragma: export
#include "display/reference_driver.h"  // IWYU pragma: export
#include "display/tft_matrix.h"  // IWYU pragma: export
