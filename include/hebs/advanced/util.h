// UNSTABLE re-export header: exposes an internal library layer to
// in-repo tools (benches, whitebox examples) through the include/hebs/
// namespace so no tool includes src/ paths directly.  Not installed,
// not covered by the API version contract.
#pragma once

#include "util/csv.h"  // IWYU pragma: export
#include "util/error.h"  // IWYU pragma: export
#include "util/faultpoint.h"  // IWYU pragma: export
#include "util/mathutil.h"  // IWYU pragma: export
#include "util/parallel.h"  // IWYU pragma: export
#include "util/pool.h"  // IWYU pragma: export
#include "util/rng.h"  // IWYU pragma: export
#include "util/table.h"  // IWYU pragma: export
