// Runtime statistics of a hebs::Session — the stable slice of the
// observability layer (DESIGN.md §13).
//
// SessionStats is a plain snapshot of the library's subsystem counters,
// taken as the delta since the session was created: how many frame
// decisions ran, which temporal-reuse level each video frame took,
// cache hit rates of the probe memos, BufferPool recycling, kernel
// dispatch mix, and thread-pool fan-out activity.  to_text() renders it
// as Prometheus-style "name value" lines, ready for a daemon
// (hebs_served) to serve as a scrape body.
//
// The underlying counter registry is process-global (counting sites sit
// on hot paths shared by every session), so a session's delta is exact
// when it is the only session processing — the common case — and an
// aggregate otherwise.
#pragma once

#include <cstdint>
#include <string>

namespace hebs {

/// Counter snapshot returned by Session::stats().  All fields are
/// totals since Session::create, except pool_bytes_outstanding (a
/// current-level gauge).
struct SessionStats {
  /// Full frame decisions (cold or warm-started range searches).
  std::uint64_t frames_decided = 0;

  // ---- temporal reuse (video paths); levels are mutually exclusive
  std::uint64_t temporal_frames = 0;          ///< frames seen by the fast path
  std::uint64_t reuse_byte_identical = 0;     ///< previous result returned
  std::uint64_t reuse_delta_refresh = 0;      ///< histogram refreshed, search run
  std::uint64_t reuse_cold = 0;               ///< full recount + search
  std::uint64_t warm_verified = 0;            ///< seeded bracket verified

  // ---- search effort
  std::uint64_t range_probes = 0;             ///< exact distortion probes
  std::uint64_t beta_probes = 0;              ///< β candidate evaluations
  std::uint64_t eval_memo_hits = 0;           ///< refine_beta probe memo
  std::uint64_t eval_memo_misses = 0;
  std::uint64_t range_memo_hits = 0;          ///< FrameContext at_range memo
  std::uint64_t range_memo_misses = 0;

  // ---- buffer pool
  std::uint64_t pool_recycled = 0;            ///< free-list hits
  std::uint64_t pool_fresh = 0;               ///< heap misses
  std::uint64_t pool_bytes_outstanding = 0;   ///< gauge: bytes checked out now

  // ---- thread pool
  std::uint64_t parallel_for_calls = 0;
  std::uint64_t parallel_for_items = 0;
  std::uint64_t parallel_for_queued = 0;      ///< fan-outs that waited

  // ---- kernel dispatch sites by backend
  std::uint64_t dispatch_scalar = 0;
  std::uint64_t dispatch_sse42 = 0;
  std::uint64_t dispatch_avx2 = 0;
  std::uint64_t dispatch_neon = 0;

  // ---- failure containment & degradation (DESIGN.md §14)
  std::uint64_t frames_degraded = 0;      ///< identity fallbacks emitted
  std::uint64_t deadline_misses = 0;      ///< soft frame deadlines blown
  std::uint64_t pool_heap_fallbacks = 0;  ///< pool-cap overflows to heap

  // ---- injected faults fired, by fault point (testing/soak only;
  //      all zero unless a fault spec is armed)
  std::uint64_t fault_pool_alloc = 0;
  std::uint64_t fault_worker_task = 0;
  std::uint64_t fault_frame_corrupt = 0;
  std::uint64_t fault_curve_io = 0;
  std::uint64_t fault_trace_io = 0;
  std::uint64_t fault_stage_latency = 0;

  /// Prometheus-style text dump: one "name value" line per field, names
  /// matching the library's counter registry
  /// ("hebs_frames_decided_total 12", ...).
  std::string to_text() const;
};

}  // namespace hebs
