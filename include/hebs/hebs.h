// Umbrella header of the stable HEBS public API.
//
//   #include <hebs/hebs.h>
//
//   auto session = hebs::Session::create(
//       hebs::SessionConfig().policy("hebs-exact"));
//   if (!session) { /* session.status() says why */ }
//   auto result = session->process(
//       {hebs::ImageView::gray8(pixels, w, h), /*d_max_percent=*/10.0});
//
// Only the headers included here (and hebs/version.h) are covered by
// the API version contract; include/hebs/advanced/ re-exports internal
// layers for in-repo tools and carries no stability promise.
#pragma once

#include "hebs/config.h"     // IWYU pragma: export
#include "hebs/frame.h"      // IWYU pragma: export
#include "hebs/image_view.h" // IWYU pragma: export
#include "hebs/registry.h"   // IWYU pragma: export
#include "hebs/session.h"    // IWYU pragma: export
#include "hebs/stats.h"      // IWYU pragma: export
#include "hebs/status.h"     // IWYU pragma: export
#include "hebs/version.h"    // IWYU pragma: export
