#!/usr/bin/env python3
"""Validates a hebs Chrome/Perfetto trace against the checked-in schema.

Two layers, both stdlib-only so CI needs no third-party packages:

1. Schema validation: a small validator for the JSON-Schema subset the
   checked-in schema uses (type / required / properties / items / enum /
   minimum).  Unknown keywords are rejected loudly rather than silently
   ignored, so the schema cannot drift ahead of the validator.
2. Semantic checks the schema cannot express: the trace must contain at
   least one "frame" span, spans must be well nested per tid (a child's
   [ts, ts+dur] interval lies inside its parent's), and every
   "temporal-reuse" level argument must be 0 (cold), 1 (delta refresh)
   or 2 (byte-identical).

Optionally cross-checks a --stats counter dump (the hebs_cli --stats
output): every line must be "name value", every name must start with
"hebs_", and the temporal counters must satisfy the reuse contract
byte_identical + delta_refresh + cold == temporal_frames.

Exit code 0 on success, 1 with a findings list on any violation.
"""

import argparse
import json
import sys

KNOWN_KEYWORDS = {
    "comment", "type", "required", "properties", "items", "enum", "minimum",
}


def validate(instance, schema, path, findings):
    """Validates `instance` against the supported JSON-Schema subset."""
    unknown = set(schema) - KNOWN_KEYWORDS
    if unknown:
        findings.append(f"{path}: schema uses unsupported keywords "
                        f"{sorted(unknown)}; extend check_trace.py first")
        return

    expected = schema.get("type")
    if expected is not None:
        ok = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            # bool is an int subclass in Python; a trace must not abuse it.
            "integer": lambda v: isinstance(v, int)
            and not isinstance(v, bool),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
        }[expected](instance)
        if not ok:
            findings.append(f"{path}: expected {expected}, got "
                            f"{type(instance).__name__}")
            return

    if "enum" in schema and instance not in schema["enum"]:
        findings.append(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and instance < schema["minimum"]:
        findings.append(f"{path}: {instance} < minimum {schema['minimum']}")

    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                findings.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                validate(instance[key], sub, f"{path}.{key}", findings)

    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{i}]", findings)


def check_semantics(trace, findings):
    events = trace.get("traceEvents", [])
    if not any(e.get("name") == "frame" for e in events):
        findings.append("trace contains no 'frame' span")

    for e in events:
        if e.get("name") == "temporal-reuse":
            level = e.get("args", {}).get("arg")
            if level not in (0, 1, 2):
                findings.append(f"temporal-reuse level {level!r} is not "
                                "0 (cold) / 1 (delta) / 2 (byte-identical)")

    # Nesting: within one tid, intervals must be properly nested (the
    # writer sorts by start with longer spans first, so a linear
    # stack-based sweep suffices).
    by_tid = {}
    for e in events:
        by_tid.setdefault(e.get("tid"), []).append(e)
    for tid, evs in by_tid.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for e in evs:
            end = e["ts"] + e["dur"]
            while stack and e["ts"] >= stack[-1] - 1e-9:
                stack.pop()
            if stack and end > stack[-1] + 1e-9:
                findings.append(
                    f"tid {tid}: span '{e['name']}' [{e['ts']}, {end}] "
                    f"overlaps its enclosing span (ends {stack[-1]})")
            stack.append(end)


def check_stats(text, findings):
    counters = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        parts = line.split()
        if len(parts) != 2 or not parts[1].isdigit():
            findings.append(f"stats line {lineno}: expected 'name value', "
                            f"got {line!r}")
            continue
        if not parts[0].startswith("hebs_"):
            findings.append(f"stats line {lineno}: counter {parts[0]!r} "
                            "lacks the hebs_ prefix")
        counters[parts[0]] = int(parts[1])

    total = counters.get("hebs_temporal_frames_total")
    if total is not None:
        split = (counters.get("hebs_temporal_reuse_byte_identical_total", 0)
                 + counters.get("hebs_temporal_reuse_delta_refresh_total", 0)
                 + counters.get("hebs_temporal_reuse_cold_total", 0))
        if split != total:
            findings.append(
                f"temporal contract violated: byte_identical + delta + cold "
                f"= {split} but hebs_temporal_frames_total = {total}")
    if counters.get("hebs_frames_decided_total", 0) == 0:
        findings.append("stats dump shows zero frames decided")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON written by hebs")
    ap.add_argument("--schema", default="tools/trace/trace_schema.json")
    ap.add_argument("--stats", help="optional hebs_cli --stats dump to "
                                    "cross-check")
    args = ap.parse_args()

    findings = []
    with open(args.schema) as f:
        schema = json.load(f)
    try:
        with open(args.trace) as f:
            trace = json.load(f)
    except json.JSONDecodeError as e:
        print(f"FAIL: {args.trace} is not valid JSON: {e}")
        return 1

    validate(trace, schema, "$", findings)
    if not findings:  # semantic checks assume schema-shaped events
        check_semantics(trace, findings)
    if args.stats:
        with open(args.stats) as f:
            check_stats(f.read(), findings)

    if findings:
        print(f"FAIL: {len(findings)} finding(s) in {args.trace}:")
        for f_ in findings:
            print(f"  - {f_}")
        return 1
    n = len(trace.get("traceEvents", []))
    print(f"OK: {args.trace} ({n} events) matches {args.schema}"
          + (" and stats contract holds" if args.stats else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
