// Negative fixture for hebs-no-alloc-in-steady-state: every function
// here must FIRE the check (the self-test asserts it).  Allocation is
// reached three different ways — direct new, a std container growing on
// the global heap, and new hidden two calls deep — to prove the check
// walks the call graph rather than pattern-matching on `new`.
#include <cstddef>
#include <vector>

namespace fixture {

// Direct operator new in a "steady-state" function.
int* direct_new(std::size_t n) { return new int[n]; }

// std::vector uses std::allocator -> operator new.  The check must see
// through push_back -> _M_realloc_insert -> allocator -> new.
int sum_with_vector(int n) {
  std::vector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(i);
  int s = 0;
  for (int x : v) s += x;
  return s;
}

// Allocation two repo-local calls deep: root -> helper -> new.
namespace detail {
double* make_scratch(std::size_t n) { return new double[n]; }
double* helper(std::size_t n) { return detail::make_scratch(n); }
}  // namespace detail

double hidden_alloc_two_deep(std::size_t n) {
  double* p = detail::helper(n);
  double v = p[0];
  delete[] p;
  return v;
}

}  // namespace fixture
