// Positive fixture for hebs-kernel-fp-contract: must stay CLEAN when
// compiled with -ffp-contract=off.  Serial accumulation with separate
// multiply and add — the same operation order as the scalar reference —
// is exactly what the kernels are allowed to do.
#include <cstddef>

namespace fixture {

double good_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float good_scale_add(const float* x, float s, float o, std::size_t i) {
  return x[i] * s + o;  // contraction forbidden by -ffp-contract=off
}

}  // namespace fixture
