// Positive fixture for hebs-no-alloc-in-steady-state: must stay CLEAN.
// Pool-backed containers funnel every allocation into pool_allocate(),
// which is extern in steady-state TUs — an opaque boundary the check
// does not look behind (the pool recycles, it does not heap-allocate
// per frame).  Error paths exit through [[noreturn]] throw helpers,
// which are boundary functions: an exception leaves the steady state by
// definition.
#include <cstddef>

#include "util/error.h"
#include "util/pool.h"

namespace fixture {

// PoolVector growth goes PoolAllocator::allocate -> pool_allocate
// (extern, opaque).
int sum_with_pool_vector(int n) {
  hebs::util::PoolVector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(i);
  int s = 0;
  for (int x : v) s += x;
  return s;
}

// HEBS_REQUIRE's failure branch calls a throw helper that allocates its
// message — excused, because throwing is not steady-state execution.
int checked_divide(int a, int b) {
  HEBS_REQUIRE(b != 0, "divide by zero");
  return a / b;
}

// Pure arithmetic: nothing to find.
double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace fixture
