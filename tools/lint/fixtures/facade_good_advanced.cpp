// Positive fixture for hebs-facade-include: must stay CLEAN.  The
// advanced re-export header is the sanctioned way for in-repo whitebox
// consumers to reach internals; the src/ headers it pulls in appear at
// include depth >= 2, with the advanced header as their includer.
#include "hebs/advanced/core.h"
#include "hebs/hebs.h"

int fixture_use() { return static_cast<int>(sizeof(hebs::core::HebsOptions)); }
