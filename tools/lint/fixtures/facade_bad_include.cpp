// Negative fixture for hebs-facade-include: must FIRE.  A TU outside
// the library reaching straight into src/ bypasses both the stable
// facade (include/hebs) and the sanctioned whitebox door
// (hebs/advanced/*), coupling it to internals that may change without
// notice.
#include "core/hebs.h"  // resolves to src/core/hebs.h — violation

int fixture_use() { return static_cast<int>(sizeof(hebs::core::HebsOptions)); }
