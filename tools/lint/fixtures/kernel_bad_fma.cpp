// Negative fixture for hebs-kernel-fp-contract: must FIRE.  Fused
// multiply-add rounds once where the scalar reference rounds twice, so
// any fma in a kernel breaks the bit-identical-to-scalar contract
// (DESIGN.md §8).  The x86 horizontal-add intrinsic additionally
// reassociates the reduction tree.
#include <cmath>
#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace fixture {

// std::fma resolves to the fma builtin/libm call — one rounding, not
// two: fires the check.
double bad_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc = std::fma(a[i], b[i], acc);
  return acc;
}

#if defined(__AVX2__)
// _mm_hadd_ps sums lanes pairwise — a tree reduction, not the serial
// left-to-right order the scalar kernel defines: fires the check.
float bad_hadd(__m128 v) {
  __m128 h = _mm_hadd_ps(v, v);
  h = _mm_hadd_ps(h, h);
  return _mm_cvtss_f32(h);
}
#endif

}  // namespace fixture
