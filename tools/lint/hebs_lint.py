#!/usr/bin/env python3
"""hebs-* custom static-analysis checks.

Three repo-specific checks that turn the codebase's prose contracts into
gating analysis.  Each check parses real compiler output about program
structure — the GCC C++ AST dump (``-fdump-lang-raw``, a serialized
graph of typed nodes: function_decl, call_expr, ...) or the
preprocessor's resolved include graph (``-H``) — never the source text,
so renames, macros, formatting and comments cannot fool them:

``hebs-no-alloc-in-steady-state``
    The engine's steady state performs zero heap allocations per frame
    (DESIGN.md §9, enforced at runtime by bench_alloc_steady_state).
    This check proves the *static* side: in the steady-state TUs
    (pipeline stages/frame context/temporal machinery and the kernel
    TUs) no function defined in repo code may reach ``operator new`` /
    ``malloc`` through the TU-local call graph.  Pool-backed containers
    (PoolVector/PoolMap) are naturally clean — their allocation funnels
    into ``pool_allocate``, which is opaque (extern) in these TUs —
    and error paths are excused via throw-helper boundary functions
    (an exception leaves the steady state by definition).  Known
    warm-up/cold-path allocations are allowlisted by (file, function)
    with a reason in hebs_lint_config.json.

``hebs-kernel-fp-contract``
    The SIMD backends are bit-identical to scalar by same-order IEEE
    arithmetic (DESIGN.md §8): no fused multiply-add, no reassociated
    reductions.  This check flags, inside src/kernels/ code, any
    reachable call to the fma family or to horizontal-add/dot-product
    intrinsics (which reassociate float reductions), and requires the
    kernel TUs to be compiled with an explicit ``-ffp-contract=off``
    (and without -ffast-math/-fassociative-math) so the compiler cannot
    contract a*b+c into fma behind the source's back — the only silent
    way to break same-order IEEE on FMA-capable targets (AArch64).

``hebs-facade-include``
    Nothing outside the library may include src/ headers directly;
    in-repo whitebox consumers go through the hebs/advanced/ re-export
    headers (PR 2's contract, previously enforced only by review).
    The check walks the preprocessor's include graph for every TU in
    tests/, bench/ and examples/ and flags any src/-resolved header
    whose direct includer is the TU itself.

Usage:
    hebs_lint.py --build <builddir> --repo <repo-root> [--report out.json]
    hebs_lint.py --self-test --repo <repo-root> [--compiler g++]

The tree run reads compile_commands.json from the build directory for
each TU's exact flags.  --self-test compiles the committed fixtures
under tools/lint/fixtures/ and asserts that every negative fixture
fires each check and every positive fixture stays clean — the proof
the checks actually detect what they claim to.

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# GCC raw AST dump parsing
# --------------------------------------------------------------------------

_NODE_RE = re.compile(r"^@(\d+)\s+(\S+)(.*)")
_ATTR_RE = re.compile(r"([0-9A-Za-z_]+(?: [0-9]+)?)\s*:\s*(@?\S+)")
_REF_RE = re.compile(r"@(\d+)")
_NAME_RE = re.compile(r"name:\s*@(\d+)")
_BODY_RE = re.compile(r"body:\s*@(\d+)")
_STRG_RE = re.compile(r"strg:\s*(.*?)\s+lngt")
_SRCP_RE = re.compile(r"srcp:\s*(\S+?):(\d+)")

# Attribute keys that lead out of a function body into types, scopes and
# declaration chains; following them would walk the entire translation
# unit instead of the body's statement tree.
_NON_STRUCTURAL_KEYS = frozenset(
    "type scpe chain srcp note link algn size prec sign min max used lngt "
    "cnst mngl orig unql qual valu purp bpos spec accs tag bases binf".split()
)

ALLOC_NAMES = frozenset(
    "malloc calloc realloc aligned_alloc posix_memalign strdup strndup "
    "__builtin_malloc __builtin_calloc __builtin_realloc "
    "__builtin_strdup __builtin_strndup".split()
)

# Boundary functions: reaching one of these ends the walk without a
# finding.  Throw helpers allocate their message, but an exception exits
# the steady state by definition; std terminate/abort never return.
BOUNDARY_PATTERNS = [
    re.compile(p)
    for p in (
        r"^throw_",          # hebs::util::detail::throw_invalid_argument etc.
        r"^__throw_",        # libstdc++ __throw_length_error etc.
        r"^__cxa_",          # C++ EH runtime
        r"^_M_throw",
        r"^terminate$",
        r"^abort$",
    )
]

# Reassociating horizontal float intrinsics (and the builtins they lower
# to): each computes a tree-shaped reduction, which is not the serial
# accumulation order the scalar reference kernels define.
REASSOC_INTRINSICS = frozenset(
    "_mm_hadd_ps _mm_hadd_pd _mm256_hadd_ps _mm256_hadd_pd "
    "_mm_dp_ps _mm_dp_pd _mm256_dp_ps "
    "_mm512_reduce_add_ps _mm512_reduce_add_pd "
    "vaddv_f32 vaddvq_f32 vaddvq_f64 vpadd_f32 vpaddq_f32 vpaddq_f64 "
    "vpadds_f32 vpaddd_f64".split()
)
REASSOC_BUILTIN_PREFIXES = (
    "__builtin_ia32_hadd",
    "__builtin_ia32_dpps",
    "__builtin_ia32_reduce",
    "__builtin_aarch64_reduc_plus",
    "__builtin_aarch64_addp",
)

FMA_NAMES = frozenset(
    "fma fmaf fmal __builtin_fma __builtin_fmaf __builtin_fmal "
    "__builtin_ia32_vfmaddps __builtin_ia32_vfmaddpd "
    "__builtin_aarch64_fmav4sf __builtin_aarch64_fmav2df".split()
)

FORBIDDEN_FP_FLAGS = {
    "-ffast-math",
    "-funsafe-math-optimizations",
    "-fassociative-math",
    "-ffp-contract=fast",
    "-ffp-contract=on",
}


class AstDump:
    """One translation unit's -fdump-lang-raw node graph."""

    def __init__(self, path):
        kinds = {}
        text = {}
        cur = None
        with open(path, "r", errors="replace") as f:
            for line in f:
                m = _NODE_RE.match(line)
                if m:
                    cur = int(m.group(1))
                    kinds[cur] = m.group(2)
                    text[cur] = m.group(3).rstrip()
                elif cur is not None:
                    text[cur] += " " + line.strip()
        self.kinds = kinds
        self.text = text

    def identifier(self, node):
        """The simple name of a decl node (None for operator identifiers,
        which GCC dumps without a name string)."""
        m = _NAME_RE.search(self.text.get(node, ""))
        if not m:
            return None
        name_node = int(m.group(1))
        if self.kinds.get(name_node) == "identifier_node":
            sm = _STRG_RE.search(self.text[name_node])
            return sm.group(1) if sm else None
        if self.kinds.get(name_node) == "type_decl":
            return self.identifier(name_node)
        return None

    def srcp(self, node):
        m = _SRCP_RE.search(self.text.get(node, ""))
        return (m.group(1), int(m.group(2))) if m else (None, None)

    def functions(self):
        for node, kind in self.kinds.items():
            if kind == "function_decl":
                yield node

    def has_body(self, node):
        return _BODY_RE.search(self.text.get(node, "")) is not None

    def scope_is_global(self, node):
        m = re.search(r"scpe:\s*@(\d+)", self.text.get(node, ""))
        if not m:
            return False
        scope = int(m.group(1))
        return self.kinds.get(scope) in ("namespace_decl", "translation_unit_decl") and (
            self.identifier(scope) in ("::", None)
            or self.kinds.get(scope) == "translation_unit_decl"
        )

    def returns_pointer(self, node):
        m = re.search(r"type:\s*@(\d+)", self.text.get(node, ""))
        if not m:
            return False
        ftype = int(m.group(1))
        rm = re.search(r"retn:\s*@(\d+)", self.text.get(ftype, ""))
        if not rm:
            return False
        return self.kinds.get(int(rm.group(1))) == "pointer_type"

    def is_operator_new(self, node):
        """Global-scope allocation operator: `note: operator` decl whose
        function type returns a pointer (operator new / new[]; operator
        delete returns void).  Placement operator new(size_t, void*) is
        excluded by the body test: it is defined inline in <new> (it
        just returns its argument), while the allocating forms are
        extern declarations — construct_at/launder paths must not count
        as allocation."""
        txt = self.text.get(node, "")
        return (
            "note: operator" in txt
            and self.scope_is_global(node)
            and self.returns_pointer(node)
            and not self.has_body(node)
        )

    def direct_callees(self, fn):
        """function_decl nodes referenced from fn's body (structural
        traversal only: type/scope/chain edges are not followed, so the
        walk stays inside the statement tree)."""
        m = _BODY_RE.search(self.text.get(fn, ""))
        if not m:
            return frozenset()
        callees = set()
        seen = set()
        stack = [int(m.group(1))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            kind = self.kinds.get(node)
            if kind is None:
                continue
            if kind == "function_decl":
                callees.add(node)
                continue  # do not walk into other bodies here
            txt = self.text[node]
            for key, value in _ATTR_RE.findall(txt):
                if key.split()[0] in _NON_STRUCTURAL_KEYS:
                    continue
                if value.startswith("@"):
                    stack.append(int(value[1:]))
        return frozenset(callees)


# --------------------------------------------------------------------------
# Compile-command plumbing
# --------------------------------------------------------------------------


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        sys.exit(f"error: {path} not found (configure with "
                 "CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    by_file = {}
    for entry in json.load(open(path)):
        args = entry.get("arguments") or shlex.split(entry["command"])
        by_file[os.path.realpath(entry["file"])] = (entry["directory"], args)
    return by_file


def strip_output_args(args):
    out = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if a in ("-c", "-MD", "-MMD"):
            continue
        out.append(a)
    return out


def generate_dump(directory, args, source, dump_path):
    cmd = strip_output_args(args) + [
        "-fsyntax-only",
        f"-fdump-lang-raw={dump_path}",
    ]
    if source not in cmd:
        cmd.append(source)
    proc = subprocess.run(cmd, cwd=directory, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"dump generation failed for {source}:\n{proc.stderr[-2000:]}")
    return dump_path


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


class Finding:
    def __init__(self, check, file, line, message):
        self.check = check
        self.file = file
        self.line = line
        self.message = message

    def to_json(self):
        return {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self):
        loc = f"{self.file}:{self.line}" if self.line else self.file
        return f"[{self.check}] {loc}: {self.message}"


def is_boundary(name):
    return name is not None and any(p.search(name) for p in BOUNDARY_PATTERNS)


# --------------------------------------------------------------------------
# Check: hebs-no-alloc-in-steady-state
# --------------------------------------------------------------------------


def check_no_alloc(dump, root_index, allowlist):
    """Flags repo-defined functions (srcp basename in `root_index`)
    whose TU-local call graph reaches an allocation entry point."""
    findings = []

    alloc_reason = {}  # function_decl -> why it allocates (or None)

    def direct_alloc_reason(node):
        if dump.is_operator_new(node):
            return "operator new"
        name = dump.identifier(node)
        if name in ALLOC_NAMES:
            return name
        return None

    # Memoized reachability.  visiting-set breaks recursion cycles
    # conservatively (a cycle member only allocates if something on or
    # beyond the cycle allocates).
    memo = {}

    def reaches_alloc(node, visiting):
        if node in memo:
            return memo[node]
        reason = direct_alloc_reason(node)
        if reason:
            memo[node] = (reason, [node])
            return memo[node]
        name = dump.identifier(node)
        if is_boundary(name):
            memo[node] = None
            return None
        if not dump.has_body(node):
            memo[node] = None  # opaque: extern boundary (pool_allocate etc.)
            return None
        if node in visiting:
            return None
        visiting.add(node)
        result = None
        for callee in dump.direct_callees(node):
            sub = reaches_alloc(callee, visiting)
            if sub:
                result = (sub[0], [node] + sub[1])
                break
        visiting.discard(node)
        memo[node] = result
        return result

    def chain_str(chain):
        parts = []
        for node in chain[1:]:
            name = dump.identifier(node)
            if name is None and dump.is_operator_new(node):
                name = "operator new"
            f, l = dump.srcp(node)
            parts.append(f"{name or '<unnamed>'} ({f}:{l})" if f else
                         (name or "<unnamed>"))
        return " -> ".join(parts)

    for fn in dump.functions():
        if not dump.has_body(fn):
            continue
        f, line = dump.srcp(fn)
        rel = root_index.get(f)
        if rel is None:
            continue
        name = dump.identifier(fn) or "<unnamed>"
        if (rel, name) in allowlist or ("*", name) in allowlist:
            continue
        hit = reaches_alloc(fn, set())
        if hit:
            findings.append(Finding(
                "hebs-no-alloc-in-steady-state", rel, line,
                f"'{name}' can reach heap allocation ({hit[0]}) via "
                f"{chain_str(hit[1])}; steady-state code must draw from the "
                "BufferPool (PoolVector/PoolMap) or be allowlisted as a "
                "cold/warm-up path in hebs_lint_config.json"))
    return findings


# --------------------------------------------------------------------------
# Check: hebs-kernel-fp-contract
# --------------------------------------------------------------------------


def check_fp_contract_flags(args, rel, findings):
    flat = set(args)
    for flag in sorted(FORBIDDEN_FP_FLAGS & flat):
        findings.append(Finding(
            "hebs-kernel-fp-contract", rel, 0,
            f"kernel TU compiled with {flag}: value-changing FP "
            "transformations break the same-order IEEE contract "
            "(DESIGN.md §8)"))
    if "-ffp-contract=off" not in flat:
        findings.append(Finding(
            "hebs-kernel-fp-contract", rel, 0,
            "kernel TU lacks an explicit -ffp-contract=off: on "
            "FMA-capable targets (AArch64 baseline) the compiler may "
            "contract a*b+c into fused multiply-add, silently changing "
            "rounding vs the scalar reference"))


def check_fp_contract(dump, kernel_index):
    findings = []

    def offending(node):
        name = dump.identifier(node)
        if name in FMA_NAMES:
            return f"fused multiply-add call '{name}'"
        if name in REASSOC_INTRINSICS:
            return f"reassociating horizontal intrinsic '{name}'"
        if name and name.startswith(REASSOC_BUILTIN_PREFIXES):
            return f"reassociating builtin '{name}'"
        return None

    memo = {}

    def reaches(node, visiting):
        if node in memo:
            return memo[node]
        why = offending(node)
        if why:
            memo[node] = why
            return why
        # Only walk through kernel-local helpers; std/intrinsic headers
        # are matched by name above, never traversed.
        f, _ = dump.srcp(node)
        if f not in kernel_index:
            memo[node] = None
            return None
        if not dump.has_body(node) or node in visiting:
            memo[node] = None
            return None
        visiting.add(node)
        result = None
        for callee in dump.direct_callees(node):
            sub = reaches(callee, visiting)
            if sub:
                result = sub
                break
        visiting.discard(node)
        memo[node] = result
        return result

    for fn in dump.functions():
        if not dump.has_body(fn):
            continue
        f, line = dump.srcp(fn)
        rel = kernel_index.get(f)
        if rel is None:
            continue
        for callee in dump.direct_callees(fn):
            why = reaches(callee, set())
            if why:
                name = dump.identifier(fn) or "<unnamed>"
                findings.append(Finding(
                    "hebs-kernel-fp-contract", rel, line,
                    f"'{name}' uses {why}: kernels must keep same-order "
                    "IEEE arithmetic (bit-identical to scalar, "
                    "DESIGN.md §8)"))
                break
    return findings


# --------------------------------------------------------------------------
# Check: hebs-facade-include
# --------------------------------------------------------------------------


def check_facade_include(directory, args, source, repo, rel_source):
    cmd = strip_output_args(args) + ["-E", "-H", "-o", os.devnull]
    if source not in cmd:
        cmd.append(source)
    proc = subprocess.run(cmd, cwd=directory, capture_output=True, text=True)
    findings = []
    src_root = os.path.join(repo, "src") + os.sep
    # -H prints one line per include: N dots = depth, then the path.
    # Track the depth-1 parent to know who performed each include.
    depth1_parent = None
    for line in proc.stderr.splitlines():
        m = re.match(r"^(\.+) (.*)$", line)
        if not m:
            continue
        depth = len(m.group(1))
        path = os.path.realpath(os.path.join(directory, m.group(2).strip()))
        if depth == 1:
            depth1_parent = path
            if path.startswith(src_root):
                findings.append(Finding(
                    "hebs-facade-include", rel_source, 0,
                    f"directly includes internal header "
                    f"'{os.path.relpath(path, repo)}'; code outside the "
                    "library must use include/hebs (stable facade) or "
                    "hebs/advanced/* (whitebox re-exports)"))
    if proc.returncode != 0:
        findings.append(Finding(
            "hebs-facade-include", rel_source, 0,
            f"preprocessing failed:\n{proc.stderr[-800:]}"))
    return findings


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------


def load_config(repo):
    path = os.path.join(repo, "tools", "lint", "hebs_lint_config.json")
    with open(path) as f:
        cfg = json.load(f)
    allow = set()
    for entry in cfg.get("no_alloc_allowlist", []):
        allow.add((entry["file"], entry["function"]))
    cfg["_allowlist"] = allow
    return cfg


def make_repo_rel(repo):
    real_repo = os.path.realpath(repo) + os.sep

    def rel(path):
        if path is None:
            return None
        # compile_commands paths are absolute/relative real paths;
        # resolve against repo.
        cand = path if os.path.isabs(path) else os.path.join(real_repo, path)
        cand = os.path.realpath(cand)
        if cand.startswith(real_repo):
            return cand[len(real_repo):]
        return None

    return rel


def basename_index(repo, dirs):
    """GCC's raw dump records only the *basename* of each decl's source
    file, so root selection maps basenames back to repo paths: a
    function is repo-defined iff its srcp basename names a file under
    one of `dirs`.  Repo file names (stages.cpp, uiqi.h, ...) do not
    collide with libstdc++ header names; a collision would only widen
    the root set (more functions checked), never hide one."""
    index = {}
    for d in dirs:
        base = os.path.join(repo, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for f in files:
                index[f] = os.path.relpath(os.path.join(dirpath, f), repo)
    return index


def run_tree(repo, build_dir, checks, jobs):
    cfg = load_config(repo)
    commands = load_compile_commands(build_dir)
    rel_of = make_repo_rel(repo)
    steady_index = basename_index(repo, cfg["steady_state_root_dirs"])
    kernel_index = basename_index(repo, cfg["kernel_root_dirs"])
    findings = []

    def tu_entry(rel_path):
        return commands.get(os.path.realpath(os.path.join(repo, rel_path)))

    # -- AST-dump checks -------------------------------------------------
    dump_jobs = []  # (rel_tu, kind)
    if "no-alloc" in checks:
        for rel_tu in cfg["steady_state_tus"]:
            dump_jobs.append((rel_tu, "no-alloc"))
    if "fp-contract" in checks:
        for rel_tu in sorted(
                r for r in (rel_of(f) for f in commands)
                if r and re.match(cfg["kernel_tu_pattern"], r)):
            dump_jobs.append((rel_tu, "fp-contract"))

    tmpdir = tempfile.mkdtemp(prefix="hebs_lint_")

    def run_one(job):
        rel_tu, kind = job
        entry = tu_entry(rel_tu)
        if entry is None:
            return [Finding(kind, rel_tu, 0,
                            "TU not in compile_commands.json")]
        directory, args = entry
        local = []
        if kind == "fp-contract":
            check_fp_contract_flags(args, rel_tu, local)
        dump_path = os.path.join(
            tmpdir, rel_tu.replace(os.sep, "_") + ".raw")
        try:
            generate_dump(directory, args,
                          os.path.join(repo, rel_tu), dump_path)
        except RuntimeError as e:
            local.append(Finding(kind, rel_tu, 0, str(e)))
            return local
        dump = AstDump(dump_path)
        os.unlink(dump_path)
        if kind == "no-alloc":
            local += check_no_alloc(dump, steady_index, cfg["_allowlist"])
        else:
            local += check_fp_contract(dump, kernel_index)
        return local

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(run_one, dump_jobs):
            findings += result

    # -- include-graph check ---------------------------------------------
    if "facade-include" in checks:
        outside = [
            (rel_of(f), commands[f]) for f in commands
            if rel_of(f) and re.match(cfg["outside_tu_pattern"], rel_of(f))
        ]

        def run_include(item):
            rel_tu, (directory, args) = item
            return check_facade_include(
                directory, args, os.path.join(repo, rel_tu), repo, rel_tu)

        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(run_include, outside):
                findings += result

    return findings


# --------------------------------------------------------------------------
# Self-test: prove each check fires on its negative fixture and stays
# quiet on its positive twin.
# --------------------------------------------------------------------------


def run_self_test(repo, compiler, jobs):
    fixtures = os.path.join(repo, "tools", "lint", "fixtures")
    fixture_index = basename_index(repo, ["tools/lint/fixtures"])
    base_args = [compiler, "-std=c++20", "-I" + os.path.join(repo, "include"),
                 "-I" + os.path.join(repo, "src"), "-Wall"]
    tmpdir = tempfile.mkdtemp(prefix="hebs_lint_selftest_")
    failures = []

    def dump_of(fixture, extra=()):
        src = os.path.join(fixtures, fixture)
        dump_path = os.path.join(tmpdir, fixture + ".raw")
        generate_dump(repo, base_args + list(extra), src, dump_path)
        d = AstDump(dump_path)
        os.unlink(dump_path)
        return d

    fixture_dir = "tools/lint/fixtures/"

    def expect(name, findings, min_count, what):
        ok = len(findings) >= min_count if min_count else not findings
        state = "fired" if findings else "clean"
        want = f">={min_count} finding(s)" if min_count else "clean"
        print(f"  {name}: {state} ({len(findings)} findings, want {want})")
        for f in findings:
            print(f"    {f}")
        if not ok:
            failures.append(f"{name}: expected {what}")

    print("[self-test] hebs-no-alloc-in-steady-state")
    expect("steady_bad_alloc.cpp (negative)",
           check_no_alloc(dump_of("steady_bad_alloc.cpp"),
                          fixture_index, set()),
           2, "direct new + std container findings")
    expect("steady_good_pool.cpp (positive)",
           check_no_alloc(dump_of("steady_good_pool.cpp"),
                          fixture_index, set()),
           0, "no findings for pool-backed containers")

    print("[self-test] hebs-kernel-fp-contract")
    expect("kernel_bad_fma.cpp (negative)",
           check_fp_contract(dump_of("kernel_bad_fma.cpp"), fixture_index),
           1, "fma finding")
    flag_findings = []
    check_fp_contract_flags(base_args, fixture_dir + "kernel_bad_fma.cpp",
                            flag_findings)
    expect("kernel_bad_fma.cpp flags (negative)", flag_findings, 1,
           "missing -ffp-contract=off finding")
    expect("kernel_good_same_order.cpp (positive)",
           check_fp_contract(dump_of("kernel_good_same_order.cpp",
                                     ["-ffp-contract=off"]), fixture_index),
           0, "no findings for same-order kernel")
    clean_flags = []
    check_fp_contract_flags(base_args + ["-ffp-contract=off"],
                            fixture_dir + "kernel_good_same_order.cpp",
                            clean_flags)
    expect("kernel_good_same_order.cpp flags (positive)", clean_flags, 0,
           "no flag findings with -ffp-contract=off")

    print("[self-test] hebs-facade-include")
    expect("facade_bad_include.cpp (negative)",
           check_facade_include(repo, base_args,
                                os.path.join(fixtures,
                                             "facade_bad_include.cpp"),
                                repo, fixture_dir + "facade_bad_include.cpp"),
           1, "direct src/ include finding")
    expect("facade_good_advanced.cpp (positive)",
           check_facade_include(repo, base_args,
                                os.path.join(fixtures,
                                             "facade_good_advanced.cpp"),
                                repo, fixture_dir + "facade_good_advanced.cpp"),
           0, "no findings for advanced-header include")

    if failures:
        print("\nSELF-TEST FAILURES:")
        for f in failures:
            print("  " + f)
        return 1
    print("\nself-test OK: every check fires on its negative fixture and "
          "passes its positive fixture")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
    ap.add_argument("--build", help="build dir with compile_commands.json")
    ap.add_argument("--checks", default="no-alloc,fp-contract,facade-include")
    ap.add_argument("--report", help="write findings as JSON to this path")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture proof instead of the tree")
    ap.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    args = ap.parse_args()

    if args.self_test:
        sys.exit(run_self_test(args.repo, args.compiler, args.jobs))

    if not args.build:
        ap.error("--build is required (or use --self-test)")
    checks = set(args.checks.split(","))
    findings = run_tree(args.repo, args.build, checks, args.jobs)
    for f in findings:
        print(f)
    if args.report:
        with open(args.report, "w") as out:
            json.dump({"findings": [f.to_json() for f in findings],
                       "checks": sorted(checks)}, out, indent=2)
        print(f"report written to {args.report}")
    print(f"{len(findings)} finding(s)")
    sys.exit(1 if findings else 0)


if __name__ == "__main__":
    main()
