// Video playback with frame-adaptive backlight scaling and flicker
// control — the paper's future-work direction as a runnable scenario.
//
// Usage:
//   video_player [frames] [max_distortion_percent] [num_threads]
//
// Plays a synthetic clip (panning scene, brightness breathing, one hard
// scene cut) through the VideoBacklightController and reports per-frame
// decisions plus total energy saved at 25 fps.
#include <cstdio>
#include <cstdlib>

#include "core/video.h"
#include "image/synthetic.h"
#include "power/lcd_power.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    const int frames = argc > 1 ? std::atoi(argv[1]) : 24;
    const double budget = argc > 2 ? std::atof(argv[2]) : 10.0;
    constexpr double kFrameSeconds = 1.0 / 25.0;

    const auto platform = power::LcdSubsystemPower::lp064v1();
    const auto clip = image::make_video_clip(frames, 96);

    core::VideoOptions opts;
    opts.d_max_percent = budget;
    // process_clip runs on the PipelineEngine: the per-frame searches
    // fan out over this many workers while flicker control stays
    // strictly frame-ordered (decisions are thread-count invariant).
    opts.num_threads = argc > 3 ? std::atoi(argv[3]) : 0;
    core::VideoBacklightController controller(opts, platform);
    const auto decisions = controller.process_clip(clip);

    util::ConsoleTable table({"frame", "raw beta", "applied beta", "cut?",
                              "distortion %", "saving %"});
    double joules_before = 0.0;
    double joules_after = 0.0;
    for (std::size_t f = 0; f < decisions.size(); ++f) {
      const auto& d = decisions[f];
      joules_before +=
          d.evaluation.reference_power.total() * kFrameSeconds;
      joules_after += d.evaluation.power.total() * kFrameSeconds;
      table.add_row({std::to_string(f),
                     util::ConsoleTable::num(d.raw_beta, 3),
                     util::ConsoleTable::num(d.beta, 3),
                     d.scene_cut ? "CUT" : "",
                     util::ConsoleTable::num(
                         d.evaluation.distortion_percent, 1),
                     util::ConsoleTable::num(
                         d.evaluation.saving_percent, 1)});
    }
    std::printf("Adaptive backlight video playback (budget %.1f%%):\n%s",
                budget, table.to_string().c_str());
    std::printf("\nFlicker: worst |d-beta| outside scene cuts = %.3f "
                "(limit %.3f)\n",
                core::VideoBacklightController::max_flicker_step(decisions),
                opts.max_beta_step);
    std::printf("Clip energy: %.2f J -> %.2f J (saved %.1f%%)\n",
                joules_before, joules_after,
                100.0 * (1.0 - joules_after / joules_before));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
