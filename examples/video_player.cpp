// Video playback with frame-adaptive backlight scaling and flicker
// control, driven through the stable facade.
//
// Usage:
//   video_player [frames] [max_distortion_percent] [num_threads]
//
// Plays a synthetic clip (panning scene, brightness breathing, one hard
// scene cut) through Session::process_video — per-frame searches run
// concurrently, flicker control is applied strictly in frame order —
// and reports per-frame decisions plus total energy saved at 25 fps.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hebs/hebs.h"
// In-repo helpers (synthetic clip, console tables) — not stable API.
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    const int frame_count = argc > 1 ? std::atoi(argv[1]) : 24;
    const double budget = argc > 2 ? std::atof(argv[2]) : 10.0;
    const int threads = argc > 3 ? std::atoi(argv[3]) : 0;
    constexpr double kFrameSeconds = 1.0 / 25.0;

    const auto clip = image::make_video_clip(frame_count, 96);
    auto session = Session::create(SessionConfig()
                                       .threads(threads)
                                       .max_beta_step(0.04));
    if (!session) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().to_string().c_str());
      return 1;
    }

    std::vector<ImageView> frames;
    frames.reserve(clip.size());
    for (const auto& frame : clip) {
      frames.push_back(ImageView::gray8(frame.pixels().data(), frame.width(),
                                        frame.height()));
    }
    auto decisions = session->process_video(frames, budget);
    if (!decisions) {
      std::fprintf(stderr, "video: %s\n",
                   decisions.status().to_string().c_str());
      return 1;
    }

    util::ConsoleTable table({"frame", "raw beta", "applied beta", "cut?",
                              "distortion %", "saving %"});
    double joules_before = 0.0;
    double joules_after = 0.0;
    double worst_step = 0.0;
    for (std::size_t f = 0; f < decisions->size(); ++f) {
      const VideoFrameResult& d = (*decisions)[f];
      joules_before += d.frame.reference_power.total_watts() * kFrameSeconds;
      joules_after += d.frame.power.total_watts() * kFrameSeconds;
      if (f > 0 && !d.scene_cut) {
        worst_step = std::max(
            worst_step, std::abs(d.beta - (*decisions)[f - 1].beta));
      }
      table.add_row({std::to_string(f), util::ConsoleTable::num(d.raw_beta, 3),
                     util::ConsoleTable::num(d.beta, 3),
                     d.scene_cut ? "CUT" : "",
                     util::ConsoleTable::num(d.frame.distortion_percent, 1),
                     util::ConsoleTable::num(d.frame.saving_percent, 1)});
    }
    std::printf("Adaptive backlight video playback (budget %.1f%%):\n%s",
                budget, table.to_string().c_str());
    std::printf("\nFlicker: worst |d-beta| outside scene cuts = %.3f "
                "(limit %.3f)\n",
                worst_step, session->config().max_beta_step());
    std::printf("Clip energy: %.2f J -> %.2f J (saved %.1f%%)\n",
                joules_before, joules_after,
                100.0 * (1.0 - joules_after / joules_before));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
