// Color backlight scaling as a first-class session workload.
//
// Usage:
//   color_photo [input.ppm] [max_distortion_percent]
//
// Feeds the session a zero-copy interleaved-RGB8 ImageView with
// color_output requested: the facade extracts BT.601 luma
// (bit-identical to a pre-converted grayscale image), runs HEBS on it,
// renders the decided operating point back onto the RGB raster in both
// color modes — the paper's shared-curve per-channel application (§2)
// and the chroma-preserving luma-ratio mode — and reports luma
// distortion, each mode's hue error and the power saving.  Writes
// before/after PPMs under $TMPDIR.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "hebs/hebs.h"
// In-repo helpers (PPM I/O, synthetic color album) — not stable API.
#include "hebs/advanced/image.h"

namespace {

std::string output_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  if (dir.back() != '/') dir += '/';
  return dir + "hebs_color_";
}

hebs::image::RgbImage to_rgb(const hebs::OwnedRgbImage& img) {
  return hebs::image::RgbImage::from_pixels(img.width(), img.height(),
                                            img.pixels());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    image::RgbImage img;
    std::string name = "Peppers(synthetic,color)";
    if (argc > 1) {
      img = image::read_ppm(argv[1]);
      name = argv[1];
    } else {
      img = image::make_usid_color(image::UsidId::kPeppers, 256);
    }
    const double budget = argc > 2 ? std::atof(argv[2]) : 10.0;

    std::printf("Color backlight scaling (first-class RGB workload)\n");
    std::printf("  image               : %s (%dx%d RGB)\n", name.c_str(),
                img.width(), img.height());
    std::printf("  distortion budget   : %.1f %% (on luma)\n", budget);

    const ImageView view = ImageView::rgb8(img.data().data(), img.width(),
                                           img.height());
    const std::string prefix = output_dir();
    image::write_ppm(img, prefix + "original.ppm");

    for (const char* mode : {"shared-curve", "luma-ratio"}) {
      auto session = Session::create(SessionConfig().color_mode(mode));
      if (!session) {
        std::fprintf(stderr, "session: %s\n",
                     session.status().to_string().c_str());
        return 1;
      }
      FrameRequest request{view, budget};
      request.color_output = true;
      auto result = session->process(request);
      if (!result) {
        std::fprintf(stderr, "process: %s\n",
                     result.status().to_string().c_str());
        return 1;
      }
      std::printf("  --- mode %s ---\n", mode);
      std::printf("  backlight factor    : %.3f\n", result->beta);
      std::printf("  luma distortion     : %.2f %%\n",
                  result->distortion_percent);
      std::printf("  hue error           : %.4f (normalized)\n",
                  result->hue_error);
      std::printf("  power saving        : %.2f %%\n",
                  result->saving_percent);
      const std::string out_path = prefix + mode + ".ppm";
      image::write_ppm(to_rgb(result->displayed_rgb), out_path);
      std::printf("  wrote %s\n", out_path.c_str());
    }
    std::printf("  wrote %soriginal.ppm\n", prefix.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
