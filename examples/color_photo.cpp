// Color backlight scaling through the facade's RGB ingestion path.
//
// Usage:
//   color_photo [input.ppm] [max_distortion_percent]
//
// Feeds the session a zero-copy interleaved-RGB8 ImageView: the facade
// extracts BT.601 luma (bit-identical to a pre-converted grayscale
// image), runs HEBS on it, and returns the luma-domain operating point.
// The example then applies the shared transformation to all three
// sub-pixel channels (§2 of the paper), reports luma distortion,
// chromaticity drift and power saving, and writes before/after PPMs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hebs/hebs.h"
// In-repo helpers (PPM I/O, per-channel color application) — not
// stable API.
#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    image::RgbImage img;
    std::string name = "Peppers(synthetic,color)";
    if (argc > 1) {
      img = image::read_ppm(argv[1]);
      name = argv[1];
    } else {
      img = image::make_usid_color(image::UsidId::kPeppers, 256);
    }
    const double budget = argc > 2 ? std::atof(argv[2]) : 10.0;

    auto session = Session::create(SessionConfig());
    if (!session) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().to_string().c_str());
      return 1;
    }

    // The RGB8 view borrows the image's interleaved bytes; the facade
    // materializes only the luma raster it optimizes on.
    const ImageView view = ImageView::rgb8(img.data().data(), img.width(),
                                           img.height());
    auto result = session->process({view, budget});
    if (!result) {
      std::fprintf(stderr, "process: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }

    // Rebuild the operating point from the result's curve and apply it
    // per channel (one shared monotone curve bounds hue rotation).
    std::vector<transform::CurvePoint> pts;
    pts.reserve(result->lambda.size());
    for (const CurvePoint& p : result->lambda) pts.push_back({p.x, p.y});
    core::OperatingPoint point{transform::PwlCurve(std::move(pts)),
                               result->beta};
    const image::RgbImage displayed = core::apply_to_color(img, point);
    const double hue_error = core::chromaticity_error(img, displayed);

    std::printf("Color backlight scaling (RGB8 ImageView ingestion)\n");
    std::printf("  image               : %s (%dx%d RGB)\n", name.c_str(),
                img.width(), img.height());
    std::printf("  distortion budget   : %.1f %% (on luma)\n", budget);
    std::printf("  backlight factor    : %.3f\n", result->beta);
    std::printf("  luma distortion     : %.2f %%\n",
                result->distortion_percent);
    std::printf("  chromaticity drift  : %.4f (normalized)\n", hue_error);
    std::printf("  power saving        : %.2f %%\n", result->saving_percent);

    image::write_ppm(img, "color_original.ppm");
    image::write_ppm(displayed, "color_displayed.ppm");
    std::printf("  wrote color_original.ppm / color_displayed.ppm\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
