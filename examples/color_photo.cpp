// Color backlight scaling: the §2 color-LCD path on an RGB photograph.
//
// Usage:
//   color_photo [input.ppm] [max_distortion_percent]
//
// Runs HEBS on the photo's luma, applies the shared transformation to
// all three sub-pixel channels, reports luma distortion, chromaticity
// drift and power saving, and writes before/after PPM files.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/color.h"
#include "image/pnm_io.h"
#include "image/synthetic.h"
#include "power/lcd_power.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    image::RgbImage img;
    std::string name = "Peppers(synthetic,color)";
    if (argc > 1) {
      img = image::read_ppm(argv[1]);
      name = argv[1];
    } else {
      img = image::make_usid_color(image::UsidId::kPeppers, 256);
    }
    const double budget = argc > 2 ? std::atof(argv[2]) : 10.0;

    const auto platform = power::LcdSubsystemPower::lp064v1();
    const core::ColorHebsResult result =
        core::color_hebs_exact(img, budget, {}, platform);

    std::printf("Color backlight scaling\n");
    std::printf("  image               : %s (%dx%d RGB)\n", name.c_str(),
                img.width(), img.height());
    std::printf("  distortion budget   : %.1f %% (on luma)\n", budget);
    std::printf("  backlight factor    : %.3f\n", result.luma.point.beta);
    std::printf("  luma distortion     : %.2f %%\n",
                result.distortion_percent);
    std::printf("  chromaticity drift  : %.4f (normalized)\n",
                result.hue_error);
    std::printf("  power saving        : %.2f %%\n", result.saving_percent);

    image::write_ppm(img, "color_original.ppm");
    image::write_ppm(result.transformed, "color_displayed.ppm");
    std::printf("  wrote color_original.ppm / color_displayed.ppm\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
