// Hardware explorer: programs the hierarchical reference-voltage ladder
// (Fig. 5b) from a HEBS result and dumps everything an LCD-driver
// engineer would want to see — node voltages (Eq. 10), the realized
// grayscale-voltage transfer, the effective displayed-luminance
// transform, and the software-vs-hardware deployment comparison.
//
// Usage:
//   hardware_explorer [bands] [dac_bits]
#include <cmath>
#include <cstdio>
#include <cstdlib>

// This tool programs the reference-voltage ladder directly, so it runs
// on the unstable advanced surface rather than the session facade.
#include "hebs/advanced/core.h"
#include "hebs/advanced/display.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    display::HierarchicalLadderOptions ladder_opts;
    ladder_opts.bands = argc > 1 ? std::atoi(argv[1]) : 8;
    ladder_opts.dac_bits = argc > 2 ? std::atoi(argv[2]) : 8;

    const auto platform = power::LcdSubsystemPower::lp064v1();
    const auto img = image::make_usid(image::UsidId::kSplash, 128);
    const auto r = core::hebs_exact(img, 10.0, {}, platform);

    std::printf("HEBS operating point for 'Splash' (budget 10%%):\n");
    std::printf("  range [%d, %d], beta %.3f, %d segments\n\n",
                r.target.g_min, r.target.g_max, r.point.beta,
                r.lambda.segment_count());

    // Program the ladder per Eq. 10 and dump the node voltages.
    display::HierarchicalLadder ladder(ladder_opts);
    ladder.program(r.lambda, r.point.beta);
    std::printf("Programmed node voltages (k = %d, %d-bit DAC, Vdd = "
                "%.1f V):\n",
                ladder_opts.bands, ladder_opts.dac_bits, ladder_opts.vdd);
    util::ConsoleTable nodes({"node i", "pixel pos", "V_i (V)",
                              "lambda(x)/beta * Vdd (ideal V)"});
    for (std::size_t i = 0; i < ladder.node_voltages().size(); ++i) {
      const double x =
          static_cast<double>(i) / static_cast<double>(ladder_opts.bands);
      const double ideal = std::min(
          ladder_opts.vdd, r.lambda(x) / r.point.beta * ladder_opts.vdd);
      nodes.add_row({std::to_string(i), util::ConsoleTable::num(x, 3),
                     util::ConsoleTable::num(ladder.node_voltages()[i], 3),
                     util::ConsoleTable::num(ideal, 3)});
    }
    std::printf("%s\n", nodes.to_string().c_str());

    // Realized transfer at a few levels.
    const auto transfer = ladder.transfer();
    const auto effective = ladder.effective_transform(r.point.beta);
    util::ConsoleTable realized({"level", "v(X) volts", "t(X)",
                                 "displayed lum", "requested lambda"});
    for (int level = 0; level <= 255; level += 32) {
      const double x = level / 255.0;
      realized.add_row({std::to_string(level),
                        util::ConsoleTable::num(transfer.voltage(level), 3),
                        util::ConsoleTable::num(
                            transfer.transmittance(level), 3),
                        util::ConsoleTable::num(effective(x), 3),
                        util::ConsoleTable::num(r.lambda(x), 3)});
    }
    std::printf("Realized grayscale-voltage transfer:\n%s\n",
                realized.to_string().c_str());

    // Deployment comparison: software pixel remap vs hardware ladder.
    display::LcdSubsystem sw(platform, ladder_opts);
    display::LcdSubsystem hw(platform, ladder_opts);
    sw.configure(r.lambda, r.point.beta,
                 display::DeploymentMode::kSoftwareTransform);
    hw.configure(r.lambda, r.point.beta,
                 display::DeploymentMode::kHardwareLadder);
    const auto lum_sw = sw.display(img);
    const auto lum_hw = hw.display(img);
    std::printf("Deployment comparison (software remap vs ladder):\n");
    std::printf("  luminance RMS difference : %.5f\n",
                std::sqrt(quality::mse(lum_sw.luminance, lum_hw.luminance)));
    std::printf("  software path power      : %.3f W\n",
                lum_sw.power.total());
    std::printf("  hardware path power      : %.3f W\n",
                lum_hw.power.total());
    std::printf("\nThe hardware path touches no pixels: the video buffer\n"
                "still holds the original image; only %d reference\n"
                "voltages changed (the paper's minimal-change claim).\n",
                ladder_opts.bands + 1);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
