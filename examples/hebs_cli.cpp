// hebs_cli — command-line driver for the HEBS library.
//
// Subcommands:
//   transform <in.pgm> <out.pgm> [--dmax P | --range R] [--segments M]
//             [--metric NAME]
//       Backlight-scale one image; prints the operating point.
//   characterize <curve.csv> [--size N]
//       Runs the offline characterization on the synthetic album and
//       writes the distortion characteristic curve.
//   apply-curve <in.pgm> <out.pgm> <curve.csv> --dmax P
//       The deployed Fig. 4 flow: curve lookup, no metric at runtime.
//   batch <in1.pgm> [in2.pgm ...] [--dmax P] [--threads N]
//         [--out-prefix PFX]
//       Exact-search HEBS for many images on the PipelineEngine.
//   info <in.pgm>
//       Histogram statistics of an image.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/distortion_curve.h"
#include "core/hebs.h"
#include "histogram/histogram.h"
#include "image/pnm_io.h"
#include "image/synthetic.h"
#include "pipeline/engine.h"
#include "power/lcd_power.h"

namespace {

using namespace hebs;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hebs_cli transform <in.pgm> <out.pgm> [--dmax P | --range R]\n"
      "           [--segments M] [--metric UIQI+HVS|UIQI|SSIM|SSIM+HVS|\n"
      "            RMSE|ContrastFidelity|MS-SSIM]\n"
      "  hebs_cli characterize <curve.csv> [--size N]\n"
      "  hebs_cli apply-curve <in.pgm> <out.pgm> <curve.csv> --dmax P\n"
      "  hebs_cli batch <in1.pgm> [in2.pgm ...] [--dmax P] [--threads N]\n"
      "           [--out-prefix PFX]\n"
      "  hebs_cli info <in.pgm>\n");
  return 2;
}

bool parse_metric(const std::string& name, quality::Metric& out) {
  const quality::Metric all[] = {
      quality::Metric::kUiqiHvs, quality::Metric::kUiqi,
      quality::Metric::kSsim,    quality::Metric::kSsimHvs,
      quality::Metric::kRmse,    quality::Metric::kContrastFidelity,
      quality::Metric::kMsSsim};
  for (quality::Metric m : all) {
    if (name == quality::metric_name(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

void report(const core::HebsResult& r) {
  std::printf("range [%d, %d]  beta %.3f  segments %d\n", r.target.g_min,
              r.target.g_max, r.point.beta, r.lambda.segment_count());
  std::printf("distortion %.2f %%  saving %.2f %%  power %.2f -> %.2f W\n",
              r.evaluation.distortion_percent,
              r.evaluation.saving_percent,
              r.evaluation.reference_power.total(),
              r.evaluation.power.total());
}

int cmd_transform(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  double dmax = 10.0;
  int range = 0;
  core::HebsOptions opts;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--dmax" && i + 1 < argc) {
      dmax = std::atof(argv[++i]);
    } else if (flag == "--range" && i + 1 < argc) {
      range = std::atoi(argv[++i]);
    } else if (flag == "--segments" && i + 1 < argc) {
      opts.segments = std::atoi(argv[++i]);
    } else if (flag == "--metric" && i + 1 < argc) {
      if (!parse_metric(argv[++i], opts.distortion.metric)) {
        std::fprintf(stderr, "unknown metric '%s'\n", argv[i]);
        return 2;
      }
    } else {
      return usage();
    }
  }
  const auto img = image::read_pgm(in_path);
  const auto platform = power::LcdSubsystemPower::lp064v1();
  const core::HebsResult r =
      range > 0 ? core::hebs_at_range(img, range, opts, platform)
                : core::hebs_exact(img, dmax, opts, platform);
  report(r);
  image::write_pgm(r.evaluation.transformed, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int cmd_characterize(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string curve_path = argv[2];
  int size = 96;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      size = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }
  const auto album = image::usid_album(size);
  const auto ranges = core::DistortionCurve::default_ranges();
  const auto curve = core::DistortionCurve::characterize(
      album, ranges, {}, power::LcdSubsystemPower::lp064v1());
  curve.save(curve_path);
  std::printf("characterized %zu images x %zu ranges -> %s\n",
              album.size(), ranges.size(), curve_path.c_str());
  for (double budget : {5.0, 10.0, 20.0}) {
    std::printf("  D_max %.0f%% -> min range %d\n", budget,
                curve.min_range_for(budget));
  }
  return 0;
}

int cmd_apply_curve(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  const std::string curve_path = argv[4];
  double dmax = 10.0;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dmax") == 0 && i + 1 < argc) {
      dmax = std::atof(argv[++i]);
    } else {
      return usage();
    }
  }
  const auto img = image::read_pgm(in_path);
  const auto curve = core::DistortionCurve::load(curve_path);
  const auto platform = power::LcdSubsystemPower::lp064v1();
  const core::HebsResult r =
      core::hebs_with_curve(img, dmax, curve, {}, platform);
  report(r);
  image::write_pgm(r.evaluation.transformed, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto img = image::read_pgm(argv[2]);
  const auto hist = histogram::Histogram::from_image(img);
  std::printf("%s: %dx%d\n", argv[2], img.width(), img.height());
  std::printf("  levels [%d, %d], dynamic range %d\n", hist.min_level(),
              hist.max_level(), hist.dynamic_range());
  std::printf("  mean %.1f  stddev %.1f  entropy %.2f bits\n", hist.mean(),
              std::sqrt(hist.variance()), hist.entropy_bits());
  std::printf("  percentiles: p5=%d p50=%d p95=%d\n",
              hist.percentile_level(0.05), hist.percentile_level(0.50),
              hist.percentile_level(0.95));
  return 0;
}

int cmd_batch(int argc, char** argv) {
  // hebs_cli batch <in1.pgm> [in2.pgm ...] [--dmax P] [--threads N]
  //                [--out-prefix PFX]
  // Exact-search HEBS for every input on the PipelineEngine; one output
  // per input when --out-prefix is given (PFX + basename).
  double dmax = 10.0;
  int threads = 0;
  std::string out_prefix;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--dmax" && i + 1 < argc) {
      dmax = std::atof(argv[++i]);
    } else if (flag == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (flag == "--out-prefix" && i + 1 < argc) {
      out_prefix = argv[++i];
    } else if (!flag.empty() && flag[0] == '-') {
      return usage();
    } else {
      inputs.push_back(flag);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<image::GrayImage> images;
  images.reserve(inputs.size());
  for (const auto& path : inputs) images.push_back(image::read_pgm(path));

  pipeline::EngineOptions opts;
  opts.num_threads = threads;
  pipeline::PipelineEngine engine(opts, power::LcdSubsystemPower::lp064v1());
  std::printf("batch: %zu images, D_max %.1f%%, %d thread(s)\n",
              images.size(), dmax, engine.thread_count());
  const auto results = engine.process_batch(images, dmax);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-28s range [%d, %d]  beta %.3f  distortion %.2f%%  "
                "saving %.2f%%\n",
                inputs[i].c_str(), r.target.g_min, r.target.g_max,
                r.point.beta, r.evaluation.distortion_percent,
                r.evaluation.saving_percent);
    if (!out_prefix.empty()) {
      // Index-prefixed flattened path: unique per input position, so no
      // two inputs (even identical paths) can overwrite each other.
      std::string base = inputs[i];
      for (char& c : base) {
        if (c == '/' || c == '\\') c = '_';
      }
      image::write_pgm(r.evaluation.transformed,
                       out_prefix + std::to_string(i) + "_" + base);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "transform") return cmd_transform(argc, argv);
    if (cmd == "characterize") return cmd_characterize(argc, argv);
    if (cmd == "apply-curve") return cmd_apply_curve(argc, argv);
    if (cmd == "batch") return cmd_batch(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
