// hebs_cli — command-line driver for the HEBS library, on the stable
// session facade.
//
// Subcommands:
//   transform <in.pgm|in.ppm> <out.pgm|out.ppm> [--dmax P | --range R]
//             [--segments M] [--policy NAME] [--metric NAME]
//             [--color-mode shared-curve|luma-ratio]
//             [--bit-depth 8|10|16]
//       Backlight-scale one image; prints the operating point.  A .ppm
//       input runs the color pipeline: the decision is made on BT.601
//       luma, the RGB raster is rendered per --color-mode, and the
//       hue-error of the rendering is reported next to the luma
//       distortion (run both modes to compare their chroma drift).
//       --bit-depth 10|16 reads a deep PGM (maxval up to 65535,
//       big-endian two-byte samples) and decides on the frame's own
//       level lattice; the output PGM keeps the session's maxval.
//   characterize <curve.csv> [--size N]
//       Runs the offline characterization on the synthetic album and
//       writes the distortion characteristic curve.
//   apply-curve <in.pgm> <out.pgm> <curve.csv> --dmax P
//       The deployed Fig. 4 flow: curve lookup, no metric at runtime.
//   batch <in1.pgm> [in2.pgm ...] [--dmax P] [--threads N]
//         [--policy NAME] [--metric NAME] [--out-prefix PFX]
//       One search per image, fanned out over the session's pool.
//   video [static|slow-drift|scene-cut ...] [--frames N] [--size PX]
//         [--dmax P] [--threads N] [--kernel-backend NAME]
//       Runs synthetic clips (the bench_video_temporal archetypes)
//       through the flicker-controlled video path of one session — the
//       observability smoke workload: with --trace/--stats the run
//       produces a trace whose per-frame reuse levels and a counter
//       dump whose hit rates exhibit the documented temporal contract
//       (a static clip of N frames reuses N-1 byte-identical frames).
//   info <in.pgm>
//       Histogram statistics of an image.
//   list-policies  (also: --list-policies anywhere)
//       Prints the policy and metric registries.
//   list-backends  (also: --list-backends anywhere)
//       Prints the compiled-in SIMD kernel backends (active one marked).
//
// Global flags (any subcommand, stripped before dispatch):
//   --trace <path>   Record per-stage spans and write a Chrome/Perfetto
//                    trace JSON to <path> when the session ends.  An
//                    unwritable path is a typed kIoError at session
//                    creation, not a silent drop.
//   --stats          After the subcommand, dump the observability
//                    counter registry as Prometheus-style "name value"
//                    text (what hebs_served serves).
//
// transform/batch also take --kernel-backend NAME to force a SIMD
// backend (outputs are bit-identical across backends; only speed
// changes).  Unknown --policy/--metric/--kernel-backend names print the
// registry contents and exit nonzero.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "hebs/hebs.h"
// In-repo helpers (PGM I/O, synthetic album, histogram stats, the
// counter registry dump) for the characterize/info/--stats paths — not
// part of the stable API.
#include "hebs/advanced/core.h"
#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/obs.h"

namespace {

using namespace hebs;

/// Global observability flags, stripped from argv before subcommand
/// dispatch (see main).
bool g_stats = false;
std::string g_trace_path;
std::string g_fault_spec;
long g_deadline_us = 0;

/// Routes --trace/--fault/--deadline-us into the config of whichever
/// session a subcommand is about to create.
void apply_globals(SessionConfig& config) {
  if (!g_trace_path.empty()) config.trace_path(g_trace_path);
  if (!g_fault_spec.empty()) config.fault_spec(g_fault_spec);
  if (g_deadline_us > 0) config.frame_deadline_us(g_deadline_us);
}

/// Exit code for a run that completed but emitted degraded frames
/// (identity fallbacks) — distinct from usage errors (2) and fatal
/// errors (1) so scripts can tell "worked, degraded" from "failed".
constexpr int kDegradedExit = 3;

/// Reports one degraded frame's typed status on stderr
/// ("frame 3 degraded [deadline-exceeded]: ...") and returns
/// kDegradedExit for the caller to fold into its exit code.
int report_degraded(std::size_t index, const FrameResult& r) {
  std::fprintf(stderr, "frame %zu degraded [%s]: %s\n", index,
               status_code_name(r.status.code()),
               r.status.message().c_str());
  return kDegradedExit;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hebs_cli transform <in.pgm|in.ppm> <out.pgm|out.ppm>\n"
      "           [--dmax P | --range R] [--segments M] [--policy NAME]\n"
      "           [--metric NAME] [--kernel-backend NAME]\n"
      "           [--color-mode shared-curve|luma-ratio]  (.ppm inputs)\n"
      "           [--bit-depth 8|10|16]  (deep PGM in/out)\n"
      "  hebs_cli characterize <curve.csv> [--size N]\n"
      "  hebs_cli apply-curve <in.pgm> <out.pgm> <curve.csv> --dmax P\n"
      "  hebs_cli batch <in1.pgm> [in2.pgm ...] [--dmax P] [--threads N]\n"
      "           [--policy NAME] [--metric NAME] [--out-prefix PFX]\n"
      "           [--kernel-backend NAME]\n"
      "  hebs_cli video [static|slow-drift|scene-cut ...] [--frames N]\n"
      "           [--size PX] [--dmax P] [--threads N]\n"
      "           [--kernel-backend NAME]\n"
      "  hebs_cli info <in.pgm>\n"
      "  hebs_cli list-policies\n"
      "  hebs_cli list-backends\n"
      "global flags (any subcommand):\n"
      "  --trace <path>   write a Chrome/Perfetto trace JSON of the run\n"
      "  --stats          dump the observability counters on exit\n"
      "  --fault <spec>   arm deterministic fault injection\n"
      "                   (\"point[:key=val,...];...\", e.g.\n"
      "                   worker-task:first=2 — see SessionConfig::\n"
      "                   fault_spec); degraded frames are reported with\n"
      "                   their typed status and exit code 3\n"
      "  --deadline-us <n> soft per-frame deadline; a frame past it\n"
      "                   degrades to the identity fallback (exit code 3)\n");
  return 2;
}

void print_registries(std::FILE* out) {
  std::fprintf(out, "policies:\n");
  for (const RegistryEntry& e : PolicyRegistry::entries()) {
    std::fprintf(out, "  %-14s %s\n", e.name.c_str(), e.description.c_str());
  }
  std::fprintf(out, "metrics:\n");
  for (const RegistryEntry& e : MetricRegistry::entries()) {
    std::fprintf(out, "  %-18s %s\n", e.name.c_str(),
                 e.description.c_str());
  }
}

void print_backends(std::FILE* out) {
  const std::string active = KernelRegistry::active();
  std::fprintf(out, "kernel backends:\n");
  for (const RegistryEntry& e : KernelRegistry::entries()) {
    std::fprintf(out, "%s %-8s %s\n", e.name == active ? "* " : "  ",
                 e.name.c_str(), e.description.c_str());
  }
}

/// Surfaces a facade error; unknown registry names additionally dump
/// the registries so the fix is one copy/paste away.
int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  if (status.code() == StatusCode::kUnknownPolicy ||
      status.code() == StatusCode::kUnknownMetric) {
    print_registries(stderr);
  }
  if (status.code() == StatusCode::kUnknownBackend) {
    print_backends(stderr);
  }
  return 2;
}

ImageView view_of(const image::GrayImage& img) {
  return ImageView::gray8(img.pixels().data(), img.width(), img.height());
}

image::GrayImage to_gray(const OwnedImage& img) {
  return image::GrayImage::from_pixels(img.width(), img.height(),
                                       img.pixels());
}

image::RgbImage to_rgb(const OwnedRgbImage& img) {
  return image::RgbImage::from_pixels(img.width(), img.height(),
                                      img.pixels());
}

void report(const FrameResult& r) {
  std::printf("range [%d, %d]  beta %.3f  segments %zu\n", r.g_min, r.g_max,
              r.beta, r.lambda.empty() ? 0 : r.lambda.size() - 1);
  std::printf("distortion %.2f %%  saving %.2f %%  power %.2f -> %.2f W\n",
              r.distortion_percent, r.saving_percent,
              r.reference_power.total_watts(), r.power.total_watts());
}

int cmd_transform(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  double dmax = 10.0;
  int range = 0;
  int bit_depth = 8;
  SessionConfig config;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--dmax" && i + 1 < argc) {
      dmax = std::atof(argv[++i]);
    } else if (flag == "--range" && i + 1 < argc) {
      range = std::atoi(argv[++i]);
    } else if (flag == "--segments" && i + 1 < argc) {
      config.segments(std::atoi(argv[++i]));
    } else if (flag == "--policy" && i + 1 < argc) {
      config.policy(argv[++i]);
    } else if (flag == "--metric" && i + 1 < argc) {
      config.metric(argv[++i]);
    } else if (flag == "--kernel-backend" && i + 1 < argc) {
      config.kernel_backend(argv[++i]);
    } else if (flag == "--color-mode" && i + 1 < argc) {
      config.color_mode(argv[++i]);
    } else if (flag == "--bit-depth" && i + 1 < argc) {
      bit_depth = std::atoi(argv[++i]);
      config.bit_depth(bit_depth);
    } else {
      return usage();
    }
  }
  apply_globals(config);
  auto session = Session::create(config);
  if (!session) return fail(session.status());

  if (bit_depth != 8) {
    if (in_path.ends_with(".ppm")) {
      std::fprintf(stderr, "error: --bit-depth applies to .pgm inputs only\n");
      return 2;
    }
    // Deep workload: raw samples on the session's level lattice end to
    // end — read, decide, write, all without rescaling.
    const int levels = 1 << bit_depth;
    const auto file = image::read_pgm16(in_path);
    if (file.levels() > levels) {
      std::fprintf(stderr, "error: %s has maxval %d, above --bit-depth %d\n",
                   in_path.c_str(), file.max_pixel(), bit_depth);
      return 2;
    }
    const auto img = image::GrayImage16::from_pixels(
        file.width(), file.height(), levels, file.pixels());
    auto result = session->process(
        {ImageView::gray16(img.pixels().data(), img.width(), img.height()),
         dmax, range});
    if (!result) return fail(result.status());
    report(*result);
    image::write_pgm16(
        image::GrayImage16::from_pixels(
            result->displayed16.width(), result->displayed16.height(),
            result->displayed16.levels(), result->displayed16.pixels()),
        out_path);
    std::printf("wrote %s (maxval %d)\n", out_path.c_str(), levels - 1);
    if (result->degraded) return report_degraded(0, *result);
    return 0;
  }

  if (in_path.ends_with(".ppm")) {
    // Color workload: decision on luma, RGB rendering per --color-mode.
    const auto img = image::read_ppm(in_path);
    FrameRequest request{
        ImageView::rgb8(img.data().data(), img.width(), img.height()), dmax,
        range};
    request.color_output = true;
    auto result = session->process(request);
    if (!result) return fail(result.status());
    report(*result);
    std::printf("hue error %.4f  (color mode %s)\n", result->hue_error,
                session->config().color_mode().c_str());
    image::write_ppm(to_rgb(result->displayed_rgb), out_path);
    std::printf("wrote %s\n", out_path.c_str());
    if (result->degraded) return report_degraded(0, *result);
    return 0;
  }

  const auto img = image::read_pgm(in_path);
  auto result = session->process({view_of(img), dmax, range});
  if (!result) return fail(result.status());
  report(*result);
  image::write_pgm(to_gray(result->displayed), out_path);
  std::printf("wrote %s\n", out_path.c_str());
  // The single-frame path fails the call rather than degrading, but a
  // session-wide fault spec can still mark batch-shaped internals; keep
  // the exit-code contract uniform anyway.
  if (result->degraded) return report_degraded(0, *result);
  return 0;
}

int cmd_characterize(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string curve_path = argv[2];
  int size = 96;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      size = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }
  const auto album = image::usid_album(size);
  const auto ranges = core::DistortionCurve::default_ranges();
  const auto curve = core::DistortionCurve::characterize(
      album, ranges, {}, power::LcdSubsystemPower::lp064v1());
  curve.save(curve_path);
  std::printf("characterized %zu images x %zu ranges -> %s\n",
              album.size(), ranges.size(), curve_path.c_str());
  for (double budget : {5.0, 10.0, 20.0}) {
    std::printf("  D_max %.0f%% -> min range %d\n", budget,
                curve.min_range_for(budget));
  }
  return 0;
}

int cmd_apply_curve(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  const std::string curve_path = argv[4];
  double dmax = 10.0;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dmax") == 0 && i + 1 < argc) {
      dmax = std::atof(argv[++i]);
    } else {
      return usage();
    }
  }
  const auto img = image::read_pgm(in_path);
  SessionConfig config;
  config.policy("hebs-curve").curve_path(curve_path);
  apply_globals(config);
  auto session = Session::create(config);
  if (!session) return fail(session.status());
  auto result = session->process({view_of(img), dmax});
  if (!result) return fail(result.status());
  report(*result);
  image::write_pgm(to_gray(result->displayed), out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto img = image::read_pgm(argv[2]);
  const auto hist = histogram::Histogram::from_image(img);
  std::printf("%s: %dx%d\n", argv[2], img.width(), img.height());
  std::printf("  levels [%d, %d], dynamic range %d\n", hist.min_level(),
              hist.max_level(), hist.dynamic_range());
  std::printf("  mean %.1f  stddev %.1f  entropy %.2f bits\n", hist.mean(),
              std::sqrt(hist.variance()), hist.entropy_bits());
  std::printf("  percentiles: p5=%d p50=%d p95=%d\n",
              hist.percentile_level(0.05), hist.percentile_level(0.50),
              hist.percentile_level(0.95));
  return 0;
}

int cmd_batch(int argc, char** argv) {
  // One search per input on the session's pool; one output per input
  // when --out-prefix is given (PFX + basename).
  double dmax = 10.0;
  std::string out_prefix;
  SessionConfig config;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--dmax" && i + 1 < argc) {
      dmax = std::atof(argv[++i]);
    } else if (flag == "--threads" && i + 1 < argc) {
      config.threads(std::atoi(argv[++i]));
    } else if (flag == "--policy" && i + 1 < argc) {
      config.policy(argv[++i]);
    } else if (flag == "--metric" && i + 1 < argc) {
      config.metric(argv[++i]);
    } else if (flag == "--out-prefix" && i + 1 < argc) {
      out_prefix = argv[++i];
    } else if (flag == "--kernel-backend" && i + 1 < argc) {
      config.kernel_backend(argv[++i]);
    } else if (!flag.empty() && flag[0] == '-') {
      return usage();
    } else {
      inputs.push_back(flag);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<image::GrayImage> images;
  images.reserve(inputs.size());
  for (const auto& path : inputs) images.push_back(image::read_pgm(path));
  std::vector<ImageView> frames;
  frames.reserve(images.size());
  for (const auto& img : images) frames.push_back(view_of(img));

  apply_globals(config);
  auto session = Session::create(config);
  if (!session) return fail(session.status());
  std::printf("batch: %zu images, D_max %.1f%%, policy %s, %d thread(s)\n",
              frames.size(), dmax, session->config().policy().c_str(),
              session->thread_count());
  auto results = session->process_batch(frames, dmax);
  if (!results) return fail(results.status());
  int rc = 0;
  for (std::size_t i = 0; i < results->size(); ++i) {
    const FrameResult& r = (*results)[i];
    std::printf("%-28s range [%d, %d]  beta %.3f  distortion %.2f%%  "
                "saving %.2f%%%s\n",
                inputs[i].c_str(), r.g_min, r.g_max, r.beta,
                r.distortion_percent, r.saving_percent,
                r.degraded ? "  [degraded]" : "");
    if (r.degraded) rc = report_degraded(i, r);
    if (!out_prefix.empty()) {
      // Index-prefixed flattened path: unique per input position, so no
      // two inputs (even identical paths) can overwrite each other.
      std::string base = inputs[i];
      for (char& c : base) {
        if (c == '/' || c == '\\') c = '_';
      }
      image::write_pgm(to_gray(r.displayed),
                       out_prefix + std::to_string(i) + "_" + base);
    }
  }
  return rc;
}

/// The synthetic video archetypes of bench_video_temporal, reproduced
/// for the observability smoke workload: one clip per coherence regime
/// (fully static, <2% pixel churn with slow operating-point drift,
/// hard scene cuts).
std::vector<image::GrayImage> make_clip(const std::string& name, int frames,
                                        int size) {
  const auto n = static_cast<std::size_t>(frames);
  if (name == "static") {
    return std::vector<image::GrayImage>(
        n, image::make_usid(image::UsidId::kPout, size));
  }
  if (name == "slow-drift") {
    const image::GrayImage base =
        image::make_usid(image::UsidId::kSail, size);
    std::vector<image::GrayImage> clip;
    clip.reserve(n);
    int dim = 0;
    for (int f = 0; f < frames; ++f) {
      if (f > 0 && f % 6 == 0) ++dim;
      image::GrayImage frame = base;
      if (dim > 0) {
        for (auto& px : frame.pixels()) {
          px = static_cast<std::uint8_t>(px > dim ? px - dim : 0);
        }
      }
      constexpr int kSprite = 6;
      const int x0 = f % (size - kSprite);
      for (int y = size / 4; y < size / 4 + kSprite; ++y) {
        for (int x = x0; x < x0 + kSprite; ++x) frame(x, y) = 230;
      }
      clip.push_back(std::move(frame));
    }
    return clip;
  }
  if (name == "scene-cut") {
    std::vector<image::GrayImage> cuts;
    const image::UsidId scenes[] = {image::UsidId::kPout,
                                    image::UsidId::kBaboon,
                                    image::UsidId::kSplash,
                                    image::UsidId::kWest};
    int produced = 0;
    for (int block = 0; produced < frames; ++block) {
      const image::GrayImage scene = image::make_usid(scenes[block % 4], size);
      for (int i = 0; i < 6 && produced < frames; ++i, ++produced) {
        cuts.push_back(scene);
      }
    }
    return cuts;
  }
  return {};
}

int cmd_video(int argc, char** argv) {
  int frames = 48;
  int size = 96;
  double dmax = 10.0;
  SessionConfig config;
  std::vector<std::string> clip_names;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--frames" && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (flag == "--size" && i + 1 < argc) {
      size = std::atoi(argv[++i]);
    } else if (flag == "--dmax" && i + 1 < argc) {
      dmax = std::atof(argv[++i]);
    } else if (flag == "--threads" && i + 1 < argc) {
      config.threads(std::atoi(argv[++i]));
    } else if (flag == "--kernel-backend" && i + 1 < argc) {
      config.kernel_backend(argv[++i]);
    } else if (!flag.empty() && flag[0] == '-') {
      return usage();
    } else {
      clip_names.push_back(flag);
    }
  }
  if (clip_names.empty()) clip_names = {"static", "slow-drift", "scene-cut"};
  if (frames < 1 || size < 32) {
    std::fprintf(stderr, "error: need --frames >= 1 and --size >= 32\n");
    return 2;
  }

  apply_globals(config);
  auto session = Session::create(config);
  if (!session) return fail(session.status());
  std::printf("video: %d frames at %dx%d per clip, D_max %.1f%%, "
              "%d thread(s)\n",
              frames, size, size, dmax, session->thread_count());
  int rc = 0;

  for (const std::string& name : clip_names) {
    const auto clip = make_clip(name, frames, size);
    if (clip.empty()) {
      std::fprintf(stderr,
                   "error: unknown clip \"%s\" (static, slow-drift, "
                   "scene-cut)\n",
                   name.c_str());
      return 2;
    }
    std::vector<ImageView> views;
    views.reserve(clip.size());
    for (const auto& frame : clip) views.push_back(view_of(frame));
    auto results = session->process_video(views, dmax);
    if (!results) return fail(results.status());

    int cuts = 0;
    int degraded = 0;
    double beta_sum = 0.0;
    double saving_sum = 0.0;
    for (std::size_t i = 0; i < results->size(); ++i) {
      const VideoFrameResult& r = (*results)[i];
      if (r.scene_cut) ++cuts;
      if (r.frame.degraded) {
        ++degraded;
        rc = report_degraded(i, r.frame);
      }
      beta_sum += r.beta;
      saving_sum += r.frame.saving_percent;
    }
    const auto count = static_cast<double>(results->size());
    std::printf("  %-10s %zu frames  %d scene cut(s)  %d degraded  "
                "mean beta %.3f  mean saving %.2f%%\n",
                name.c_str(), results->size(), cuts, degraded,
                beta_sum / count, saving_sum / count);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Strip the global observability flags first, so every subcommand
    // sees a clean argv and --trace/--stats work uniformly.
    std::vector<char*> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
      if (std::strcmp(argv[i], "--stats") == 0) {
        g_stats = true;
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        if (i + 1 >= argc) return usage();
        g_trace_path = argv[++i];
      } else if (std::strcmp(argv[i], "--fault") == 0) {
        if (i + 1 >= argc) return usage();
        g_fault_spec = argv[++i];
      } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
        if (i + 1 >= argc) return usage();
        g_deadline_us = std::atol(argv[++i]);
      } else {
        args.push_back(argv[i]);
      }
    }
    argc = static_cast<int>(args.size());
    argv = args.data();

    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--list-policies") == 0) {
        print_registries(stdout);
        return 0;
      }
      if (std::strcmp(argv[i], "--list-backends") == 0) {
        print_backends(stdout);
        return 0;
      }
    }
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    int rc = 2;
    if (cmd == "transform") {
      rc = cmd_transform(argc, argv);
    } else if (cmd == "characterize") {
      rc = cmd_characterize(argc, argv);
    } else if (cmd == "apply-curve") {
      rc = cmd_apply_curve(argc, argv);
    } else if (cmd == "batch") {
      rc = cmd_batch(argc, argv);
    } else if (cmd == "video") {
      rc = cmd_video(argc, argv);
    } else if (cmd == "info") {
      rc = cmd_info(argc, argv);
    } else if (cmd == "list-policies") {
      print_registries(stdout);
      rc = 0;
    } else if (cmd == "list-backends") {
      print_backends(stdout);
      rc = 0;
    } else {
      return usage();
    }
    // The session (and with it the trace file) is gone by now: the
    // stats dump and the trace note describe a finished run.  A
    // degraded run (exit 3) still completed, so its counters — the
    // machine-readable record of what degraded and which fault points
    // fired — are dumped too.
    const bool completed = rc == 0 || rc == kDegradedExit;
    if (completed && g_stats) {
      std::fputs(obs::counters_text(obs::snapshot_counters()).c_str(),
                 stdout);
    }
    if (completed && !g_trace_path.empty()) {
      std::fprintf(stderr, "trace written to %s\n", g_trace_path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
