// Quickstart: backlight-scale one image through the stable facade.
//
// Usage:
//   quickstart [input.pgm] [max_distortion_percent]
//
// Without arguments a synthetic benchmark image is used.  The program
// opens a hebs::Session, feeds it one zero-copy ImageView, reports the
// operating point, writes before/after PGM files, and finishes with a
// multi-threaded batch over three frames.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "hebs/hebs.h"
// In-repo helpers (synthetic benchmark images, PGM I/O) — not part of
// the stable API.
#include "hebs/advanced/image.h"

int main(int argc, char** argv) {
  try {
    // 1. Load (or synthesize) the image to display.
    hebs::image::GrayImage img;
    std::string name = "Lena(synthetic)";
    if (argc > 1) {
      img = hebs::image::read_pgm(argv[1]);
      name = argv[1];
    } else {
      img = hebs::image::make_usid(hebs::image::UsidId::kLena, 256);
    }
    const double budget = argc > 2 ? std::atof(argv[2]) : 10.0;

    // 2. Open a session: the policy searches the deepest backlight
    //    dimming whose measured distortion stays within the budget.
    auto session = hebs::Session::create(hebs::SessionConfig()
                                             .policy("hebs-exact")
                                             .metric("uiqi-hvs"));
    if (!session) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().to_string().c_str());
      return 1;
    }

    // 3. Process one frame.  The view borrows the caller's pixels; no
    //    copy happens at the API boundary.
    const hebs::ImageView view = hebs::ImageView::gray8(
        img.pixels().data(), img.width(), img.height());
    auto result = session->process({view, budget});
    if (!result) {
      std::fprintf(stderr, "process: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }

    // 4. Report.
    std::printf("HEBS quickstart\n");
    std::printf("  image               : %s (%dx%d)\n", name.c_str(),
                img.width(), img.height());
    std::printf("  distortion budget   : %.1f %%\n", budget);
    std::printf("  chosen dynamic range: [%d, %d]\n", result->g_min,
                result->g_max);
    std::printf("  backlight factor    : %.3f\n", result->beta);
    std::printf("  PWL segments        : %zu (PLC mse %.2e)\n",
                result->lambda.empty() ? 0 : result->lambda.size() - 1,
                result->plc_mse);
    std::printf("  measured distortion : %.2f %%\n",
                result->distortion_percent);
    std::printf("  power before        : %.2f W (CCFL %.2f + panel %.2f)\n",
                result->reference_power.total_watts(),
                result->reference_power.ccfl_watts,
                result->reference_power.panel_watts);
    std::printf("  power after         : %.2f W (CCFL %.2f + panel %.2f)\n",
                result->power.total_watts(), result->power.ccfl_watts,
                result->power.panel_watts);
    std::printf("  power saving        : %.2f %%\n", result->saving_percent);

    // 5. Persist before/after for visual inspection, under the system
    //    temp directory so example runs never litter the source tree.
    const std::filesystem::path out_dir =
        std::filesystem::temp_directory_path() / "hebs_quickstart";
    std::filesystem::create_directories(out_dir);
    const std::string original_path =
        (out_dir / "quickstart_original.pgm").string();
    const std::string displayed_path =
        (out_dir / "quickstart_displayed.pgm").string();
    hebs::image::write_pgm(img, original_path);
    const hebs::OwnedImage& displayed = result->displayed;
    hebs::image::write_pgm(
        hebs::image::GrayImage::from_pixels(displayed.width(),
                                            displayed.height(),
                                            displayed.pixels()),
        displayed_path);
    std::printf("  wrote %s\n  wrote %s\n", original_path.c_str(),
                displayed_path.c_str());

    // 6. Batch mode: the same search over many frames fans out over the
    //    session's thread pool (results are index-aligned and identical
    //    to the serial calls above, whatever the thread count).
    const auto peppers =
        hebs::image::make_usid(hebs::image::UsidId::kPeppers, 128);
    const auto baboon =
        hebs::image::make_usid(hebs::image::UsidId::kBaboon, 128);
    const std::vector<hebs::ImageView> frames = {
        view,
        hebs::ImageView::gray8(peppers.pixels().data(), peppers.width(),
                               peppers.height()),
        hebs::ImageView::gray8(baboon.pixels().data(), baboon.width(),
                               baboon.height())};
    auto batch = session->process_batch(frames, budget);
    if (!batch) {
      std::fprintf(stderr, "batch: %s\n", batch.status().to_string().c_str());
      return 1;
    }
    std::printf("\nSession batch (%d threads):\n", session->thread_count());
    for (std::size_t i = 0; i < batch->size(); ++i) {
      std::printf("  frame %zu: beta %.3f, distortion %.2f %%, "
                  "saving %.2f %%\n",
                  i, (*batch)[i].beta, (*batch)[i].distortion_percent,
                  (*batch)[i].saving_percent);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
