// Quickstart: backlight-scale one image with HEBS.
//
// Usage:
//   quickstart [input.pgm] [max_distortion_percent]
//
// Without arguments a synthetic benchmark image is used.  The program
// runs the full HEBS pipeline at the given distortion budget, reports
// the operating point, and writes before/after PGM files.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/hebs.h"
#include "image/pnm_io.h"
#include "image/synthetic.h"
#include "pipeline/engine.h"
#include "power/lcd_power.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    // 1. Load (or synthesize) the image to display.
    image::GrayImage img;
    std::string name = "Lena(synthetic)";
    if (argc > 1) {
      img = image::read_pgm(argv[1]);
      name = argv[1];
    } else {
      img = image::make_usid(image::UsidId::kLena, 256);
    }
    const double budget = argc > 2 ? std::atof(argv[2]) : 10.0;

    // 2. Run HEBS: find the deepest backlight dimming whose measured
    //    distortion stays within the budget.
    const auto platform = power::LcdSubsystemPower::lp064v1();
    const core::HebsResult result =
        core::hebs_exact(img, budget, {}, platform);

    // 3. Report.
    std::printf("HEBS quickstart\n");
    std::printf("  image               : %s (%dx%d)\n", name.c_str(),
                img.width(), img.height());
    std::printf("  distortion budget   : %.1f %%\n", budget);
    std::printf("  chosen dynamic range: [%d, %d]\n", result.target.g_min,
                result.target.g_max);
    std::printf("  backlight factor    : %.3f\n", result.point.beta);
    std::printf("  PWL segments        : %d (PLC mse %.2e)\n",
                result.lambda.segment_count(), result.plc_mse);
    std::printf("  measured distortion : %.2f %%\n",
                result.evaluation.distortion_percent);
    std::printf("  power before        : %.2f W (CCFL %.2f + panel %.2f)\n",
                result.evaluation.reference_power.total(),
                result.evaluation.reference_power.ccfl_watts,
                result.evaluation.reference_power.panel_watts);
    std::printf("  power after         : %.2f W (CCFL %.2f + panel %.2f)\n",
                result.evaluation.power.total(),
                result.evaluation.power.ccfl_watts,
                result.evaluation.power.panel_watts);
    std::printf("  power saving        : %.2f %%\n",
                result.evaluation.saving_percent);

    // 4. Persist before/after for visual inspection.
    image::write_pgm(img, "quickstart_original.pgm");
    image::write_pgm(result.evaluation.transformed,
                     "quickstart_displayed.pgm");
    std::printf("  wrote quickstart_original.pgm / "
                "quickstart_displayed.pgm\n");

    // 5. Batch mode: the same search over many frames via the pipeline
    //    engine (results are index-aligned and identical to the serial
    //    calls above, whatever the thread count).
    const std::vector<image::GrayImage> frames = {
        img, image::make_usid(image::UsidId::kPeppers, 128),
        image::make_usid(image::UsidId::kBaboon, 128)};
    pipeline::PipelineEngine engine;  // default: hardware concurrency
    const auto batch = engine.process_batch(frames, budget);
    std::printf("\nPipelineEngine batch (%d threads):\n",
                engine.thread_count());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::printf("  frame %zu: beta %.3f, distortion %.2f %%, "
                  "saving %.2f %%\n",
                  i, batch[i].point.beta,
                  batch[i].evaluation.distortion_percent,
                  batch[i].evaluation.saving_percent);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
