// Photo-album batch processing: the workload the paper's introduction
// motivates — a handheld device displaying a set of photographs, each
// backlight-scaled to a per-image optimal operating point.
//
// Usage:
//   photo_album [max_distortion_percent] [num_threads]
//
// Processes the full 19-image synthetic USID album through the
// PipelineEngine's batch mode (one exact HEBS search per photo, fanned
// out over the worker pool), prints a per-image table (like the paper's
// Table 1 but including the operating point), and totals the
// battery-energy saving for a slideshow where each photo stays on
// screen for five seconds.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/hebs.h"
#include "image/synthetic.h"
#include "pipeline/engine.h"
#include "power/lcd_power.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    const double budget = argc > 1 ? std::atof(argv[1]) : 10.0;
    const int threads = argc > 2 ? std::atoi(argv[2]) : 0;
    const auto platform = power::LcdSubsystemPower::lp064v1();
    const auto album = image::usid_album(128);
    constexpr double kSecondsPerPhoto = 5.0;

    // Batch-process the whole album on the engine; results come back in
    // album order regardless of how the pool schedules the photos.
    std::vector<image::GrayImage> images;
    images.reserve(album.size());
    for (const auto& photo : album) images.push_back(photo.image);
    pipeline::EngineOptions engine_opts;
    engine_opts.num_threads = threads;
    pipeline::PipelineEngine engine(engine_opts, platform);
    std::printf("Processing %zu photos on %d worker thread(s)...\n",
                images.size(), engine.thread_count());
    const auto results = engine.process_batch(images, budget);

    util::ConsoleTable table({"Photo", "range", "beta", "distortion %",
                              "saving %", "W before", "W after"});
    double joules_before = 0.0;
    double joules_after = 0.0;
    for (std::size_t i = 0; i < album.size(); ++i) {
      const auto& photo = album[i];
      const auto& r = results[i];
      joules_before +=
          r.evaluation.reference_power.total() * kSecondsPerPhoto;
      joules_after += r.evaluation.power.total() * kSecondsPerPhoto;
      table.add_row({photo.name, std::to_string(r.target.range()),
                     util::ConsoleTable::num(r.point.beta, 3),
                     util::ConsoleTable::num(
                         r.evaluation.distortion_percent, 1),
                     util::ConsoleTable::num(r.evaluation.saving_percent),
                     util::ConsoleTable::num(
                         r.evaluation.reference_power.total()),
                     util::ConsoleTable::num(r.evaluation.power.total())});
    }
    std::printf("Photo album, distortion budget %.1f%%:\n%s", budget,
                table.to_string().c_str());
    std::printf("\nSlideshow energy (%.0f s per photo):\n",
                kSecondsPerPhoto);
    std::printf("  without HEBS : %.1f J\n", joules_before);
    std::printf("  with HEBS    : %.1f J\n", joules_after);
    std::printf("  saved        : %.1f J (%.1f %%)\n",
                joules_before - joules_after,
                100.0 * (1.0 - joules_after / joules_before));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
