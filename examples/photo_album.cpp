// Photo-album batch processing: the workload the paper's introduction
// motivates — a handheld device displaying a set of photographs, each
// backlight-scaled to a per-image optimal operating point.
//
// Usage:
//   photo_album [max_distortion_percent] [num_threads]
//
// Processes the full 19-image synthetic USID album through a
// hebs::Session's batch mode (one exact HEBS search per photo, fanned
// out over the worker pool), prints a per-image table (like the paper's
// Table 1 but including the operating point), and totals the
// battery-energy saving for a slideshow where each photo stays on
// screen for five seconds.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hebs/hebs.h"
// In-repo helpers (synthetic album, console tables) — not stable API.
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

int main(int argc, char** argv) {
  using namespace hebs;
  try {
    const double budget = argc > 1 ? std::atof(argv[1]) : 10.0;
    const int threads = argc > 2 ? std::atoi(argv[2]) : 0;
    const auto album = image::usid_album(128);
    constexpr double kSecondsPerPhoto = 5.0;

    auto session = Session::create(SessionConfig().threads(threads));
    if (!session) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().to_string().c_str());
      return 1;
    }

    // Batch-process the whole album; results come back in album order
    // regardless of how the pool schedules the photos.
    std::vector<ImageView> frames;
    frames.reserve(album.size());
    for (const auto& photo : album) {
      frames.push_back(ImageView::gray8(photo.image.pixels().data(),
                                        photo.image.width(),
                                        photo.image.height()));
    }
    std::printf("Processing %zu photos on %d worker thread(s)...\n",
                frames.size(), session->thread_count());
    auto results = session->process_batch(frames, budget);
    if (!results) {
      std::fprintf(stderr, "batch: %s\n",
                   results.status().to_string().c_str());
      return 1;
    }

    util::ConsoleTable table({"Photo", "range", "beta", "distortion %",
                              "saving %", "W before", "W after"});
    double joules_before = 0.0;
    double joules_after = 0.0;
    for (std::size_t i = 0; i < album.size(); ++i) {
      const auto& photo = album[i];
      const FrameResult& r = (*results)[i];
      joules_before += r.reference_power.total_watts() * kSecondsPerPhoto;
      joules_after += r.power.total_watts() * kSecondsPerPhoto;
      table.add_row({photo.name, std::to_string(r.g_max - r.g_min),
                     util::ConsoleTable::num(r.beta, 3),
                     util::ConsoleTable::num(r.distortion_percent, 1),
                     util::ConsoleTable::num(r.saving_percent),
                     util::ConsoleTable::num(r.reference_power.total_watts()),
                     util::ConsoleTable::num(r.power.total_watts())});
    }
    std::printf("Photo album, distortion budget %.1f%%:\n%s", budget,
                table.to_string().c_str());
    std::printf("\nSlideshow energy (%.0f s per photo):\n",
                kSecondsPerPhoto);
    std::printf("  without HEBS : %.1f J\n", joules_before);
    std::printf("  with HEBS    : %.1f J\n", joules_after);
    std::printf("  saved        : %.1f J (%.1f %%)\n",
                joules_before - joules_after,
                100.0 * (1.0 - joules_after / joules_before));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
