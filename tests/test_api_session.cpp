// Bit-identity of the facade against the PR 1 internal entry points:
// the Session must reproduce hebs_exact / hebs_with_curve / DLS / CBCS
// outputs exactly — same beta, same curves, same measured numbers, same
// displayed raster — through batch and video as well.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hebs/advanced/baseline.h"
#include "hebs/advanced/core.h"
#include "hebs/hebs.h"
#include "image/synthetic.h"

namespace {

using hebs::ImageView;
using hebs::Session;
using hebs::SessionConfig;
using hebs::image::GrayImage;
using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

std::vector<GrayImage> seed_images(int size) {
  std::vector<GrayImage> images;
  for (UsidId id : {UsidId::kLena, UsidId::kPeppers, UsidId::kPout}) {
    images.push_back(hebs::image::make_usid(id, size));
  }
  return images;
}

ImageView view_of(const GrayImage& img) {
  return ImageView::gray8(img.pixels().data(), img.width(), img.height());
}

hebs::Session make_session(SessionConfig config = {}) {
  auto session = Session::create(std::move(config));
  EXPECT_TRUE(session.has_value()) << session.status().to_string();
  return std::move(session).value();
}

/// The raster in a FrameResult must be byte-identical to an internal
/// GrayImage.
void expect_same_raster(const hebs::OwnedImage& got, const GrayImage& want) {
  ASSERT_EQ(got.width(), want.width());
  ASSERT_EQ(got.height(), want.height());
  const auto span = want.pixels();
  EXPECT_TRUE(std::equal(got.pixels().begin(), got.pixels().end(),
                         span.begin(), span.end()));
}

void expect_matches_hebs(const hebs::FrameResult& got,
                         const hebs::core::HebsResult& want) {
  EXPECT_EQ(got.beta, want.point.beta);
  EXPECT_EQ(got.g_min, want.target.g_min);
  EXPECT_EQ(got.g_max, want.target.g_max);
  EXPECT_EQ(got.plc_mse, want.plc_mse);
  EXPECT_EQ(got.distortion_percent, want.evaluation.distortion_percent);
  EXPECT_EQ(got.saving_percent, want.evaluation.saving_percent);
  EXPECT_EQ(got.power.ccfl_watts, want.evaluation.power.ccfl_watts);
  EXPECT_EQ(got.power.panel_watts, want.evaluation.power.panel_watts);
  ASSERT_EQ(got.lambda.size(), want.lambda.points().size());
  for (std::size_t i = 0; i < got.lambda.size(); ++i) {
    EXPECT_EQ(got.lambda[i].x, want.lambda.points()[i].x);
    EXPECT_EQ(got.lambda[i].y, want.lambda.points()[i].y);
  }
  ASSERT_EQ(got.phi.size(), want.phi.points().size());
  expect_same_raster(got.displayed, want.evaluation.transformed);
}

TEST(SessionBitIdentity, HebsExactMatchesDirectCall) {
  auto session = make_session();
  for (const GrayImage& img : seed_images(48)) {
    auto result = session.process({view_of(img), 10.0});
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    expect_matches_hebs(*result,
                        hebs::core::hebs_exact(img, 10.0, {}, model()));
  }
}

TEST(SessionBitIdentity, FixedRangeMatchesHebsAtRange) {
  auto session = make_session();
  const auto img = hebs::image::make_usid(UsidId::kSplash, 48);
  auto result = session.process({view_of(img), 10.0, 120});
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  expect_matches_hebs(*result,
                      hebs::core::hebs_at_range(img, 120, {}, model()));
}

TEST(SessionBitIdentity, HebsCurveMatchesDirectCall) {
  // Characterize once at a small size, persist, and hand the session
  // the same curve through its config — both paths then run the
  // deployed Fig. 4 flow on identical inputs.
  const auto album = hebs::image::usid_album(32);
  const auto curve = hebs::core::DistortionCurve::characterize(
      album, hebs::core::DistortionCurve::default_ranges(), {}, model());
  const std::string path = ::testing::TempDir() + "hebs_api_curve.csv";
  curve.save(path);

  auto session =
      make_session(SessionConfig().policy("hebs-curve").curve_path(path));
  for (const GrayImage& img : seed_images(48)) {
    auto result = session.process({view_of(img), 10.0});
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    expect_matches_hebs(
        *result, hebs::core::hebs_with_curve(img, 10.0, curve, {}, model()));
  }
}

void expect_matches_point(const hebs::FrameResult& got,
                          const hebs::core::EvaluatedPoint& want) {
  EXPECT_EQ(got.beta, want.point.beta);
  EXPECT_EQ(got.distortion_percent, want.distortion_percent);
  EXPECT_EQ(got.saving_percent, want.saving_percent);
  ASSERT_EQ(got.lambda.size(), want.point.luminance_transform.points().size());
  for (std::size_t i = 0; i < got.lambda.size(); ++i) {
    EXPECT_EQ(got.lambda[i].x, want.point.luminance_transform.points()[i].x);
    EXPECT_EQ(got.lambda[i].y, want.point.luminance_transform.points()[i].y);
  }
  expect_same_raster(got.displayed, want.transformed);
}

TEST(SessionBitIdentity, DlsMatchesPolicy) {
  auto session = make_session(SessionConfig().policy("dls"));
  const auto img = hebs::image::make_usid(UsidId::kGirl, 48);
  auto result = session.process({view_of(img), 10.0});
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  const auto point =
      hebs::baseline::DlsPolicy(
          hebs::baseline::DlsMode::kBrightnessCompensation, {}, model())
          .choose(img, 10.0);
  expect_matches_point(*result, hebs::core::evaluate_operating_point(
                                    img, point, model(), {}));
}

TEST(SessionBitIdentity, CbcsMatchesPolicy) {
  auto session = make_session(SessionConfig().policy("cbcs"));
  const auto img = hebs::image::make_usid(UsidId::kSail, 48);
  auto result = session.process({view_of(img), 10.0});
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  const auto point =
      hebs::baseline::CbcsPolicy({}, {}, model()).choose(img, 10.0);
  expect_matches_point(*result, hebs::core::evaluate_operating_point(
                                    img, point, model(), {}));
}

TEST(SessionBitIdentity, PercentMappedAliasesUiqiHvs) {
  const auto img = hebs::image::make_usid(UsidId::kBaboon, 48);
  auto a = make_session(SessionConfig().metric("uiqi-hvs"))
               .process({view_of(img), 10.0});
  auto b = make_session(SessionConfig().metric("percent-mapped"))
               .process({view_of(img), 10.0});
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->beta, b->beta);
  EXPECT_EQ(a->distortion_percent, b->distortion_percent);
  EXPECT_EQ(a->displayed, b->displayed);
}

TEST(SessionBitIdentity, BatchMatchesSerialProcess) {
  auto session = make_session(SessionConfig().threads(2));
  const auto images = seed_images(48);
  std::vector<ImageView> frames;
  for (const auto& img : images) frames.push_back(view_of(img));
  auto batch = session.process_batch(frames, 10.0);
  ASSERT_TRUE(batch.has_value()) << batch.status().to_string();
  ASSERT_EQ(batch->size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    expect_matches_hebs((*batch)[i],
                        hebs::core::hebs_exact(images[i], 10.0, {}, model()));
  }
}

TEST(SessionBitIdentity, BaselineBatchMatchesSerialProcess) {
  auto session = make_session(SessionConfig().policy("dls"));
  const auto images = seed_images(40);
  std::vector<ImageView> frames;
  for (const auto& img : images) frames.push_back(view_of(img));
  auto batch = session.process_batch(frames, 10.0);
  ASSERT_TRUE(batch.has_value()) << batch.status().to_string();
  for (std::size_t i = 0; i < images.size(); ++i) {
    auto single = session.process({frames[i], 10.0});
    ASSERT_TRUE(single.has_value());
    EXPECT_EQ((*batch)[i].beta, single->beta);
    EXPECT_EQ((*batch)[i].displayed, single->displayed);
  }
}

TEST(SessionBitIdentity, VideoMatchesSerialController) {
  const auto clip = hebs::image::make_video_clip(8, 48);
  std::vector<ImageView> frames;
  for (const auto& frame : clip) frames.push_back(view_of(frame));

  auto session = make_session(SessionConfig().threads(2));
  auto video = session.process_video(frames, 10.0);
  ASSERT_TRUE(video.has_value()) << video.status().to_string();
  ASSERT_EQ(video->size(), clip.size());

  hebs::core::VideoOptions vopts;
  vopts.d_max_percent = 10.0;
  hebs::core::VideoBacklightController controller(vopts, model());
  for (std::size_t i = 0; i < clip.size(); ++i) {
    const auto want = controller.process(clip[i]);
    const hebs::VideoFrameResult& got = (*video)[i];
    EXPECT_EQ(got.raw_beta, want.raw_beta) << "frame " << i;
    EXPECT_EQ(got.beta, want.beta) << "frame " << i;
    EXPECT_EQ(got.scene_cut, want.scene_cut) << "frame " << i;
    EXPECT_EQ(got.frame.distortion_percent,
              want.evaluation.distortion_percent)
        << "frame " << i;
    expect_same_raster(got.frame.displayed, want.evaluation.transformed);
  }
}

}  // namespace
