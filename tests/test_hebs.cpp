// Tests for the full HEBS pipeline (Fig. 4) and its policy wrapper.
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "image/synthetic.h"
#include "util/error.h"

namespace hebs::core {
namespace {

using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

TEST(Backlight, BetaForGmaxIsNormalizedLevel) {
  EXPECT_NEAR(beta_for_gmax(255), 1.0, 1e-12);
  EXPECT_NEAR(beta_for_gmax(128), 128.0 / 255.0, 1e-12);
  EXPECT_NEAR(beta_for_gmax(10, 0.2), 0.2, 1e-12);  // floor applies
  EXPECT_THROW((void)beta_for_gmax(0), hebs::util::InvalidArgument);
  EXPECT_THROW((void)beta_for_gmax(256), hebs::util::InvalidArgument);
}

TEST(Backlight, GmaxForBetaInverts) {
  for (int level : {1, 64, 128, 200, 255}) {
    EXPECT_LE(gmax_for_beta(beta_for_gmax(level)), level);
    EXPECT_GE(gmax_for_beta(beta_for_gmax(level)), level - 1);
  }
}

TEST(HebsAtRange, TransformedImageSpansTheTarget) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  const HebsResult r = hebs_at_range(img, 150, {}, model());
  EXPECT_EQ(r.target.g_min, 0);
  EXPECT_EQ(r.target.g_max, 150);
  EXPECT_LE(r.evaluation.transformed.min_max().max, 151);
}

TEST(HebsAtRange, BetaMatchesGmax) {
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 64);
  const HebsResult r = hebs_at_range(img, 120, {}, model());
  EXPECT_NEAR(r.point.beta, 120.0 / 255.0, 1e-9);
}

TEST(HebsAtRange, LambdaRespectsSegmentBudget) {
  const auto img = hebs::image::make_usid(UsidId::kBaboon, 64);
  HebsOptions opts;
  opts.segments = 6;
  const HebsResult r = hebs_at_range(img, 180, opts, model());
  EXPECT_LE(r.lambda.segment_count(), 6);
  EXPECT_GE(r.phi.segment_count(), 100);  // exact curve is per-level
}

TEST(HebsAtRange, LambdaIsMonotone) {
  const auto img = hebs::image::make_usid(UsidId::kTestpat, 64);
  const HebsResult r = hebs_at_range(img, 100, {}, model());
  EXPECT_TRUE(r.lambda.is_monotonic());
  EXPECT_TRUE(r.phi.is_monotonic());
}

/// Property sweep: wider admissible range => (weakly) less distortion
/// and (weakly) less saving, across several images.
class HebsRangeTradeoff : public ::testing::TestWithParam<UsidId> {};

TEST_P(HebsRangeTradeoff, DistortionFallsAndSavingFallsWithRange) {
  const auto img = hebs::image::make_usid(GetParam(), 64);
  double prev_distortion = 1e9;
  double prev_saving = 1e9;
  for (int range : {60, 120, 180, 240}) {
    const HebsResult r = hebs_at_range(img, range, {}, model());
    EXPECT_LE(r.evaluation.distortion_percent, prev_distortion + 1.0)
        << "range " << range;  // 1% slack for metric noise
    EXPECT_LE(r.evaluation.saving_percent, prev_saving + 1e-9);
    prev_distortion = r.evaluation.distortion_percent;
    prev_saving = r.evaluation.saving_percent;
  }
}

INSTANTIATE_TEST_SUITE_P(Images, HebsRangeTradeoff,
                         ::testing::Values(UsidId::kLena, UsidId::kPout,
                                           UsidId::kBaboon,
                                           UsidId::kSplash));

TEST(HebsAtRange, FullRangeIsNearlyDistortionFree) {
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  const HebsResult r = hebs_at_range(img, 255, {}, model());
  // Equalization at full range still remaps levels, but the displayed
  // image remains close to the original.
  EXPECT_LT(r.evaluation.distortion_percent, 6.0);
}

TEST(HebsExact, LandsAtOrUnderTheBudget) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  for (double budget : {5.0, 10.0, 20.0}) {
    const HebsResult r = hebs_exact(img, budget, {}, model());
    EXPECT_LE(r.evaluation.distortion_percent, budget + 1e-9)
        << "budget " << budget;
  }
}

TEST(HebsExact, TightBudgetUsesSmallestRangeFeasible) {
  // One range step tighter must violate the budget (bisection
  // optimality), unless the range floor was hit.
  const auto img = hebs::image::make_usid(UsidId::kElaine, 64);
  HebsOptions opts;
  const double budget = 10.0;
  const HebsResult r = hebs_exact(img, budget, opts, model());
  const int range = r.target.range();
  if (range > opts.min_range) {
    const HebsResult tighter =
        hebs_at_range(img, range - 1, opts, model());
    EXPECT_GT(tighter.evaluation.distortion_percent, budget);
  }
}

TEST(HebsExact, LargerBudgetNeverSavesLess) {
  const auto img = hebs::image::make_usid(UsidId::kOnion, 64);
  const double s5 = hebs_exact(img, 5.0, {}, model())
                        .evaluation.saving_percent;
  const double s20 = hebs_exact(img, 20.0, {}, model())
                         .evaluation.saving_percent;
  EXPECT_GE(s20 + 1e-9, s5);
}

TEST(HebsExact, SavingsAreInThePaperBallpark) {
  // Shape-level reproduction: at 10% distortion the paper reports ~58%
  // average saving; individual synthetic images should land between 25%
  // and 75%.
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  const HebsResult r = hebs_exact(img, 10.0, {}, model());
  EXPECT_GT(r.evaluation.saving_percent, 25.0);
  EXPECT_LT(r.evaluation.saving_percent, 75.0);
}

TEST(HebsWithCurve, HonorsTheBudgetThroughTheWorstCaseFit) {
  // Characterize on a small album, then run the deployed flow on a
  // member image: measured distortion must respect the budget within the
  // curve's fitting slack.
  const std::vector<hebs::image::NamedImage> album = {
      {"Lena", hebs::image::make_usid(UsidId::kLena, 64)},
      {"Pout", hebs::image::make_usid(UsidId::kPout, 64)},
      {"Baboon", hebs::image::make_usid(UsidId::kBaboon, 64)},
      {"Splash", hebs::image::make_usid(UsidId::kSplash, 64)},
  };
  const auto ranges = DistortionCurve::default_ranges();
  const auto curve =
      DistortionCurve::characterize(album, ranges, {}, model());
  const HebsResult r =
      hebs_with_curve(album[0].image, 15.0, curve, {}, model());
  EXPECT_LE(r.evaluation.distortion_percent, 15.0 + 3.0);
  EXPECT_GT(r.evaluation.saving_percent, 0.0);
}

TEST(HebsPolicy, ImplementsTheDbsInterface) {
  const HebsPolicy policy;
  EXPECT_EQ(policy.name(), "HEBS");
  const auto img = hebs::image::make_usid(UsidId::kSail, 64);
  const OperatingPoint point = policy.choose(img, 10.0);
  const auto eval = evaluate_operating_point(img, point, model());
  EXPECT_LE(eval.distortion_percent, 10.0 + 1e-9);
  EXPECT_GT(eval.saving_percent, 0.0);
}

TEST(Hebs, ValidatesArguments) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 32);
  EXPECT_THROW((void)hebs_at_range(img, 0, {}, model()),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)hebs_at_range(img, 300, {}, model()),
               hebs::util::InvalidArgument);
  HebsOptions bad;
  bad.segments = 0;
  EXPECT_THROW((void)hebs_at_range(img, 100, bad, model()),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)hebs_exact(img, -1.0, {}, model()),
               hebs::util::InvalidArgument);
  hebs::image::GrayImage empty;
  EXPECT_THROW((void)hebs_at_range(empty, 100, {}, model()),
               hebs::util::InvalidArgument);
}

TEST(Hebs, ConstantImageIsHandledGracefully) {
  const hebs::image::GrayImage img(32, 32, 180);
  const HebsResult r = hebs_at_range(img, 100, {}, model());
  EXPECT_TRUE(r.lambda.is_monotonic());
  EXPECT_GT(r.evaluation.saving_percent, 0.0);
}

}  // namespace
}  // namespace hebs::core
