// Tests for LUTs, piecewise-linear curves, and the classic pixel
// transformation functions of Figure 2.
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/transform.h"
#include "transform/lut.h"
#include "transform/pwl.h"
#include "hebs/advanced/util.h"

namespace hebs::transform {
namespace {

TEST(Lut, DefaultIsIdentity) {
  const Lut lut;
  for (int i = 0; i < Lut::kSize; ++i) {
    EXPECT_EQ(lut[i], i);
  }
  EXPECT_TRUE(lut.is_monotonic());
  EXPECT_EQ(lut.min_output(), 0);
  EXPECT_EQ(lut.max_output(), 255);
  EXPECT_EQ(lut.output_range(), 255);
}

TEST(Lut, ApplyRemapsEveryPixel) {
  hebs::image::GrayImage img(2, 1);
  img(0, 0) = 10;
  img(1, 0) = 20;
  Lut lut;
  lut[10] = 99;
  lut[20] = 1;
  const auto out = lut.apply(img);
  EXPECT_EQ(out(0, 0), 99);
  EXPECT_EQ(out(1, 0), 1);
}

TEST(Lut, ThenComposesLeftToRight) {
  Lut doubler;
  for (int i = 0; i < Lut::kSize; ++i) {
    doubler[i] = static_cast<std::uint8_t>(std::min(255, i * 2));
  }
  Lut plus_one;
  for (int i = 0; i < Lut::kSize; ++i) {
    plus_one[i] = static_cast<std::uint8_t>(std::min(255, i + 1));
  }
  const Lut composed = doubler.then(plus_one);
  EXPECT_EQ(composed[10], 21);  // (10*2)+1
}

TEST(Lut, MonotonicityDetection) {
  Lut lut;
  EXPECT_TRUE(lut.is_monotonic());
  lut[100] = 0;
  EXPECT_FALSE(lut.is_monotonic());
}

TEST(Pwl, EvaluatesByInterpolation) {
  const PwlCurve c({{0.0, 0.0}, {0.5, 1.0}, {1.0, 0.5}});
  EXPECT_DOUBLE_EQ(c(0.25), 0.5);
  EXPECT_DOUBLE_EQ(c(0.5), 1.0);
  EXPECT_DOUBLE_EQ(c(0.75), 0.75);
}

TEST(Pwl, ClampsOutsideDomain) {
  const PwlCurve c({{0.2, 0.3}, {0.8, 0.9}});
  EXPECT_DOUBLE_EQ(c(0.0), 0.3);
  EXPECT_DOUBLE_EQ(c(1.0), 0.9);
}

TEST(Pwl, RejectsNonIncreasingX) {
  EXPECT_THROW(PwlCurve({{0.0, 0.0}, {0.0, 1.0}}),
               hebs::util::InvalidArgument);
  EXPECT_THROW(PwlCurve({{0.5, 0.0}, {0.2, 1.0}}),
               hebs::util::InvalidArgument);
  EXPECT_THROW(PwlCurve({{0.5, 0.0}}), hebs::util::InvalidArgument);
}

TEST(Pwl, MonotonicityChecksYValues) {
  EXPECT_TRUE(PwlCurve({{0.0, 0.0}, {1.0, 1.0}}).is_monotonic());
  EXPECT_TRUE(PwlCurve({{0.0, 0.5}, {1.0, 0.5}}).is_monotonic());
  EXPECT_FALSE(PwlCurve({{0.0, 1.0}, {1.0, 0.0}}).is_monotonic());
}

TEST(Pwl, MinMaxY) {
  const PwlCurve c({{0.0, 0.3}, {0.5, 0.9}, {1.0, 0.1}});
  EXPECT_DOUBLE_EQ(c.min_y(), 0.1);
  EXPECT_DOUBLE_EQ(c.max_y(), 0.9);
}

TEST(Pwl, SegmentCount) {
  EXPECT_EQ(PwlCurve({{0.0, 0.0}, {1.0, 1.0}}).segment_count(), 1);
  EXPECT_EQ(PwlCurve({{0.0, 0.0}, {0.5, 0.2}, {1.0, 1.0}}).segment_count(),
            2);
}

TEST(Pwl, IdentityToLutIsIdentity) {
  EXPECT_EQ(PwlCurve::identity().to_lut(), Lut());
}

TEST(Pwl, LutRoundTripPreservesTable) {
  // Quantize an arbitrary monotone curve, reconstruct, re-quantize: the
  // tables must agree exactly.
  const PwlCurve c({{0.0, 0.1}, {0.3, 0.2}, {0.7, 0.8}, {1.0, 0.95}});
  const Lut lut = c.to_lut();
  const Lut lut2 = PwlCurve::from_lut(lut).to_lut();
  EXPECT_EQ(lut, lut2);
}

TEST(Pwl, MseBetweenIdenticalCurvesIsZero) {
  const PwlCurve c({{0.0, 0.0}, {0.4, 0.6}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(PwlCurve::mse_between(c, c), 0.0);
}

TEST(Pwl, MseBetweenConstantOffsetCurves) {
  const PwlCurve a({{0.0, 0.0}, {1.0, 0.0}});
  const PwlCurve b({{0.0, 0.1}, {1.0, 0.1}});
  EXPECT_NEAR(PwlCurve::mse_between(a, b), 0.01, 1e-12);
}

TEST(Classic, IdentityCurveIsIdentity) {
  const PwlCurve c = identity_curve();
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    EXPECT_NEAR(c(x), x, 1e-12);
  }
}

TEST(Classic, BrightnessShiftMatchesEq2a) {
  // Φ(x, β) = min(1, x + 1 - β) with β = 0.7.
  const PwlCurve c = brightness_shift_curve(0.7);
  EXPECT_NEAR(c(0.0), 0.3, 1e-12);
  EXPECT_NEAR(c(0.4), 0.7, 1e-12);
  EXPECT_NEAR(c(0.7), 1.0, 1e-12);
  EXPECT_NEAR(c(0.9), 1.0, 1e-12);  // saturated
  EXPECT_TRUE(c.is_monotonic());
}

TEST(Classic, BrightnessShiftAtFullBacklightIsIdentity) {
  const PwlCurve c = brightness_shift_curve(1.0);
  EXPECT_NEAR(c(0.35), 0.35, 1e-12);
}

TEST(Classic, ContrastStretchMatchesEq2b) {
  // Φ(x, β) = min(1, x/β) with β = 0.5.
  const PwlCurve c = contrast_stretch_curve(0.5);
  EXPECT_NEAR(c(0.0), 0.0, 1e-12);
  EXPECT_NEAR(c(0.25), 0.5, 1e-12);
  EXPECT_NEAR(c(0.5), 1.0, 1e-12);
  EXPECT_NEAR(c(0.8), 1.0, 1e-12);  // saturated
}

TEST(Classic, SingleBandMatchesEq3) {
  // 0 below g_l = 0.2, affine to 1 at g_u = 0.8, 1 above.
  const PwlCurve c = single_band_curve(0.2, 0.8);
  EXPECT_NEAR(c(0.1), 0.0, 1e-12);
  EXPECT_NEAR(c(0.2), 0.0, 1e-12);
  EXPECT_NEAR(c(0.5), 0.5, 1e-12);
  EXPECT_NEAR(c(0.8), 1.0, 1e-12);
  EXPECT_NEAR(c(0.9), 1.0, 1e-12);
}

TEST(Classic, SingleBandFullRangeIsIdentity) {
  const PwlCurve c = single_band_curve(0.0, 1.0);
  for (double x = 0.0; x <= 1.0; x += 0.25) {
    EXPECT_NEAR(c(x), x, 1e-12);
  }
}

TEST(Classic, ValidatesParameters) {
  EXPECT_THROW(brightness_shift_curve(0.0), hebs::util::InvalidArgument);
  EXPECT_THROW(brightness_shift_curve(1.5), hebs::util::InvalidArgument);
  EXPECT_THROW(contrast_stretch_curve(-0.1), hebs::util::InvalidArgument);
  EXPECT_THROW(single_band_curve(0.5, 0.5), hebs::util::InvalidArgument);
  EXPECT_THROW(single_band_curve(-0.1, 0.5), hebs::util::InvalidArgument);
  EXPECT_THROW(single_band_curve(0.2, 1.2), hebs::util::InvalidArgument);
}

/// Property sweep: every classic curve is monotone for any β.
class ClassicMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ClassicMonotone, AllClassicCurvesAreMonotone) {
  const double beta = GetParam();
  EXPECT_TRUE(brightness_shift_curve(beta).is_monotonic());
  EXPECT_TRUE(contrast_stretch_curve(beta).is_monotonic());
  if (beta < 1.0) {
    EXPECT_TRUE(single_band_curve(0.0, beta).is_monotonic());
    EXPECT_TRUE(single_band_curve(1.0 - beta, 1.0).is_monotonic());
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, ClassicMonotone,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8, 0.95,
                                           1.0));

}  // namespace
}  // namespace hebs::transform
