// Backend-parity tests for the SIMD kernel subsystem.
//
// The subsystem's contract (src/kernels/kernels.h) is that every
// registered backend produces output bit-identical to the scalar
// reference: integer kernels exactly, float kernels because they issue
// the same IEEE operations per element in the same order (or are
// pinned to the scalar accumulation order outright).  The fuzz test
// exercises every kernel over ~100 random shapes — odd widths, tail
// lanes shorter than any vector width, flat/clustered/random content —
// and asserts bit-identity, plus a boundary sweep for the BT.601
// rounding identity and a strided-RGB ingestion parity check.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "hebs/advanced/api.h"
#include "hebs/hebs.h"
#include "hebs/advanced/kernels.h"

namespace hebs::kernels {
namespace {

/// Restores the process-global backend when a test switches it.
class BackendGuard {
 public:
  BackendGuard() : saved_(active().name) {}
  ~BackendGuard() { set_backend(saved_); }

 private:
  std::string saved_;
};

std::vector<const KernelSet*> supported_backends() {
  std::vector<const KernelSet*> out;
  for (const BackendInfo& info : backends()) {
    if (info.supported) out.push_back(info.set);
  }
  return out;
}

TEST(KernelRegistry, ScalarAlwaysCompiledAndSupported) {
  ASSERT_FALSE(backends().empty());
  EXPECT_STREQ(backends().front().set->name, "scalar");
  EXPECT_TRUE(backends().front().supported);
  EXPECT_EQ(find_backend("scalar"), &scalar_kernels());
  EXPECT_EQ(find_backend("no-such-backend"), nullptr);
}

TEST(KernelRegistry, PublicRegistryMirrorsBackends) {
  const auto names = hebs::KernelRegistry::names();
  ASSERT_EQ(names.size(), backends().size());
  for (const auto& name : names) {
    EXPECT_TRUE(hebs::KernelRegistry::contains(name));
    EXPECT_NE(find_backend(name), nullptr);
  }
  EXPECT_FALSE(hebs::KernelRegistry::contains("no-such-backend"));
  // The active backend is always one of the registered names.
  EXPECT_NE(find_backend(hebs::KernelRegistry::active()), nullptr);
}

TEST(KernelRegistry, SetBackendRejectsUnknown) {
  const BackendGuard guard;
  EXPECT_EQ(set_backend("no-such-backend"),
            SetBackendResult::kUnknownBackend);
  EXPECT_EQ(set_backend("scalar"), SetBackendResult::kOk);
  EXPECT_EQ(hebs::KernelRegistry::active(), "scalar");
}

TEST(KernelRegistry, SessionConfigSelectsBackend) {
  const BackendGuard guard;
  auto bad = hebs::Session::create(
      hebs::SessionConfig().kernel_backend("no-such-backend"));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), hebs::StatusCode::kUnknownBackend);

  auto good =
      hebs::Session::create(hebs::SessionConfig().kernel_backend("scalar"));
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(hebs::KernelRegistry::active(), "scalar");

  // A create that fails after backend validation (here: curve load)
  // must leave the process-global selection untouched.  Request a
  // supported backend other than the active one when this machine has
  // one, so an erroneous switch would be observable.
  const std::string before = hebs::KernelRegistry::active();
  std::string requested = "scalar";
  for (const KernelSet* set : supported_backends()) {
    if (set->name != before) requested = set->name;
  }
  auto failed = hebs::Session::create(
      hebs::SessionConfig()
          .policy("hebs-curve")
          .kernel_backend(requested)
          .curve_path("/nonexistent/curve.csv"));
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.status().code(), hebs::StatusCode::kIoError);
  EXPECT_EQ(hebs::KernelRegistry::active(), before);
}

// ------------------------------------------------------------- fuzz

struct FuzzCase {
  int w = 0;
  int h = 0;
  std::vector<std::uint8_t> bytes;   // w*h
  std::vector<std::uint8_t> rgb;     // 3*w*h
  std::vector<double> fa;            // w*h
  std::vector<double> fb;            // w*h
};

/// Random sizes biased toward vector-width edge cases (tails shorter
/// than 2/4/16/32 lanes, odd widths) and content mixing flat runs,
/// few-value clusters and full-range noise.
FuzzCase make_case(std::mt19937& rng) {
  static const int interesting_w[] = {1,  2,  3,  4,  5,  7,  8,  15, 16,
                                      17, 31, 32, 33, 63, 64, 65, 97};
  FuzzCase c;
  if (rng() % 2 == 0) {
    c.w = interesting_w[rng() % (sizeof(interesting_w) / sizeof(int))];
  } else {
    c.w = 1 + static_cast<int>(rng() % 200);
  }
  c.h = 1 + static_cast<int>(rng() % 12);
  const std::size_t n = static_cast<std::size_t>(c.w) * c.h;
  c.bytes.resize(n);
  c.rgb.resize(3 * n);
  c.fa.resize(n);
  c.fb.resize(n);
  const int mode = static_cast<int>(rng() % 4);
  const std::uint8_t flat = static_cast<std::uint8_t>(rng() & 0xFF);
  const std::uint8_t lo = static_cast<std::uint8_t>(rng() & 0x7F);
  for (std::size_t i = 0; i < n; ++i) {
    switch (mode) {
      case 0: c.bytes[i] = flat; break;                               // runs
      case 1: c.bytes[i] = static_cast<std::uint8_t>(lo + (rng() % 3)); break;
      case 2: c.bytes[i] = static_cast<std::uint8_t>((i * 7) & 0xFF); break;
      default: c.bytes[i] = static_cast<std::uint8_t>(rng() & 0xFF); break;
    }
    c.fa[i] = static_cast<double>(rng()) / 4294967295.0;
    c.fb[i] = static_cast<double>(rng()) / 4294967295.0 - 0.5;
  }
  for (std::size_t i = 0; i < 3 * n; ++i) {
    c.rgb[i] = static_cast<std::uint8_t>(rng() & 0xFF);
  }
  return c;
}

template <typename T>
void expect_bytes_eq(const std::vector<T>& got, const std::vector<T>& want,
                     const char* kernel, const KernelSet& set, int w, int h) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(T)), 0)
      << kernel << " diverges from scalar on backend " << set.name << " ("
      << w << "x" << h << ")";
}

TEST(KernelParity, FuzzAllBackendsBitIdenticalToScalar) {
  const auto sets = supported_backends();
  ASSERT_FALSE(sets.empty());
  const KernelSet& ref = scalar_kernels();
  std::mt19937 rng(20260726);

  std::uint8_t lut8[256];
  double lut64[256];
  for (int i = 0; i < 256; ++i) {
    lut8[i] = static_cast<std::uint8_t>((i * 191 + 13) & 0xFF);
    lut64[i] = static_cast<double>(i) / 255.0 * 0.9 + 1e-3;
  }

  for (int iter = 0; iter < 100; ++iter) {
    const FuzzCase c = make_case(rng);
    const std::size_t n = c.bytes.size();
    const int radius = 1 + static_cast<int>(rng() % 4);
    std::vector<double> taps(static_cast<std::size_t>(2 * radius) + 1);
    double norm = 0.0;
    for (auto& t : taps) {
      t = 0.05 + static_cast<double>(rng() % 1000) / 1000.0;
      norm += t;
    }
    for (auto& t : taps) t /= norm;

    // Scalar reference outputs.
    std::vector<std::uint64_t> counts_ref(256, 7);  // accumulate contract
    ref.histogram_u8(c.bytes.data(), n, counts_ref.data());
    std::vector<std::uint8_t> lut_ref(n);
    ref.lut_apply_u8(c.bytes.data(), n, lut8, lut_ref.data());
    std::vector<std::uint8_t> lut_rgb_ref(3 * n);
    ref.lut_apply_rgb8(c.rgb.data(), n, lut8, lut_rgb_ref.data());
    std::vector<std::uint8_t> luma_ref(n);
    ref.luma_bt601_rgb8(c.rgb.data(), n, luma_ref.data());
    const std::uint64_t sum_ref = ref.sum_u8(c.bytes.data(), n);
    std::vector<double> lutf_ref(n);
    ref.lut_apply_f64(c.bytes.data(), n, lut64, lutf_ref.data());
    std::vector<double> mul_ref(n);
    ref.mul_f64(c.fa.data(), c.fb.data(), n ? mul_ref.data() : nullptr, n);
    std::vector<double> saxpy_ref = c.fb;
    ref.saxpy_f64(0.75, c.fa.data(), saxpy_ref.data(), n);
    const double sumf_ref = ref.sum_f64(c.fa.data(), n);
    std::vector<double> prefix_ref(n);
    ref.prefix_row_f64(c.fa.data(), c.fb.data(), prefix_ref.data(), n);
    std::vector<double> ws_s_ref(n);
    std::vector<double> ws_ss_ref(n);
    ref.window_sums_single_f64(c.fa.data(), n, c.fb.data(), c.fb.data(),
                               ws_s_ref.data(), ws_ss_ref.data());
    std::vector<double> wp_b_ref(n);
    std::vector<double> wp_bb_ref(n);
    std::vector<double> wp_ab_ref(n);
    ref.window_sums_pair_f64(c.fa.data(), c.fb.data(), n, c.fa.data(),
                             c.fa.data(), c.fa.data(), wp_b_ref.data(),
                             wp_bb_ref.data(), wp_ab_ref.data());
    std::vector<double> brow_ref(n);
    std::vector<double> bcol_ref(n);
    for (int y = 0; y < c.h; ++y) {
      ref.blur_row_f64(c.fa.data() + static_cast<std::size_t>(y) * c.w,
                       brow_ref.data() + static_cast<std::size_t>(y) * c.w,
                       c.w, taps.data(), radius);
      ref.blur_col_f64(c.fa.data(), c.w, c.h, y, taps.data(), radius,
                       bcol_ref.data() + static_cast<std::size_t>(y) * c.w);
    }

    for (const KernelSet* set : sets) {
      std::vector<std::uint64_t> counts(256, 7);
      set->histogram_u8(c.bytes.data(), n, counts.data());
      expect_bytes_eq(counts, counts_ref, "histogram_u8", *set, c.w, c.h);

      std::vector<std::uint8_t> lut_out(n);
      set->lut_apply_u8(c.bytes.data(), n, lut8, lut_out.data());
      expect_bytes_eq(lut_out, lut_ref, "lut_apply_u8", *set, c.w, c.h);

      std::vector<std::uint8_t> lut_rgb_out(3 * n);
      set->lut_apply_rgb8(c.rgb.data(), n, lut8, lut_rgb_out.data());
      expect_bytes_eq(lut_rgb_out, lut_rgb_ref, "lut_apply_rgb8", *set, c.w,
                      c.h);

      std::vector<std::uint8_t> luma_out(n);
      set->luma_bt601_rgb8(c.rgb.data(), n, luma_out.data());
      expect_bytes_eq(luma_out, luma_ref, "luma_bt601_rgb8", *set, c.w, c.h);

      EXPECT_EQ(set->sum_u8(c.bytes.data(), n), sum_ref)
          << "sum_u8 on " << set->name;

      std::vector<double> lutf_out(n);
      set->lut_apply_f64(c.bytes.data(), n, lut64, lutf_out.data());
      expect_bytes_eq(lutf_out, lutf_ref, "lut_apply_f64", *set, c.w, c.h);

      std::vector<double> mul_out(n);
      set->mul_f64(c.fa.data(), c.fb.data(), n ? mul_out.data() : nullptr, n);
      expect_bytes_eq(mul_out, mul_ref, "mul_f64", *set, c.w, c.h);

      std::vector<double> saxpy_out = c.fb;
      set->saxpy_f64(0.75, c.fa.data(), saxpy_out.data(), n);
      expect_bytes_eq(saxpy_out, saxpy_ref, "saxpy_f64", *set, c.w, c.h);

      EXPECT_EQ(set->sum_f64(c.fa.data(), n), sumf_ref)
          << "sum_f64 on " << set->name;

      std::vector<double> prefix_out(n);
      set->prefix_row_f64(c.fa.data(), c.fb.data(), prefix_out.data(), n);
      expect_bytes_eq(prefix_out, prefix_ref, "prefix_row_f64", *set, c.w,
                      c.h);

      std::vector<double> ws_s(n);
      std::vector<double> ws_ss(n);
      set->window_sums_single_f64(c.fa.data(), n, c.fb.data(), c.fb.data(),
                                  ws_s.data(), ws_ss.data());
      expect_bytes_eq(ws_s, ws_s_ref, "window_sums_single_f64(s)", *set, c.w,
                      c.h);
      expect_bytes_eq(ws_ss, ws_ss_ref, "window_sums_single_f64(ss)", *set,
                      c.w, c.h);

      std::vector<double> wp_b(n);
      std::vector<double> wp_bb(n);
      std::vector<double> wp_ab(n);
      set->window_sums_pair_f64(c.fa.data(), c.fb.data(), n, c.fa.data(),
                                c.fa.data(), c.fa.data(), wp_b.data(),
                                wp_bb.data(), wp_ab.data());
      expect_bytes_eq(wp_b, wp_b_ref, "window_sums_pair_f64(b)", *set, c.w,
                      c.h);
      expect_bytes_eq(wp_bb, wp_bb_ref, "window_sums_pair_f64(bb)", *set, c.w,
                      c.h);
      expect_bytes_eq(wp_ab, wp_ab_ref, "window_sums_pair_f64(ab)", *set, c.w,
                      c.h);

      std::vector<double> brow(n);
      std::vector<double> bcol(n);
      for (int y = 0; y < c.h; ++y) {
        set->blur_row_f64(c.fa.data() + static_cast<std::size_t>(y) * c.w,
                          brow.data() + static_cast<std::size_t>(y) * c.w,
                          c.w, taps.data(), radius);
        set->blur_col_f64(c.fa.data(), c.w, c.h, y, taps.data(), radius,
                          bcol.data() + static_cast<std::size_t>(y) * c.w);
      }
      expect_bytes_eq(brow, brow_ref, "blur_row_f64", *set, c.w, c.h);
      expect_bytes_eq(bcol, bcol_ref, "blur_col_f64", *set, c.w, c.h);
    }
  }
}

// The tuned histogram (8 sub-tables + uniform-run shortcut) only
// engages above its 4096-pixel cutoff, which the random fuzz shapes
// stay below — these rasters are big enough to drive the real SIMD
// path, with content picked to hit every branch: whole-raster runs
// (shortcut fires on every block), alternating run/noise stripes
// (shortcut fires and misses within one call), few-value clusters
// (sub-table merge under same-bin pressure) and full-range noise.
// Deep-pixel (u16) kernels: histogram_u16 / lut_apply_u16 / sum_u16
// are pure integer kernels, so every backend must match scalar
// bit-for-bit.  The fuzz covers both histogram regimes (n < 2048 runs
// the reference loop, n >= 2048 the uniform-block probe), both
// supported deep lattices (1024 and 65536 levels), and content shapes
// the probe cares about: fully uniform blocks, few-value clusters, and
// full-range noise.
TEST(KernelParity, FuzzU16KernelsBitIdenticalToScalar) {
  const auto sets = supported_backends();
  ASSERT_FALSE(sets.empty());
  const KernelSet& ref = scalar_kernels();
  std::mt19937 rng(20260808);

  for (int iter = 0; iter < 60; ++iter) {
    const int levels = (iter % 2 == 0) ? 1024 : 65536;
    const std::uint32_t maxv = static_cast<std::uint32_t>(levels - 1);
    // Half the cases sit below the histogram probe threshold, half
    // well above it (up to ~64k samples).
    const std::size_t n = (iter % 2 == 0)
                              ? 1 + rng() % 2047
                              : 2048 + rng() % 62000;
    std::vector<std::uint16_t> src(n);
    const int mode = static_cast<int>(rng() % 4);
    const std::uint16_t flat = static_cast<std::uint16_t>(rng() % levels);
    const std::uint16_t lo =
        static_cast<std::uint16_t>(rng() % (levels / 2));
    for (std::size_t i = 0; i < n; ++i) {
      switch (mode) {
        case 0: src[i] = flat; break;  // uniform blocks end to end
        case 1: src[i] = static_cast<std::uint16_t>(lo + rng() % 3); break;
        case 2:
          // Long uniform runs with rare breaks — the probe's fast path
          // with occasional fallback recounts.
          src[i] = (i % 700 == 123)
                       ? static_cast<std::uint16_t>(rng() % levels)
                       : flat;
          break;
        default: src[i] = static_cast<std::uint16_t>(rng() % levels); break;
      }
    }
    std::vector<std::uint16_t> lut(static_cast<std::size_t>(levels));
    for (int v = 0; v < levels; ++v) {
      lut[static_cast<std::size_t>(v)] =
          static_cast<std::uint16_t>((static_cast<std::uint32_t>(v) * 191 +
                                      13) % (maxv + 1));
    }

    std::vector<std::uint64_t> counts_ref(static_cast<std::size_t>(levels),
                                          7);  // accumulate contract
    ref.histogram_u16(src.data(), n, counts_ref.data());
    std::vector<std::uint16_t> lut_ref(n);
    ref.lut_apply_u16(src.data(), n, lut.data(), lut_ref.data());
    const std::uint64_t sum_ref = ref.sum_u16(src.data(), n);

    for (const KernelSet* set : sets) {
      std::vector<std::uint64_t> counts(static_cast<std::size_t>(levels), 7);
      set->histogram_u16(src.data(), n, counts.data());
      expect_bytes_eq(counts, counts_ref, "histogram_u16", *set,
                      static_cast<int>(n), levels);

      std::vector<std::uint16_t> lut_out(n);
      set->lut_apply_u16(src.data(), n, lut.data(), lut_out.data());
      expect_bytes_eq(lut_out, lut_ref, "lut_apply_u16", *set,
                      static_cast<int>(n), levels);

      EXPECT_EQ(set->sum_u16(src.data(), n), sum_ref)
          << "sum_u16 diverges from scalar on backend " << set->name
          << " (n=" << n << ", levels=" << levels << ")";
    }
  }
}

TEST(KernelParity, LargeRasterHistogramAcrossBackends) {
  const auto sets = supported_backends();
  const KernelSet& ref = scalar_kernels();
  std::mt19937 rng(42);
  const std::size_t n = 96 * 96;  // comfortably above the 4096 cutoff
  std::vector<std::vector<std::uint8_t>> contents;
  contents.push_back(std::vector<std::uint8_t>(n, 24));  // uniform runs
  {
    std::vector<std::uint8_t> stripes(n);
    for (std::size_t i = 0; i < n; ++i) {
      stripes[i] = (i / 160) % 2 == 0
                       ? std::uint8_t{200}
                       : static_cast<std::uint8_t>(rng() & 0xFF);
    }
    contents.push_back(std::move(stripes));
  }
  {
    std::vector<std::uint8_t> clustered(n);
    for (auto& v : clustered) v = static_cast<std::uint8_t>(64 + rng() % 3);
    contents.push_back(std::move(clustered));
  }
  {
    std::vector<std::uint8_t> noise(n);
    for (auto& v : noise) v = static_cast<std::uint8_t>(rng() & 0xFF);
    contents.push_back(std::move(noise));
  }
  // Odd tail: also run every content at a length that leaves a
  // sub-block remainder.
  for (const auto& content : contents) {
    for (const std::size_t len : {n, n - 37}) {
      std::vector<std::uint64_t> want(256, 3);
      ref.histogram_u8(content.data(), len, want.data());
      for (const KernelSet* set : sets) {
        std::vector<std::uint64_t> got(256, 3);
        set->histogram_u8(content.data(), len, got.data());
        EXPECT_EQ(got, want) << "histogram_u8 diverges on " << set->name
                             << " at n=" << len;
      }
    }
  }
}

// The SIMD luma kernels round with floor(x + 0.5) (or FRINTA); scalar
// uses std::round.  The identity holds over the whole BT.601 domain —
// this sweep pins the boundary-heavy slices (every r, g against the
// extreme and mid blues) for every backend.
TEST(KernelParity, LumaBoundarySweep) {
  const auto sets = supported_backends();
  const KernelSet& ref = scalar_kernels();
  const std::uint8_t blues[] = {0, 17, 128, 254, 255};
  std::vector<std::uint8_t> rgb;
  rgb.reserve(256 * 256 * 5 * 3);
  for (int r = 0; r < 256; ++r) {
    for (int g = 0; g < 256; ++g) {
      for (std::uint8_t b : blues) {
        rgb.push_back(static_cast<std::uint8_t>(r));
        rgb.push_back(static_cast<std::uint8_t>(g));
        rgb.push_back(b);
      }
    }
  }
  const std::size_t n = rgb.size() / 3;
  std::vector<std::uint8_t> want(n);
  ref.luma_bt601_rgb8(rgb.data(), n, want.data());
  for (const KernelSet* set : sets) {
    std::vector<std::uint8_t> got(n);
    set->luma_bt601_rgb8(rgb.data(), n, got.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n), 0)
        << "luma sweep diverges on " << set->name;
  }
}

// Strided interleaved-RGB ImageView ingestion must be bit-identical
// across backends (the per-row luma kernel under the hood).
TEST(KernelParity, StridedRgbViewAcrossBackends) {
  const BackendGuard guard;
  const int w = 37;
  const int h = 9;
  const int stride = 3 * w + 11;  // padded rows
  std::mt19937 rng(7);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(stride) * h);
  for (auto& v : buf) v = static_cast<std::uint8_t>(rng() & 0xFF);
  const hebs::ImageView view =
      hebs::ImageView::rgb8(buf.data(), w, h, stride);
  ASSERT_TRUE(view.validate().ok());

  ASSERT_EQ(set_backend("scalar"), SetBackendResult::kOk);
  const hebs::image::GrayImage want = hebs::api::materialize_gray(view);
  for (const KernelSet* set : supported_backends()) {
    ASSERT_EQ(set_backend(set->name), SetBackendResult::kOk);
    const hebs::image::GrayImage got = hebs::api::materialize_gray(view);
    EXPECT_TRUE(got == want) << "strided RGB view diverges on " << set->name;
  }
}

// One stride-1 row of UIQI window indices: the decision-path metric's
// inner loop (DESIGN.md §11).  Tables are genuine prefix rows (so every
// rectangle sum is the sum the metric would see) over random content,
// with degenerate flat windows mixed in to pin the zero-variance
// branches; q_out must match the scalar reference bit for bit.
TEST(KernelParity, UiqiQRowAcrossBackends) {
  const auto sets = supported_backends();
  const KernelSet& ref = scalar_kernels();
  std::mt19937 rng(20260807);
  std::uniform_real_distribution<double> val(0.0, 1.0);
  for (int iter = 0; iter < 60; ++iter) {
    const int block = 2 + static_cast<int>(rng() % 10);
    const std::size_t n_win = 1 + rng() % 70;
    const std::size_t cols = n_win + static_cast<std::size_t>(block);
    const double n_px = static_cast<double>(block) * block;
    const bool flat = iter % 5 == 0;  // degenerate: constant rasters

    std::vector<double> mean_a(n_win);
    std::vector<double> var_a(n_win);
    for (std::size_t x = 0; x < n_win; ++x) {
      mean_a[x] = flat ? 0.25 : val(rng);
      var_a[x] = flat ? 0.0 : val(rng) * 0.1;
    }
    // Prefix rows: top is a prefix-sum row, bot adds one more
    // positive band so every rect(x) is positive.
    std::vector<double> b_top(cols + 1, 0.0);
    std::vector<double> b_bot(cols + 1, 0.0);
    std::vector<double> bb_top(cols + 1, 0.0);
    std::vector<double> bb_bot(cols + 1, 0.0);
    std::vector<double> ab_top(cols + 1, 0.0);
    std::vector<double> ab_bot(cols + 1, 0.0);
    for (std::size_t x = 0; x < cols; ++x) {
      const double b = flat ? 0.5 : val(rng);
      const double a = flat ? 0.25 : val(rng);
      b_top[x + 1] = b_top[x] + b * 0.3;
      b_bot[x + 1] = b_bot[x] + b;
      bb_top[x + 1] = bb_top[x] + b * b * 0.3;
      bb_bot[x + 1] = bb_bot[x] + b * b;
      ab_top[x + 1] = ab_top[x] + a * b * 0.3;
      ab_bot[x + 1] = ab_bot[x] + a * b;
    }

    std::vector<double> q_ref(n_win);
    ref.uiqi_q_row_f64(mean_a.data(), var_a.data(), b_top.data(),
                       b_bot.data(), bb_top.data(), bb_bot.data(),
                       ab_top.data(), ab_bot.data(), n_win, block, n_px,
                       q_ref.data());
    for (const KernelSet* set : sets) {
      std::vector<double> q(n_win);
      set->uiqi_q_row_f64(mean_a.data(), var_a.data(), b_top.data(),
                          b_bot.data(), bb_top.data(), bb_bot.data(),
                          ab_top.data(), ab_bot.data(), n_win, block, n_px,
                          q.data());
      EXPECT_EQ(std::memcmp(q.data(), q_ref.data(), n_win * sizeof(double)),
                0)
          << "uiqi_q_row_f64 diverges on " << set->name << " (iter " << iter
          << ", block " << block << ", n_win " << n_win << ")";
    }
  }
}

// The PLC DP inner scan: lowest-j argmin of prev[j] + chord error.
// The selection rule (strictly smaller value, or equal value at
// smaller j) makes the result independent of seed and of pruning, so
// every backend must return the identical (value, argmin) pair — which
// this fuzz checks across seeds, j_begin offsets and prev rows salted
// with infinities (unreachable DP states).
TEST(KernelParity, PlcScanAcrossBackends) {
  const auto sets = supported_backends();
  const KernelSet& ref = scalar_kernels();
  std::mt19937 rng(20260808);
  std::uniform_real_distribution<double> val(0.0, 1.0);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 80; ++iter) {
    const std::size_t n = 3 + rng() % 64;
    std::vector<double> px(n);
    std::vector<double> py(n);
    double x = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      x += 1e-3 + val(rng);  // strictly increasing abscissae
      px[k] = x;
      py[k] = iter % 7 == 0 ? 0.5 : val(rng);  // collinear ties sometimes
    }
    std::vector<double> sx(n + 1, 0.0);
    std::vector<double> sy(n + 1, 0.0);
    std::vector<double> sxx(n + 1, 0.0);
    std::vector<double> syy(n + 1, 0.0);
    std::vector<double> sxy(n + 1, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      sx[k + 1] = sx[k] + px[k];
      sy[k + 1] = sy[k] + py[k];
      sxx[k + 1] = sxx[k] + px[k] * px[k];
      syy[k + 1] = syy[k] + py[k] * py[k];
      sxy[k + 1] = sxy[k] + px[k] * py[k];
    }
    std::vector<double> prev(n);
    for (auto& v : prev) v = rng() % 5 == 0 ? kInf : val(rng);

    const std::size_t i = 2 + rng() % (n - 2);
    const std::size_t j_begin = rng() % (i - 1);
    prev[j_begin] = val(rng);  // at least one finite candidate
    PlcScanArgs args{};
    args.px = px.data();
    args.py = py.data();
    args.sx = sx.data();
    args.sy = sy.data();
    args.sxx = sxx.data();
    args.syy = syy.data();
    args.sxy = sxy.data();
    args.prev = prev.data();
    args.pix = px[i];
    args.piy = py[i];
    args.sxi = sx[i + 1];
    args.syi = sy[i + 1];
    args.sxxi = sxx[i + 1];
    args.syyi = syy[i + 1];
    args.sxyi = sxy[i + 1];
    args.i = i;
    args.j_begin = j_begin;

    args.j_seed = j_begin;
    std::size_t j_ref = 0;
    const double v_ref = ref.plc_scan_f64(&args, &j_ref);
    for (const KernelSet* set : sets) {
      // The seed is a performance hint only: sweep it across the scan
      // interval and require the identical (value, argmin) regardless.
      for (const std::size_t seed :
           {j_begin, (j_begin + i - 1) / 2, i - 1}) {
        args.j_seed = seed;
        std::size_t j = 0;
        const double v = set->plc_scan_f64(&args, &j);
        EXPECT_EQ(std::memcmp(&v, &v_ref, sizeof v), 0)
            << "plc_scan_f64 value diverges on " << set->name << " (iter "
            << iter << ", seed " << seed << ")";
        EXPECT_EQ(j, j_ref) << "plc_scan_f64 argmin diverges on "
                            << set->name << " (iter " << iter << ", seed "
                            << seed << ")";
      }
    }
  }
}

}  // namespace
}  // namespace hebs::kernels
